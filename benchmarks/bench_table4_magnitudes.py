"""Table 4 — magnitude distribution of detected regressions.

Inject regressions whose magnitudes span the paper's range (smallest
0.005% absolute, largest a few percent) into gCPU-scale series, run the
full pipeline, and report quantiles of the *detected* set the way
Table 4 does.  The shape to reproduce: detection succeeds down to the
0.005%-scale floor, the distribution is heavily right-skewed (P50 well
below P90 well below the max), and tiny regressions are not
disproportionately false-negatived.
"""

import numpy as np
import pytest

from _harness import bench_config, detect_window, emit
from repro.stats.descriptive import summarize
from repro.workloads import WindowKind, generate_labeled_window

N_REGRESSIONS = 120
BASE = 0.001          # a 0.1%-gCPU subroutine
NOISE_FRACTION = 0.01


def magnitude_grid(rng: np.random.Generator) -> np.ndarray:
    """Absolute magnitudes log-uniform over the paper's detected range.

    0.00005 (= 0.005% of total CPU, the paper's smallest) up to 0.04
    (= 4%, near the paper's largest true regression of 3.9%).
    """
    return np.exp(rng.uniform(np.log(0.00005), np.log(0.04), N_REGRESSIONS))


@pytest.fixture(scope="module")
def detected_magnitudes():
    rng = np.random.default_rng(4)
    config = bench_config(threshold=0.00002)
    detected = []
    injected = []
    for magnitude in magnitude_grid(rng):
        window = generate_labeled_window(
            WindowKind.REGRESSION,
            rng,
            base=BASE,
            noise_fraction=NOISE_FRACTION,
            magnitude=float(magnitude),
        )
        injected.append(float(magnitude))
        result = detect_window(window, config)
        if result.reported:
            detected.append(result.reported[0].magnitude)
    return np.array(injected), np.array(detected)


def test_table4_smallest_detected_is_paper_scale(detected_magnitudes):
    _, detected = detected_magnitudes
    assert detected.size > 0
    # The pipeline catches regressions down to the 0.005%-of-CPU scale.
    assert detected.min() <= 0.0001


def test_table4_quantile_shape(detected_magnitudes):
    injected, detected = detected_magnitudes
    summary = summarize(detected)
    # Right-skewed, like the paper's Table 4 (P50=0.048%, P90=0.24%,
    # largest 3.9% for true regressions).
    assert summary.p50 < summary.p90 < summary.maximum
    assert summary.maximum > 10 * summary.p50

    recall = detected.size / injected.size
    assert recall > 0.85, "most injected regressions must be detected"

    rows = [
        f"injected: {injected.size} regressions, log-uniform 0.005%..4% absolute",
        f"detected: {detected.size} ({recall * 100:.0f}% recall)",
        "",
        f"{'':10s}Smallest     P10          P50          P90          P99          Largest",
        (
            f"{'measured':10s}"
            f"{summary.minimum * 100:<13.4f}{summary.p10 * 100:<13.4f}"
            f"{summary.p50 * 100:<13.4f}{summary.p90 * 100:<13.4f}"
            f"{summary.p99 * 100:<13.4f}{summary.maximum * 100:<13.4f}"
        ),
        f"{'paper(TR)':10s}{'0.005':<13s}{'0.011':<13s}{'0.048':<13s}"
        f"{'0.241':<13s}{'0.809':<13s}{'3.862':<13s}",
        "(units: % of total CPU; paper quantiles shown for the confirmed-true set)",
    ]
    emit("Table 4 — magnitude of detected regressions", rows)


def test_table4_tiny_regressions_not_disproportionately_missed(detected_magnitudes):
    injected, detected = detected_magnitudes
    # §6.4: "the false positive rate is not higher for tiny regressions";
    # symmetrically, detection should not collapse for the small half as
    # long as magnitudes sit above the noise floor of the windows.
    floor = 3 * BASE * NOISE_FRACTION / np.sqrt(100)  # detectability floor
    detectable = injected[injected > floor]
    small_half = np.sort(detectable)[: detectable.size // 2]
    caught_small = sum(1 for m in small_half if (np.abs(detected / m - 1) < 0.5).any())
    assert caught_small / small_half.size > 0.6


def test_table4_detection_benchmark(benchmark):
    rng = np.random.default_rng(5)
    config = bench_config(threshold=0.00002)
    window = generate_labeled_window(
        WindowKind.REGRESSION, rng, base=BASE, noise_fraction=NOISE_FRACTION,
        magnitude=0.0005,
    )
    result = benchmark(detect_window, window, config)
    assert result.reported
