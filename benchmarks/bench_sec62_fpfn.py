"""§6.2 — false positives and false negatives.

A labelled corpus of true regressions and production-shaped negatives
(clean noise, transients, seasonality, wobble, drift) is scored by the
full pipeline and by the naive change-point strawman.  Shapes to
reproduce:

- FBDetect's FP rate is tiny (paper: 0.00088) and its FN rate on
  reported-scale regressions is near zero;
- among FBDetect's confirmed reports, true regressions dominate
  (paper: 49 TR vs 21 FP, ~70%);
- naive change-point detection without the went-away machinery flags
  the overwhelming majority of transient windows (paper: 99.7% of
  change points were transient false positives).
"""

import numpy as np
import pytest

from _harness import bench_config, confusion, detect_window, emit
from repro.baselines import NaiveChangePointDetector
from repro.workloads import WindowKind, generate_corpus, generate_labeled_window

N_POSITIVE = 30
N_CLEAN = 80
N_TRANSIENT = 60
N_SEASONAL = 20
N_WOBBLE = 40
N_DRIFT = 20
BASE = 0.001


@pytest.fixture(scope="module")
def corpus():
    rng = np.random.default_rng(62)
    windows = []
    for _ in range(N_POSITIVE):
        relative = float(np.exp(rng.uniform(np.log(0.05), np.log(2.0))))
        windows.append(
            generate_labeled_window(
                WindowKind.REGRESSION, rng, noise_fraction=0.02,
                magnitude=BASE * relative,
            )
        )
    for kind, count in (
        (WindowKind.CLEAN, N_CLEAN),
        (WindowKind.TRANSIENT, N_TRANSIENT),
        (WindowKind.SEASONAL, N_SEASONAL),
        (WindowKind.WOBBLE, N_WOBBLE),
        (WindowKind.DRIFT, N_DRIFT),
    ):
        for _ in range(count):
            windows.append(generate_labeled_window(kind, rng, noise_fraction=0.02))
    return windows


@pytest.fixture(scope="module")
def fbdetect_counts(corpus):
    config = bench_config(threshold=0.000004)
    results = [detect_window(window, config) for window in corpus]
    return confusion(corpus, results)


def test_sec62_fbdetect_rates(fbdetect_counts):
    counts = fbdetect_counts
    fp_rate = counts["fp"] / max(1, counts["fp"] + counts["tn"])
    fn_rate = counts["fn"] / max(1, counts["fn"] + counts["tp"])
    assert fp_rate <= 0.05
    assert fn_rate <= 0.05

    precision = counts["tp"] / max(1, counts["tp"] + counts["fp"])
    # Paper: of the developer-confirmed reports, 49/70 = 70% were true.
    assert precision >= 0.7

    emit(
        "§6.2 — false positives and false negatives",
        [
            f"corpus: {N_POSITIVE} true regressions, "
            f"{N_CLEAN + N_TRANSIENT + N_SEASONAL + N_WOBBLE + N_DRIFT} negatives",
            f"FBDetect: TP={counts['tp']} FP={counts['fp']} TN={counts['tn']} FN={counts['fn']}",
            f"FP rate = {fp_rate:.4f} (paper: 0.00088 on ~35k tame negatives)",
            f"FN rate = {fn_rate:.4f} (paper: ~0 on reported-scale regressions)",
            f"precision of reports = {precision:.2f} (paper: 49/70 = 0.70 confirmed)",
        ],
    )


def test_sec62_naive_strawman_floods(corpus):
    """§1: plain change-point detection has a ~99.7% transient FP rate."""
    naive = NaiveChangePointDetector()
    transients = [w for w in corpus if w.kind is WindowKind.TRANSIENT]
    flagged = sum(
        1
        for window in transients
        if naive.is_anomalous(
            window.historic, np.concatenate([window.analysis, window.extended])
        )
    )
    flag_rate = flagged / len(transients)
    assert flag_rate >= 0.9, "the strawman must flag nearly every transient"
    emit(
        "§6.2 — naive change-point strawman",
        [
            f"transient windows flagged by naive change-point detection: "
            f"{flagged}/{len(transients)} = {flag_rate:.2f}",
            "paper: 99.7% of change points in production are transient FPs",
        ],
    )


def test_sec62_fbdetect_transients_filtered(corpus):
    config = bench_config(threshold=0.000004)
    transients = [w for w in corpus if w.kind is WindowKind.TRANSIENT]
    flagged = sum(1 for w in transients if detect_window(w, config).reported)
    assert flagged / len(transients) <= 0.10


def test_sec62_confusion_benchmark(benchmark, corpus):
    config = bench_config(threshold=0.000004)
    window = corpus[0]
    result = benchmark(detect_window, window, config)
    assert result is not None
