"""Figure 3 — subroutine-level averaging, 1000x fewer servers.

Distributing the process CPU across k=1000 subroutines drops the
per-subroutine variance by k (Expression 2), so the same regression is
detectable from m = 50,000 servers instead of Figure 2's 50,000,000.
"""

import numpy as np
import pytest

from _harness import emit
from repro.fleet.scenarios import subroutine_level_average


M_VALUES = (500, 5_000, 50_000)
N_POINTS = 500
K = 1000


def analyze(m: int, seed: int = 0):
    series = subroutine_level_average(m, k_subroutines=K, n_points=N_POINTS, seed=seed)
    noise = float(series[: N_POINTS // 2].std())
    shift = float(series[N_POINTS // 2 :].mean() - series[: N_POINTS // 2].mean())
    # The figures' criterion is *visual* visibility: the step must rise
    # clear of the per-point noise band (>= 2 sigma).
    visible = shift > 2 * noise
    return noise, shift, visible


@pytest.fixture(scope="module")
def sweep():
    return {m: analyze(m) for m in M_VALUES}


def test_fig3_noise_shrinks_with_m(sweep):
    noises = [sweep[m][0] for m in M_VALUES]
    assert noises[0] > noises[1] > noises[2]


def test_fig3_thousandfold_reduction(sweep):
    # Detectable at m=50k — 1000x fewer servers than Figure 2 needed.
    assert sweep[50_000][2]
    assert not sweep[500][2]

    rows = [
        f"m={m:>7,d}  noise(std)={sweep[m][0]:.2e}  measured shift={sweep[m][1]:+.2e}  "
        f"regression {'VISIBLE' if sweep[m][2] else 'buried in noise'}"
        for m in M_VALUES
    ]
    rows.append(
        "paper: k=1000 subroutines -> same detectability from 1000x fewer servers"
    )
    emit("Figure 3 — subroutine-level averaging (k=1000)", rows)


def test_fig3_censoring_raises_level(sweep):
    # Footnote 2: the observed level sits well above mu/k = 0.05%.
    series = subroutine_level_average(5_000, k_subroutines=K, n_points=100)
    assert series.mean() > 0.0015  # paper's Figure 3 sits around 0.17-0.18%


def test_fig3_generation_benchmark(benchmark):
    series = benchmark(subroutine_level_average, 50_000, K, N_POINTS)
    assert series.size == N_POINTS
