"""CI benchmark-regression gate, dogfooding the repo's own detector.

Run by the ``bench-smoke`` CI job.  It takes reduced-size measurements
from the service benchmarks, writes them to ``BENCH_ci.json``, and fails
the build on two kinds of regression:

1. **Baseline ratios** (hard gate).  Machine-independent ratios —
   multi-shard ingest scaling, incremental-cache speedup, per-shard scan
   latency improvement — are compared against the committed
   ``benchmarks/ci_baseline.json``.  A drop of more than 20% below the
   baseline fails the job.  Ratios survive hardware differences between
   the committing laptop and the CI runner, which is why the hard gate
   lives here and not on absolute throughput.
2. **Floors** (hard gate).  Ratios whose required level is part of the
   design contract rather than a moving baseline — the columnar batch
   screen must stay >= 10x over the seed per-series loop, and ingest
   goodput with data-quality admission on must stay within bounds of
   admission off.  Committed floors in ``ci_baseline.json`` are compared
   directly: ``value >= floor``, no tolerance band.
3. **History change points** (dogfood gate).  Absolute throughput
   numbers are machine-dependent, so they are appended to a rolling
   history file (restored across runs via ``actions/cache``) and scanned
   with the repo's *own* statistics — :func:`repro.stats.cusum_changepoint`
   to locate the most likely shift and
   :func:`repro.stats.likelihood_ratio_test` to validate it, exactly the
   CUSUM+LRT pair the detection pipeline uses (§5.2.1).  A significant,
   material (>10%) downward shift whose post-change segment includes the
   latest run fails the job.  This is the MongoDB-style change-point CI
   guard, built from the paper's machinery instead of a t-test.

Usage::

    python benchmarks/check_bench_regression.py \
        --output BENCH_ci.json --history bench_history.json
    python benchmarks/check_bench_regression.py --update-baseline
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from _corpus import fig8_corpus  # noqa: E402
from bench_detector_scorecard import score_detectors  # noqa: E402
from bench_mozilla_corpus import run_corpus, score_corpus  # noqa: E402
from bench_scan_batch import measure_batch_scan  # noqa: E402
from bench_service_throughput import (  # noqa: E402
    CAPACITY,
    INTERVAL,
    SERIES,
    burst_stream,
    run_burst_ingest,
    scan_config,
)

from repro.detectors import default_suite  # noqa: E402

from repro.service import (  # noqa: E402
    BackpressurePolicy,
    Sample,
    StreamingDetectionService,
)
from repro.stats import cusum_changepoint, likelihood_ratio_test  # noqa: E402

BASELINE_PATH = os.path.join(os.path.dirname(__file__), "ci_baseline.json")

#: Hard-gate tolerance: a ratio may drop to 80% of baseline, no lower.
RATIO_FLOOR = 0.8
#: Dogfood gate: minimum relative drop that counts as material.
MATERIAL_DROP = 0.10
#: Dogfood gate: history shorter than this is recorded but not judged.
MIN_HISTORY = 8

# Reduced sizes: the gate must finish in well under a minute on a runner.
SCAN_SERIES = SERIES[:32]
SCAN_TICKS = 900
SCAN_ROUNDS = 3
RERUN = 6_000.0
BATCH_SCAN_SERIES = 4_000

#: Committed floor values (written verbatim by --update-baseline).
#: batch_scan_speedup: the columnar refactor's contract — vectorized
#: batch screening at least 10x over the seed per-series fold.
#: admission_goodput_ratio: quality admission keeps >= 80% of disabled-
#: admission goodput (the <= 5% design target is reported in info; the
#: floor is loose so scheduler jitter on busy runners never flakes it).
FLOORS = {
    "batch_scan_speedup": 10.0,
    "admission_goodput_ratio": 0.8,
}


def _scan_service(incremental: bool) -> StreamingDetectionService:
    service = StreamingDetectionService(
        n_shards=4,
        queue_capacity=1 << 20,
        backpressure=BackpressurePolicy.BLOCK,
        batch_size=4_096,
    )
    service.register_monitor(
        "gcpu", scan_config(), series_filter={"metric": "gcpu"},
        incremental=incremental,
    )
    return service


def _ingest_history(service: StreamingDetectionService) -> None:
    import numpy as np

    rng = np.random.default_rng(11)
    for index, name in enumerate(SCAN_SERIES):
        values = rng.normal(0.001, 0.00002, SCAN_TICKS)
        if index == 3:  # one injected regression -> deterministic report
            values[700:] += 0.0003
        service.ingest_many(
            [
                Sample(name, tick * INTERVAL, float(values[tick]),
                       {"metric": "gcpu"})
                for tick in range(SCAN_TICKS)
            ]
        )
    service.flush()


def measure() -> dict:
    """Take every reduced measurement; returns the BENCH_ci payload."""
    # -- ingest scaling (ratio) ----------------------------------------
    bursts = burst_stream()[:20]
    goodput = {}
    for n_shards in (1, 4):
        stats, elapsed = run_burst_ingest(n_shards, bursts)
        goodput[n_shards] = stats.accepted / elapsed

    # -- admission overhead (floor) ------------------------------------
    admission = {}
    for quality in ("on", None):
        best = 0.0
        for _ in range(2):  # best-of-2: goodput, not scheduler jitter
            stats, elapsed = run_burst_ingest(4, bursts, quality=quality)
            best = max(best, stats.accepted / elapsed)
        admission[quality] = best
    admission_ratio = admission["on"] / admission[None]

    # -- columnar batch screening vs seed per-series loop (floor) ------
    batch_scan = measure_batch_scan(BATCH_SCAN_SERIES)

    # -- scan latency + incremental speedup + report count -------------
    elapsed_by_mode = {}
    scan_goodput = 0.0
    reports_delivered = 0
    hit_rate = 0.0
    for incremental in (False, True):
        service = _scan_service(incremental)
        _ingest_history(service)
        reports = service.advance_to(SCAN_TICKS * INTERVAL)
        started = time.perf_counter()
        for round_index in range(1, SCAN_ROUNDS + 1):
            reports += service.advance_to(
                SCAN_TICKS * INTERVAL + round_index * RERUN
            )
        elapsed = time.perf_counter() - started
        elapsed_by_mode[incremental] = elapsed
        if not incremental:
            scans = service.metrics.histogram("scheduler.scan_seconds").count
            scan_goodput = scans / elapsed
            reports_delivered = len(reports)
        else:
            counters = service.metrics.snapshot()["counters"]
            hits = counters.get("pipeline.incremental.hits", 0.0)
            misses = counters.get("pipeline.incremental.misses", 0.0)
            hit_rate = hits / (hits + misses) if hits + misses else 0.0
        service.close()

    # -- detector scorecard (reduced corpus) ---------------------------
    # The registry's quality gate: the incumbent's accuracy over a
    # reduced labelled corpus must not erode.  E-divisive permutations
    # are cut down so the gate stays fast; detector IDs shift with the
    # override, which is fine — the gate tracks the incumbent row.
    corpus = fig8_corpus(
        n_positive=6, n_clean=8, n_transient=8, n_seasonal=3,
        n_wobble=8, n_drift=3,
    )
    scorecard = score_detectors(
        default_suite(
            threshold=0.000004,
            overrides={"e_divisive": {"n_permutations": 29}},
        ),
        corpus,
    )
    incumbent = next(row for row in scorecard if row["type"] == "incumbent")
    total = incumbent["tp"] + incumbent["fp"] + incumbent["fn"] + incumbent["tn"]
    incumbent_accuracy = (incumbent["tp"] + incumbent["tn"]) / total

    # -- Mozilla labeled-alert corpus (ratio) --------------------------
    # Real-world labels (arXiv 2503.16332 slice): the full service path
    # must keep matching the sheriff-validated alerts.  The slice is
    # committed and deterministic, so the F1 is machine-independent.
    _, _, mozilla_reports, mozilla_labels = run_corpus()
    mozilla_scores = score_corpus(mozilla_reports, mozilla_labels)

    return {
        "ratios": {
            # Higher is better for every ratio in this block.
            "ingest_goodput_scaling_4v1": goodput[4] / goodput[1],
            "incremental_speedup": elapsed_by_mode[False] / elapsed_by_mode[True],
            "scorecard_incumbent_accuracy": incumbent_accuracy,
            "mozilla_corpus_f1": mozilla_scores["f1"],
        },
        "counts": {
            "reports_delivered": reports_delivered,
            "scorecard_detectors": len(scorecard),
        },
        "floors": {
            # Design-contract minimums; gated as value >= floor.
            "batch_scan_speedup": batch_scan["speedup"],
            "admission_goodput_ratio": admission_ratio,
        },
        "absolutes": {
            # Machine-dependent; judged by the change-point history gate.
            "ingest_goodput_1shard": goodput[1],
            "scan_goodput_serial": scan_goodput,
            "batch_scan_points_per_s": batch_scan["batch_points_per_s"],
        },
        "info": {
            "incremental_hit_rate": hit_rate,
            "admission_overhead_pct": 100.0 * (1.0 / admission_ratio - 1.0),
            "batch_scan_series": batch_scan["n_series"],
            "cpu_count": os.cpu_count(),
        },
    }


def gate_ratios(current: dict, baseline: dict) -> list:
    """Hard gate: every ratio must stay >= RATIO_FLOOR * baseline."""
    failures = []
    for name, base in baseline.get("ratios", {}).items():
        value = current["ratios"].get(name)
        if value is None:
            failures.append(f"ratio {name} missing from current run")
            continue
        if value < RATIO_FLOOR * base:
            failures.append(
                f"ratio {name} = {value:.3f} dropped >20% below baseline "
                f"{base:.3f} (floor {RATIO_FLOOR * base:.3f})"
            )
    for name, base in baseline.get("counts", {}).items():
        value = current["counts"].get(name)
        if value != base:
            failures.append(f"count {name} = {value} != baseline {base}")
    return failures


def gate_floors(current: dict, baseline: dict) -> list:
    """Hard gate: every floored metric must reach its committed floor."""
    failures = []
    for name, floor in baseline.get("floors", {}).items():
        value = current.get("floors", {}).get(name)
        if value is None:
            failures.append(f"floor metric {name} missing from current run")
            continue
        if value < floor:
            failures.append(
                f"floor {name} = {value:.3f} below required {floor:.3f}"
            )
    return failures


def gate_history(history: dict, current: dict) -> list:
    """Dogfood gate: CUSUM+LRT over each absolute metric's history.

    Appends the current values to ``history`` in place, then judges any
    metric with enough points.  A failure requires all three of: a CUSUM
    change point, LRT significance at 1%, and a material drop whose
    post-change segment reaches the latest run.
    """
    failures = []
    for name, value in current["absolutes"].items():
        series = history.setdefault(name, [])
        series.append(float(value))
        del series[:-50]  # bound the cached history
        if len(series) < MIN_HISTORY:
            continue
        result = cusum_changepoint(series)
        if result is None or result.mean_before <= 0:
            continue
        drop = (result.mean_before - result.mean_after) / result.mean_before
        if drop < MATERIAL_DROP:
            continue
        lrt = likelihood_ratio_test(series, result.index)
        if lrt.significant:
            failures.append(
                f"{name}: change point at run {result.index}/{len(series)} — "
                f"mean {result.mean_before:.1f} -> {result.mean_after:.1f} "
                f"({drop:.1%} drop, LRT p={lrt.p_value:.2e})"
            )
    return failures


def _load_json(path: str, default: dict) -> dict:
    if path and os.path.exists(path):
        with open(path) as handle:
            return json.load(handle)
    return default


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", default="BENCH_ci.json",
                        help="where to write the measurement payload")
    parser.add_argument("--baseline", default=BASELINE_PATH,
                        help="committed ratio baseline to gate against")
    parser.add_argument("--history", default=None,
                        help="rolling absolute-throughput history (JSON)")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the committed baseline and exit")
    args = parser.parse_args(argv)

    current = measure()
    with open(args.output, "w") as handle:
        json.dump(current, handle, indent=2, sort_keys=True)
    print(f"wrote {args.output}")
    print(json.dumps(current, indent=2, sort_keys=True))

    if args.update_baseline:
        # Timing ratios vary across machines; cap the committed baseline
        # at conservative values so the 20% floor gates real regressions
        # instead of hardware differences.
        caps = {
            "ingest_goodput_scaling_4v1": 2.5,
            "incremental_speedup": 2.0,
            "scorecard_incumbent_accuracy": 0.95,
            "mozilla_corpus_f1": 1.0,
        }
        ratios = {
            name: min(value, caps.get(name, value))
            for name, value in current["ratios"].items()
        }
        # Floors are design contracts, not measurements: committed
        # verbatim so a fast machine can never relax them.
        baseline = {
            "ratios": ratios,
            "counts": current["counts"],
            "floors": dict(FLOORS),
        }
        with open(args.baseline, "w") as handle:
            json.dump(baseline, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"baseline updated: {args.baseline}")
        return 0

    failures = []
    baseline = _load_json(args.baseline, {})
    if baseline:
        failures += gate_ratios(current, baseline)
        failures += gate_floors(current, baseline)
    else:
        print(f"warning: no baseline at {args.baseline}; ratio gate skipped")

    if args.history is not None:
        history = _load_json(args.history, {})
        failures += gate_history(history, current)
        history_dir = os.path.dirname(os.path.abspath(args.history))
        os.makedirs(history_dir, exist_ok=True)
        with open(args.history, "w") as handle:
            json.dump(history, handle, indent=2, sort_keys=True)
        lengths = {name: len(series) for name, series in history.items()}
        print(f"history updated: {args.history} {lengths}")

    if failures:
        print("\nBENCHMARK REGRESSION GATE FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\nbenchmark regression gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
