"""Shared plumbing for the paper-reproduction benchmarks.

Every benchmark regenerates one table or figure from the paper's
evaluation.  The experiments run on the laptop-scale substitutes
documented in DESIGN.md, so the *shapes* (who wins, by what rough
factor, where crossovers fall) are the reproduction target, not the
absolute production counts.

Benchmarks print their paper-style rows through :func:`emit`, which
both writes to stdout (visible with ``pytest -s``) and appends to
``benchmarks/results.txt`` so a plain ``pytest benchmarks/
--benchmark-only`` run still leaves the reproduced tables on disk.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import FBDetect, TimeSeriesDatabase
from repro.config import DetectionConfig
from repro.core.pipeline import PipelineResult
from repro.tsdb import WindowSpec
from repro.workloads import LabeledWindow

RESULTS_PATH = os.path.join(os.path.dirname(__file__), "results.txt")

#: Laptop-scale points per window used across benchmarks.
HISTORIC_POINTS = 400
ANALYSIS_POINTS = 150
EXTENDED_POINTS = 50
POINT_INTERVAL = 60.0


def emit(section: str, lines: Sequence[str]) -> None:
    """Print a reproduced table/figure block and append it to results.txt."""
    block = [f"\n### {section}"]
    block.extend(f"    {line}" for line in lines)
    text = "\n".join(block)
    print(text)
    with open(RESULTS_PATH, "a", encoding="utf-8") as sink:
        sink.write(text + "\n")


def small_windows() -> WindowSpec:
    """A window spec matching the benchmark corpus layout."""
    return WindowSpec(
        historic=HISTORIC_POINTS * POINT_INTERVAL,
        analysis=ANALYSIS_POINTS * POINT_INTERVAL,
        extended=EXTENDED_POINTS * POINT_INTERVAL,
    )


def bench_config(
    threshold: float = 0.00002,
    higher_is_worse: bool = True,
    long_term: bool = False,
    **overrides,
) -> DetectionConfig:
    """A detection config sized for the benchmark corpora."""
    return DetectionConfig(
        name="bench",
        threshold=threshold,
        rerun_interval=3600.0,
        windows=small_windows(),
        higher_is_worse=higher_is_worse,
        long_term=long_term,
        **overrides,
    )


def detect_window(window: LabeledWindow, config: Optional[DetectionConfig] = None) -> PipelineResult:
    """Run FBDetect over one labelled window laid out on the bench grid."""
    config = config or bench_config()
    detector = FBDetect(config)
    database = TimeSeriesDatabase()
    series = database.create("bench.sub.gcpu", {"metric": "gcpu", "subroutine": "sub"})
    for i, value in enumerate(window.values):
        series.append(i * POINT_INTERVAL, float(value))
    return detector.run(database, now=window.values.size * POINT_INTERVAL)


def detected_truthfully(window: LabeledWindow, result: PipelineResult) -> bool:
    """Whether the pipeline's outcome matches the window's label."""
    reported = bool(result.reported)
    return reported == window.is_true_regression


def confusion(
    windows: Sequence[LabeledWindow],
    results: Sequence[PipelineResult],
) -> Dict[str, int]:
    """Confusion-matrix counts over labelled windows."""
    counts = {"tp": 0, "fp": 0, "tn": 0, "fn": 0}
    for window, result in zip(windows, results):
        reported = bool(result.reported)
        if window.is_true_regression and reported:
            counts["tp"] += 1
        elif window.is_true_regression:
            counts["fn"] += 1
        elif reported:
            counts["fp"] += 1
        else:
            counts["tn"] += 1
    return counts


def window_pairs(
    windows: Sequence[LabeledWindow],
) -> Tuple[List[Tuple[np.ndarray, np.ndarray]], List[Tuple[np.ndarray, np.ndarray]]]:
    """(positives, negatives) as (historic, analysis+extended) pairs for
    the EGADS-style baselines, which consume whole windows."""
    positives, negatives = [], []
    for window in windows:
        pair = (
            window.historic,
            np.concatenate([window.analysis, window.extended]),
        )
        if window.is_true_regression:
            positives.append(pair)
        else:
            negatives.append(pair)
    return positives, negatives
