"""Ablation — the two-step deduplication design (§5.5).

The paper pairs a fast O(n) SOM pass with a thorough O(n²) pairwise pass
and sets the SOM grid by the robust rule L = ceil(n^(1/4)).  This bench
verifies the design choices:

1. *Scalability*: SOMDedup's runtime grows far slower with n than
   PairwiseDedup's pairwise comparisons.
2. *Effectiveness*: on correlated regression families, SOMDedup alone
   collapses most duplicates (paper: "often reducing regressions by two
   orders of magnitude"), and the pipeline without SOMDedup leans
   entirely on the slow pass.
3. *Grid rule*: the n^(1/4) rule clusters as well as a hand-tuned grid.
"""

import time

import numpy as np
import pytest

from _harness import ANALYSIS_POINTS, EXTENDED_POINTS, HISTORIC_POINTS, emit
from repro.core.dedup_pairwise import PairwiseDedup
from repro.core.dedup_som import SOMDedup
from repro.core.types import MetricContext, Regression, RegressionKind
from repro.som import som_cluster, som_grid_size
from repro.tsdb import TimeSeries, WindowSpec

N_POINTS = HISTORIC_POINTS + ANALYSIS_POINTS + EXTENDED_POINTS


def make_family(rng, n_members: int, n_families: int):
    """n_families correlated families of n_members regressions each."""
    regressions = []
    for family in range(n_families):
        shared = rng.normal(0, 0.00002, N_POINTS)
        change_at = HISTORIC_POINTS + 40 + 10 * family
        for member in range(n_members):
            values = 0.001 * (family + 1) + shared + rng.normal(0, 2e-6, N_POINTS)
            values[change_at:] += 0.0002
            series = TimeSeries(f"svc.fam{family}::caller{member}.gcpu")
            for i, value in enumerate(values):
                series.append(float(i), float(value))
            view = WindowSpec(
                HISTORIC_POINTS, ANALYSIS_POINTS, EXTENDED_POINTS
            ).view(series, now=float(N_POINTS))
            regressions.append(
                Regression(
                    context=MetricContext(
                        metric_id=series.name,
                        service="svc",
                        metric_name="gcpu",
                        subroutine=f"fam{family}::caller{member}",
                    ),
                    kind=RegressionKind.SHORT_TERM,
                    change_index=change_at - HISTORIC_POINTS,
                    change_time=float(change_at),
                    mean_before=0.001 * (family + 1),
                    mean_after=0.001 * (family + 1) + 0.0002,
                    window=view,
                )
            )
    return regressions


def test_som_collapses_families(rng):
    regressions = make_family(rng, n_members=10, n_families=4)
    groups = SOMDedup().deduplicate(regressions)
    # 40 regressions -> close to 4 groups (one per family).
    assert len(groups) <= 10
    representatives = sum(1 for g in groups if g.representative)
    assert representatives == len(groups)
    emit(
        "Ablation — SOMDedup effectiveness",
        [
            f"40 correlated regressions (4 families x 10 callers) -> "
            f"{len(groups)} groups after SOMDedup alone",
        ],
    )


def test_scalability_som_vs_pairwise(rng):
    sizes = (20, 60)
    som_times, pairwise_times = [], []
    for n in sizes:
        regressions = make_family(rng, n_members=n // 4, n_families=4)
        start = time.perf_counter()
        SOMDedup().deduplicate(regressions)
        som_times.append(time.perf_counter() - start)

        start = time.perf_counter()
        dedup = PairwiseDedup()
        for regression in regressions:
            dedup.process([regression])
        pairwise_times.append(time.perf_counter() - start)

    som_growth = som_times[1] / max(som_times[0], 1e-9)
    pairwise_growth = pairwise_times[1] / max(pairwise_times[0], 1e-9)
    emit(
        "Ablation — dedup scalability",
        [
            f"n=20: SOM {som_times[0] * 1000:.1f} ms, pairwise {pairwise_times[0] * 1000:.1f} ms",
            f"n=60: SOM {som_times[1] * 1000:.1f} ms, pairwise {pairwise_times[1] * 1000:.1f} ms",
            f"runtime growth SOM x{som_growth:.1f} vs pairwise x{pairwise_growth:.1f} (3x items)",
        ],
    )
    # Pairwise grows super-linearly; SOM's growth is much gentler.
    assert pairwise_growth > som_growth


def test_grid_rule_competitive(rng):
    regressions = make_family(rng, n_members=8, n_families=4)
    dedup_rule = SOMDedup()
    groups_rule = dedup_rule.deduplicate(list(regressions))

    features = dedup_rule._feature_matrix(list(regressions))
    rule_clusters = som_cluster(features, grid_size=som_grid_size(len(regressions)))
    oversized = som_cluster(features, grid_size=8)  # 64 units for 32 items

    # The paper's rule yields a sane cluster count; a hugely oversized
    # grid fragments (more clusters than families warrant).
    assert len(rule_clusters) <= len(oversized) + 1
    assert 1 <= len(groups_rule) <= 12


def test_dedup_benchmark(benchmark, rng):
    regressions = make_family(rng, n_members=6, n_families=3)
    groups = benchmark.pedantic(
        SOMDedup().deduplicate, args=(regressions,), rounds=3, iterations=1
    )
    assert groups
