"""Figure 7 — catching the regression at the end despite a mid spike.

A transient spike sits in the history; a true regression starts near the
end of the analysis window.  Naive baseline comparison against a window
containing the spike would dismiss the real regression; the went-away
detector's SAX-validity logic recognizes the spike bucket as invalid
(too few points) and reports the regression.
"""

import numpy as np
import pytest

from _harness import (
    ANALYSIS_POINTS,
    EXTENDED_POINTS,
    HISTORIC_POINTS,
    POINT_INTERVAL,
    bench_config,
    emit,
)
from repro import FBDetect, TimeSeriesDatabase

N_POINTS = HISTORIC_POINTS + ANALYSIS_POINTS + EXTENDED_POINTS


def figure7_series(seed: int = 7) -> np.ndarray:
    rng = np.random.default_rng(seed)
    values = rng.normal(0.001, 0.00002, N_POINTS)
    spike_at = HISTORIC_POINTS // 2
    values[spike_at : spike_at + 25] += 0.0008            # transient spike
    regression_at = HISTORIC_POINTS + int(0.8 * ANALYSIS_POINTS)
    values[regression_at:] += 0.0004                      # true end regression
    return values


def run_detection(values: np.ndarray):
    db = TimeSeriesDatabase()
    series = db.create("svc.sub.gcpu", {"metric": "gcpu", "subroutine": "sub"})
    for i, value in enumerate(values):
        series.append(i * POINT_INTERVAL, float(value))
    detector = FBDetect(bench_config(threshold=0.0001))
    return detector.run(db, now=N_POINTS * POINT_INTERVAL)


@pytest.fixture(scope="module")
def outcome():
    return run_detection(figure7_series())


def test_fig7_end_regression_reported(outcome):
    assert len(outcome.reported) == 1
    regression = outcome.reported[0]
    assert regression.magnitude == pytest.approx(0.0004, rel=0.35)
    emit(
        "Figure 7 — went-away detector vs historic spike",
        [
            "historic window contains a 25-point transient spike",
            f"end-of-window regression: REPORTED, magnitude {regression.magnitude:.6f}",
            "the spike's SAX bucket is invalid (<3% of points), so it cannot",
            "serve as a baseline that masks the true regression",
        ],
    )


def test_fig7_spike_alone_not_reported():
    # Control: the same series without the end regression reports nothing.
    rng = np.random.default_rng(7)
    values = rng.normal(0.001, 0.00002, N_POINTS)
    spike_at = HISTORIC_POINTS // 2
    values[spike_at : spike_at + 25] += 0.0008
    result = run_detection(values)
    assert result.reported == []


def test_fig7_detection_benchmark(benchmark):
    values = figure7_series()
    result = benchmark(run_detection, values)
    assert len(result.reported) == 1
