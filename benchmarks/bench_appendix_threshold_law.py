"""Appendix A — the detection-threshold law Δ_threshold ∝ sqrt(σ²/n).

Expression 1 underpins the whole paper: the smallest reliably detectable
shift scales with the noise level and inversely with the square root of
the sample count.  We verify both proportionalities empirically by
measuring the minimal shift the change-point detector catches with >= 80%
probability, as a function of (a) window length n and (b) noise σ.

Also checks Appendix A.3's corollary: for a small subroutine, a small
absolute change in gCPU corresponds to the same-sized relative change in
process CPU — the argument for using gCPU at all.
"""

import numpy as np
import pytest

from _harness import emit
from repro.core.change_point import ChangePointDetector

DETECTION_PROBABILITY = 0.8
TRIALS = 24


def detection_rate(n: int, sigma: float, shift: float, seed_base: int) -> float:
    """Fraction of trials where the detector catches a mid-window shift."""
    detector = ChangePointDetector()
    hits = 0
    for trial in range(TRIALS):
        rng = np.random.default_rng(seed_base + trial)
        values = rng.normal(0.0, sigma, n)
        values[n // 2 :] += shift
        candidate = detector.detect_increase(values)
        if candidate is not None and abs(candidate.index - n // 2) <= max(3, n // 10):
            hits += 1
    return hits / TRIALS


def minimal_detectable_shift(n: int, sigma: float, seed_base: int = 0) -> float:
    """Bisect the smallest shift detected with >= 80% probability."""
    lo, hi = 0.0, 8.0 * sigma
    for _ in range(12):
        mid = (lo + hi) / 2.0
        if detection_rate(n, sigma, mid, seed_base) >= DETECTION_PROBABILITY:
            hi = mid
        else:
            lo = mid
    return hi


@pytest.fixture(scope="module")
def n_sweep():
    sigma = 1.0
    ns = (50, 200, 800)
    return {n: minimal_detectable_shift(n, sigma, seed_base=n) for n in ns}


def test_threshold_scales_inverse_sqrt_n(n_sweep):
    ns = sorted(n_sweep)
    thresholds = [n_sweep[n] for n in ns]
    # Larger windows detect smaller shifts.
    assert thresholds[0] > thresholds[1] > thresholds[2]
    # Log-log slope close to -1/2 (Expression 1).
    slope = np.polyfit(np.log(ns), np.log(thresholds), 1)[0]
    assert slope == pytest.approx(-0.5, abs=0.15)

    rows = [
        f"n={n:4d}  minimal detectable shift = {n_sweep[n]:.3f} sigma-units"
        for n in ns
    ]
    rows.append(f"log-log slope vs n: {slope:+.3f}  (Expression 1 predicts -0.5)")
    emit("Appendix A.2 — Δ_threshold ∝ 1/sqrt(n)", rows)


def test_threshold_scales_linearly_with_sigma():
    n = 200
    sigmas = (0.5, 1.0, 2.0)
    thresholds = [minimal_detectable_shift(n, s, seed_base=int(s * 1000)) for s in sigmas]
    ratios = [t / s for t, s in zip(thresholds, sigmas)]
    # Δ/σ constant across σ (Expression 1's σ-proportionality).
    assert max(ratios) / min(ratios) < 1.5
    emit(
        "Appendix A.2 — Δ_threshold ∝ σ",
        [
            f"σ={s:.1f}: minimal shift {t:.3f} ({t / s:.3f} σ)"
            for s, t in zip(sigmas, thresholds)
        ],
    )


def test_appendix_a3_gcpu_relative_correspondence():
    """A small absolute gCPU change ≈ the same relative process change.

    h% = Δ(μ_P - μ_r) / (μ_P (μ_P + Δ)) ≈ Δ/μ_P for μ_r, Δ << μ_P.
    """
    mu_process = 40.0      # 40 busy cores, the paper's example scale
    mu_subroutine = 0.04   # a 0.1%-share subroutine
    delta = 0.02           # absolute CPU increase in the subroutine
    exact_gcpu_change = (mu_subroutine + delta) / (mu_process + delta) - (
        mu_subroutine / mu_process
    )
    relative_process_change = delta / mu_process
    assert exact_gcpu_change == pytest.approx(relative_process_change, rel=0.01)


def test_appendix_a4_waste_scaling():
    """W/m ∝ sqrt(σ²/m): the waste *fraction* shrinks with fleet size
    while total waste W still grows like sqrt(m)."""
    sigma2 = 1.0
    fleet_sizes = np.array([1e4, 1e6, 1e8])
    waste_fraction = np.sqrt(sigma2 / fleet_sizes)
    total_waste = waste_fraction * fleet_sizes
    assert np.all(np.diff(waste_fraction) < 0)
    assert np.all(np.diff(total_waste) > 0)
    ratio = total_waste[1] / total_waste[0]
    assert ratio == pytest.approx(np.sqrt(fleet_sizes[1] / fleet_sizes[0]), rel=1e-9)


def test_threshold_law_benchmark(benchmark):
    rate = benchmark.pedantic(
        detection_rate, args=(200, 1.0, 0.5, 7), rounds=1, iterations=1
    )
    assert 0.0 <= rate <= 1.0
