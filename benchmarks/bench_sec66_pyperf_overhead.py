"""§6.6 — PyPerf profiling overhead, measured for real.

The paper's microbenchmark: repeatedly serialize a large data structure,
compress it, and write it to a file.  At the highest production sampling
rate (one sample per second) PyPerf cost about 0.8% throughput; at the
PythonFaaS rate (one sample per 30 minutes) the overhead was
unmeasurable.

Here the *real* in-process sampler (``ThreadStackSampler``) profiles the
same workload.  Python-level sampling is costlier than an eBPF kernel
probe, so the bound asserted is looser (<= 5% at 1 Hz), but the shape —
negligible at production rates, small even at the maximum rate — is the
reproduction target.
"""

import json
import tempfile
import threading
import time
import zlib

import pytest

from _harness import emit
from repro.profiling import ThreadStackSampler

PAYLOAD = {"rows": [{"id": i, "name": f"row-{i}", "value": i * 3.14} for i in range(3_000)]}
MEASURE_SECONDS = 2.5


def workload_iterations(duration: float, sampler_interval: float = 0.0) -> int:
    """Run serialize+compress+write for ``duration``; return iterations.

    When ``sampler_interval`` > 0, a ThreadStackSampler profiles the
    workload thread at that interval for the whole run.
    """
    stop = threading.Event()
    counters = {"iterations": 0}

    def loop():
        with tempfile.TemporaryFile() as sink:
            while not stop.is_set():
                data = zlib.compress(json.dumps(PAYLOAD).encode("utf-8"), 6)
                sink.seek(0)
                sink.write(data)
                counters["iterations"] += 1

    worker = threading.Thread(target=loop, daemon=True)
    worker.start()
    sampler = None
    if sampler_interval > 0:
        sampler = ThreadStackSampler(
            interval=sampler_interval, target_thread_ids=[worker.ident]
        )
        sampler.start()
    time.sleep(duration)
    if sampler is not None:
        sampler.stop()
    stop.set()
    worker.join()
    return counters["iterations"]


@pytest.fixture(scope="module")
def overheads():
    """Paired per-round overhead ratios.

    Machine-load drift across a long benchmark session dwarfs the effect
    being measured, so each round runs baseline and sampled
    configurations back-to-back and only the *within-round* ratio is
    used; the median across rounds is the estimate.
    """
    import statistics

    ratios_1hz, ratios_prod, baselines = [], [], []
    for _ in range(4):
        baseline = workload_iterations(MEASURE_SECONDS)
        one_hz = workload_iterations(MEASURE_SECONDS, sampler_interval=1.0)
        production = workload_iterations(MEASURE_SECONDS, sampler_interval=30.0)
        baselines.append(baseline)
        ratios_1hz.append(1.0 - one_hz / baseline)
        ratios_prod.append(1.0 - production / baseline)
    return (
        statistics.median(ratios_1hz),
        statistics.median(ratios_prod),
        max(baselines),
    )


def test_sec66_overhead_at_one_hz(overheads):
    overhead_1hz, overhead_prod, baseline = overheads
    rows = [
        f"baseline throughput:            {baseline / MEASURE_SECONDS:8.1f} iterations/s",
        f"sampled @ 1 Hz (max rate):      overhead {overhead_1hz * 100:+.2f}% "
        f"(median of paired rounds)",
        f"sampled @ 1/30 s (prod. rate):  overhead {overhead_prod * 100:+.2f}% "
        f"(median of paired rounds)",
        "paper: ~0.8% at 1 Hz (eBPF), unmeasurable at production rates",
    ]
    emit("§6.6 — PyPerf profiling overhead", rows)
    # The in-process sampler is costlier than eBPF; still small at 1 Hz.
    # Bounds are upper-only: negative values just mean the overhead is
    # inside the run-to-run noise, which *is* the paper's finding.
    assert overhead_1hz <= 0.08
    assert overhead_prod <= 0.05


def test_sec66_snapshot_cost_benchmark(benchmark):
    """Cost of a single stack snapshot — the per-sample price."""
    stop = threading.Event()

    def loop():
        while not stop.is_set():
            sum(range(2_000))

    worker = threading.Thread(target=loop, daemon=True)
    worker.start()
    sampler = ThreadStackSampler(interval=60.0, target_thread_ids=[worker.ident])
    own_ident = threading.get_ident()
    try:
        benchmark(sampler._snapshot, own_ident)
    finally:
        stop.set()
        worker.join()
    assert sampler.samples
