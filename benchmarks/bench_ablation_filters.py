"""Ablation — each filter stage's contribution to false-positive control.

DESIGN.md calls out the went-away detector, seasonality detector, and
cost-shift detector as FBDetect's load-bearing design choices; Table 3
measures them jointly.  This ablation removes one stage at a time and
measures how many false positives leak through on a corpus built to
exercise that stage:

- without went-away: transient windows flood through;
- without seasonality: seasonal rising edges flood through;
- without cost-shift: refactor illusions flood through.
"""

import numpy as np
import pytest

from _harness import (
    ANALYSIS_POINTS,
    EXTENDED_POINTS,
    HISTORIC_POINTS,
    POINT_INTERVAL,
    bench_config,
    emit,
)
from repro import FBDetect, TimeSeriesDatabase
from repro.workloads import WindowKind, generate_labeled_window

N_POINTS = HISTORIC_POINTS + ANALYSIS_POINTS + EXTENDED_POINTS
CHANGE_AT = HISTORIC_POINTS + 60


def count_transient_reports(enable_went_away: bool, n_windows: int = 30) -> int:
    rng = np.random.default_rng(10)
    config = bench_config(threshold=0.000004)
    reports = 0
    for _ in range(n_windows):
        window = generate_labeled_window(WindowKind.TRANSIENT, rng, noise_fraction=0.02)
        detector = FBDetect(config, enable_went_away=enable_went_away)
        db = TimeSeriesDatabase()
        series = db.create("svc.sub.gcpu", {"metric": "gcpu", "subroutine": "sub"})
        for i, value in enumerate(window.values):
            series.append(i * POINT_INTERVAL, float(value))
        result = detector.run(db, now=window.values.size * POINT_INTERVAL)
        reports += bool(result.reported)
    return reports


def count_seasonal_reports(enable_seasonality: bool, n_windows: int = 20) -> int:
    """Seasonal-rise FPs with/without the seasonality stage.

    The went-away stage is ablated in *both* arms: on synthetic
    stationary seasonality its historical-envelope logic subsumes the
    seasonal FPs entirely, so the seasonality detector's marginal
    contribution (the paper's "removes 22% of the went-away detector's
    output") is only visible on the candidates went-away would pass —
    exactly what disabling it exposes.
    """
    reports = 0
    for seed in range(n_windows):
        rng = np.random.default_rng(seed)
        t = np.arange(900)
        # Rising half-cycle in the analysis window [700, 800).
        values = 0.001 + 0.0003 * np.sin(np.pi * (t - 750) / 100) + rng.normal(0, 0.00002, 900)
        db = TimeSeriesDatabase()
        series = db.create("svc.sub.gcpu", {"metric": "gcpu", "subroutine": "sub"})
        for i, value in enumerate(values):
            series.append(float(i), float(value))
        from repro.config import DetectionConfig
        from repro.tsdb import WindowSpec

        config = DetectionConfig(
            name="ablate",
            threshold=0.000004,
            rerun_interval=3600.0,
            windows=WindowSpec(700.0, 100.0, 100.0),
            long_term=False,
            seasonality_period=200,
        )
        detector = FBDetect(
            config,
            enable_went_away=False,
            enable_seasonality=enable_seasonality,
        )
        result = detector.run(db, now=900.0)
        reports += bool(result.reported)
    return reports


def count_cost_shift_reports(enable_cost_shift: bool, n_pairs: int = 15) -> int:
    reports = 0
    config = bench_config(threshold=0.000004)
    for seed in range(n_pairs):
        rng = np.random.default_rng(seed + 500)
        shifted = 0.0003
        target = rng.normal(0.0001, 0.00002, N_POINTS)
        target[CHANGE_AT:] += shifted
        sibling = rng.normal(0.0007, 0.00002, N_POINTS)
        sibling[CHANGE_AT:] -= shifted
        db = TimeSeriesDatabase()
        for name, values in (("target", target), ("sibling", sibling)):
            series = db.create(
                f"svc.ns::K::{name}.gcpu",
                {"metric": "gcpu", "subroutine": f"ns::K::{name}", "service": "svc"},
            )
            for i, value in enumerate(values):
                series.append(i * POINT_INTERVAL, float(value))
        detector = FBDetect(config, enable_cost_shift=enable_cost_shift)
        result = detector.run(db, now=N_POINTS * POINT_INTERVAL)
        reports += sum(
            1 for r in result.reported if r.context.subroutine == "ns::K::target"
        )
    return reports


@pytest.fixture(scope="module")
def ablation_counts():
    return {
        "went_away": (count_transient_reports(True), count_transient_reports(False)),
        "seasonality": (count_seasonal_reports(True), count_seasonal_reports(False)),
        "cost_shift": (count_cost_shift_reports(True), count_cost_shift_reports(False)),
    }


def test_ablation_went_away(ablation_counts):
    with_filter, without_filter = ablation_counts["went_away"]
    assert with_filter <= 0.15 * 30
    assert without_filter >= with_filter + 10, "removing went-away must flood FPs"


def test_ablation_seasonality(ablation_counts):
    with_filter, without_filter = ablation_counts["seasonality"]
    assert with_filter <= 3
    assert without_filter >= with_filter + 10


def test_ablation_cost_shift(ablation_counts):
    with_filter, without_filter = ablation_counts["cost_shift"]
    assert with_filter == 0
    assert without_filter >= 12


def test_ablation_report(ablation_counts):
    rows = []
    corpora = {"went_away": 30, "seasonality": 20, "cost_shift": 15}
    for stage, (with_filter, without_filter) in ablation_counts.items():
        total = corpora[stage]
        rows.append(
            f"{stage:12s} FPs with filter: {with_filter:2d}/{total}   "
            f"without: {without_filter:2d}/{total}"
        )
    rows.append("each stage is individually load-bearing for FP control")
    emit("Ablation — per-filter false-positive contribution", rows)


def test_ablation_benchmark(benchmark):
    result = benchmark.pedantic(
        count_transient_reports, args=(True, 5), rounds=1, iterations=1
    )
    assert result <= 5
