"""Figure 8 — FBDetect vs Yahoo EGADS false-positive/false-negative tradeoff.

A labelled corpus (true regressions; clean, transient, seasonal
negatives) is scored by the three EGADS algorithm families across their
sensitivity sweeps and by FBDetect.  The paper's shape: every EGADS
family trades FPs against FNs along a curve, while FBDetect sits near
the origin — low on both axes simultaneously — because the went-away
detector disarms the transients that force EGADS's tradeoff.
"""

import pytest

from _corpus import fig8_corpus
from _harness import bench_config, confusion, detect_window, emit, window_pairs
from repro.baselines import (
    AdaptiveKernelDensityModel,
    ExtremeLowDensityModel,
    KSigmaModel,
    sweep_tradeoff,
)


@pytest.fixture(scope="module")
def corpus():
    # Shared with bench_detector_scorecard.py so the Figure 8 point and
    # the registry scorecard are measured against the same distribution.
    return fig8_corpus()


@pytest.fixture(scope="module")
def fbdetect_point(corpus):
    config = bench_config(threshold=0.000004)
    results = [detect_window(window, config) for window in corpus]
    counts = confusion(corpus, results)
    fp_rate = counts["fp"] / max(1, counts["fp"] + counts["tn"])
    fn_rate = counts["fn"] / max(1, counts["fn"] + counts["tp"])
    return fp_rate, fn_rate


@pytest.fixture(scope="module")
def egads_curves(corpus):
    positives, negatives = window_pairs(corpus)
    return {
        model.__name__: sweep_tradeoff(model, positives, negatives)
        for model in (KSigmaModel, AdaptiveKernelDensityModel, ExtremeLowDensityModel)
    }


def test_fig8_fbdetect_low_on_both_axes(fbdetect_point):
    fp_rate, fn_rate = fbdetect_point
    assert fp_rate <= 0.05, "FBDetect must keep FPs near zero"
    assert fn_rate <= 0.05, "FBDetect must catch (essentially) all reported-scale regressions"


def test_fig8_egads_cannot_do_both(egads_curves, fbdetect_point):
    """At any sensitivity meeting a small FP budget, every EGADS family
    pays a higher FN rate than FBDetect — the Figure 8 shape."""
    fp_rate, fn_rate = fbdetect_point
    # The paper's comparison: hold EGADS to FBDetect's own FP rate and
    # read off the FN each algorithm must then pay.
    fp_budget = fp_rate
    rows = [f"FBDetect point:  FP={fp_rate:.4f}  FN={fn_rate:.4f}"]
    for name, curve in egads_curves.items():
        eligible = [p for p in curve if p.false_positive_rate <= fp_budget]
        best_fn = min((p.false_negative_rate for p in eligible), default=1.0)
        points = ", ".join(
            f"({p.false_positive_rate:.2f},{p.false_negative_rate:.2f})" for p in curve
        )
        rows.append(f"{name:30s} best FN at FP<={fp_budget:.3f}: {best_fn:.2f}")
        rows.append(f"{'':32s}curve (FP,FN): {points}")
        assert best_fn >= fn_rate + 0.2, (
            f"{name} should pay a large FN premium at FBDetect's FP rate"
        )
    rows.append("paper: EGADS cannot simultaneously reduce both FP and FN; FBDetect can")
    emit("Figure 8 — FBDetect vs EGADS tradeoff", rows)


def test_fig8_egads_tradeoff_is_monotone(egads_curves):
    # Each family's sensitivity sweep moves monotonically along the FP
    # axis (direction depends on the parameter's semantics).
    for name, curve in egads_curves.items():
        fps = [p.false_positive_rate for p in curve]
        assert fps == sorted(fps) or fps == sorted(fps, reverse=True), (
            f"{name} sweep not monotone"
        )


def test_fig8_ksigma_benchmark(benchmark, corpus):
    positives, negatives = window_pairs(corpus)
    points = benchmark(sweep_tradeoff, KSigmaModel, positives, negatives)
    assert points
