"""Table 1 — detection across the paper's workload configurations.

For a representative set of Table 1 rows, inject a regression at ~3x the
row's detection threshold into a synthetic series whose noise level
matches what that workload's sampling volume leaves behind, and verify
the configured pipeline reports it — and stays quiet on the clean
control series.
"""

import zlib

import numpy as np
import pytest

from _harness import (
    ANALYSIS_POINTS,
    EXTENDED_POINTS,
    HISTORIC_POINTS,
    POINT_INTERVAL,
    emit,
)
from repro import FBDetect, TimeSeriesDatabase, table1_config

N_POINTS = HISTORIC_POINTS + ANALYSIS_POINTS + EXTENDED_POINTS
CHANGE_AT = HISTORIC_POINTS + 60

#: (config key, baseline level, noise std) — noise chosen at roughly a
#: third of the row's threshold, the regime the paper's windows target.
CASES = {
    "frontfaas_small": (0.001, 0.00005 / 3),
    "frontfaas_large": (0.30, 0.03 / 3),
    "pythonfaas_small": (0.005, 0.0003 / 3),
    "tao_frontfaas": (0.01, 0.0005 / 3),
    "adserving_short": (0.05, 0.002 / 3),
    "invoicer_short": (0.10, 0.005 / 3),
    "ct_supply_short": (1000.0, 1000.0 * 0.05 / 3),
    "ct_demand": (500_000.0, 500_000.0 * 0.05 / 3),
}


def run_case(key: str, with_regression: bool):
    base, noise = CASES[key]
    config = table1_config(key).with_windows(
        historic=HISTORIC_POINTS * POINT_INTERVAL,
        analysis=ANALYSIS_POINTS * POINT_INTERVAL,
        extended=EXTENDED_POINTS * POINT_INTERVAL,
    )
    if config.relative_threshold:
        magnitude = 3.0 * config.threshold * base
    else:
        magnitude = 3.0 * config.threshold

    rng = np.random.default_rng(zlib.crc32(key.encode("utf-8")))
    values = rng.normal(base, noise, N_POINTS)
    if with_regression:
        direction = 1.0 if config.higher_is_worse else -1.0
        values[CHANGE_AT:] += direction * magnitude

    db = TimeSeriesDatabase()
    series = db.create(f"{key}.metric", {"metric": "bench"})
    for i, value in enumerate(values):
        series.append(i * POINT_INTERVAL, float(value))
    detector = FBDetect(config, series_filter={"metric": "bench"})
    return detector.run(db, now=N_POINTS * POINT_INTERVAL), magnitude


@pytest.fixture(scope="module")
def outcomes():
    return {
        key: (run_case(key, True)[0], run_case(key, False)[0], run_case(key, True)[1])
        for key in CASES
    }


def test_table1_regressions_detected(outcomes):
    rows = []
    for key, (with_reg, without_reg, magnitude) in outcomes.items():
        config = table1_config(key)
        detected = len(with_reg.reported) >= 1
        quiet = len(without_reg.reported) == 0
        threshold_text = (
            f"{config.threshold * 100:g}% (relative)"
            if config.relative_threshold
            else f"{config.threshold * 100:g}%"
        )
        rows.append(
            f"{config.name:22s} threshold={threshold_text:18s} "
            f"injected={magnitude:.6g}: "
            f"{'DETECTED' if detected else 'missed'}; "
            f"clean control {'quiet' if quiet else 'NOISY'}"
        )
        assert detected, f"{key}: regression at 3x threshold must be detected"
        assert quiet, f"{key}: clean series must not be reported"
    emit("Table 1 — workload configurations", rows)


def test_table1_all_presets_constructible():
    from repro.config import TABLE1_CONFIGS

    assert len(TABLE1_CONFIGS) == 12


def test_table1_detection_benchmark(benchmark):
    result, _ = benchmark(run_case, "frontfaas_small", True)
    assert result.reported
