"""Detector scorecard — the registry's challengers ranked on one corpus.

Hunter (arXiv 2301.03034) runs E-divisive means over benchmark
fetch-rates; BIPeC (arXiv 2408.12414) argues no single analyzer wins
everywhere and combines them.  The ``repro.detectors`` registry makes
that comparison concrete here: every registrable detector — the
incumbent FBDetect pipeline, the from-scratch E-divisive tester, the
DP-changepoint detector, and the robust threshold/MAD presets — scores
the shared Figure 8 corpus (see ``_corpus.py``), and the scorecard
ranks them by combined FP+FN rate with per-family false-positive
breakdowns and detection latency (points from the injected change to
the claimed change index).

The expected shape: the incumbent sits lowest on combined error
(its went-away/seasonality filters disarm the benign families), the
statistical challengers (E-divisive, DP) pay transient/wobble FPs for
their generality, and the static presets bound one error type only.

``score_detectors`` is importable — ``check_bench_regression.py`` runs
it over a reduced corpus as a CI measurement.
"""

from typing import Dict, List, Sequence

import pytest

from _corpus import fig8_corpus
from _harness import emit
from repro.detectors import Detector, DetectorWindow, default_suite
from repro.workloads import LabeledWindow


def score_detectors(
    detectors: Sequence[Detector],
    corpus: Sequence[LabeledWindow],
) -> List[dict]:
    """Score each detector over a labelled corpus.

    Every window is scanned through :class:`DetectorWindow.from_labeled`
    (the same historic/analysis/extended orientation shadow mode feeds
    challengers in production).  A scan that raises counts as an error
    and as a miss on true regressions — a crashing detector must not
    look better than a quiet one.

    Returns:
        One row per detector, ranked best first by combined FP+FN rate:
        ``{id, type, version, tp, fp, fn, tn, errors, fp_rate, fn_rate,
        combined, latency_mean, latency_n, family_fp}`` where
        ``family_fp`` maps negative-family kind names to FP counts and
        latency is measured in points past the injected change index.
    """
    rows: List[dict] = []
    for detector in detectors:
        tp = fp = fn = tn = errors = 0
        latencies: List[int] = []
        family_fp: Dict[str, int] = {}
        for window in corpus:
            try:
                decision = detector.scan(DetectorWindow.from_labeled(window))
            except Exception:
                errors += 1
                if window.is_true_regression:
                    fn += 1
                else:
                    tn += 1
                continue
            if window.is_true_regression:
                if decision.fired:
                    tp += 1
                    if decision.index is not None and window.change_index >= 0:
                        latencies.append(decision.index - window.change_index)
                else:
                    fn += 1
            elif decision.fired:
                fp += 1
                family_fp[window.kind.value] = family_fp.get(window.kind.value, 0) + 1
            else:
                tn += 1
        described = detector.describe()
        fp_rate = fp / max(1, fp + tn)
        fn_rate = fn / max(1, fn + tp)
        rows.append({
            "id": described["id"],
            "type": described["type"],
            "version": described["version"],
            "tp": tp, "fp": fp, "fn": fn, "tn": tn, "errors": errors,
            "fp_rate": fp_rate,
            "fn_rate": fn_rate,
            "combined": fp_rate + fn_rate,
            "latency_mean": (sum(latencies) / len(latencies)) if latencies else None,
            "latency_n": len(latencies),
            "family_fp": family_fp,
        })
    rows.sort(key=lambda row: (row["combined"], row["id"]))
    return rows


@pytest.fixture(scope="module")
def corpus():
    return fig8_corpus()


@pytest.fixture(scope="module")
def scorecard(corpus):
    # The incumbent runs the same threshold as the Figure 8 point so its
    # row here reproduces that measurement.
    return score_detectors(default_suite(threshold=0.000004), corpus)


def test_scorecard_covers_registry(scorecard):
    # The acceptance bar: at least four detectors of four distinct
    # registered types scored on the same corpus.
    assert len(scorecard) >= 4
    assert len({row["type"] for row in scorecard}) >= 4
    for row in scorecard:
        assert row["tp"] + row["fp"] + row["fn"] + row["tn"] == 180


def test_scorecard_incumbent_wins_combined(scorecard):
    # The paper's claim transfers: the full pipeline (went-away +
    # seasonality filters) beats every single-analyzer challenger on
    # combined error over the mixed corpus.
    assert scorecard[0]["type"] == "incumbent"
    incumbent = scorecard[0]
    assert incumbent["fp_rate"] <= 0.05
    assert incumbent["fn_rate"] <= 0.05
    assert incumbent["errors"] == 0


def test_scorecard_measures_latency(scorecard):
    # Fired true regressions carry a claimed change index; latency from
    # the injected change must be sane (within the window, not wildly
    # early).
    for row in scorecard:
        if row["latency_n"] == 0:
            continue
        assert -50 <= row["latency_mean"] <= 200, row["id"]
    incumbent = next(row for row in scorecard if row["type"] == "incumbent")
    assert incumbent["latency_n"] > 0


def test_scorecard_challengers_trade_errors(scorecard):
    # Single-analyzer challengers fire on some windows (they are not
    # dead weight in shadow mode) but pay benign-family FPs or misses
    # the incumbent avoids — the BIPeC motivation for running a panel.
    incumbent = next(row for row in scorecard if row["type"] == "incumbent")
    challengers = [row for row in scorecard if row["type"] != "incumbent"]
    assert challengers
    assert any(row["tp"] > 0 for row in challengers)
    assert any(row["combined"] > incumbent["combined"] for row in challengers)


def test_scorecard_emit(scorecard):
    rows = [
        f"{'detector':28s} {'FP':>6s} {'FN':>6s} {'comb':>6s} "
        f"{'lat(pts)':>9s} {'err':>4s}  family FPs",
    ]
    for row in scorecard:
        latency = "-" if row["latency_mean"] is None else f"{row['latency_mean']:.1f}"
        families = ", ".join(
            f"{kind}={count}" for kind, count in sorted(row["family_fp"].items())
        ) or "-"
        rows.append(
            f"{row['id']:28s} {row['fp_rate']:6.3f} {row['fn_rate']:6.3f} "
            f"{row['combined']:6.3f} {latency:>9s} {row['errors']:>4d}  {families}"
        )
    rows.append("ranked by combined FP+FN; corpus = fig8 (25 pos / 155 neg)")
    rows.append("Hunter-style E-divisive and DP single analyzers vs the full pipeline")
    emit("Detector scorecard — registry over the Figure 8 corpus", rows)
    assert [row["combined"] for row in scorecard] == sorted(
        row["combined"] for row in scorecard
    )
