"""Shared fixtures for the benchmark suite."""

import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator."""
    return np.random.default_rng(2024)
