"""§4 — PyPerf vs Scalene-style Python-level profiling.

"To our knowledge, PyPerf is the first profiler capable of deriving a
precise end-to-end stack trace across a Python program and the C/C++
libraries it invokes ... Scalene can only approximate the time spent in
C/C++ libraries."

A simulated Python service spends a configurable share of its CPU in
native libraries.  PyPerf's merged stacks attribute that time to the
exact native frames; the Python-level baseline cannot see them at all,
misattributing the whole native share.
"""

import numpy as np
import pytest

from _harness import emit
from repro.baselines import ScaleneLikeProfiler, attribution_error
from repro.profiling.gcpu import compute_gcpu
from repro.profiling.pyperf import PyPerfProfiler, SimulatedCPythonProcess

NATIVE_SHARE = 0.35  # fraction of CPU inside C/C++ libraries
N_SAMPLES = 2_000

_WORKLOAD = (
    # (python call chain, native leaf or None, probability)
    (("main", "handle", "render"), None, 0.40),
    (("main", "handle", "serialize"), "json_dumps", 0.20),
    (("main", "handle", "compress"), "zlib_compress", 0.15),
    (("main", "io", "read"), None, 0.25),
)


def sample_processes(rng) -> list:
    """Draw process snapshots from the workload mix."""
    probabilities = np.array([w for _, _, w in _WORKLOAD])
    probabilities /= probabilities.sum()
    snapshots = []
    for choice in rng.choice(len(_WORKLOAD), size=N_SAMPLES, p=probabilities):
        chain, native, _ = _WORKLOAD[choice]
        proc = SimulatedCPythonProcess()
        for function in chain:
            proc.call_python(function)
        if native is not None:
            proc.call_native(native)
        snapshots.append(proc)
    return snapshots


@pytest.fixture(scope="module")
def profiles():
    rng = np.random.default_rng(44)
    processes = sample_processes(rng)
    pyperf = PyPerfProfiler()
    scalene = ScaleneLikeProfiler()
    merged = [pyperf.sample(p) for p in processes]
    python_only = [scalene.sample(p) for p in processes]
    return merged, python_only


def test_sec4_pyperf_names_native_frames(profiles):
    merged, _ = profiles
    table = compute_gcpu(merged)
    assert table.gcpu("json_dumps") == pytest.approx(0.20, abs=0.03)
    assert table.gcpu("zlib_compress") == pytest.approx(0.15, abs=0.03)


def test_sec4_python_only_loses_native_breakdown(profiles):
    merged, python_only = profiles
    table = compute_gcpu(python_only)
    assert table.gcpu("json_dumps") == 0.0
    assert table.gcpu("zlib_compress") == 0.0

    errors = attribution_error(merged, python_only)
    native_loss = -sum(v for v in errors.values() if v < 0)
    assert native_loss == pytest.approx(0.35, abs=0.04)

    emit(
        "§4 — PyPerf vs Python-level (Scalene-style) profiling",
        [
            f"workload: {NATIVE_SHARE * 100:.0f}% of CPU inside C/C++ libraries",
            f"PyPerf attributes native frames exactly "
            f"(json_dumps {compute_gcpu(merged).gcpu('json_dumps') * 100:.1f}%, "
            f"zlib_compress {compute_gcpu(merged).gcpu('zlib_compress') * 100:.1f}%)",
            f"Python-level profiler loses the entire native breakdown "
            f"({native_loss * 100:.1f}% of CPU unattributable to its true frames)",
            "paper: Scalene can only approximate C/C++ time; PyPerf is end-to-end",
        ],
    )


def test_sec4_sampling_benchmark(benchmark):
    proc = SimulatedCPythonProcess()
    proc.call_python("main")
    proc.call_python("handler")
    proc.call_native("zlib_compress")
    profiler = PyPerfProfiler()
    trace = benchmark(profiler.sample, proc)
    assert trace.subroutines[-1] == "zlib_compress"
