"""Table 2 — gCPU root-cause attribution worked example.

The paper's exact numbers: subroutine B's gCPU rises 0.09 -> 0.14
(R = 0.05); a change modifying A and E accounts for samples moving
0.07 -> 0.11 (L = 0.04); attribution L/R = 80%.
"""

import pytest

from _harness import emit
from repro.core.root_cause import gcpu_attribution
from repro.profiling.gcpu import compute_gcpu
from repro.profiling.stacktrace import StackTrace


def samples_before():
    return [
        StackTrace.from_names(["A", "B", "C"], weight=0.01),
        StackTrace.from_names(["B", "E", "F"], weight=0.02),
        StackTrace.from_names(["D", "B", "C"], weight=0.02),
        StackTrace.from_names(["B", "E", "D"], weight=0.04),
        StackTrace.from_names(["other"], weight=0.91),
    ]


def samples_after():
    return [
        StackTrace.from_names(["A", "B", "C"], weight=0.02),
        StackTrace.from_names(["B", "E", "F"], weight=0.03),
        StackTrace.from_names(["D", "B", "C"], weight=0.02),
        StackTrace.from_names(["B", "E", "D"], weight=0.06),
        StackTrace.from_names(["G", "B", "D"], weight=0.01),
        StackTrace.from_names(["other"], weight=0.86),
    ]


def test_table2_b_gcpu_levels():
    before = compute_gcpu(samples_before())
    after = compute_gcpu(samples_after())
    assert before.gcpu("B") == pytest.approx(0.09)
    assert after.gcpu("B") == pytest.approx(0.14)


def test_table2_attribution_is_80_percent():
    fraction = gcpu_attribution(
        samples_before(), samples_after(), regressed="B", modified=["A", "E"]
    )
    assert fraction == pytest.approx(0.80, abs=1e-9)
    emit(
        "Table 2 — gCPU attribution worked example",
        [
            "B's gCPU: 0.09 before -> 0.14 after (R = 0.05)",
            "samples involving modified {A, E}: 0.07 -> 0.11 (L = 0.04)",
            f"attribution L/R = {fraction * 100:.0f}%  (paper: 80%)",
        ],
    )


def test_table2_unrelated_change_gets_nothing():
    assert gcpu_attribution(samples_before(), samples_after(), "B", ["Z"]) == 0.0


def test_table2_attribution_benchmark(benchmark):
    before, after = samples_before(), samples_after()
    fraction = benchmark(gcpu_attribution, before, after, "B", ["A", "E"])
    assert fraction == pytest.approx(0.80)
