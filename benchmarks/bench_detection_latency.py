"""Detection latency — why Table 1 runs two configs per service.

FrontFaaS simultaneously runs a *large* configuration (3% threshold,
30-minute re-runs, no extended window) and a *small* one (0.005%
threshold, 2-hour re-runs, 6-hour extended window).  The large config
exists to catch big regressions *fast*; the small one to catch tiny
regressions at all.  This bench measures time-to-detection for both
configs against big and tiny injected regressions and reproduces the
tradeoff:

- big regression: the large config reports first (its re-run interval
  and window requirements are shorter);
- tiny regression: only the small config ever reports it.
"""

import numpy as np
import pytest

from _harness import POINT_INTERVAL, emit
from repro import FBDetect, TimeSeriesDatabase
from repro.config import DetectionConfig
from repro.tsdb import WindowSpec

N_POINTS = 1400
INJECT_AT = 900  # point index of the regression
BASE = 0.30      # a 30%-of-CPU service-level series for the big config
TINY_BASE = 0.001


def large_config() -> DetectionConfig:
    return DetectionConfig(
        name="large",
        threshold=0.03,
        rerun_interval=10 * POINT_INTERVAL,           # re-runs often
        windows=WindowSpec(400 * POINT_INTERVAL, 60 * POINT_INTERVAL, 0.0),
        long_term=False,
    )


def small_config() -> DetectionConfig:
    return DetectionConfig(
        name="small",
        threshold=0.00005,
        rerun_interval=60 * POINT_INTERVAL,           # re-runs rarely
        windows=WindowSpec(
            400 * POINT_INTERVAL, 150 * POINT_INTERVAL, 100 * POINT_INTERVAL
        ),
        long_term=False,
    )


def build_db(base: float, magnitude: float, noise: float, seed: int) -> TimeSeriesDatabase:
    rng = np.random.default_rng(seed)
    values = rng.normal(base, noise, N_POINTS)
    values[INJECT_AT:] += magnitude
    db = TimeSeriesDatabase()
    series = db.create("svc.metric.gcpu", {"metric": "gcpu", "subroutine": "m"})
    for i, value in enumerate(values):
        series.append(i * POINT_INTERVAL, float(value))
    return db


def first_detection_time(config: DetectionConfig, db: TimeSeriesDatabase) -> float:
    """Simulated time of the first run that reports, or inf."""
    detector = FBDetect(config)
    now = INJECT_AT * POINT_INTERVAL
    end = N_POINTS * POINT_INTERVAL
    while now <= end:
        result = detector.run(db, now)
        if result.reported:
            return now
        now += config.rerun_interval
    return float("inf")


@pytest.fixture(scope="module")
def latencies():
    inject_time = INJECT_AT * POINT_INTERVAL
    big_db = build_db(BASE, magnitude=0.09, noise=0.01, seed=0)
    tiny_db = build_db(TINY_BASE, magnitude=0.0002, noise=0.00002, seed=1)
    return {
        ("large", "big"): first_detection_time(large_config(), big_db) - inject_time,
        ("small", "big"): first_detection_time(
            small_config(), build_db(BASE, 0.09, 0.01, seed=0)
        )
        - inject_time,
        ("large", "tiny"): first_detection_time(large_config(), tiny_db) - inject_time,
        ("small", "tiny"): first_detection_time(
            small_config(), build_db(TINY_BASE, 0.0002, 0.00002, seed=1)
        )
        - inject_time,
    }


def test_large_config_detects_big_fast(latencies):
    assert latencies[("large", "big")] < float("inf")
    assert latencies[("large", "big")] <= latencies[("small", "big")]


def test_only_small_config_catches_tiny(latencies):
    assert latencies[("large", "tiny")] == float("inf")
    assert latencies[("small", "tiny")] < float("inf")


def test_latency_report(latencies):
    def fmt(value: float) -> str:
        return "never" if value == float("inf") else f"{value / 60:.0f} min"

    emit(
        "Detection latency — the Table 1 dual-config tradeoff",
        [
            f"{'config':8s} {'big 9% regression':>20s} {'tiny 0.02% regression':>24s}",
            f"{'large':8s} {fmt(latencies[('large', 'big')]):>20s} "
            f"{fmt(latencies[('large', 'tiny')]):>24s}",
            f"{'small':8s} {fmt(latencies[('small', 'big')]):>20s} "
            f"{fmt(latencies[('small', 'tiny')]):>24s}",
            "paper: the large config exists for speed, the small one for sensitivity",
        ],
    )


def test_latency_benchmark(benchmark):
    db = build_db(BASE, magnitude=0.09, noise=0.01, seed=2)
    latency = benchmark.pedantic(
        first_detection_time, args=(large_config(), db), rounds=1, iterations=1
    )
    assert latency < float("inf")
