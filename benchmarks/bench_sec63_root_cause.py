"""§6.3 — root-cause analysis accuracy.

For each trial, a fleet-simulated service regresses in one subroutine
because of one guilty change, amid a log of decoy changes deployed in
the same window.  FBDetect must place the guilty change in its top-3
candidates.  The paper's raw success rate is 71/75 = 95% *when FBDetect
suggests candidates*, with an overall true failure rate of ~22% after
accounting for cases with no identifiable single cause.
"""

import numpy as np
import pytest

from _harness import (
    ANALYSIS_POINTS,
    EXTENDED_POINTS,
    HISTORIC_POINTS,
    POINT_INTERVAL,
    bench_config,
    emit,
)
from repro import FBDetect
from repro.fleet import ChangeEffect, ChangeLog, CodeChange, FleetSimulator, ServiceSpec
from repro.fleet.subroutine import build_random_call_graph

N_TRIALS = 12
N_DECOYS = 6
N_POINTS = HISTORIC_POINTS + ANALYSIS_POINTS + EXTENDED_POINTS
CHANGE_TIME = (HISTORIC_POINTS + 50) * POINT_INTERVAL

_TITLES = (
    "tune cache eviction in {sub}",
    "rewrite inner loop of {sub}",
    "adjust batching for {sub}",
    "refactor error handling around {sub}",
    "bump protocol version used by {sub}",
)


def run_trial(seed: int):
    rng = np.random.default_rng(seed)
    graph = build_random_call_graph(30, rng, n_classes=6)
    subroutines = [n for n in graph.names() if n != "_start"]

    guilty_sub = subroutines[int(rng.integers(0, len(subroutines)))]
    changes = [
        CodeChange(
            f"guilty-{seed}",
            deploy_time=CHANGE_TIME,
            title=_TITLES[seed % len(_TITLES)].format(sub=guilty_sub),
            summary=f"changes the hot path of {guilty_sub}",
            effects=(ChangeEffect(guilty_sub, 1.4),),
        )
    ]
    for d in range(N_DECOYS):
        decoy_sub = subroutines[int(rng.integers(0, len(subroutines)))]
        changes.append(
            CodeChange(
                f"decoy-{seed}-{d}",
                deploy_time=CHANGE_TIME - (d + 1) * 1800.0,
                title=_TITLES[d % len(_TITLES)].format(sub=decoy_sub),
                summary=f"no-op maintenance around {decoy_sub}",
            )
        )
    log = ChangeLog(changes)

    spec = ServiceSpec(
        name="svc",
        call_graph=graph,
        n_servers=30,
        effective_samples=2_000_000,
        samples_per_interval=300,
    )
    simulation = FleetSimulator(spec, change_log=log, interval=POINT_INTERVAL, seed=seed).run(
        N_POINTS
    )
    detector = FBDetect(
        bench_config(threshold=0.001),
        change_log=log,
        samples=simulation.collector.sample_history,
        series_filter={"metric": "gcpu"},
    )
    result = detector.run(simulation.database, now=simulation.end_time)

    suggested = False
    hit = False
    for regression in result.reported:
        if regression.root_cause_candidates:
            suggested = True
            top3 = [c.change_id for c in regression.root_cause_candidates[:3]]
            if f"guilty-{seed}" in top3:
                hit = True
    return bool(result.reported), suggested, hit


@pytest.fixture(scope="module")
def trials():
    return [run_trial(seed) for seed in range(N_TRIALS)]


def test_sec63_top3_accuracy(trials):
    detected = sum(1 for reported, _, _ in trials if reported)
    suggested = sum(1 for _, s, _ in trials if s)
    hits = sum(1 for _, _, h in trials if h)

    assert detected >= 0.8 * N_TRIALS, "regressions must be detected first"
    assert suggested >= 0.7 * detected, "candidates should usually be suggested"
    accuracy = hits / max(1, suggested)
    # Paper: 71/75 = 95% of suggestions had the true cause in the top 3.
    assert accuracy >= 0.8

    emit(
        "§6.3 — root-cause analysis",
        [
            f"trials: {N_TRIALS} (1 guilty change + {N_DECOYS} decoys each)",
            f"regression detected: {detected}/{N_TRIALS}",
            f"root cause suggested: {suggested}/{detected}",
            f"guilty change in top-3: {hits}/{suggested} = {accuracy:.2f}",
            "paper: 71/75 = 0.95 of suggested root causes confirmed correct",
        ],
    )


def test_sec63_trial_benchmark(benchmark):
    reported, _, _ = benchmark.pedantic(run_trial, args=(99,), rounds=1, iterations=1)
    assert isinstance(reported, bool)
