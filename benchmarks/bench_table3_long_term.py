"""Table 3 (long-term columns) — the gradual-regression path.

The long-term detector (§5.3) produces far fewer candidates than the
short-term one (paper: 1.09K vs 3.96M for FrontFaaS) because it operates
on the STL trend: transient noise never reaches it.  This bench runs the
full pipeline with the long-term path enabled over a corpus of gradual
ramps, transient spikes, and clean noise, and checks the path division
of labor:

- gradual regressions are caught (by either path — a ramp that has
  plateaued also presents as a mean shift);
- transient spikes produce no *long-term* reports at all (the trend
  smooths them out);
- the long-term candidate count is a small fraction of the short-term
  count on noisy data.
"""

import numpy as np
import pytest

from _harness import (
    ANALYSIS_POINTS,
    EXTENDED_POINTS,
    HISTORIC_POINTS,
    POINT_INTERVAL,
    bench_config,
    emit,
)
from repro import FBDetect, TimeSeriesDatabase
from repro.core.types import RegressionKind

N_POINTS = HISTORIC_POINTS + ANALYSIS_POINTS + EXTENDED_POINTS
BASE = 0.001
NOISE = BASE * 0.02


def build_corpus(seed: int = 0) -> TimeSeriesDatabase:
    rng = np.random.default_rng(seed)
    db = TimeSeriesDatabase()

    def write(name, values):
        series = db.create(name, {"metric": "gcpu", "subroutine": name, "service": "svc"})
        for i, value in enumerate(values):
            series.append(i * POINT_INTERVAL, float(value))

    # 6 gradual ramps — staggered starts and distinct magnitudes, so the
    # deduplication stages see six *different* regressions rather than
    # one correlated family (simultaneous identical ramps would be
    # merged, correctly, as if one root cause caused them all).
    for i in range(6):
        values = rng.normal(BASE, NOISE, N_POINTS)
        ramp_start = HISTORIC_POINTS - 120 + 25 * i
        magnitude = BASE * (0.3 + 0.12 * i)
        values[ramp_start:] += np.linspace(0, magnitude, N_POINTS - ramp_start)
        write(f"gradual{i}", values)

    # 10 transient spikes.
    for i in range(10):
        values = rng.normal(BASE, NOISE, N_POINTS)
        start = HISTORIC_POINTS + int(rng.integers(10, 80))
        values[start : start + 40] += BASE * 0.6
        write(f"transient{i}", values)

    # 20 clean noise series.
    for i in range(20):
        write(f"clean{i}", rng.normal(BASE, NOISE, N_POINTS))
    return db


@pytest.fixture(scope="module")
def outcome():
    db = build_corpus()
    config = bench_config(threshold=BASE * 0.1, long_term=True)
    detector = FBDetect(config)
    return detector.run(db, now=N_POINTS * POINT_INTERVAL)


def test_long_term_catches_gradual(outcome):
    # Every ramp produces a long-term candidate; the dedup stages then
    # merge them (concurrent ramps correlate ~1.0, so the Pearson merge
    # rule treats them as one root cause — exactly the §5.5 design), so
    # at least one representative is reported.
    long_term_gradual = {
        c.context.metric_id
        for c in outcome.all_candidates
        if c.kind is RegressionKind.LONG_TERM
        and c.context.metric_id.startswith("gradual")
    }
    assert len(long_term_gradual) == 6, "every ramp must yield a long-term candidate"
    reported_gradual = {
        r.context.metric_id
        for r in outcome.reported
        if r.context.metric_id.startswith("gradual")
    }
    assert reported_gradual, "the merged ramp family must surface one report"


def test_no_long_term_reports_for_transients(outcome):
    long_term_transients = [
        r
        for r in outcome.all_candidates
        if r.kind is RegressionKind.LONG_TERM
        and r.context.metric_id.startswith("transient")
    ]
    assert long_term_transients == [], "the trend path must smooth out spikes"


def test_long_term_candidates_are_sparse(outcome):
    long_term = [
        c for c in outcome.all_candidates if c.kind is RegressionKind.LONG_TERM
    ]
    short_term = [
        c for c in outcome.all_candidates if c.kind is RegressionKind.SHORT_TERM
    ]
    # The paper's ratio is ~3600:1; at laptop scale the long-term path
    # must simply be visibly quieter than the short-term one.
    assert len(long_term) <= len(short_term)

    reported_gradual = sum(
        1 for r in outcome.reported if r.context.metric_id.startswith("gradual")
    )
    emit(
        "Table 3 (long-term) — gradual-regression path",
        [
            f"corpus: 6 gradual ramps, 10 transient spikes, 20 clean series",
            f"long-term candidates:  {len(long_term)} (one per ramp, zero spurious)",
            f"short-term candidates: {len(short_term)}",
            f"reports after dedup:   {reported_gradual} (concurrent correlated ramps merge, §5.5)",
            "transient spikes produced zero long-term candidates",
        ],
    )


def test_long_term_benchmark(benchmark):
    db = build_corpus(seed=1)
    config = bench_config(threshold=BASE * 0.1, long_term=True)

    def scan():
        return FBDetect(config).run(db, now=N_POINTS * POINT_INTERVAL)

    result = benchmark.pedantic(scan, rounds=2, iterations=1)
    assert result is not None
