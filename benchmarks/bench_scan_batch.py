"""Batch-scan throughput: vectorized screens vs the seed per-series loop.

The columnar refactor's headline claim: a shard advance screens
thousands of series as a few ``(k, n)`` array ops
(:meth:`~repro.core.incremental.IncrementalScanCache.screen_batch`)
instead of the seed's per-series, per-point Python fold.  This bench
measures both paths over the same fleet — quiet series at the service's
own cadence (100 new points per advance = rerun interval / tick) — and
asserts:

- every per-series decision (scan / skip) and screen latch state is
  identical between the two paths;
- the batch path is at least **10x** faster at 10k series (the CI gate
  re-measures a reduced fleet via ``check_bench_regression.py``).

The seed path here is a faithful reimplementation of the pre-refactor
hot loop: list-backed tail reads converted per scan, and Page's CUSUM
advanced one float at a time per series.

Usage::

    PYTHONPATH=src python -m pytest -q -s benchmarks/bench_scan_batch.py
    PYTHONPATH=src python benchmarks/bench_scan_batch.py [--series 10000]
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from _harness import emit

from repro.core.incremental import IncrementalScanCache
from repro.tsdb import TimeSeries

N_SERIES = 10_000
INTERVAL = 60.0
HIST_POINTS = 200       # anchored history per series
ANALYSIS_POINTS = 100   # reference window for the screen anchor
NEW_POINTS = 100        # points per advance = rerun interval / tick
MAX_STALENESS = 12_000.0
SPEEDUP_FLOOR = 10.0
REPS = 4                # best-of-N: skims first-touch page-fault noise


class SeedScreen:
    """The seed's scalar Page CUSUM (pre-vectorization), one float at a time."""

    __slots__ = ("mean", "std", "drift", "threshold", "pos", "neg", "fired", "n")

    def __init__(self, state, drift, threshold):
        self.mean = state["mean"]
        self.std = state["std"]
        self.drift = drift
        self.threshold = threshold
        self.pos = state["pos"]
        self.neg = state["neg"]
        self.fired = state["fired"]
        self.n = state["n"]

    def update(self, value):
        self.n += 1
        if self.fired:
            return True
        if self.std <= 0.0:
            if value != self.mean:
                self.fired = True
            return self.fired
        z = (value - self.mean) / self.std
        self.pos = max(0.0, self.pos + z - self.drift)
        self.neg = max(0.0, self.neg - z - self.drift)
        if self.pos >= self.threshold or self.neg >= self.threshold:
            self.fired = True
        return self.fired

    def update_many(self, values):
        for value in np.asarray(values, dtype=float):
            if self.update(float(value)):
                break
        return self.fired


class SeedAnchor:
    """The seed's per-series cache entry over list-backed storage."""

    __slots__ = ("values", "anchor_len", "full_scan_at", "had_candidate", "screen")

    def __init__(self, values, anchor_len, full_scan_at, had_candidate, screen):
        self.values = values              # plain Python list (seed storage)
        self.anchor_len = anchor_len
        self.full_scan_at = full_scan_at
        self.had_candidate = had_candidate
        self.screen = screen

    def should_scan(self, now, max_staleness):
        # Seed tail read: list slice -> fresh numpy array, every scan.
        new_values = np.asarray(self.values[self.anchor_len:], dtype=float)
        if new_values.size:
            self.screen.update_many(new_values)
            self.anchor_len = len(self.values)
        if (
            self.had_candidate
            or self.screen.fired
            or (now - self.full_scan_at) >= max_staleness
        ):
            return True
        return False


def build_fleet(n_series, rng=None):
    """Anchored quiet fleet + the seed path's mirrored state.

    Returns ``(cache, series_list, seed_anchors, now)`` where the cache
    holds an anchor per series, each series has ``NEW_POINTS`` unscreened
    points, and ``seed_anchors`` mirrors the exact same screen state over
    list-backed storage for the reference measurement.
    """
    rng = rng or np.random.default_rng(42)
    values = rng.normal(0.001, 0.00002, (n_series, HIST_POINTS + NEW_POINTS))
    anchor_time = HIST_POINTS * INTERVAL
    now = (HIST_POINTS + NEW_POINTS) * INTERVAL
    timestamps = np.arange(HIST_POINTS + NEW_POINTS, dtype=float) * INTERVAL

    cache = IncrementalScanCache(max_staleness=MAX_STALENESS)
    series_list = []
    seed_anchors = []
    for i in range(n_series):
        series = TimeSeries(name=f"fleet.sub{i}.gcpu")
        series.ingest_many(list(zip(timestamps[:HIST_POINTS], values[i, :HIST_POINTS])))
        cache.record_full_scan(
            series, anchor_time, values[i, HIST_POINTS - ANALYSIS_POINTS:HIST_POINTS],
            had_candidate=False,
        )
        series.ingest_many(list(zip(timestamps[HIST_POINTS:], values[i, HIST_POINTS:])))
        series_list.append(series)
        seed_anchors.append(
            SeedAnchor(
                values=values[i].tolist(),
                anchor_len=HIST_POINTS,
                full_scan_at=anchor_time,
                had_candidate=False,
                screen=SeedScreen(
                    cache.screen_state(series.name), cache.drift, cache.threshold
                ),
            )
        )
    return cache, series_list, seed_anchors, now


def measure_batch_scan(n_series=N_SERIES):
    """Time seed vs batch screening over ``n_series``; returns a payload.

    Both paths see identical data and identical starting screen state;
    decisions and latch flags are asserted equal before any number is
    reported, so the speedup can never come from diverging behavior.
    Each path is timed ``REPS`` times (screening mutates screen state,
    so later reps restore a pristine snapshot first) and the best rep
    counts — the usual guard against first-touch page faults and
    allocator warm-up landing on one side of the comparison.
    """
    cache, series_list, seed_anchors, now = build_fleet(n_series)
    points = n_series * NEW_POINTS
    # Cheap state restore between reps: the cache snapshots through its
    # pickle protocol (compact column copies, no serialization), and the
    # seed anchors reset to the fresh-anchor state build_fleet left them
    # in (zero evidence, anchored at HIST_POINTS).
    cache_snapshot = cache.__getstate__()

    def reset_seed():
        for anchor in seed_anchors:
            anchor.anchor_len = HIST_POINTS
            screen = anchor.screen
            screen.pos = 0.0
            screen.neg = 0.0
            screen.fired = False
            screen.n = 0

    seed_elapsed = float("inf")
    batch_elapsed = float("inf")
    speedup = 0.0
    # Each rep times both paths back to back and contributes one ratio,
    # so a machine-wide slowdown lands on both sides of that ratio
    # instead of skewing one of them; the best matched-conditions rep
    # counts.  Screening mutates state, so each rep starts from a
    # restored snapshot.
    for rep in range(REPS):
        if rep:
            reset_seed()
        started = time.perf_counter()
        seed_decisions = [
            anchor.should_scan(now, MAX_STALENESS) for anchor in seed_anchors
        ]
        rep_seed = time.perf_counter() - started
        seed_elapsed = min(seed_elapsed, rep_seed)

        if rep:
            cache.__setstate__(cache_snapshot)
        started = time.perf_counter()
        batch_decisions = cache.screen_batch(series_list, now)
        rep_batch = time.perf_counter() - started
        batch_elapsed = min(batch_elapsed, rep_batch)
        speedup = max(speedup, rep_seed / rep_batch)

    for series, anchor, seed_decision in zip(series_list, seed_anchors, seed_decisions):
        assert batch_decisions[series.name] == seed_decision, series.name
        assert cache.screen_state(series.name)["fired"] == anchor.screen.fired
    return {
        "n_series": n_series,
        "new_points": NEW_POINTS,
        "seed_points_per_s": points / seed_elapsed,
        "batch_points_per_s": points / batch_elapsed,
        "speedup": speedup,
        "scans_forced": sum(seed_decisions),
    }


def test_batch_screen_speedup_at_10k_series(capsys):
    result = measure_batch_scan(N_SERIES)
    rows = [
        "path   series  new/series  points/s     elapsed-relative",
        (
            f"seed   {result['n_series']:6d}  {result['new_points']:10d}  "
            f"{result['seed_points_per_s'] / 1e6:9.2f}M  1.0x"
        ),
        (
            f"batch  {result['n_series']:6d}  {result['new_points']:10d}  "
            f"{result['batch_points_per_s'] / 1e6:9.2f}M  "
            f"{result['speedup']:.1f}x"
        ),
        f"scans forced by screens: {result['scans_forced']}",
    ]
    emit("Batch screening vs seed per-series loop (quiet fleet)", rows)
    assert result["speedup"] >= SPEEDUP_FLOOR


def test_batch_matches_sequential_on_shifted_fleet():
    """Decision equality must also hold when screens actually fire."""
    rng = np.random.default_rng(7)
    cache, series_list, seed_anchors, now = build_fleet(512, rng=rng)
    # Shift a deterministic subset hard enough to latch their screens.
    for i in range(0, 512, 8):
        series = series_list[i]
        tail = np.asarray(series.values)
        shifted = tail[-NEW_POINTS:] + 0.0005
        base = len(series) - NEW_POINTS
        for offset, value in enumerate(shifted):
            series._values.set(base + offset, float(value))
            seed_anchors[i].values[base + offset] = float(value)
    batch_decisions = cache.screen_batch(series_list, now)
    fired = 0
    for series, anchor in zip(series_list, seed_anchors):
        seed_decision = anchor.should_scan(now, MAX_STALENESS)
        assert batch_decisions[series.name] == seed_decision, series.name
        fired += int(cache.screen_state(series.name)["fired"])
    assert fired >= 512 // 8  # every shifted series latched


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--series", type=int, default=N_SERIES)
    args = parser.parse_args(argv)
    result = measure_batch_scan(args.series)
    print(
        f"batch scan: {result['n_series']} series x {result['new_points']} pts  "
        f"seed {result['seed_points_per_s'] / 1e6:.2f}M pts/s  "
        f"batch {result['batch_points_per_s'] / 1e6:.2f}M pts/s  "
        f"speedup {result['speedup']:.1f}x"
    )
    if result["speedup"] < SPEEDUP_FLOOR:
        print(f"FAIL: speedup below {SPEEDUP_FLOOR:.0f}x floor")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
