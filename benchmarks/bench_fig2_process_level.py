"""Figure 2 — process-level averaging across m servers.

The average of m per-server CPU series: noise shrinks with m (Law of
Large Numbers), and the injected 0.005%-scale regression only becomes
detectable at m = 50,000,000 servers — impractical, which is the
figure's point.
"""

import numpy as np
import pytest

from _harness import emit
from repro.fleet.scenarios import process_level_average


M_VALUES = (500_000, 5_000_000, 50_000_000)
N_POINTS = 500


def analyze(m: int, seed: int = 0):
    series = process_level_average(m, n_points=N_POINTS, seed=seed)
    noise = float(series[: N_POINTS // 2].std())
    shift = float(series[N_POINTS // 2 :].mean() - series[: N_POINTS // 2].mean())
    # The figures' criterion is *visual* visibility: the step must rise
    # clear of the per-point noise band (>= 2 sigma).
    visible = shift > 2 * noise
    return noise, shift, visible


@pytest.fixture(scope="module")
def sweep():
    return {m: analyze(m) for m in M_VALUES}


def test_fig2_noise_shrinks_with_m(sweep):
    noises = [sweep[m][0] for m in M_VALUES]
    assert noises[0] > noises[1] > noises[2]
    # LLN: noise ~ 1/sqrt(m); a decade of m is ~3.2x noise.
    assert noises[0] / noises[1] == pytest.approx(np.sqrt(10), rel=0.3)


def test_fig2_detectable_only_at_huge_m(sweep):
    # At 500k servers the 0.005% shift is in the noise; at 50M it is
    # statistically significant.
    assert not sweep[500_000][2]
    assert sweep[50_000_000][2]

    rows = [
        f"m={m:>11,d}  noise(std)={sweep[m][0]:.2e}  measured shift={sweep[m][1]:+.2e}  "
        f"regression {'VISIBLE' if sweep[m][2] else 'buried in noise'}"
        for m in M_VALUES
    ]
    rows.append("paper: visible only at m=50,000,000 — impractical at process level")
    emit("Figure 2 — process-level averaging", rows)


def test_fig2_generation_benchmark(benchmark):
    series = benchmark(process_level_average, 5_000_000, N_POINTS)
    assert series.size == N_POINTS
