"""Shared labelled-corpus construction for detection benchmarks.

``bench_fig8_egads.py`` (FBDetect vs EGADS tradeoff) and
``bench_detector_scorecard.py`` (multi-detector registry scorecard)
score the same kind of corpus: true step regressions sampled from the
detectable magnitude range, plus the messy-but-benign negative families
production series carry (long transients, seasonality, autocorrelated
wobble, recovering drift).  Building it in one place keeps the two
benches comparable — a detector's scorecard row and the Figure 8 point
are measured against the identical distribution — and keeps the RNG
stream stable: the draw order here reproduces the original fig8 fixture
byte for byte for the default arguments.
"""

from typing import List, Optional, Tuple

import numpy as np

from repro.workloads import LabeledWindow, WindowKind, generate_labeled_window

__all__ = ["BASE", "fig8_corpus"]

BASE = 0.001


def fig8_corpus(
    seed: int = 88,
    n_positive: int = 25,
    n_clean: int = 40,
    n_transient: int = 40,
    n_seasonal: int = 15,
    n_wobble: int = 45,
    n_drift: int = 15,
    noise_fraction: float = 0.02,
    relative_range: Tuple[float, float] = (0.05, 2.0),
    base: Optional[float] = None,
) -> List[LabeledWindow]:
    """The Figure 8 labelled corpus (positives first, then negatives).

    Mirrors the paper's test set construction: the 107 positives were
    series where FBDetect *reported* regressions, i.e. magnitudes above
    its detectability floor — so positives here sample the detectable
    range (5%-200% of baseline by default, log-uniform).  Negatives
    include the benign structure that forces window-level detectors
    into the FP/FN tradeoff.

    Args:
        seed: Corpus RNG seed.
        n_positive: True step regressions.
        n_clean: Noise-only negatives.
        n_transient: Recovering dip/spike negatives.
        n_seasonal: Periodic negatives.
        n_wobble: AR(1) level-noise negatives.
        n_drift: Slow benign-excursion negatives.
        noise_fraction: Noise std as a fraction of the baseline.
        relative_range: (low, high) bounds of the log-uniform relative
            magnitude sweep for positives.
        base: Baseline mean; defaults to :data:`BASE`.

    Returns:
        The labelled windows, positives first then the negative
        families in a fixed order (not shuffled — per-family scoring
        needs the label, and scoring order does not matter).
    """
    level = BASE if base is None else base
    low, high = relative_range
    rng = np.random.default_rng(seed)
    windows: List[LabeledWindow] = []
    for _ in range(n_positive):
        relative = float(np.exp(rng.uniform(np.log(low), np.log(high))))
        windows.append(
            generate_labeled_window(
                WindowKind.REGRESSION, rng, noise_fraction=noise_fraction,
                base=level, magnitude=level * relative,
            )
        )
    composition = (
        (WindowKind.CLEAN, n_clean),
        (WindowKind.TRANSIENT, n_transient),
        (WindowKind.SEASONAL, n_seasonal),
        (WindowKind.WOBBLE, n_wobble),
        (WindowKind.DRIFT, n_drift),
    )
    for kind, count in composition:
        for _ in range(count):
            windows.append(
                generate_labeled_window(
                    kind, rng, noise_fraction=noise_fraction, base=level,
                )
            )
    return windows
