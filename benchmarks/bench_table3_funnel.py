"""Table 3 — the filtering funnel.

A synthetic "month" of one service: ~100 subroutine gCPU series full of
transient perturbations and wobble, one seasonal family, one correlated
true-regression family (six upstream callers of the same regressed
subroutine), and one cost-shift refactor pair.  FBDetect scans
periodically; the per-stage survivor counts reproduce Table 3's shape:

- change-point detection fires constantly (noise + transients),
- the went-away detector removes the large majority,
- threshold/seasonality remove more,
- SameRegressionMerger collapses overlapping windows,
- SOMDedup collapses the caller family,
- cost-shift analysis removes the refactor illusion,
- PairwiseDedup leaves a handful of reports.
"""

import numpy as np
import pytest

from _harness import (
    ANALYSIS_POINTS,
    EXTENDED_POINTS,
    HISTORIC_POINTS,
    POINT_INTERVAL,
    bench_config,
    emit,
)
from repro import FBDetect, TimeSeriesDatabase
from repro.core.pipeline import STAGES
from repro.reporting import format_funnel_table

N_POINTS = 1500
N_NOISE_SERIES = 80
WINDOW_POINTS = HISTORIC_POINTS + ANALYSIS_POINTS + EXTENDED_POINTS
BASE = 0.001
NOISE = BASE * 0.02


def build_month(seed: int = 0) -> TimeSeriesDatabase:
    rng = np.random.default_rng(seed)
    db = TimeSeriesDatabase()

    def write(name, values, subroutine):
        series = db.create(
            name, {"metric": "gcpu", "service": "svc", "subroutine": subroutine}
        )
        for i, value in enumerate(values):
            series.append(i * POINT_INTERVAL, float(value))

    # Noisy production series with random transients and wobble.
    for s in range(N_NOISE_SERIES):
        base = BASE * float(rng.uniform(0.5, 2.0))
        values = rng.normal(base, base * 0.02, N_POINTS)
        for _ in range(int(rng.integers(2, 6))):
            start = int(rng.integers(100, N_POINTS - 150))
            length = int(rng.integers(10, 120))
            depth = base * float(rng.uniform(0.2, 1.0))
            sign = 1.0 if rng.random() < 0.5 else -1.0
            values[start : start + length] += sign * depth
        write(f"svc.ns::C{s % 10}::noisy{s}.gcpu", values, f"ns::C{s % 10}::noisy{s}")

    # Seasonal series (diurnal-style cycles).
    for s in range(8):
        t = np.arange(N_POINTS)
        period = 180 + 20 * s
        values = BASE + 0.3 * BASE * np.sin(2 * np.pi * t / period)
        values += rng.normal(0, NOISE, N_POINTS)
        write(f"svc.ns::S::seasonal{s}.gcpu", values, f"ns::S::seasonal{s}")

    # A true regression family: one callee regresses at t=1000; its six
    # callers' gCPUs move in lockstep (same root cause).
    shared = rng.normal(0, NOISE, N_POINTS)
    for s in range(6):
        values = BASE * 2 + shared + rng.normal(0, NOISE / 10, N_POINTS)
        values[1000:] += BASE * 0.4
        write(f"svc.ns::F::caller{s}.gcpu", np.maximum(values, 0), f"ns::F::caller{s}")

    # A cost-shift refactor at t=1050: target jumps, sibling drops.
    target = rng.normal(BASE, NOISE, N_POINTS)
    target[1050:] += BASE * 0.5
    sibling = rng.normal(BASE * 1.5, NOISE, N_POINTS)
    sibling[1050:] -= BASE * 0.5
    write("svc.ns::R::target.gcpu", np.maximum(target, 0), "ns::R::target")
    write("svc.ns::R::sibling.gcpu", np.maximum(sibling, 0), "ns::R::sibling")
    return db


@pytest.fixture(scope="module")
def month_run():
    db = build_month()
    config = bench_config(threshold=BASE * 0.1)
    detector = FBDetect(config, series_filter={"metric": "gcpu"})
    results = detector.run_periodic(
        db,
        start=WINDOW_POINTS * POINT_INTERVAL,
        end=N_POINTS * POINT_INTERVAL,
    )
    funnel = results[0].funnel
    for result in results[1:]:
        funnel.merge(result.funnel)
    reported = [r for result in results for r in result.reported]
    return funnel, reported


def test_table3_went_away_filters_majority(month_run):
    funnel, _ = month_run
    detected = funnel.counts["change_points"]
    after_went_away = funnel.counts["went_away"]
    assert detected >= 100, "the month must generate plenty of change points"
    # Paper: the went-away detector is the most effective single filter,
    # removing the overwhelming majority of detected change points.
    assert after_went_away <= 0.35 * detected


def test_table3_funnel_monotone(month_run):
    funnel, _ = month_run
    # Survivors never increase along the pipeline (long-term detection is
    # disabled in this bench so the short-term stage order is exact).
    ordered = [funnel.counts[stage] for stage in STAGES]
    for earlier, later in zip(ordered, ordered[1:]):
        assert later <= earlier


def test_table3_overall_reduction_and_report(month_run):
    funnel, reported = month_run
    detected = funnel.counts["change_points"]
    final = max(1, len(reported))
    reduction = detected / final
    # Paper reaches 3-4 orders of magnitude at production scale; the
    # laptop-scale month must still reduce by well over an order.
    assert reduction >= 20

    assert any("caller" in r.context.metric_id for r in reported), (
        "the true regression family must be reported"
    )
    assert not any("target" in r.context.metric_id for r in reported), (
        "the cost-shift refactor must not be reported"
    )

    lines = format_funnel_table({"synthetic month": funnel}).splitlines()
    lines.append(f"final reports: {len(reported)} (total reduction 1/{reduction:.0f})")
    emit("Table 3 — filtering funnel", lines)


def test_table3_scan_benchmark(benchmark):
    db = build_month(seed=1)
    config = bench_config(threshold=BASE * 0.1)

    def one_scan():
        detector = FBDetect(config, series_filter={"metric": "gcpu"})
        return detector.run(db, now=N_POINTS * POINT_INTERVAL)

    result = benchmark.pedantic(one_scan, rounds=3, iterations=1)
    assert result.funnel.counts["change_points"] >= 1
