"""Streaming-service ingest throughput and scan latency across shards.

FBDetect's deployment (§5.1) shards the series space so each scanner
works on a bounded slice.  This bench reproduces the two laptop-scale
consequences the service is built around:

- **Ingest throughput under bursty load.**  Every shard owns a bounded
  queue; when a burst exceeds one queue's capacity, extra shards are the
  only thing that turns offered samples into durably ingested ones.
  Throughput here is *goodput* — samples accepted and flushed into a
  TSDB per second (REJECT policy, so refused samples are explicit).
  The acceptance bar: multi-shard goodput >= 2x single-shard.
- **Scan latency.**  Each shard's detector scans only the shard-local
  series, so per-scan latency drops as the series space spreads across
  shards (while total scan work stays roughly constant).
"""

import time

import numpy as np

from _harness import emit
from repro.config import DetectionConfig
from repro.service import BackpressurePolicy, Sample, StreamingDetectionService
from repro.tsdb import WindowSpec

N_SERIES = 64
INTERVAL = 60.0
SERIES = [f"svc.sub{i}.gcpu" for i in range(N_SERIES)]

# Burst phase: each burst offers far more than one shard's queue holds.
CAPACITY = 64          # per-shard queue bound
TICKS_PER_BURST = 16   # 16 ticks x 64 series = 1024 samples per burst
N_BURSTS = 40

# Scan phase: enough history for one full detection window per series.
HIST_TICKS = 900       # = windows.total / INTERVAL


def burst_stream():
    bursts = []
    tick = 0
    for _ in range(N_BURSTS):
        burst = []
        for _ in range(TICKS_PER_BURST):
            timestamp = tick * INTERVAL
            burst.extend(Sample(name, timestamp, 0.001) for name in SERIES)
            tick += 1
        bursts.append(burst)
    return bursts


def run_burst_ingest(n_shards, bursts):
    service = StreamingDetectionService(
        n_shards=n_shards,
        queue_capacity=CAPACITY,
        backpressure=BackpressurePolicy.REJECT,
        batch_size=CAPACITY,
    )
    started = time.perf_counter()
    for burst in bursts:
        for sample in burst:
            service.ingest_sample(sample)
        service.flush()
    elapsed = time.perf_counter() - started
    return service.stats(), elapsed


def test_multi_shard_throughput_scales(capsys):
    bursts = burst_stream()
    rows = ["shards  offered  accepted  rejected  goodput(kS/s)  speedup"]
    throughput = {}
    for n_shards in (1, 4, 8):
        stats, elapsed = run_burst_ingest(n_shards, bursts)
        goodput = stats.accepted / elapsed
        throughput[n_shards] = goodput
        rows.append(
            f"{n_shards:6d}  {stats.offered:7d}  {stats.accepted:8d}  "
            f"{stats.rejected:8d}  {goodput / 1e3:13.1f}  "
            f"{goodput / throughput[1]:6.1f}x"
        )
        assert stats.flushed == stats.accepted  # REJECT loses nothing accepted

    emit("Service ingest throughput (bursty load, bounded shard queues)", rows)
    assert throughput[4] >= 2.0 * throughput[1]
    assert throughput[8] >= 2.0 * throughput[1]


def scan_config():
    return DetectionConfig(
        name="bench-service",
        threshold=0.00005,
        rerun_interval=6_000.0,
        windows=WindowSpec(historic=36_000.0, analysis=12_000.0, extended=6_000.0),
        long_term=False,
    )


def test_scan_latency_drops_per_shard(capsys):
    rng = np.random.default_rng(5)
    values = {name: rng.normal(0.001, 0.00002, HIST_TICKS) for name in SERIES}

    rows = ["shards  scans  p50(ms)  p99(ms)  mean(ms)"]
    mean_latency = {}
    for n_shards in (1, 4, 8):
        service = StreamingDetectionService(
            n_shards=n_shards,
            queue_capacity=1 << 20,  # uncapped: latency, not backpressure
            backpressure=BackpressurePolicy.BLOCK,
            batch_size=4_096,
        )
        service.register_monitor("gcpu", scan_config(), series_filter={"metric": "gcpu"})
        for name in SERIES:
            service.ingest_many(
                [
                    Sample(name, tick * INTERVAL, float(values[name][tick]),
                           {"metric": "gcpu"})
                    for tick in range(HIST_TICKS)
                ]
            )
        service.advance_to(HIST_TICKS * INTERVAL)

        histogram = service.metrics.histogram("scheduler.scan_seconds")
        mean_latency[n_shards] = histogram.mean
        rows.append(
            f"{n_shards:6d}  {histogram.count:5d}  "
            f"{histogram.quantile(0.5) * 1e3:7.2f}  "
            f"{histogram.quantile(0.99) * 1e3:7.2f}  "
            f"{histogram.mean * 1e3:8.2f}"
        )

    emit("Service scan latency (per-scan work shrinks with the shard slice)", rows)
    # A shard scans only its slice of the series space.
    assert mean_latency[8] <= mean_latency[1]
