"""Streaming-service ingest throughput and scan latency across shards.

FBDetect's deployment (§5.1) shards the series space so each scanner
works on a bounded slice.  This bench reproduces the two laptop-scale
consequences the service is built around:

- **Ingest throughput under bursty load.**  Every shard owns a bounded
  queue; when a burst exceeds one queue's capacity, extra shards are the
  only thing that turns offered samples into durably ingested ones.
  Throughput here is *goodput* — samples accepted and flushed into a
  TSDB per second (REJECT policy, so refused samples are explicit).
  The acceptance bar: multi-shard goodput >= 2x single-shard.
- **Scan latency.**  Each shard's detector scans only the shard-local
  series, so per-scan latency drops as the series space spreads across
  shards (while total scan work stays roughly constant).
- **Parallel scan goodput.**  With ``workers > 1`` shard advances run in
  worker processes; on multi-core hardware the scan-heavy phase should
  scale (the >= 2.5x @ 4 workers bar is asserted only when the machine
  actually has >= 4 CPUs — correctness is asserted everywhere).
- **Incremental re-scan cost.**  Quiet series re-scanned on the rerun
  cadence should hit the incremental cache and skip the O(window) scan.
- **Admission overhead.**  Data-quality validators run on every offer;
  clean in-order samples must ride the two-comparison fast path, so
  goodput with admission on stays within a few percent of admission off.
"""

import os
import sys
import time
from dataclasses import replace

import numpy as np

from _harness import emit
from repro.config import DetectionConfig
from repro.quality import QualityConfig
from repro.service import BackpressurePolicy, Sample, StreamingDetectionService
from repro.tsdb import WindowSpec

N_SERIES = 64
INTERVAL = 60.0
SERIES = [f"svc.sub{i}.gcpu" for i in range(N_SERIES)]

# Burst phase: each burst offers far more than one shard's queue holds.
CAPACITY = 64          # per-shard queue bound
TICKS_PER_BURST = 16   # 16 ticks x 64 series = 1024 samples per burst
N_BURSTS = 40

# Scan phase: enough history for one full detection window per series.
HIST_TICKS = 900       # = windows.total / INTERVAL


def burst_stream():
    bursts = []
    tick = 0
    for _ in range(N_BURSTS):
        burst = []
        for _ in range(TICKS_PER_BURST):
            timestamp = tick * INTERVAL
            burst.extend(Sample(name, timestamp, 0.001) for name in SERIES)
            tick += 1
        bursts.append(burst)
    return bursts


def run_burst_ingest(n_shards, bursts, quality="on"):
    service = StreamingDetectionService(
        n_shards=n_shards,
        queue_capacity=CAPACITY,
        backpressure=BackpressurePolicy.REJECT,
        batch_size=CAPACITY,
        quality=QualityConfig() if quality == "on" else None,
    )
    started = time.perf_counter()
    for burst in bursts:
        for sample in burst:
            service.ingest_sample(sample)
        service.flush()
    elapsed = time.perf_counter() - started
    return service.stats(), elapsed


def test_multi_shard_throughput_scales(capsys):
    bursts = burst_stream()
    rows = ["shards  offered  accepted  rejected  goodput(kS/s)  speedup"]
    throughput = {}
    for n_shards in (1, 4, 8):
        stats, elapsed = run_burst_ingest(n_shards, bursts)
        goodput = stats.accepted / elapsed
        throughput[n_shards] = goodput
        rows.append(
            f"{n_shards:6d}  {stats.offered:7d}  {stats.accepted:8d}  "
            f"{stats.rejected:8d}  {goodput / 1e3:13.1f}  "
            f"{goodput / throughput[1]:6.1f}x"
        )
        assert stats.flushed == stats.accepted  # REJECT loses nothing accepted

    emit("Service ingest throughput (bursty load, bounded shard queues)", rows)
    assert throughput[4] >= 2.0 * throughput[1]
    assert throughput[8] >= 2.0 * throughput[1]


def test_admission_overhead_within_bounds(capsys):
    """Data-quality admission on the ingest hot path must stay cheap.

    Same burst workload with the validators on (the service default)
    and off (``quality=None``).  The stream is clean and in-order, so
    every sample takes the admission fast path — two comparisons — and
    goodput should stay within the <= 5% acceptance target (reported in
    the table).  The assert uses a loose 25% bound so scheduler jitter
    on busy CI machines never flakes the gate; the precise number is
    tracked by check_bench_regression.py history, not this assert.
    """
    bursts = burst_stream()
    run_burst_ingest(4, bursts)  # warm-up, untimed
    rows = ["mode       offered  accepted  goodput(kS/s)"]
    goodput = {}
    for mode in ("disabled", "validated"):
        best = 0.0
        for _ in range(3):  # best-of-3: goodput, not scheduler jitter
            stats, elapsed = run_burst_ingest(
                4, bursts, quality="on" if mode == "validated" else None
            )
            best = max(best, stats.accepted / elapsed)
            assert stats.flushed == stats.accepted
        goodput[mode] = best
        rows.append(
            f"{mode:9s}  {stats.offered:7d}  {stats.accepted:8d}  "
            f"{goodput[mode] / 1e3:13.1f}"
        )

    overhead = goodput["disabled"] / goodput["validated"] - 1.0
    rows.append(f"admission overhead: {overhead:+.1%} (target <= 5%)")
    emit("Data-quality admission overhead (clean samples, fast path)", rows)
    assert goodput["validated"] >= goodput["disabled"] / 1.25


def scan_config():
    return DetectionConfig(
        name="bench-service",
        threshold=0.00005,
        rerun_interval=6_000.0,
        windows=WindowSpec(historic=36_000.0, analysis=12_000.0, extended=6_000.0),
        long_term=False,
    )


def test_scan_latency_drops_per_shard(capsys):
    rng = np.random.default_rng(5)
    values = {name: rng.normal(0.001, 0.00002, HIST_TICKS) for name in SERIES}

    rows = ["shards  scans  p50(ms)  p99(ms)  mean(ms)"]
    mean_latency = {}
    for n_shards in (1, 4, 8):
        service = StreamingDetectionService(
            n_shards=n_shards,
            queue_capacity=1 << 20,  # uncapped: latency, not backpressure
            backpressure=BackpressurePolicy.BLOCK,
            batch_size=4_096,
        )
        service.register_monitor("gcpu", scan_config(), series_filter={"metric": "gcpu"})
        for name in SERIES:
            service.ingest_many(
                [
                    Sample(name, tick * INTERVAL, float(values[name][tick]),
                           {"metric": "gcpu"})
                    for tick in range(HIST_TICKS)
                ]
            )
        service.advance_to(HIST_TICKS * INTERVAL)

        histogram = service.metrics.histogram("scheduler.scan_seconds")
        mean_latency[n_shards] = histogram.mean
        rows.append(
            f"{n_shards:6d}  {histogram.count:5d}  "
            f"{histogram.quantile(0.5) * 1e3:7.2f}  "
            f"{histogram.quantile(0.99) * 1e3:7.2f}  "
            f"{histogram.mean * 1e3:8.2f}"
        )

    emit("Service scan latency (per-scan work shrinks with the shard slice)", rows)
    # A shard scans only its slice of the series space.
    assert mean_latency[8] <= mean_latency[1]


# -- parallel workers + incremental cache ---------------------------------

SCAN_ROUNDS = 4          # rerun-cadence advances after the warm-up scan
RERUN = 6_000.0          # matches scan_config().rerun_interval

# The parallel bench needs scan compute to dominate the fixed per-round
# costs (state pickling, IPC), so it scans a wider series space on a
# tight rerun cadence (several scheduler scans per advance, same state
# volume per round).
N_PAR_SERIES = 256
PAR_SERIES = [f"svc.sub{i}.gcpu" for i in range(N_PAR_SERIES)]
PAR_RERUN = 1_500.0


def par_scan_config():
    return replace(scan_config(), rerun_interval=PAR_RERUN)


def _scan_values(seed=7, series=PAR_SERIES):
    rng = np.random.default_rng(seed)
    return {name: rng.normal(0.001, 0.00002, HIST_TICKS) for name in series}


def _build_scan_service(workers, incremental, config=None, shadow=None):
    service = StreamingDetectionService(
        n_shards=8,
        workers=workers,
        queue_capacity=1 << 20,
        backpressure=BackpressurePolicy.BLOCK,
        batch_size=4_096,
    )
    service.register_monitor(
        "gcpu", config if config is not None else scan_config(),
        series_filter={"metric": "gcpu"},
        incremental=incremental,
        shadow=shadow,
    )
    return service


def run_parallel_scans(workers, values, incremental=False):
    """Ingest history once, then time ``SCAN_ROUNDS`` rerun advances.

    Returns ``(scans, elapsed, reports, hit_counters)`` where ``scans``
    counts scheduler scans across all rounds (the goodput numerator) and
    ``reports`` is the delivered report list (the cross-mode equivalence
    check).
    """
    service = _build_scan_service(workers, incremental, config=par_scan_config())
    for name, series_values in values.items():
        service.ingest_many(
            [
                Sample(name, tick * INTERVAL, float(series_values[tick]),
                       {"metric": "gcpu"})
                for tick in range(HIST_TICKS)
            ]
        )
    service.flush()  # untimed: the subject is scan goodput, not ingest
    reports = []
    started = time.perf_counter()
    for round_index in range(SCAN_ROUNDS):
        target = HIST_TICKS * INTERVAL + round_index * RERUN
        reports.extend(service.advance_to(target))
    elapsed = time.perf_counter() - started
    scans = service.metrics.histogram("scheduler.scan_seconds").count
    snapshot = service.metrics.snapshot()
    hits = snapshot["counters"].get("pipeline.incremental.hits", 0.0)
    misses = snapshot["counters"].get("pipeline.incremental.misses", 0.0)
    service.close()
    return scans, elapsed, reports, (hits, misses)


def test_parallel_workers_speedup(capsys):
    values = _scan_values()
    rows = ["workers  scans  elapsed(s)  goodput(scans/s)  speedup"]
    goodput = {}
    scans_by_workers = {}
    for workers in (1, 4):
        scans, elapsed, _, _ = run_parallel_scans(workers, values)
        goodput[workers] = scans / elapsed
        scans_by_workers[workers] = scans
        rows.append(
            f"{workers:7d}  {scans:5d}  {elapsed:10.2f}  "
            f"{goodput[workers]:16.1f}  {goodput[workers] / goodput[1]:6.1f}x"
        )
    emit("Service parallel scan goodput (process-pool shard advances)", rows)

    # Same scan schedule regardless of execution mode.
    assert scans_by_workers[4] == scans_by_workers[1]
    # The scaling bar is a statement about multi-core hardware (CI
    # runners); on fewer cores the parallel path can only prove
    # correctness, not speedup.
    if (os.cpu_count() or 1) >= 4:
        assert goodput[4] >= 2.5 * goodput[1]


def test_incremental_cache_cuts_rescan_cost(capsys):
    values = _scan_values(series=SERIES)
    rows = ["mode         scans  hits  elapsed(s)"]
    elapsed_by_mode = {}
    hit_rate = 0.0
    for incremental in (False, True):
        service = _build_scan_service(workers=1, incremental=incremental)
        for name, series_values in values.items():
            service.ingest_many(
                [
                    Sample(name, tick * INTERVAL, float(series_values[tick]),
                           {"metric": "gcpu"})
                    for tick in range(HIST_TICKS)
                ]
            )
        # Warm-up: the first scan anchors every series.
        service.advance_to(HIST_TICKS * INTERVAL)
        started = time.perf_counter()
        for round_index in range(1, SCAN_ROUNDS + 1):
            service.advance_to(HIST_TICKS * INTERVAL + round_index * RERUN)
        elapsed = time.perf_counter() - started
        snapshot = service.metrics.snapshot()
        hits = snapshot["counters"].get("pipeline.incremental.hits", 0.0)
        misses = snapshot["counters"].get("pipeline.incremental.misses", 0.0)
        scans = service.metrics.histogram("scheduler.scan_seconds").count
        mode = "incremental" if incremental else "full"
        elapsed_by_mode[mode] = elapsed
        if incremental:
            hit_rate = hits / (hits + misses) if hits + misses else 0.0
        rows.append(f"{mode:11s}  {scans:5d}  {hits:4.0f}  {elapsed:10.3f}")
        service.close()

    rows.append(f"hit rate (incremental): {hit_rate:.1%}")
    emit("Incremental scan cache (quiet-series rescans skip the window)", rows)
    assert hit_rate >= 0.3
    assert elapsed_by_mode["incremental"] < elapsed_by_mode["full"]


def test_observability_overhead_within_bounds(capsys):
    """Span tracing on the scan hot path must stay in the noise.

    Same workload, same schedule, traced vs. untraced pipelines; the
    acceptance target is <= 5% overhead (reported in the table), with a
    loose 25% assertion bound so scheduler jitter on busy CI machines
    never flakes the gate — the precise number is tracked by
    check_bench_regression.py history, not this assert.
    """
    values = _scan_values(series=SERIES)
    rows = ["mode      scans  traces  elapsed(s)"]
    elapsed_by_mode = {}
    for traced in (False, True):
        service = _build_scan_service(workers=1, incremental=True)
        if not traced:
            # register_monitor already ran inside the builder; detach the
            # span recorder from every pipeline for the untraced run.
            for shard_id in range(service.n_shards):
                service._shards[shard_id].scheduler.wire_tracer(None)
        for name, series_values in values.items():
            service.ingest_many(
                [
                    Sample(name, tick * INTERVAL, float(series_values[tick]),
                           {"metric": "gcpu"})
                    for tick in range(HIST_TICKS)
                ]
            )
        service.flush()
        started = time.perf_counter()
        for round_index in range(SCAN_ROUNDS):
            service.advance_to(HIST_TICKS * INTERVAL + round_index * RERUN)
        elapsed = time.perf_counter() - started
        mode = "traced" if traced else "plain"
        elapsed_by_mode[mode] = elapsed
        scans = service.metrics.histogram("scheduler.scan_seconds").count
        traces = len(service.traces)
        if traced:
            assert traces == scans  # one RunTrace per scan, none lost
        else:
            assert traces == 0
        rows.append(f"{mode:8s}  {scans:5d}  {traces:6d}  {elapsed:10.3f}")
        service.close()

    overhead = elapsed_by_mode["traced"] / elapsed_by_mode["plain"] - 1.0
    rows.append(f"span-tracing overhead: {overhead:+.1%} (target <= 5%)")
    emit("Observability overhead (funnel spans on the scan hot path)", rows)
    assert elapsed_by_mode["traced"] <= elapsed_by_mode["plain"] * 1.25


def test_shadow_detector_overhead_within_bounds(capsys):
    """One shadow challenger must not dent burst-ingest goodput.

    The full service workload — bursty ingest with the gcpu monitor
    scanning on its rerun cadence between bursts — with a ``mad``
    challenger registered vs. none.  Challengers score only full
    (cache-miss) scans and never touch ingest, verdicts, or delivery,
    so goodput should stay within the <= 5% acceptance target
    (reported in the table).  The assert uses a loose 25% bound so
    scheduler jitter on busy CI machines never flakes the gate; the
    precise number is tracked by check_bench_regression.py history.
    """
    values = _scan_values(series=SERIES)
    history = [
        Sample(name, tick * INTERVAL, float(values[name][tick]), {"metric": "gcpu"})
        for tick in range(HIST_TICKS)
        for name in SERIES
    ]
    burst_base = HIST_TICKS * INTERVAL
    rng = np.random.default_rng(11)
    bursts = []
    tick = HIST_TICKS
    for _ in range(N_BURSTS):
        # Quiet continuations of each series: the steady state where
        # rescans ride the incremental cache and full scans are rare.
        burst = [
            Sample(name, t * INTERVAL, float(rng.normal(0.001, 0.00002)),
                   {"metric": "gcpu"})
            for t in range(tick, tick + TICKS_PER_BURST)
            for name in SERIES
        ]
        tick += TICKS_PER_BURST
        bursts.append(burst)

    rows = ["mode    accepted  challenger_scans  goodput(kS/s)"]
    goodput = {}
    reports_by_mode = {}
    for mode in ("plain", "shadow"):
        best = 0.0
        for _ in range(3):  # best-of-3: goodput, not scheduler jitter
            service = _build_scan_service(
                workers=1, incremental=True,
                shadow=["mad"] if mode == "shadow" else None,
            )
            service.ingest_many(history)
            service.flush()
            service.advance_to(burst_base)  # warm-up scan anchors series
            reports = []
            started = time.perf_counter()
            for burst in bursts:
                for sample in burst:
                    service.ingest_sample(sample)
                service.flush()
                reports.extend(service.advance_to(burst[-1].timestamp + INTERVAL))
            elapsed = time.perf_counter() - started
            accepted = service.stats().accepted
            best = max(best, (accepted - len(history)) / elapsed)
            reports_by_mode[mode] = len(reports)
            snapshot = service.detectors_snapshot()
            challenger_scans = sum(
                row["tally"]["scans"] for row in snapshot["detectors"]
            )
            if mode == "shadow":
                assert snapshot["enabled"]
                assert challenger_scans > 0  # the challenger actually scored
            else:
                assert not snapshot["enabled"]
            service.close()
        goodput[mode] = best
        rows.append(
            f"{mode:6s}  {accepted - len(history):8d}  {challenger_scans:16d}  "
            f"{best / 1e3:13.1f}"
        )

    # Alert-inert: the challenger must not change what gets reported.
    assert reports_by_mode["shadow"] == reports_by_mode["plain"]
    overhead = goodput["plain"] / goodput["shadow"] - 1.0
    rows.append(f"shadow-detector overhead: {overhead:+.1%} (target <= 5%)")
    emit("Shadow-detector overhead (one challenger, bursty service load)", rows)
    assert goodput["shadow"] >= goodput["plain"] / 1.25


def test_webhook_sink_overhead_within_bounds(capsys):
    """A dead webhook endpoint must not dent burst-ingest goodput.

    The full service workload with regressions planted in 8 of the 64
    series so reports actually flow to sinks during the timed phase —
    once with no sinks, once with a :class:`WebhookSink` pointed at a
    dead endpoint (connection refused on every post).  Delivery is
    enqueue-only on the scan path and all retries happen on the sink's
    background thread, so goodput should stay within the <= 5%
    acceptance target (reported in the table).  The assert uses a loose
    25% bound so scheduler jitter on busy CI machines never flakes the
    gate; the precise number is tracked by check_bench_regression.py
    history.  The delivered report list must be identical either way —
    a dead alerting edge never changes what detection reports.
    """
    from repro.connectors import WebhookSink

    values = _scan_values(series=SERIES)
    history = [
        Sample(name, tick * INTERVAL, float(values[name][tick]), {"metric": "gcpu"})
        for tick in range(HIST_TICKS)
        for name in SERIES
    ]
    regressed = set(SERIES[::8])  # 8 series step up during the bursts
    rng = np.random.default_rng(13)
    bursts = []
    tick = HIST_TICKS
    for _ in range(N_BURSTS):
        burst = [
            Sample(
                name, t * INTERVAL,
                float(rng.normal(0.001, 0.00002))
                + (0.0003 if name in regressed else 0.0),
                {"metric": "gcpu"},
            )
            for t in range(tick, tick + TICKS_PER_BURST)
            for name in SERIES
        ]
        tick += TICKS_PER_BURST
        bursts.append(burst)

    rows = ["mode     accepted  reports  enqueued  failed  goodput(kS/s)"]
    goodput = {}
    reports_by_mode = {}
    for mode in ("plain", "webhook"):
        best = 0.0
        for _ in range(3):  # best-of-3: goodput, not scheduler jitter
            sink = WebhookSink(
                # Port 9 (discard) is never bound on CI machines: every
                # post dies with connection-refused, immediately.
                "http://127.0.0.1:9/hook",
                timeout=0.2, max_retries=1, backoff=0.01, backoff_cap=0.05,
            )
            service = StreamingDetectionService(
                n_shards=8,
                sinks=[sink] if mode == "webhook" else [],
                queue_capacity=1 << 20,
                backpressure=BackpressurePolicy.BLOCK,
                batch_size=4_096,
            )
            service.register_monitor(
                "gcpu", scan_config(), series_filter={"metric": "gcpu"},
                incremental=True,
            )
            service.ingest_many(history)
            service.flush()
            service.advance_to(HIST_TICKS * INTERVAL)  # warm-up scan
            reports = []
            started = time.perf_counter()
            for burst in bursts:
                for sample in burst:
                    service.ingest_sample(sample)
                service.flush()
                reports.extend(service.advance_to(burst[-1].timestamp + INTERVAL))
            elapsed = time.perf_counter() - started
            accepted = service.stats().accepted
            best = max(best, (accepted - len(history)) / elapsed)
            reports_by_mode[mode] = [
                (report.metric_id, report.change_time) for report in reports
            ]
            service.close()
            counters = dict(sink.counters)
        goodput[mode] = best
        rows.append(
            f"{mode:7s}  {accepted - len(history):8d}  "
            f"{len(reports_by_mode[mode]):7d}  {counters['enqueued']:8d}  "
            f"{counters['failed']:6d}  {best / 1e3:13.1f}"
        )
        if mode == "webhook":
            # The endpoint really was dead and really was exercised.
            assert counters["enqueued"] > 0
            assert counters["failed"] == counters["enqueued"]

    # A dead alerting edge never changes what detection reports.
    assert reports_by_mode["webhook"] == reports_by_mode["plain"]
    assert len(reports_by_mode["plain"]) > 0
    overhead = goodput["plain"] / goodput["webhook"] - 1.0
    rows.append(f"webhook-sink overhead: {overhead:+.1%} (target <= 5%)")
    emit("Webhook sink overhead (dead endpoint, bursty service load)", rows)
    assert goodput["webhook"] >= goodput["plain"] / 1.25


def main(argv=None):
    """CLI entry: measure the parallel speedup at ``--workers N``.

    Exits non-zero when the machine has >= 4 CPUs and the speedup misses
    the 2.5x acceptance bar.
    """
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=4)
    args = parser.parse_args(argv)
    if args.workers < 1:
        parser.error("--workers must be >= 1")

    values = _scan_values()
    baseline_scans, baseline_elapsed, baseline_reports, _ = run_parallel_scans(
        1, values
    )
    scans, elapsed, reports, _ = run_parallel_scans(args.workers, values)
    baseline_goodput = baseline_scans / baseline_elapsed
    parallel_goodput = scans / elapsed
    speedup = parallel_goodput / baseline_goodput
    print(f"workers=1: {baseline_scans} scans in {baseline_elapsed:.2f}s "
          f"({baseline_goodput:.1f} scans/s)")
    print(f"workers={args.workers}: {scans} scans in {elapsed:.2f}s "
          f"({parallel_goodput:.1f} scans/s)")
    print(f"speedup: {speedup:.2f}x on {os.cpu_count()} CPU(s)")
    if len(reports) != len(baseline_reports):
        print("FAIL: parallel and serial runs delivered different reports")
        return 1
    if args.workers >= 4 and (os.cpu_count() or 1) >= 4 and speedup < 2.5:
        print("FAIL: speedup below the 2.5x acceptance bar on >=4 CPUs")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
