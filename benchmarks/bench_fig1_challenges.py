"""Figure 1 — the three challenge cases.

(a) a barely visible 0.005%-scale true regression must be *caught*;
(b) a subroutine whose gCPU rises purely from a cost-shift refactor must
    be *filtered*;
(c) a transient throughput drop must be *filtered*.
"""

import numpy as np
import pytest

from _harness import (
    ANALYSIS_POINTS,
    EXTENDED_POINTS,
    HISTORIC_POINTS,
    POINT_INTERVAL,
    bench_config,
    emit,
)
from repro import FBDetect, TimeSeriesDatabase
from repro.core.types import FilterReason
from repro.fleet import scenarios

N_POINTS = HISTORIC_POINTS + ANALYSIS_POINTS + EXTENDED_POINTS
CHANGE_AT = HISTORIC_POINTS + 60  # inside the analysis window


def fill(db, name, values, tags):
    series = db.create(name, tags)
    for i, value in enumerate(values):
        series.append(i * POINT_INTERVAL, float(value))


def run_case_a():
    """A 0.005%-of-CPU regression on a 0.1%-gCPU subroutine, with the
    noise level hyperscale averaging leaves behind."""
    rng = np.random.default_rng(0)
    values = rng.normal(0.001, 0.00001, N_POINTS)
    values[CHANGE_AT:] += 0.00005
    db = TimeSeriesDatabase()
    fill(db, "svc.sub.gcpu", values, {"metric": "gcpu", "subroutine": "sub", "service": "svc"})
    detector = FBDetect(bench_config(threshold=0.00002))
    return detector.run(db, now=N_POINTS * POINT_INTERVAL)


def run_case_b():
    """Figure 1(b): the target's gCPU jumps, the enclosing domain is flat."""
    rng = np.random.default_rng(1)
    shifted = 0.0003  # cost moved from sibling to target at CHANGE_AT
    target = rng.normal(0.0001, 0.00002, N_POINTS)
    target[CHANGE_AT:] += shifted
    sibling = rng.normal(0.0007, 0.00002, N_POINTS)
    sibling[CHANGE_AT:] -= shifted
    db = TimeSeriesDatabase()
    fill(db, "svc.ns::K::target.gcpu", target,
         {"metric": "gcpu", "subroutine": "ns::K::target", "service": "svc"})
    fill(db, "svc.ns::K::sibling.gcpu", sibling,
         {"metric": "gcpu", "subroutine": "ns::K::sibling", "service": "svc"})
    detector = FBDetect(bench_config(threshold=0.00002))
    return detector.run(db, now=N_POINTS * POINT_INTERVAL)


def run_case_c():
    """Figure 1(c): a transient throughput drop that recovers."""
    values = scenarios.transient_throughput_drop(
        n_points=N_POINTS, drop_start=CHANGE_AT, drop_length=60, seed=2
    )
    db = TimeSeriesDatabase()
    fill(db, "svc.throughput", values, {"metric": "throughput", "service": "svc"})
    detector = FBDetect(bench_config(threshold=5.0, higher_is_worse=False))
    return detector.run(db, now=N_POINTS * POINT_INTERVAL)


@pytest.fixture(scope="module")
def outcomes():
    return run_case_a(), run_case_b(), run_case_c()


def test_fig1_shapes(outcomes):
    case_a, case_b, case_c = outcomes

    assert len(case_a.reported) == 1, "the tiny true regression must be caught"
    magnitude = case_a.reported[0].magnitude

    target_reports = [
        r for r in case_b.reported if r.context.subroutine == "ns::K::target"
    ]
    assert target_reports == [], "the cost-shift illusion must be filtered"
    shift_drops = [
        c for c in case_b.all_candidates
        if any(v.reason is FilterReason.COST_SHIFT for v in c.verdicts)
    ]
    assert shift_drops, "the filter must be the cost-shift detector"

    assert case_c.reported == [], "the transient drop must be filtered"

    emit(
        "Figure 1 — challenge cases",
        [
            f"(a) true 0.005%-scale regression: REPORTED, magnitude {magnitude:.6f}",
            "(b) cost-shift illusion:          FILTERED (cost-shift detector)",
            "(c) transient throughput drop:    FILTERED (went-away detector)",
        ],
    )


def test_fig1_detection_benchmark(benchmark):
    """Time one full pipeline run over the Figure 1(a) series."""
    result = benchmark(run_case_a)
    assert len(result.reported) == 1
