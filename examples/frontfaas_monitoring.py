#!/usr/bin/env python3
"""FrontFaaS-style in-production monitoring, end to end.

Simulates a service fleet for 900 collection intervals while:

- a code commit regresses one subroutine by 20% of its own cost,
- a refactor commit shifts cost between two other subroutines
  (the Figure 1(b) false-positive source),
- a canary test transiently raises CPU (the Figure 1(c) source),

then runs FBDetect periodically, exactly as production does, and prints
what was reported, what was filtered, and the funnel (Table 3 style).

Run:  python examples/frontfaas_monitoring.py
"""

import numpy as np

from repro import FBDetect
from repro.config import DetectionConfig
from repro.fleet import (
    ChangeEffect,
    ChangeLog,
    CodeChange,
    CostShift,
    FleetSimulator,
    ServiceSpec,
    TransientEvent,
    TransientEventKind,
)
from repro.fleet.subroutine import CallGraph, SubroutineSpec
from repro.reporting import (
    build_report,
    format_funnel_table,
    format_investigation,
    format_report,
    investigate_regression,
)
from repro.tsdb import WindowSpec


def build_service() -> ServiceSpec:
    graph = CallGraph(root="_start")
    graph.add(SubroutineSpec("web::Server::serve", 0.0, parent="_start", endpoint="/home"))
    graph.add(SubroutineSpec("feed::Ranker::rank", 35.0, parent="web::Server::serve"))
    graph.add(SubroutineSpec("feed::Fetcher::fetch", 25.0, parent="web::Server::serve"))
    graph.add(SubroutineSpec("feed::Fetcher::parse", 20.0, parent="feed::Fetcher::fetch"))
    graph.add(SubroutineSpec("util::Json::encode", 12.0, parent="feed::Ranker::rank"))
    graph.add(SubroutineSpec("util::Json::decode", 8.0, parent="feed::Fetcher::parse"))
    return ServiceSpec(
        name="frontfaas",
        call_graph=graph,
        n_servers=120,
        effective_samples=3_000_000,
        samples_per_interval=300,
    )


def build_changes() -> ChangeLog:
    return ChangeLog(
        [
            CodeChange(
                "D1001",
                deploy_time=42_500.0,
                title="optimize feed::Fetcher::parse chunking",
                summary="rewrites the tokenizer inner loop of feed::Fetcher::parse",
                author="alice",
                effects=(ChangeEffect("feed::Fetcher::parse", 1.2),),
            ),
            CodeChange(
                "D1002",
                deploy_time=43_000.0,
                title="extract decode helper from encode",
                summary="pure refactor moving code from util::Json::encode to util::Json::decode",
                author="bob",
                cost_shifts=(CostShift("util::Json::encode", "util::Json::decode", 0.4),),
            ),
            CodeChange(
                "D1003",
                deploy_time=40_000.0,
                title="update logging format strings",
                summary="no performance impact expected",
                author="carol",
            ),
        ]
    )


def main() -> None:
    spec = build_service()
    changes = build_changes()
    events = [
        TransientEvent(TransientEventKind.CANARY_TEST, start=30_000.0, duration=2_400.0)
    ]

    print("simulating 900 collection intervals of the fleet ...")
    simulation = FleetSimulator(
        spec, change_log=changes, events=events, interval=60.0, seed=7
    ).run(900)

    config = DetectionConfig(
        name="frontfaas-demo",
        threshold=0.002,
        rerun_interval=6_000.0,
        windows=WindowSpec(historic=36_000.0, analysis=12_000.0, extended=6_000.0),
        long_term=False,
    )
    detector = FBDetect(
        config,
        change_log=changes,
        samples=simulation.collector.sample_history,
        series_filter={"metric": "gcpu"},
    )

    print("running periodic detection ...\n")
    runs = detector.run_periodic(
        simulation.database, start=54_000.0, end=simulation.end_time
    )

    total_funnel = runs[0].funnel
    for run in runs[1:]:
        total_funnel.merge(run.funnel)

    reported = [r for run in runs for r in run.reported]
    print(f"=== {len(reported)} regression(s) reported to developers ===\n")
    history = simulation.collector.sample_history
    # The sample history is time-ordered; the injected change lands ~71%
    # into the run, so split there for the before/after stack view.
    split = int(0.71 * len(history))
    for regression in reported:
        print(format_report(build_report(regression)))
        investigation = investigate_regression(
            regression, history[:split], history[split:], k=3
        )
        print(format_investigation(investigation))
        print()

    filtered = [
        c
        for run in runs
        for c in run.all_candidates
        if c.verdicts and not c.verdicts[-1].passed
    ]
    reasons = {}
    for candidate in filtered:
        reason = candidate.verdicts[-1].reason.value
        reasons[reason] = reasons.get(reason, 0) + 1
    print("=== filtered false positives by reason ===")
    for reason, count in sorted(reasons.items()):
        print(f"  {reason}: {count}")

    print("\n=== funnel (Table 3 style) ===")
    print(format_funnel_table({"frontfaas": total_funnel}))


if __name__ == "__main__":
    main()
