#!/usr/bin/env python3
"""Per-data-type I/O regression detection against a TAO graph store.

PythonFaaS workloads issue TAO queries; FBDetect detects "per-data-type
I/O regressions to the downstream database" (§3).  This example drives a
TAO store with a realistic mixed workload (friend edges, likes, post
reads), injects a 30% cost regression in the handling of one association
type mid-run, and shows FBDetect pinpointing exactly that data type.

Run:  python examples/tao_io_monitoring.py
"""

import numpy as np

from repro import FBDetect
from repro.config import DetectionConfig
from repro.reporting import build_report, format_report
from repro.substrates import TaoMetricsEmitter, TaoStore
from repro.tsdb import TimeSeriesDatabase, WindowSpec


def drive_workload(store, rng, users, posts):
    """One interval of mixed TAO traffic."""
    for _ in range(30):
        reader = users[int(rng.integers(0, len(users)))]
        store.assoc_range(reader.object_id, "friend", limit=20)
    for _ in range(50):
        liker = users[int(rng.integers(0, len(users)))]
        post = posts[int(rng.integers(0, len(posts)))]
        store.assoc_add(liker.object_id, "likes", post.object_id, time=float(rng.random()))
    for _ in range(40):
        store.obj_get(posts[int(rng.integers(0, len(posts)))].object_id)
    for _ in range(10):
        follower = users[int(rng.integers(0, len(users)))]
        store.assoc_count(follower.object_id, "friend")


def main() -> None:
    rng = np.random.default_rng(9)
    store = TaoStore()
    users = [store.obj_add("user", {"name": f"user{i}"}) for i in range(50)]
    posts = [store.obj_add("post") for _ in range(200)]
    for user in users:
        for _ in range(5):
            friend = users[int(rng.integers(0, len(users)))]
            if friend is not user:
                store.assoc_add(user.object_id, "friend", friend.object_id,
                                time=float(rng.random()))
    store.reset_accounting()  # setup traffic does not count

    db = TimeSeriesDatabase()
    emitter = TaoMetricsEmitter(db)

    print("driving 900 intervals of mixed TAO traffic ...")
    for tick in range(900):
        if tick == 700:
            # A schema/code change makes 'likes' writes 30% costlier.
            store.regress_data_type("likes", 1.3)
            print("  [tick 700] injected +30% cost on the 'likes' data type")
        drive_workload(store, rng, users, posts)
        emitter.ingest(tick * 60.0, store)

    config = DetectionConfig(
        name="tao-io",
        threshold=0.05,
        relative_threshold=True,
        rerun_interval=3600.0,
        windows=WindowSpec(36_000.0, 12_000.0, 6_000.0),
        long_term=False,
    )
    detector = FBDetect(config, series_filter={"metric": "io_cost"})
    result = detector.run(db, now=900 * 60.0)

    print(f"\nper-data-type I/O regressions reported: {len(result.reported)}\n")
    for regression in result.reported:
        print(format_report(build_report(regression)))
    quiet = [
        name for name in db.names()
        if name.endswith("io_cost")
        and name not in {r.context.metric_id for r in result.reported}
    ]
    print(f"\ndata types with no regression reported: {quiet}")


if __name__ == "__main__":
    main()
