#!/usr/bin/env python3
"""Invoicer: catching 0.5% regressions on a 16-server service.

The paper's smallest workload (§3): 16 servers, aggressive per-server
sampling (one sample per server per second versus one per minute for
FrontFaaS), and long windows (14 days historic, 1 day analysis, 1 day
extended) to accumulate enough samples for a 0.5% gCPU threshold.

We reproduce the mechanics at laptop scale: a small fleet with a small
effective sample count per point (tiny fleets genuinely get fewer
samples), long windows in *points*, and a relative regression of 12% on
one subroutine — comfortably above the noise the long windows leave.

Run:  python examples/invoicer_small_service.py
"""

from repro import FBDetect
from repro.config import DetectionConfig
from repro.fleet import ChangeEffect, ChangeLog, CodeChange, FleetSimulator, ServiceSpec
from repro.fleet.subroutine import CallGraph, SubroutineSpec
from repro.reporting import build_report, format_report
from repro.tsdb import WindowSpec


def main() -> None:
    graph = CallGraph(root="_start")
    graph.add(SubroutineSpec("invoicer::Biller::run", 0.0, parent="_start"))
    graph.add(SubroutineSpec("invoicer::Biller::aggregate", 50.0, parent="invoicer::Biller::run"))
    graph.add(SubroutineSpec("invoicer::Pdf::render", 30.0, parent="invoicer::Biller::run"))
    graph.add(SubroutineSpec("invoicer::Tax::compute", 20.0, parent="invoicer::Biller::aggregate"))

    changes = ChangeLog(
        [
            CodeChange(
                "D2001",
                deploy_time=1_220_000.0,
                title="support new tax jurisdictions in invoicer::Tax::compute",
                summary="adds per-jurisdiction lookup to invoicer::Tax::compute",
                effects=(ChangeEffect("invoicer::Tax::compute", 1.12),),
            )
        ]
    )

    # 16 servers at ~1 sample/server/second, 10-minute collection
    # intervals -> ~10k samples per point.
    spec = ServiceSpec(
        name="invoicer",
        call_graph=graph,
        n_servers=16,
        effective_samples=10_000,
        samples_per_interval=100,
    )
    interval = 600.0
    print("simulating 16 days of the 16-server Invoicer fleet ...")
    simulation = FleetSimulator(
        spec, change_log=changes, interval=interval, seed=3
    ).run(16 * 144)  # 144 ten-minute intervals per day

    config = DetectionConfig(
        name="Invoicer (short)",
        threshold=0.005,  # 0.5% absolute gCPU, the Table 1 row
        rerun_interval=12 * 3600.0,
        windows=WindowSpec(
            historic=14 * 86_400.0, analysis=86_400.0, extended=86_400.0
        ),
        long_term=False,
    )
    detector = FBDetect(
        config,
        change_log=changes,
        samples=simulation.collector.sample_history,
        series_filter={"metric": "gcpu"},
    )
    result = detector.run(simulation.database, now=simulation.end_time)

    print(f"\nregressions reported: {len(result.reported)}\n")
    for regression in result.reported:
        print(format_report(build_report(regression)))
        print()


if __name__ == "__main__":
    main()
