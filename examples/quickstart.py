#!/usr/bin/env python3
"""Quickstart: catch a tiny regression in a noisy gCPU series.

Builds a synthetic subroutine-level gCPU series with a 0.01%-of-baseline
regression hidden in noise, runs FBDetect with a FrontFaaS-style
configuration, and prints the resulting incident report.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import FBDetect, table1_config
from repro.reporting import build_report, format_report


def main() -> None:
    # A FrontFaaS-small configuration, with windows shrunk so the demo's
    # 900-point series spans historic(600) + analysis(200) + extended(100)
    # points at one point per minute.
    config = table1_config("frontfaas_small").with_windows(
        historic=36_000.0, analysis=12_000.0, extended=6_000.0
    )
    detector = FBDetect(config)

    # A subroutine consuming ~0.1% of the service's CPU (gCPU = 0.001),
    # regressing by 0.01% of total CPU at t = 700 minutes.  Relative to
    # the subroutine, that's a 10% jump — the variance-reduction trick
    # of §2 in action.
    rng = np.random.default_rng(42)
    gcpu = rng.normal(0.001, 0.00002, 900)
    gcpu[700:] += 0.0001

    result = detector.detect_series(
        gcpu,
        name="myservice.feed::Ranker::score.gcpu",
        tags={
            "service": "myservice",
            "subroutine": "feed::Ranker::score",
            "metric": "gcpu",
        },
    )

    print(f"change points detected: {result.funnel.counts['change_points']}")
    print(f"regressions reported:   {len(result.reported)}\n")
    for regression in result.reported:
        print(format_report(build_report(regression)))
        print()


if __name__ == "__main__":
    main()
