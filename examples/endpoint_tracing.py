#!/usr/bin/env python3
"""Endpoint-level regressions via end-to-end tracing.

FrontFaaS endpoint requests span multiple threads; FBDetect aggregates
each request's cost across all of them (Canopy-style tracing) and
detects regressions in the aggregated endpoint cost (§3).

This example simulates an endpoint whose request handling fans out to a
background worker thread.  After the "deploy", the *background* half of
the work gets 25% more expensive — invisible to any single thread's
metrics, but caught in the aggregated endpoint cost.

Run:  python examples/endpoint_tracing.py
"""

import threading

import numpy as np

from repro import FBDetect
from repro.config import DetectionConfig
from repro.profiling.tracing import EndpointCostAggregator, Tracer
from repro.reporting import build_report, format_report
from repro.tsdb import TimeSeriesDatabase, WindowSpec


def simulate_request(tracer, rng, background_cost_factor):
    """One /feed request: foreground render + async background fetch."""
    with tracer.request("/feed") as trace:
        with tracer.span("render", cpu_cost=0.6 + rng.normal(0, 0.01)) as render:
            def background():
                cost = (0.4 + rng.normal(0, 0.01)) * background_cost_factor
                with tracer.span("fetch_async", cpu_cost=cost, parent=render, trace=trace):
                    pass

            worker = threading.Thread(target=background)
            worker.start()
            worker.join()
    return trace


def main() -> None:
    rng = np.random.default_rng(5)
    tracer = Tracer()
    db = TimeSeriesDatabase()
    aggregator = EndpointCostAggregator(db, service="frontfaas")

    print("simulating 900 collection intervals of traced /feed requests ...")
    for tick in range(900):
        factor = 1.0 if tick < 700 else 1.25  # background work regresses
        for _ in range(4):
            simulate_request(tracer, rng, factor)
        aggregator.ingest(tick * 60.0, tracer.completed)
        tracer.completed.clear()

    sample = simulate_request(tracer, rng, 1.25)
    print(f"\none traced request spans {sample.thread_count} threads, "
          f"total cost {sample.total_cpu_cost:.2f} CPU-units")

    config = DetectionConfig(
        name="endpoint-cost",
        threshold=0.05,
        rerun_interval=3600.0,
        windows=WindowSpec(36_000.0, 12_000.0, 6_000.0),
        long_term=False,
    )
    detector = FBDetect(config, series_filter={"metric": "endpoint_cost"})
    result = detector.run(db, now=900 * 60.0)

    print(f"\nendpoint-level regressions reported: {len(result.reported)}\n")
    for regression in result.reported:
        print(format_report(build_report(regression)))


if __name__ == "__main__":
    main()
