#!/usr/bin/env python3
"""Capacity Triage (CT): throughput regressions without stack traces.

CT (§3) watches Kraken-style per-server maximum-throughput benchmarks.
A drop in max throughput is a *supply-side* regression; a rise in total
peak requests is a *demand-side* regression.  Both use 5% relative
thresholds (Table 1's last three rows) and no stack-trace sampling.

This example synthesizes both series — a supply drop caused by a binary
update, plus a transient dip from a load-balancer blip that must NOT be
reported — and runs the CT configurations over them.

Run:  python examples/capacity_triage.py
"""

import numpy as np

from repro import FBDetect, TimeSeriesDatabase, table1_config


def build_series() -> TimeSeriesDatabase:
    rng = np.random.default_rng(21)
    db = TimeSeriesDatabase()

    # Supply side: per-server max throughput (req/s), measured hourly.
    # A binary update at hour 700 costs 8% of capacity — a supply
    # regression.  A 12-hour load-balancer blip at hour 400 recovers on
    # its own and must be filtered.
    supply = rng.normal(1_000.0, 12.0, 900)
    supply[400:412] *= 0.85
    supply[700:] *= 0.92
    series = db.create("ct.webtier.max_throughput", {"service": "webtier", "metric": "throughput"})
    for hour, value in enumerate(supply):
        series.append(hour * 3600.0, float(value))

    # Demand side: total peak requests.  Organic growth plus a step when
    # a new client starts hammering the service at hour 720.
    demand = rng.normal(500_000.0, 6_000.0, 900)
    demand[720:] *= 1.09
    series = db.create("ct.webtier.peak_requests", {"service": "webtier", "metric": "demand"})
    for hour, value in enumerate(demand):
        series.append(hour * 3600.0, float(value))
    return db


def main() -> None:
    db = build_series()
    now = 900 * 3600.0

    # Windows shrunk from days to the demo's 900 hourly points.
    supply_config = table1_config("ct_supply_short").with_windows(
        historic=600 * 3600.0, analysis=200 * 3600.0, extended=100 * 3600.0
    )
    supply_detector = FBDetect(supply_config, series_filter={"metric": "throughput"})
    supply_result = supply_detector.run(db, now=now)

    print("=== CT-supply (max-throughput drops) ===")
    print(f"reported: {len(supply_result.reported)}")
    for regression in supply_result.reported:
        drop = -regression.magnitude  # oriented: stored as badness
        print(
            f"  {regression.context.metric_id}: capacity dropped "
            f"{abs(regression.relative_magnitude) * 100:.1f}% "
            f"({abs(drop):.0f} req/s per server)"
        )
    filtered = [
        c for c in supply_result.all_candidates
        if c.verdicts and not c.verdicts[-1].passed
    ]
    print(f"filtered as transient/noise: {len(filtered)}")

    demand_config = table1_config("ct_demand").with_windows(
        historic=600 * 3600.0, analysis=200 * 3600.0, extended=100 * 3600.0
    )
    demand_detector = FBDetect(demand_config, series_filter={"metric": "demand"})
    demand_result = demand_detector.run(db, now=now)

    print("\n=== CT-demand (peak-request increases) ===")
    print(f"reported: {len(demand_result.reported)}")
    for regression in demand_result.reported:
        print(
            f"  {regression.context.metric_id}: demand up "
            f"{regression.relative_magnitude * 100:.1f}%"
        )


if __name__ == "__main__":
    main()
