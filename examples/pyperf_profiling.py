#!/usr/bin/env python3
"""PyPerf: end-to-end Python stack traces, and real sampling overhead.

Part 1 demonstrates the Figure 5 reconstruction: a simulated CPython
process is sampled naively (interpreter frames only — useless for
attribution) and via PyPerf's virtual-call-stack merge (full Python +
native stack).

Part 2 runs the real in-process thread sampler against a live CPU-bound
workload (serialize + compress + write, the paper's §6.6 microbenchmark)
and derives gCPU for the workload's own functions.

Run:  python examples/pyperf_profiling.py
"""

import json
import tempfile
import threading
import time
import zlib

from repro.profiling import (
    PyPerfProfiler,
    SimulatedCPythonProcess,
    ThreadStackSampler,
    compute_gcpu,
)


def part1_merged_stacks() -> None:
    print("=== Part 1: virtual-call-stack merge (Figure 5) ===\n")
    process = SimulatedCPythonProcess(pid=4242)
    process.call_python("main")
    process.call_python("handle_request", metadata="user_category:enterprise")
    process.call_python("render_feed")
    process.call_native("zlib_compress")

    profiler = PyPerfProfiler(sample_interval=1.0)
    naive = profiler.naive_sample(process)
    merged = profiler.sample(process)

    print("naive OS-profiler stack (what plain `perf` sees):")
    for frame in naive.frames:
        print(f"  [{frame.kind:11s}] {frame.subroutine}")
    print("\nPyPerf merged stack (Python + native, end to end):")
    for frame in merged.frames:
        annotation = f"  @{frame.metadata}" if frame.metadata else ""
        print(f"  [{frame.kind:11s}] {frame.subroutine}{annotation}")
    print()


def cpu_workload(stop: threading.Event, counters: dict) -> None:
    """The §6.6 microbenchmark: serialize, compress, write, repeatedly."""
    payload = {"rows": [{"id": i, "value": i * 3.14} for i in range(2_000)]}
    with tempfile.TemporaryFile() as sink:
        while not stop.is_set():
            serialized = serialize(payload)
            compressed = compress(serialized)
            sink.seek(0)
            sink.write(compressed)
            counters["iterations"] += 1


def serialize(payload: dict) -> bytes:
    return json.dumps(payload).encode("utf-8")


def compress(data: bytes) -> bytes:
    return zlib.compress(data, level=6)


def part2_real_sampler(duration: float = 2.0) -> None:
    print("=== Part 2: real in-process sampling of a live workload ===\n")
    stop = threading.Event()
    counters = {"iterations": 0}
    worker = threading.Thread(target=cpu_workload, args=(stop, counters), daemon=True)
    worker.start()

    sampler = ThreadStackSampler(interval=0.01, target_thread_ids=[worker.ident])
    sampler.start()
    time.sleep(duration)
    stats = sampler.stop()
    stop.set()
    worker.join()

    print(
        f"collected {stats.samples} samples in {stats.duration:.2f}s "
        f"({stats.effective_rate:.0f} Hz); workload ran "
        f"{counters['iterations']} iterations"
    )

    table = compute_gcpu(sampler.samples)
    print("\ntop subroutines by gCPU (relative CPU share):")
    for name in table.subroutines()[:8]:
        print(f"  {table.gcpu(name) * 100:6.1f}%  {name}")


if __name__ == "__main__":
    part1_merged_stacks()
    part2_real_sampler()
