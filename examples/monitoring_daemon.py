#!/usr/bin/env python3
"""The always-on monitoring service: many workloads, one scheduler.

Mirrors production operation (§5.1): one :class:`DetectionScheduler`
owns monitors for several services with different configurations and
re-run intervals, scans them in parallel as simulated time advances,
applies TSDB retention, suppresses a regression explained by a
registered *planned* capacity change (the paper's §8 extension), and
files incident reports through a sink.

Run:  python examples/monitoring_daemon.py
"""

import numpy as np

from repro.config import DetectionConfig
from repro.core.planned_changes import PlannedChange, PlannedChangeCorrelator
from repro.fleet import ChangeEffect, ChangeLog, CodeChange, FleetSimulator, ServiceSpec
from repro.fleet.subroutine import build_random_call_graph
from repro.reporting import format_report
from repro.runtime import CollectingSink, DetectionScheduler
from repro.tsdb import TimeSeriesDatabase, WindowSpec


def simulate_services(db: TimeSeriesDatabase):
    """Two services: one real regression, one planned capacity drain."""
    rng = np.random.default_rng(0)

    # Service A: a genuine code regression at t = 42600s.
    graph_a = build_random_call_graph(60, rng, n_classes=8)
    hot = max(
        (n for n in graph_a.names() if n != "_start"),
        key=lambda n: graph_a.inclusion_probabilities()[n],
    )
    changes_a = ChangeLog(
        [
            CodeChange(
                "D4242",
                deploy_time=42_600.0,
                title=f"enable new ranking model in {hot}",
                effects=(ChangeEffect(hot, 1.6),),
            )
        ]
    )
    FleetSimulator(
        ServiceSpec("feedsvc", graph_a, n_servers=60, effective_samples=2_000_000,
                    samples_per_interval=0),
        change_log=changes_a,
        interval=60.0,
        seed=1,
        database=db,
    ).run(1000)

    # Service B: a *planned* traffic drain halves throughput at t = 43000s.
    rng_b = np.random.default_rng(2)
    series = db.create("adsvc.throughput", {"service": "adsvc", "metric": "throughput"})
    for tick in range(1000):
        base = 50_000.0 if tick * 60.0 < 43_000.0 else 26_000.0
        series.append(tick * 60.0, base * (1.0 + rng_b.normal(0, 0.01)))
    return changes_a, hot


def main() -> None:
    db = TimeSeriesDatabase()
    print("simulating two services for ~16.7 hours ...")
    changes_a, hot = simulate_services(db)

    sink = CollectingSink()
    scheduler = DetectionScheduler(db, sinks=[sink], max_workers=4, retention=90_000.0)

    windows = WindowSpec(36_000.0, 12_000.0, 6_000.0)
    scheduler.register(
        "feedsvc-gcpu",
        DetectionConfig(name="feedsvc", threshold=0.001, rerun_interval=6_000.0,
                        windows=windows, long_term=False),
        series_filter={"service": "feedsvc", "metric": "gcpu"},
        change_log=changes_a,
    )

    planned = PlannedChangeCorrelator(
        [
            PlannedChange(
                "DRAIN-77",
                start=42_800.0,
                end=float("inf"),
                description="planned region drain: adsvc traffic halves",
                services=frozenset({"adsvc"}),
            )
        ]
    )
    scheduler.register(
        "adsvc-throughput",
        DetectionConfig(name="adsvc", threshold=0.05, relative_threshold=True,
                        rerun_interval=6_000.0, windows=windows,
                        higher_is_worse=False, long_term=False),
        series_filter={"service": "adsvc", "metric": "throughput"},
        planned_changes=planned,
    )

    print(f"registered monitors: {scheduler.monitors()}")
    outcomes = scheduler.advance_to(60_000.0)
    print(f"\nran {len(outcomes)} scans across both monitors")

    print(f"\n=== {len(sink.reports)} incident(s) filed ===\n")
    for report in sink.reports:
        print(format_report(report))
        print()

    suppressed = [
        c
        for outcome in outcomes
        for c in outcome.result.all_candidates
        if any(v.reason is not None and v.reason.value == "planned_change"
               for v in c.verdicts)
    ]
    print(f"regressions suppressed by planned-change correlation: {len(suppressed)}")
    for candidate in suppressed[:2]:
        print(f"  {candidate.context.metric_id}: "
              f"{candidate.verdicts[-1].detail}")


if __name__ == "__main__":
    main()
