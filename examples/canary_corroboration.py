#!/usr/bin/env python3
"""Corroborating an in-production detection with a canary test (§6.2).

The paper's authors validated "resolved" FBDetect reports by checking
that the canary-test tool recorded regressions of the same magnitude at
similar times.  This example runs that workflow end to end:

1. FBDetect catches a regression in production (fleet simulation).
2. A canary test re-runs the comparison in a controlled setting:
   control servers on the old code vs canary servers on the new code.
3. The canary's measured relative delta corroborates the production
   report's relative magnitude.

Run:  python examples/canary_corroboration.py
"""

import numpy as np

from repro import FBDetect
from repro.config import DetectionConfig
from repro.fleet import ChangeEffect, ChangeLog, CodeChange, FleetSimulator, ServiceSpec
from repro.fleet.subroutine import CallGraph, SubroutineSpec
from repro.substrates import compare_canary
from repro.tsdb import WindowSpec


def build_graph():
    graph = CallGraph(root="_start")
    graph.add(SubroutineSpec("svc::Api::serve", 0.0, parent="_start"))
    graph.add(SubroutineSpec("svc::Enc::encode", 30.0, parent="svc::Api::serve"))
    graph.add(SubroutineSpec("svc::Db::query", 70.0, parent="svc::Api::serve"))
    return graph


def main() -> None:
    # --- 1. In-production detection -----------------------------------
    changes = ChangeLog(
        [
            CodeChange(
                "D7777",
                deploy_time=42_000.0,
                title="switch svc::Enc::encode to the new serializer",
                effects=(ChangeEffect("svc::Enc::encode", 1.35),),
            )
        ]
    )
    spec = ServiceSpec(
        name="svc", call_graph=build_graph(), n_servers=50,
        effective_samples=2_000_000, samples_per_interval=0,
    )
    print("simulating production fleet ...")
    simulation = FleetSimulator(spec, change_log=changes, interval=60.0, seed=4).run(900)

    config = DetectionConfig(
        name="svc", threshold=0.005, rerun_interval=6_000.0,
        windows=WindowSpec(36_000.0, 12_000.0, 6_000.0), long_term=False,
    )
    detector = FBDetect(config, change_log=changes, series_filter={"metric": "gcpu"})
    result = detector.run(simulation.database, now=simulation.end_time)
    report = next(
        r for r in result.reported if r.context.subroutine == "svc::Enc::encode"
    )
    print(
        f"\nFBDetect report: {report.context.metric_id} regressed "
        f"{report.relative_magnitude * 100:.1f}% (gCPU {report.mean_before:.3f} "
        f"-> {report.mean_after:.3f})"
    )

    # --- 2. Canary corroboration ---------------------------------------
    # Control servers run the old binary, canary servers the new one;
    # each server reports the subroutine's measured CPU cost.  The
    # injected change scaled encode's cost 1.35x.
    rng = np.random.default_rng(8)
    per_server_noise = 0.02
    control = 30.0 * (1.0 + rng.normal(0, per_server_noise, 40))
    canary = 30.0 * 1.35 * (1.0 + rng.normal(0, per_server_noise, 10))
    verdict = compare_canary(control, canary)

    print(
        f"canary test:     {verdict.relative_delta * 100:+.1f}% "
        f"(95% CI [{verdict.confidence_interval[0] * 100:+.1f}%, "
        f"{verdict.confidence_interval[1] * 100:+.1f}%], p={verdict.p_value:.2g})"
    )
    print(f"canary verdict:  {'REGRESSED' if verdict.regressed else 'ok'}")

    # --- 3. Do they agree? ----------------------------------------------
    # gCPU is relative, so FBDetect's relative magnitude on encode
    # understates the absolute 35% cost increase (the denominator grew
    # too); the canary measures the absolute cost directly.
    production_absolute = (
        report.mean_after / (1 - report.mean_after)
        / (report.mean_before / (1 - report.mean_before))
        - 1.0
    )
    print(
        f"\nproduction report implies ~{production_absolute * 100:.0f}% subroutine-cost "
        f"increase; canary measured {verdict.relative_delta * 100:.0f}% — corroborated"
    )


if __name__ == "__main__":
    main()
