#!/usr/bin/env python3
"""Markdown link checker for the documentation suite (stdlib only).

Run by the ``docs`` CI job (and by ``tests/test_docs.py``) over the
repo's markdown files.  Checks, for every inline link, image, and
reference-style definition:

- **relative file links** resolve to an existing file or directory
  inside the repository (absolute paths are rejected — they would only
  work on the committer's machine);
- **anchor fragments** (``doc.md#section`` or same-file ``#section``)
  match a heading in the target file, using GitHub's slugification
  rules;
- external schemes (``http(s)://``, ``mailto:``) are *not* fetched —
  CI must not depend on the network — but obviously malformed ones
  (no host) still fail.

Usage::

    python scripts/check_markdown_links.py             # default doc set
    python scripts/check_markdown_links.py README.md docs/
"""

from __future__ import annotations

import argparse
import os
import re
import sys
from typing import Iterable, List, Optional, Tuple

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: Files/directories scanned when no arguments are given.
DEFAULT_TARGETS = (
    "README.md",
    "DESIGN.md",
    "EXPERIMENTS.md",
    "CONTRIBUTING.md",
    "CHANGES.md",
    "ROADMAP.md",
    "docs",
)

# [text](target "title") and ![alt](target) — title segment optional.
_INLINE_LINK = re.compile(r"!?\[[^\]]*\]\(\s*<?([^)<>\s]+)>?(?:\s+\"[^\"]*\")?\s*\)")
# [label]: target reference definitions.
_REF_DEF = re.compile(r"^\s{0,3}\[[^\]]+\]:\s+<?(\S+?)>?(?:\s+\"[^\"]*\")?\s*$")
_HEADING = re.compile(r"^\s{0,3}(#{1,6})\s+(.*?)\s*#*\s*$")
_CODE_FENCE = re.compile(r"^\s*(```|~~~)")


def _markdown_files(targets: Iterable[str]) -> List[str]:
    files = []
    for target in targets:
        path = os.path.join(REPO_ROOT, target)
        if os.path.isdir(path):
            for dirpath, _dirnames, filenames in os.walk(path):
                files.extend(
                    os.path.join(dirpath, name)
                    for name in sorted(filenames)
                    if name.endswith(".md")
                )
        elif os.path.isfile(path):
            files.append(path)
        else:
            raise FileNotFoundError(f"no such file or directory: {target}")
    return files


def github_slug(heading: str) -> str:
    """GitHub's anchor slug: strip markup, lowercase, spaces to hyphens."""
    text = re.sub(r"`([^`]*)`", r"\1", heading)  # inline code
    text = re.sub(r"!?\[([^\]]*)\]\([^)]*\)", r"\1", text)  # links
    text = re.sub(r"[*_]", "", text)  # emphasis markers
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text, flags=re.UNICODE)
    return text.replace(" ", "-")


def _lines_outside_fences(text: str) -> Iterable[Tuple[int, str]]:
    in_fence = False
    for number, line in enumerate(text.splitlines(), start=1):
        if _CODE_FENCE.match(line):
            in_fence = not in_fence
            continue
        if not in_fence:
            yield number, line


def _anchors(path: str) -> set:
    with open(path, encoding="utf-8") as handle:
        text = handle.read()
    slugs: dict = {}
    anchors = set()
    for _number, line in _lines_outside_fences(text):
        match = _HEADING.match(line)
        if not match:
            continue
        slug = github_slug(match.group(2))
        # Duplicate headings get -1, -2, ... suffixes on GitHub.
        count = slugs.get(slug, 0)
        slugs[slug] = count + 1
        anchors.add(slug if count == 0 else f"{slug}-{count}")
    return anchors


def _links(path: str) -> Iterable[Tuple[int, str]]:
    with open(path, encoding="utf-8") as handle:
        text = handle.read()
    for number, line in _lines_outside_fences(text):
        # Strip inline code spans so `[i](x)` in code is not a link.
        stripped = re.sub(r"`[^`]*`", "", line)
        ref = _REF_DEF.match(stripped)
        if ref:
            yield number, ref.group(1)
            continue
        for match in _INLINE_LINK.finditer(stripped):
            yield number, match.group(1)


def _check_link(source: str, target: str) -> Optional[str]:
    if target.startswith(("http://", "https://")):
        host = target.split("://", 1)[1]
        return None if host.strip("/") else f"malformed URL: {target}"
    if target.startswith("mailto:"):
        return None
    if target.startswith("#"):
        fragment = target[1:].lower()
        if fragment not in _anchors(source):
            return f"no heading for anchor {target}"
        return None
    if os.path.isabs(target):
        return f"absolute path will not resolve from a checkout: {target}"
    rel, _, fragment = target.partition("#")
    resolved = os.path.normpath(os.path.join(os.path.dirname(source), rel))
    if not os.path.exists(resolved):
        return f"broken relative link: {rel}"
    if fragment and not resolved.endswith(".md"):
        return f"anchor on non-markdown target: {target}"
    if fragment and fragment.lower() not in _anchors(resolved):
        return f"no heading for anchor #{fragment} in {rel}"
    return None


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "targets",
        nargs="*",
        default=list(DEFAULT_TARGETS),
        help="markdown files or directories, relative to the repo root",
    )
    args = parser.parse_args(argv)

    errors = []
    checked = 0
    for path in _markdown_files(args.targets):
        display = os.path.relpath(path, REPO_ROOT)
        for number, target in _links(path):
            checked += 1
            problem = _check_link(path, target)
            if problem:
                errors.append(f"{display}:{number}: {problem}")

    for error in errors:
        print(error, file=sys.stderr)
    print(f"checked {checked} links, {len(errors)} broken")
    return 1 if errors else 0


if __name__ == "__main__":
    raise SystemExit(main())
