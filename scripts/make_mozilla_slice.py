#!/usr/bin/env python
"""Regenerate the committed Mozilla corpus slice deterministically.

``benchmarks/data/mozilla_slice.json`` is a small, committed slice in
the schema of *"A Dataset of Performance Measurements and Alerts from
Mozilla"* (arXiv 2503.16332): Perfherder signature series plus
sheriff-triaged alerts.  CI cannot download the real multi-GB artifact,
so this script synthesizes a slice with the same shape and the same
labeling semantics, seeded and value-rounded so the committed file is
byte-stable across regenerations:

- four genuine step regressions (5–12%) with *valid* alerts
  (``acknowledged``/``fixed`` — ground truth for the FP/FN benchmark);
- one transient spike whose alert the sheriffs marked ``invalid`` — a
  documented false positive of Mozilla's detector that a good pipeline
  must NOT flag;
- one improvement (mean drops) whose alert has
  ``is_regression: false`` — also not ground truth;
- six quiet signatures (plain noise, one noisier, one slow drift) with
  no alerts at all.

Usage::

    PYTHONPATH=src python scripts/make_mozilla_slice.py \
        [--out benchmarks/data/mozilla_slice.json]

The output is stable; ``tests/test_connectors_mozilla.py`` asserts the
committed file matches what this script generates.
"""

import argparse
import json
import os
import sys

import numpy as np

SEED = 163332  # nod to arXiv 2503.16332
START = 1_700_000_000  # epoch-aligned corpus start
INTERVAL = 3600.0  # hourly pushes
N_POINTS = 240  # ten days of measurements per signature

DEFAULT_OUT = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "benchmarks", "data", "mozilla_slice.json",
)

# (signature_id, framework, suite, platform, test, unit, base,
#  noise_fraction, shape, shape_args)
SIGNATURES = [
    (101, "talos", "tp5o", "windows10-64", "responsiveness", "ms",
     320.0, 0.01, "step", {"at": 150, "relative": 0.08}),
    (102, "talos", "damp", "linux1804-64", "open-tab", "ms",
     145.0, 0.01, "step", {"at": 168, "relative": 0.05}),
    (103, "browsertime", "amazon", "android-hw-a51", "fcp", "ms",
     890.0, 0.01, "step", {"at": 140, "relative": 0.12}),
    (104, "awsy", "memory", "windows10-64", "base-memory", "bytes",
     5200.0, 0.01, "step", {"at": 176, "relative": 0.06}),
    (105, "talos", "tsvgx", "macosx1015-64", "svg-render", "ms",
     410.0, 0.01, "spike", {"at": 155, "relative": 0.25, "width": 3}),
    (106, "browsertime", "google", "linux1804-64", "loadtime", "ms",
     1340.0, 0.01, "step", {"at": 160, "relative": -0.09}),
    (107, "talos", "tp5o", "linux1804-64", "responsiveness", "ms",
     305.0, 0.01, "flat", {}),
    (108, "talos", "damp", "windows10-64", "open-tab", "ms",
     152.0, 0.01, "flat", {}),
    (109, "browsertime", "amazon", "windows10-64", "fcp", "ms",
     910.0, 0.02, "flat", {}),
    (110, "awsy", "memory", "linux1804-64", "base-memory", "bytes",
     4900.0, 0.01, "flat", {}),
    (111, "talos", "tsvgx", "windows10-64", "svg-render", "ms",
     395.0, 0.01, "drift", {"total_relative": 0.01}),
    (112, "browsertime", "google", "windows10-64", "loadtime", "ms",
     1290.0, 0.01, "flat", {}),
]

# (signature_id, step_index, is_regression, status)
ALERTS = [
    (101, 150, True, "acknowledged"),
    (102, 168, True, "acknowledged"),
    (103, 140, True, "fixed"),
    (104, 176, True, "acknowledged"),
    (105, 155, True, "invalid"),   # sheriffs rejected the transient
    (106, 160, False, "acknowledged"),  # improvement, not a regression
]


def make_values(rng, base, noise_fraction, shape, shape_args):
    values = rng.normal(base, base * noise_fraction, N_POINTS)
    if shape == "step":
        at = shape_args["at"]
        values[at:] += base * shape_args["relative"]
    elif shape == "spike":
        at, width = shape_args["at"], shape_args["width"]
        values[at:at + width] += base * shape_args["relative"]
    elif shape == "drift":
        values += np.linspace(0.0, base * shape_args["total_relative"], N_POINTS)
    elif shape != "flat":
        raise ValueError(f"unknown shape: {shape}")
    return values


def build_slice():
    rng = np.random.default_rng(SEED)
    series = []
    for (signature_id, framework, suite, platform, test, unit,
         base, noise_fraction, shape, shape_args) in SIGNATURES:
        values = make_values(rng, base, noise_fraction, shape, shape_args)
        series.append({
            "signature_id": signature_id,
            "framework": framework,
            "suite": suite,
            "test": test,
            "platform": platform,
            "repository": "autoland",
            "unit": unit,
            "lower_is_better": True,
            "measurements": [
                [int(START + index * INTERVAL), round(float(value), 3)]
                for index, value in enumerate(values)
            ],
        })
    alerts = [
        {
            "signature_id": signature_id,
            "push_timestamp": int(START + step_index * INTERVAL),
            "is_regression": is_regression,
            "status": status,
        }
        for signature_id, step_index, is_regression, status in ALERTS
    ]
    return {
        "dataset": "mozilla-perf-alerts-slice (arXiv 2503.16332 schema)",
        "interval_seconds": INTERVAL,
        "series": series,
        "alerts": alerts,
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default=DEFAULT_OUT)
    parser.add_argument(
        "--check", action="store_true",
        help="verify the existing file matches instead of writing",
    )
    args = parser.parse_args(argv)

    payload = json.dumps(build_slice(), indent=1, sort_keys=True) + "\n"
    if args.check:
        with open(args.out, "r", encoding="utf-8") as handle:
            if handle.read() != payload:
                print(f"STALE: {args.out} differs from the generator output")
                return 1
        print(f"OK: {args.out} is up to date")
        return 0
    os.makedirs(os.path.dirname(args.out), exist_ok=True)
    with open(args.out, "w", encoding="utf-8") as handle:
        handle.write(payload)
    print(f"wrote {args.out} ({len(payload)} bytes)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
