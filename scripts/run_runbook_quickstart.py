#!/usr/bin/env python3
"""Execute the RUNBOOK quickstart block verbatim (doctest for docs).

The ``docs`` CI job runs this so the commands operators copy-paste from
``docs/RUNBOOK.md`` cannot rot.  The script extracts the fenced shell
block introduced by the ``<!-- ci:quickstart -->`` marker, writes it to
a scratch directory, and runs it under ``sh -e`` (fail on first error)
with ``PYTHONPATH`` pointing at this checkout's ``src``.

Usage::

    python scripts/run_runbook_quickstart.py            # run it
    python scripts/run_runbook_quickstart.py --print    # show the block
"""

from __future__ import annotations

import argparse
import os
import re
import subprocess
import sys
import tempfile
from typing import List, Optional

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
RUNBOOK = os.path.join(REPO_ROOT, "docs", "RUNBOOK.md")
MARKER = "<!-- ci:quickstart -->"

_BLOCK = re.compile(
    re.escape(MARKER) + r"\s*\n```(?:bash|sh|console)\n(.*?)\n```",
    re.DOTALL,
)


def extract_quickstart(path: str = RUNBOOK) -> str:
    """Return the quickstart shell script from the runbook.

    Raises ``ValueError`` when the marker or its fenced block is
    missing — a deleted or mangled quickstart must fail CI, not pass
    vacuously.
    """
    with open(path, encoding="utf-8") as handle:
        text = handle.read()
    match = _BLOCK.search(text)
    if not match:
        raise ValueError(
            f"{path} has no '{MARKER}' marker followed by a fenced "
            "bash block"
        )
    script = match.group(1).strip()
    if not script:
        raise ValueError(f"quickstart block in {path} is empty")
    return script


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--print",
        dest="print_only",
        action="store_true",
        help="print the extracted block instead of running it",
    )
    args = parser.parse_args(argv)

    script = extract_quickstart()
    if args.print_only:
        print(script)
        return 0

    env = dict(os.environ)
    src = os.path.join(REPO_ROOT, "src")
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, [src, env.get("PYTHONPATH")])
    )

    # A scratch cwd keeps artifacts (./demo-checkpoint) out of the repo.
    with tempfile.TemporaryDirectory(prefix="runbook-quickstart-") as scratch:
        path = os.path.join(scratch, "quickstart.sh")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(script + "\n")
        print(f"+ sh -e quickstart.sh (cwd={scratch})", flush=True)
        result = subprocess.run(
            ["sh", "-e", path], cwd=scratch, env=env, check=False
        )
    if result.returncode:
        print(
            f"quickstart failed with exit code {result.returncode}",
            file=sys.stderr,
        )
    return result.returncode


if __name__ == "__main__":
    raise SystemExit(main())
