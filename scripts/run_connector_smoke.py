#!/usr/bin/env python
"""CI connector smoke: corpus in one end, webhooks out the other.

End-to-end over the real-data edge added with ``repro.connectors``:
loads the committed Mozilla slice (``benchmarks/data/mozilla_slice.json``),
imports it through the series mapper and the admission layer, runs
scheduled detection over it, and delivers every incident to a
:class:`~repro.connectors.WebhookSink` posting to an in-process HTTP
endpoint.  Gates on:

- a clean import: no bad rows, every offered sample accepted;
- a perfect corpus score: every labeled regression caught (no FNs),
  nothing else reported (no FPs) — F1 == 1.0;
- a reliable alerting edge: every delivered report reaches the webhook
  endpoint exactly once, with the payload footer carrying the same
  correlation id the service would log.

Exit status 0 on success, 1 with a diagnostic on any violation.

Usage::

    PYTHONPATH=src python scripts/run_connector_smoke.py
"""

import argparse
import json
import os
import sys
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO, "benchmarks"))

from bench_mozilla_corpus import SLICE_PATH, run_corpus, score_corpus  # noqa: E402
from repro.connectors import WebhookSink, alert_id  # noqa: E402


class RecordingEndpoint:
    """Minimal in-process webhook receiver recording accepted bodies."""

    def __init__(self):
        self.accepted = []
        self._lock = threading.Lock()
        endpoint = self

        class Handler(BaseHTTPRequestHandler):
            def do_POST(self):
                body = self.rfile.read(
                    int(self.headers.get("Content-Length", 0))
                )
                with endpoint._lock:
                    endpoint.accepted.append(json.loads(body))
                self.send_response(200)
                self.send_header("Content-Length", "2")
                self.end_headers()
                self.wfile.write(b"ok")

            def log_message(self, *args):
                pass

        self._server = ThreadingHTTPServer(("127.0.0.1", 0), Handler)
        self._thread = threading.Thread(
            target=self._server.serve_forever, daemon=True
        )
        self._thread.start()
        self.url = f"http://127.0.0.1:{self._server.server_address[1]}/hook"

    def close(self):
        self._server.shutdown()
        self._server.server_close()


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--slice", default=SLICE_PATH,
                        help="corpus slice to replay (default: committed)")
    args = parser.parse_args(argv)

    failures = []

    def check(ok, message):
        print(("ok   " if ok else "FAIL ") + message)
        if not ok:
            failures.append(message)

    endpoint = RecordingEndpoint()
    sink = WebhookSink(endpoint.url, max_retries=2, backoff=0.05)
    try:
        corpus, stats, reports, labels = run_corpus(args.slice, sinks=[sink])
        sink.flush(timeout=10.0)
    finally:
        sink.close()
        endpoint.close()

    scores = score_corpus(reports, labels)
    n_labels = sum(len(times) for times in labels.values())
    print(
        f"corpus: {len(corpus.series)} series, {stats.offered} samples, "
        f"{n_labels} labeled regressions"
    )
    print(
        f"score: tp={scores['tp']} fp={scores['fp']} fn={scores['fn']} "
        f"f1={scores['f1']:.3f}"
    )
    tally = sink.counters
    print(f"webhook: {dict(sorted(tally.items()))}")

    check(stats.bad_rows == 0, "import: no bad rows")
    check(stats.accepted == stats.offered > 0,
          "admission: every offered sample accepted")
    check(scores["fn"] == 0, "detection: every labeled regression caught")
    check(scores["fp"] == 0, "detection: no false positives")
    check(scores["f1"] == 1.0, "score: F1 == 1.0")
    check(tally["enqueued"] == len(reports),
          "webhook: every report enqueued (no dedup collisions)")
    check(tally["delivered"] == tally["enqueued"] and tally["failed"] == 0,
          "webhook: every alert delivered")
    check(len(endpoint.accepted) == len(reports),
          "endpoint: one request per report")
    expected_ids = sorted(alert_id(report) for report in reports)
    received_ids = sorted(
        body["attachments"][0]["footer"] for body in endpoint.accepted
    )
    check(received_ids == expected_ids,
          "payload: footers carry the service correlation ids")

    if failures:
        print(f"\nconnector smoke FAILED ({len(failures)} violations)")
        return 1
    print("\nconnector smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
