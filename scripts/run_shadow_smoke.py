#!/usr/bin/env python
"""CI shadow smoke: challenger detectors must be alert-inert.

Runs the same fleet stream twice through a parallel (``--workers 4``)
detection service — once with no shadow detectors, once with a
challenger panel (``mad`` plus a static ``threshold`` preset) riding
every monitor — and gates on:

- the shadow run's incident reports are **byte-identical** to the
  plain run's (challengers never touch verdicts or delivery);
- the planted regression is still caught (exactly one report);
- the challengers actually scored: every registered detector ID shows
  a non-zero scan tally on ``detectors_snapshot()``;
- the funnel tallies reach the Prometheus surface (``detector_*``
  counters in the rendered exposition).

Exit status 0 on success, 1 with a diagnostic on any violation.

Usage::

    PYTHONPATH=src python scripts/run_shadow_smoke.py [--workers 4]
"""

import argparse
import json
import math
import sys

import numpy as np

from repro.config import DetectionConfig
from repro.runtime import CollectingSink
from repro.service import BackpressurePolicy, Sample, StreamingDetectionService
from repro.tsdb import WindowSpec

N_TICKS = 1_100
INTERVAL = 60.0
CHANGE_TICK = 700
REGRESS_INDEX = 3
SERIES = [f"svc.sub{i}.gcpu" for i in range(8)]
N_SHARDS = 4
ROUND_TICKS = 200

#: The challenger panel: cheap, deterministic presets — the smoke gates
#: on inertness and plumbing, not on challenger quality.
SHADOW_SPECS = ("mad", ("threshold", {"level": 0.00106}))


def make_stream(seed=7):
    rng = np.random.default_rng(seed)
    table = {}
    for index, name in enumerate(SERIES):
        values = rng.normal(0.001, 0.00002, N_TICKS)
        if index == REGRESS_INDEX:
            values[CHANGE_TICK:] += 0.0003
        table[name] = values
    samples = []
    for tick in range(N_TICKS):
        for name in SERIES:
            samples.append(
                Sample(name, tick * INTERVAL, float(table[name][tick]),
                       {"metric": "gcpu"})
            )
    return samples


def run(samples, workers, shadow=None):
    sink = CollectingSink()
    service = StreamingDetectionService(
        n_shards=N_SHARDS,
        workers=workers,
        sinks=[sink],
        queue_capacity=2**14,
        backpressure=BackpressurePolicy.BLOCK,
        batch_size=128,
    )
    service.register_monitor(
        "gcpu",
        DetectionConfig(
            name="shadow-smoke",
            threshold=0.00005,
            rerun_interval=6_000.0,
            windows=WindowSpec(
                historic=36_000.0, analysis=12_000.0, extended=6_000.0
            ),
            long_term=False,
        ),
        series_filter={"metric": "gcpu"},
        shadow=shadow,
    )
    try:
        span = ROUND_TICKS * INTERVAL
        rounds = int(math.ceil(N_TICKS / ROUND_TICKS))
        for index in range(rounds):
            begin, end = index * span, (index + 1) * span
            service.ingest_many(
                [s for s in samples if begin <= s.timestamp < end]
            )
            service.advance_to(end)
        service.flush()
        reports = json.dumps(
            [r.to_dict() for r in sink.reports], sort_keys=True
        )
        return (
            reports,
            [r.metric_id for r in sink.reports],
            service.detectors_snapshot(),
            service.render_metrics(),
        )
    finally:
        service.close()


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=4)
    args = parser.parse_args(argv)

    samples = make_stream()
    plain_reports, plain_alerted, plain_snapshot, _ = run(samples, args.workers)
    if plain_alerted != [SERIES[REGRESS_INDEX]]:
        print(f"FAIL: plain run alerted {plain_alerted}, expected "
              f"[{SERIES[REGRESS_INDEX]!r}]")
        return 1
    if plain_snapshot["enabled"]:
        print("FAIL: plain run reports shadow mode enabled")
        return 1

    shadow_reports, shadow_alerted, snapshot, metrics_text = run(
        samples, args.workers, shadow=SHADOW_SPECS
    )

    rows = snapshot["detectors"]
    print(f"plain alerts:   {plain_alerted}")
    print(f"shadow alerts:  {shadow_alerted}")
    for row in rows:
        tally = row["tally"]
        print(f"challenger {row['id']}: scans={tally['scans']} "
              f"fired={tally['fired']} agree={tally['agree_fired']} "
              f"errors={tally['errors']}")

    if shadow_reports != plain_reports:
        print("FAIL: shadow-run reports are not byte-identical to plain")
        return 1
    if not snapshot["enabled"] or len(rows) != len(SHADOW_SPECS):
        print(f"FAIL: expected {len(SHADOW_SPECS)} challenger rows, "
              f"got {len(rows)}")
        return 1
    idle = [row["id"] for row in rows if row["tally"]["scans"] == 0]
    if idle:
        print(f"FAIL: challengers never scored: {idle}")
        return 1
    if "detector_" not in metrics_text:
        print("FAIL: no detector_* counters in the Prometheus exposition")
        return 1
    print("OK: challenger panel alert-inert, tallies flowing")
    return 0


if __name__ == "__main__":
    sys.exit(main())
