#!/usr/bin/env python
"""CI quality smoke: the dirty-data drill must not move an alert.

Runs the same fleet stream twice through a parallel (``--workers 4``)
detection service — once clean, once through
:func:`repro.fleet.dirty_stream` (local reordering, NaN bursts, gaps on
quiet series, a counter rollover) — and gates on:

- zero false alerts: the dirty run's incident reports are
  **byte-identical** to the clean run's;
- the planted regression is still caught (exactly one report);
- the damage actually happened and was absorbed: quarantined NaNs,
  one rebased counter reset, reordered deliveries re-sequenced.

Exit status 0 on success, 1 with a diagnostic on any violation.

Usage::

    PYTHONPATH=src python scripts/run_quality_smoke.py [--workers 4]
"""

import argparse
import json
import math
import sys

import numpy as np

from repro.config import DetectionConfig
from repro.fleet import DirtyDataSpec, dirty_stream
from repro.runtime import CollectingSink
from repro.service import BackpressurePolicy, Sample, StreamingDetectionService
from repro.tsdb import WindowSpec

N_TICKS = 1_100
INTERVAL = 60.0
CHANGE_TICK = 700
REGRESS_INDEX = 3
SERIES = [f"svc.sub{i}.gcpu" for i in range(8)]
COUNTER = "svc.requests.count"
N_SHARDS = 4
ROUND_TICKS = 200


def make_stream(seed=7):
    rng = np.random.default_rng(seed)
    table = {}
    for index, name in enumerate(SERIES):
        values = rng.normal(0.001, 0.00002, N_TICKS)
        if index == REGRESS_INDEX:
            values[CHANGE_TICK:] += 0.0003
        table[name] = values
    samples = []
    for tick in range(N_TICKS):
        for name in SERIES:
            samples.append(
                Sample(name, tick * INTERVAL, float(table[name][tick]),
                       {"metric": "gcpu"})
            )
        samples.append(
            Sample(COUNTER, tick * INTERVAL, float(7 * tick),
                   {"metric": "requests", "type": "counter"})
        )
    return samples


def dirty_spec():
    return DirtyDataSpec(
        seed=5,
        reorder_block=3 * (len(SERIES) + 1),
        nan_series=(SERIES[0], SERIES[REGRESS_INDEX]),
        gap_series=(SERIES[1], SERIES[2]),
        gap_fraction=0.05,
        rollover_series=(COUNTER,),
    )


def run(samples, workers):
    sink = CollectingSink()
    service = StreamingDetectionService(
        n_shards=N_SHARDS,
        workers=workers,
        sinks=[sink],
        queue_capacity=2**14,
        backpressure=BackpressurePolicy.BLOCK,
        batch_size=128,
    )
    service.register_monitor(
        "gcpu",
        DetectionConfig(
            name="quality-smoke",
            threshold=0.00005,
            rerun_interval=6_000.0,
            windows=WindowSpec(
                historic=36_000.0, analysis=12_000.0, extended=6_000.0
            ),
            long_term=False,
        ),
        series_filter={"metric": "gcpu"},
    )
    try:
        span = ROUND_TICKS * INTERVAL
        rounds = int(math.ceil(N_TICKS / ROUND_TICKS))
        for index in range(rounds):
            begin, end = index * span, (index + 1) * span
            service.ingest_many(
                [s for s in samples if begin <= s.timestamp < end]
            )
            service.advance_to(end)
        service.flush()
        reports = json.dumps(
            [r.to_dict() for r in sink.reports], sort_keys=True
        )
        return reports, [r.metric_id for r in sink.reports], (
            service.quality_snapshot()
        )
    finally:
        service.close()


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=4)
    args = parser.parse_args(argv)

    samples = make_stream()
    clean_reports, clean_alerted, _ = run(samples, args.workers)
    if clean_alerted != [SERIES[REGRESS_INDEX]]:
        print(f"FAIL: clean run alerted {clean_alerted}, expected "
              f"[{SERIES[REGRESS_INDEX]!r}]")
        return 1

    dirty = dirty_stream(samples, dirty_spec())
    dirty_reports, dirty_alerted, quality = run(dirty, args.workers)

    counters = quality["counters"]
    false_alerts = sorted(set(dirty_alerted) - set(clean_alerted))
    print(f"clean alerts:  {clean_alerted}")
    print(f"dirty alerts:  {dirty_alerted}")
    print(f"quarantined:   {quality['quarantined_points']}")
    print(f"reordered:     {counters['reordered']}")
    print(f"counter resets: {counters['counter_resets']}")

    if false_alerts:
        print(f"FAIL: false alerts on dirty data: {false_alerts}")
        return 1
    if dirty_reports != clean_reports:
        print("FAIL: dirty-run reports are not byte-identical to clean")
        return 1
    if quality["quarantined_points"] == 0:
        print("FAIL: drill injected no quarantinable damage")
        return 1
    if counters["counter_resets"] != 1:
        print(f"FAIL: expected 1 counter reset, saw "
              f"{counters['counter_resets']}")
        return 1
    if counters["reordered"] == 0:
        print("FAIL: drill reordered nothing")
        return 1
    print("OK: dirty-data drill byte-identical, zero false alerts")
    return 0


if __name__ == "__main__":
    sys.exit(main())
