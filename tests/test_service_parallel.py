"""Tests for repro.service.parallel and the service's workers>1 path.

The contract under test: for the same fleet input, parallel
multi-process execution produces *byte-identical* report sets to serial
in-thread execution (the merge barrier runs in ascending shard-id order,
matching the serial iteration), and checkpoints taken mid-stream restore
correctly under ``workers=4`` — with every derived incremental-scan
cache dropped at the trust boundary.
"""

import json
import threading
import time

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import DetectionConfig
from repro.runtime import CollectingSink
from repro.service import (
    BackpressurePolicy,
    ParallelShardExecutor,
    Sample,
    StreamingDetectionService,
)
from repro.tsdb import WindowSpec

N_TICKS = 1_100
INTERVAL = 60.0
CHANGE_TICK = 700
SERIES = [f"svc.sub{i}.gcpu" for i in range(8)]


def small_config(**overrides):
    defaults = dict(
        name="test",
        threshold=0.00005,
        rerun_interval=6_000.0,
        windows=WindowSpec(historic=36_000.0, analysis=12_000.0, extended=6_000.0),
        long_term=False,
    )
    defaults.update(overrides)
    return DetectionConfig(**defaults)


def make_stream(seed, regress_index):
    rng = np.random.default_rng(seed)
    table = {}
    for index, name in enumerate(SERIES):
        values = rng.normal(0.001, 0.00002, N_TICKS)
        if index == regress_index:
            values[CHANGE_TICK:] += 0.0003
        table[name] = values
    samples = []
    for name in SERIES:
        samples.extend(
            Sample(name, tick * INTERVAL, float(table[name][tick]),
                   {"metric": "gcpu"})
            for tick in range(N_TICKS)
        )
    samples.sort(key=lambda s: s.timestamp)
    return samples


def make_service(sink, workers, n_shards=4):
    service = StreamingDetectionService(
        n_shards=n_shards,
        workers=workers,
        sinks=[sink],
        queue_capacity=512,
        backpressure=BackpressurePolicy.BLOCK,
        batch_size=128,
    )
    service.register_monitor("gcpu", small_config(), series_filter={"metric": "gcpu"})
    return service


def run_stream(samples, workers, n_shards=4, advance_every=200):
    sink = CollectingSink()
    service = make_service(sink, workers, n_shards)
    chunk = advance_every * len(SERIES)
    for begin in range(0, len(samples), chunk):
        batch = samples[begin : begin + chunk]
        service.ingest_many(batch)
        service.advance_to(batch[-1].timestamp + INTERVAL)
    snapshot = service.metrics.snapshot()
    service.close()
    return sink.reports, snapshot


def report_bytes(reports):
    return json.dumps([r.to_dict() for r in reports], sort_keys=True)


class TestParallelShardExecutor:
    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError, match="workers"):
            ParallelShardExecutor(workers=0)

    def test_close_is_idempotent(self):
        executor = ParallelShardExecutor(workers=2)
        executor.close()
        executor.close()

    def test_context_manager(self):
        with ParallelShardExecutor(workers=2) as executor:
            assert executor.workers == 2

    def test_service_rejects_zero_workers(self):
        with pytest.raises(ValueError, match="workers"):
            StreamingDetectionService(n_shards=2, workers=0)


class TestSerialParallelEquivalence:
    @settings(
        max_examples=4,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        regress_index=st.integers(min_value=0, max_value=len(SERIES) - 1),
    )
    def test_reports_byte_identical(self, seed, regress_index):
        """Property: same fleet seed -> byte-identical report sets."""
        samples = make_stream(seed, regress_index)
        serial_reports, serial_metrics = run_stream(samples, workers=1)
        parallel_reports, parallel_metrics = run_stream(samples, workers=4)
        assert report_bytes(parallel_reports) == report_bytes(serial_reports)
        # The scan schedule (and thus cache decisions) must match too.
        for key in ("pipeline.incremental.hits", "pipeline.incremental.misses"):
            assert parallel_metrics["counters"].get(key) == \
                serial_metrics["counters"].get(key)

    def test_known_regression_detected_in_both_modes(self):
        samples = make_stream(seed=7, regress_index=3)
        serial_reports, _ = run_stream(samples, workers=1)
        parallel_reports, _ = run_stream(samples, workers=4)
        assert {r.metric_id for r in serial_reports} == {"svc.sub3.gcpu"}
        assert report_bytes(parallel_reports) == report_bytes(serial_reports)

    def test_parallel_merges_worker_metrics(self):
        samples = make_stream(seed=7, regress_index=3)
        _, metrics = run_stream(samples, workers=4)
        counters = metrics["counters"]
        assert metrics["gauges"]["service.workers"] == 4.0
        assert counters["service.parallel_advances"] > 0
        # Worker-side instruments survived the merge back into the parent.
        assert counters["ingest.flushed"] == len(SERIES) * N_TICKS
        assert metrics["histograms"]["service.shard_advance_seconds"]["count"] > 0
        assert metrics["histograms"]["scheduler.scan_seconds"]["count"] > 0


class TestConcurrentIngestDuringAdvance:
    """The nothing-is-lost contract under live streaming + workers>1.

    Regression test for the stale-database flush race: with background
    flushers (``start()``) or BLOCK-policy caller-runs flushes active
    while a parallel advance is in flight, samples used to be flushed
    into the superseded pre-advance database and silently discarded
    when the advanced state landed.  Every accepted sample must end up
    in a shard TSDB, exactly once.
    """

    N_PRODUCERS = 4

    def test_no_accepted_sample_lost_with_flushers_and_block(self):
        service = StreamingDetectionService(
            n_shards=2,
            workers=2,
            queue_capacity=32,
            backpressure=BackpressurePolicy.BLOCK,
            batch_size=8,
        )
        service.register_monitor(
            "gcpu", small_config(), series_filter={"metric": "gcpu"}
        )
        service.start(flush_interval=0.001)
        stop = threading.Event()
        counts = [0] * self.N_PRODUCERS

        def produce(index):
            name = SERIES[index]
            while not stop.is_set():
                service.ingest(
                    name, counts[index] * INTERVAL, 0.001, {"metric": "gcpu"}
                )
                counts[index] += 1
                time.sleep(0.0005)  # bound the stream volume

        producers = [
            threading.Thread(target=produce, args=(index,), daemon=True)
            for index in range(self.N_PRODUCERS)
        ]
        for producer in producers:
            producer.start()
        # Parallel advances race against live producers and flushers.
        for round_index in range(4):
            service.advance_to((round_index + 1) * 10_000.0)
        stop.set()
        for producer in producers:
            producer.join(timeout=10.0)
        assert not any(producer.is_alive() for producer in producers)
        service.stop()  # drain whatever is still queued

        stats = service.stats()
        total_offered = sum(counts)
        assert stats.offered == total_offered
        assert stats.accepted == total_offered  # BLOCK never sheds load
        assert stats.dropped == 0 and stats.rejected == 0
        total_points = sum(
            len(series)
            for shard_id in range(2)
            for series in service.shard_database(shard_id)
        )
        # Exactly once: nothing lost to a stale database, nothing
        # double-ingested across the swap.
        assert stats.flushed == total_offered
        assert total_points == total_offered
        service.close()


class TestKillRestoreUnderWorkers:
    KILL_TICK = 950  # after the first report (scan at t=54000) lands

    def test_kill_mid_stream_restore_with_workers(self, tmp_path):
        """Regression test: restore must drop derived incremental state.

        A service killed mid-stream and restored under ``workers=4``
        must deliver exactly the reports the uninterrupted run would
        have — even though the checkpoint blobs carry warm scan caches
        whose anchors describe pre-kill history.
        """
        samples = make_stream(seed=7, regress_index=3)
        split = self.KILL_TICK * len(SERIES)

        reference_reports, _ = run_stream(samples, workers=4)

        sink_before = CollectingSink()
        victim = make_service(sink_before, workers=4)
        chunk = 200 * len(SERIES)
        for begin in range(0, split, chunk):
            batch = samples[begin : min(begin + chunk, split)]
            victim.ingest_many(batch)
            victim.advance_to(batch[-1].timestamp + INTERVAL)
        assert sink_before.reports, "first report must land before the kill"
        directory = str(tmp_path / "ckpt")
        victim.checkpoint(directory)
        victim.close()
        del victim  # the "crash"

        sink_after = CollectingSink()
        restored = StreamingDetectionService.restore(
            directory, sinks=[sink_after], workers=4
        )
        # The trust boundary: every restored pipeline starts with an
        # empty incremental cache, whatever the blob carried.
        for shard in restored._shards.values():
            for registration in shard.scheduler._monitors.values():
                cache = registration.detector.pipeline.incremental_cache
                assert cache is not None and len(cache) == 0

        for begin in range(split, len(samples), chunk):
            batch = samples[begin : begin + chunk]
            restored.ingest_many(batch)
            restored.advance_to(batch[-1].timestamp + INTERVAL)
        restored.close()

        combined = sink_before.reports + sink_after.reports
        assert report_bytes(combined) == report_bytes(reference_reports)

    def test_checkpoint_blobs_keep_caches_but_restore_drops_them(self, tmp_path):
        samples = make_stream(seed=7, regress_index=3)
        split = self.KILL_TICK * len(SERIES)
        service = make_service(CollectingSink(), workers=1)
        chunk = 200 * len(SERIES)
        for begin in range(0, split, chunk):
            batch = samples[begin : min(begin + chunk, split)]
            service.ingest_many(batch)
            service.advance_to(batch[-1].timestamp + INTERVAL)
        # The live service holds warm anchors by now.
        warm = sum(
            len(registration.detector.pipeline.incremental_cache)
            for shard in service._shards.values()
            for registration in shard.scheduler._monitors.values()
        )
        assert warm > 0
        directory = str(tmp_path / "ckpt")
        service.checkpoint(directory)
        restored = StreamingDetectionService.restore(directory)
        cold = sum(
            len(registration.detector.pipeline.incremental_cache)
            for shard in restored._shards.values()
            for registration in shard.scheduler._monitors.values()
        )
        assert cold == 0
