"""Tests for repro.service.parallel and the service's workers>1 path.

The contract under test: for the same fleet input, parallel
multi-process execution produces *byte-identical* report sets to serial
in-thread execution (the merge barrier runs in ascending shard-id order,
matching the serial iteration), and checkpoints taken mid-stream restore
correctly under ``workers=4`` — with every derived incremental-scan
cache dropped at the trust boundary.
"""

import json
import os
import signal
import threading
import time

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import DetectionConfig
from repro.faults import FaultInjector, FaultKind, FaultPlan, FaultSpec
from repro.runtime import CollectingSink
from repro.service import (
    BackpressurePolicy,
    ParallelShardExecutor,
    Sample,
    StreamingDetectionService,
)
from repro.service.metrics import MetricsRegistry
from repro.tsdb import WindowSpec

N_TICKS = 1_100
INTERVAL = 60.0
CHANGE_TICK = 700
SERIES = [f"svc.sub{i}.gcpu" for i in range(8)]


def small_config(**overrides):
    defaults = dict(
        name="test",
        threshold=0.00005,
        rerun_interval=6_000.0,
        windows=WindowSpec(historic=36_000.0, analysis=12_000.0, extended=6_000.0),
        long_term=False,
    )
    defaults.update(overrides)
    return DetectionConfig(**defaults)


def make_stream(seed, regress_index):
    rng = np.random.default_rng(seed)
    table = {}
    for index, name in enumerate(SERIES):
        values = rng.normal(0.001, 0.00002, N_TICKS)
        if index == regress_index:
            values[CHANGE_TICK:] += 0.0003
        table[name] = values
    samples = []
    for name in SERIES:
        samples.extend(
            Sample(name, tick * INTERVAL, float(table[name][tick]),
                   {"metric": "gcpu"})
            for tick in range(N_TICKS)
        )
    samples.sort(key=lambda s: s.timestamp)
    return samples


def make_service(sink, workers, n_shards=4):
    service = StreamingDetectionService(
        n_shards=n_shards,
        workers=workers,
        sinks=[sink],
        queue_capacity=512,
        backpressure=BackpressurePolicy.BLOCK,
        batch_size=128,
    )
    service.register_monitor("gcpu", small_config(), series_filter={"metric": "gcpu"})
    return service


def run_stream(samples, workers, n_shards=4, advance_every=200):
    sink = CollectingSink()
    service = make_service(sink, workers, n_shards)
    chunk = advance_every * len(SERIES)
    for begin in range(0, len(samples), chunk):
        batch = samples[begin : begin + chunk]
        service.ingest_many(batch)
        service.advance_to(batch[-1].timestamp + INTERVAL)
    snapshot = service.metrics.snapshot()
    service.close()
    return sink.reports, snapshot


def report_bytes(reports):
    return json.dumps([r.to_dict() for r in reports], sort_keys=True)


class TestParallelShardExecutor:
    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError, match="workers"):
            ParallelShardExecutor(workers=0)

    def test_close_is_idempotent(self):
        executor = ParallelShardExecutor(workers=2)
        executor.close()
        executor.close()

    def test_context_manager(self):
        with ParallelShardExecutor(workers=2) as executor:
            assert executor.workers == 2

    def test_service_rejects_zero_workers(self):
        with pytest.raises(ValueError, match="workers"):
            StreamingDetectionService(n_shards=2, workers=0)


class TestSerialParallelEquivalence:
    @settings(
        max_examples=4,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        regress_index=st.integers(min_value=0, max_value=len(SERIES) - 1),
    )
    def test_reports_byte_identical(self, seed, regress_index):
        """Property: same fleet seed -> byte-identical report sets."""
        samples = make_stream(seed, regress_index)
        serial_reports, serial_metrics = run_stream(samples, workers=1)
        parallel_reports, parallel_metrics = run_stream(samples, workers=4)
        assert report_bytes(parallel_reports) == report_bytes(serial_reports)
        # The scan schedule (and thus cache decisions) must match too.
        for key in ("pipeline.incremental.hits", "pipeline.incremental.misses"):
            assert parallel_metrics["counters"].get(key) == \
                serial_metrics["counters"].get(key)

    def test_known_regression_detected_in_both_modes(self):
        samples = make_stream(seed=7, regress_index=3)
        serial_reports, _ = run_stream(samples, workers=1)
        parallel_reports, _ = run_stream(samples, workers=4)
        assert {r.metric_id for r in serial_reports} == {"svc.sub3.gcpu"}
        assert report_bytes(parallel_reports) == report_bytes(serial_reports)

    def test_parallel_merges_worker_metrics(self):
        samples = make_stream(seed=7, regress_index=3)
        _, metrics = run_stream(samples, workers=4)
        counters = metrics["counters"]
        assert metrics["gauges"]["service.workers"] == 4.0
        assert counters["service.parallel_advances"] > 0
        # Worker-side instruments survived the merge back into the parent.
        assert counters["ingest.flushed"] == len(SERIES) * N_TICKS
        assert metrics["histograms"]["service.shard_advance_seconds"]["count"] > 0
        assert metrics["histograms"]["scheduler.scan_seconds"]["count"] > 0


class TestConcurrentIngestDuringAdvance:
    """The nothing-is-lost contract under live streaming + workers>1.

    Regression test for the stale-database flush race: with background
    flushers (``start()``) or BLOCK-policy caller-runs flushes active
    while a parallel advance is in flight, samples used to be flushed
    into the superseded pre-advance database and silently discarded
    when the advanced state landed.  Every accepted sample must end up
    in a shard TSDB, exactly once.
    """

    N_PRODUCERS = 4

    def test_no_accepted_sample_lost_with_flushers_and_block(self):
        service = StreamingDetectionService(
            n_shards=2,
            workers=2,
            queue_capacity=32,
            backpressure=BackpressurePolicy.BLOCK,
            batch_size=8,
        )
        service.register_monitor(
            "gcpu", small_config(), series_filter={"metric": "gcpu"}
        )
        service.start(flush_interval=0.001)
        stop = threading.Event()
        counts = [0] * self.N_PRODUCERS

        def produce(index):
            name = SERIES[index]
            while not stop.is_set():
                service.ingest(
                    name, counts[index] * INTERVAL, 0.001, {"metric": "gcpu"}
                )
                counts[index] += 1
                time.sleep(0.0005)  # bound the stream volume

        producers = [
            threading.Thread(target=produce, args=(index,), daemon=True)
            for index in range(self.N_PRODUCERS)
        ]
        for producer in producers:
            producer.start()
        # Parallel advances race against live producers and flushers.
        for round_index in range(4):
            service.advance_to((round_index + 1) * 10_000.0)
        stop.set()
        for producer in producers:
            producer.join(timeout=10.0)
        assert not any(producer.is_alive() for producer in producers)
        service.stop()  # drain whatever is still queued

        stats = service.stats()
        total_offered = sum(counts)
        assert stats.offered == total_offered
        assert stats.accepted == total_offered  # BLOCK never sheds load
        assert stats.dropped == 0 and stats.rejected == 0
        total_points = sum(
            len(series)
            for shard_id in range(2)
            for series in service.shard_database(shard_id)
        )
        # Exactly once: nothing lost to a stale database, nothing
        # double-ingested across the swap.
        assert stats.flushed == total_offered
        assert total_points == total_offered
        service.close()


class TestKillRestoreUnderWorkers:
    KILL_TICK = 950  # after the first report (scan at t=54000) lands

    def test_kill_mid_stream_restore_with_workers(self, tmp_path):
        """Regression test: restore must drop derived incremental state.

        A service killed mid-stream and restored under ``workers=4``
        must deliver exactly the reports the uninterrupted run would
        have — even though the checkpoint blobs carry warm scan caches
        whose anchors describe pre-kill history.
        """
        samples = make_stream(seed=7, regress_index=3)
        split = self.KILL_TICK * len(SERIES)

        reference_reports, _ = run_stream(samples, workers=4)

        sink_before = CollectingSink()
        victim = make_service(sink_before, workers=4)
        chunk = 200 * len(SERIES)
        for begin in range(0, split, chunk):
            batch = samples[begin : min(begin + chunk, split)]
            victim.ingest_many(batch)
            victim.advance_to(batch[-1].timestamp + INTERVAL)
        assert sink_before.reports, "first report must land before the kill"
        directory = str(tmp_path / "ckpt")
        victim.checkpoint(directory)
        victim.close()
        del victim  # the "crash"

        sink_after = CollectingSink()
        restored = StreamingDetectionService.restore(
            directory, sinks=[sink_after], workers=4
        )
        # The trust boundary: every restored pipeline starts with an
        # empty incremental cache, whatever the blob carried.
        for shard in restored._shards.values():
            for registration in shard.scheduler._monitors.values():
                cache = registration.detector.pipeline.incremental_cache
                assert cache is not None and len(cache) == 0

        for begin in range(split, len(samples), chunk):
            batch = samples[begin : begin + chunk]
            restored.ingest_many(batch)
            restored.advance_to(batch[-1].timestamp + INTERVAL)
        restored.close()

        combined = sink_before.reports + sink_after.reports
        assert report_bytes(combined) == report_bytes(reference_reports)

class TestAdvanceFailureRecovery:
    """Crash-safe shard advances: the failure paths of map_shards.

    Regression tests for the poisoned-pool bug: a worker crash used to
    raise ``BrokenProcessPool`` out of ``advance_to`` *and* leave the
    broken pool cached, so every later advance failed too.  Now the
    executor retries on a fresh pool and, when retries exhaust, advances
    the shard in-process — and either way the delivered reports are
    byte-identical to an undisturbed run.
    """

    def test_sigkill_pool_worker_with_live_producers_loses_nothing(self):
        """SIGKILL a pool worker under workers=4 with producers running."""
        service = StreamingDetectionService(
            n_shards=4,
            workers=4,
            queue_capacity=64,
            backpressure=BackpressurePolicy.BLOCK,
            batch_size=16,
        )
        service.register_monitor(
            "gcpu", small_config(), series_filter={"metric": "gcpu"}
        )
        service.start(flush_interval=0.001)
        # Prime the pool so worker processes exist to kill.
        service.advance_to(1.0)
        stop = threading.Event()
        counts = [0] * 4

        def produce(index):
            name = SERIES[index]
            while not stop.is_set():
                service.ingest(
                    name, counts[index] * INTERVAL, 0.001, {"metric": "gcpu"}
                )
                counts[index] += 1
                time.sleep(0.0005)

        producers = [
            threading.Thread(target=produce, args=(index,), daemon=True)
            for index in range(4)
        ]
        for producer in producers:
            producer.start()
        try:
            for round_index in range(4):
                victim_pid = next(iter(service._executor._pool._processes))
                os.kill(victim_pid, signal.SIGKILL)
                # The advance runs against a pool with a freshly killed
                # worker; recovery must be invisible to the caller.
                service.advance_to((round_index + 2) * 10_000.0)
        finally:
            stop.set()
            for producer in producers:
                producer.join(timeout=10.0)
        assert not any(producer.is_alive() for producer in producers)
        service.stop()

        stats = service.stats()
        total_offered = sum(counts)
        assert stats.offered == total_offered
        assert stats.accepted == total_offered
        assert stats.dropped == 0 and stats.rejected == 0
        assert stats.flushed == total_offered
        total_points = sum(
            len(series)
            for shard_id in range(4)
            for series in service.shard_database(shard_id)
        )
        assert total_points == total_offered
        service.close()

    def test_injected_worker_crash_reports_byte_identical(self):
        """A mid-advance worker crash must not change what gets reported."""
        samples = make_stream(seed=7, regress_index=3)
        reference_reports, _ = run_stream(samples, workers=4)

        plan = FaultPlan(seed=1, specs=(
            FaultSpec(FaultKind.WORKER_CRASH, times=2, after=1),
        ))
        sink = CollectingSink()
        service = StreamingDetectionService(
            n_shards=4,
            workers=4,
            sinks=[sink],
            queue_capacity=512,
            backpressure=BackpressurePolicy.BLOCK,
            batch_size=128,
            fault_injector=FaultInjector(plan),
        )
        service.register_monitor(
            "gcpu", small_config(), series_filter={"metric": "gcpu"}
        )
        chunk = 200 * len(SERIES)
        for begin in range(0, len(samples), chunk):
            batch = samples[begin : begin + chunk]
            service.ingest_many(batch)
            service.advance_to(batch[-1].timestamp + INTERVAL)
        counters = service.metrics.snapshot()["counters"]
        service.close()

        assert counters["faults.injected.worker_crash"] == 2.0
        assert counters["advance.retries"] > 0
        assert counters["advance.pool_recreations"] > 0
        assert report_bytes(sink.reports) == report_bytes(reference_reports)

    def test_hang_past_deadline_retries_and_recovers(self):
        """A hung worker trips the per-shard deadline, then the retry wins."""
        registry = MetricsRegistry()
        plan = FaultPlan(seed=2, specs=(
            FaultSpec(FaultKind.ADVANCE_HANG, times=1, hang_seconds=5.0),
        ))
        injector = FaultInjector(plan, metrics=registry)
        executor = ParallelShardExecutor(
            workers=2, retries=2, backoff=0.01, deadline=0.5,
            injector=injector, metrics=registry,
        )
        service = StreamingDetectionService(n_shards=2, workers=1)
        service.register_monitor(
            "gcpu", small_config(), series_filter={"metric": "gcpu"}
        )
        try:
            blobs = {
                shard_id: shard.begin_advance()
                for shard_id, shard in service._shards.items()
            }
            started = time.perf_counter()
            results = executor.map_shards(blobs, target=100.0)
            elapsed = time.perf_counter() - started
            assert [r.shard_id for r in results] == [0, 1]
            assert elapsed < 5.0, "the hung worker was abandoned, not awaited"
            counters = registry.snapshot()["counters"]
            assert counters["advance.deadline_exceeded"] == 1.0
            assert counters["advance.retries"] >= 1.0
            hung = [r for r in results if r.retries > 0]
            assert hung and all(r.fallback is None for r in results)
        finally:
            for shard in service._shards.values():
                shard.abort_advance()
            executor.close()
            service.close()

    def test_persistent_crash_falls_back_in_process(self):
        """Retries exhausted -> the parent advances the shard itself."""
        registry = MetricsRegistry()
        plan = FaultPlan(seed=3, specs=(
            FaultSpec(FaultKind.WORKER_CRASH, shard=0, times=None),
        ))
        injector = FaultInjector(plan, metrics=registry)
        executor = ParallelShardExecutor(
            workers=2, retries=1, backoff=0.01,
            injector=injector, metrics=registry,
        )
        service = StreamingDetectionService(n_shards=2, workers=1)
        service.register_monitor(
            "gcpu", small_config(), series_filter={"metric": "gcpu"}
        )
        try:
            blobs = {
                shard_id: shard.begin_advance()
                for shard_id, shard in service._shards.items()
            }
            results = executor.map_shards(blobs, target=100.0)
            by_shard = {r.shard_id: r for r in results}
            assert by_shard[0].fallback == "in_process"
            assert by_shard[1].fallback is None
            counters = registry.snapshot()["counters"]
            assert counters["advance.fallbacks"] == 1.0
        finally:
            for shard in service._shards.values():
                shard.abort_advance()
            executor.close()
            service.close()

    def test_degraded_set_then_cleared_on_clean_advance(self):
        plan = FaultPlan(seed=4, specs=(
            FaultSpec(FaultKind.WORKER_CRASH, times=1),
        ))
        service = StreamingDetectionService(
            n_shards=2, workers=2, fault_injector=FaultInjector(plan),
        )
        service.register_monitor(
            "gcpu", small_config(), series_filter={"metric": "gcpu"}
        )
        service.advance_to(10_000.0)  # crash fires -> retry -> degraded
        degraded = service.degraded_reasons()
        assert degraded, "retried advance must surface as degraded"
        assert all(
            reasons.get("advance") in {"advance_retried", "in_process_fallback"}
            for reasons in degraded.values()
        )
        assert service.healthz()["status"] == "degraded"
        service.advance_to(20_000.0)  # budget spent -> clean advance
        assert service.degraded_reasons() == {}
        assert service.healthz()["status"] == "ok"
        transitions = [e.kind for e in service.events.events()]
        assert "degraded" in transitions and "recovered" in transitions
        service.close()

    def test_deterministic_error_still_propagates(self):
        """A genuine bug (not a crash) must fail the advance, loudly."""
        executor = ParallelShardExecutor(workers=2, retries=1, backoff=0.01)
        try:
            with pytest.raises(Exception):
                executor.map_shards({0: b"not a pickle"}, target=1.0)
        finally:
            executor.close()


class TestKillRestoreUnderWorkersCaches:
    KILL_TICK = TestKillRestoreUnderWorkers.KILL_TICK

    def test_checkpoint_blobs_keep_caches_but_restore_drops_them(self, tmp_path):
        samples = make_stream(seed=7, regress_index=3)
        split = self.KILL_TICK * len(SERIES)
        service = make_service(CollectingSink(), workers=1)
        chunk = 200 * len(SERIES)
        for begin in range(0, split, chunk):
            batch = samples[begin : min(begin + chunk, split)]
            service.ingest_many(batch)
            service.advance_to(batch[-1].timestamp + INTERVAL)
        # The live service holds warm anchors by now.
        warm = sum(
            len(registration.detector.pipeline.incremental_cache)
            for shard in service._shards.values()
            for registration in shard.scheduler._monitors.values()
        )
        assert warm > 0
        directory = str(tmp_path / "ckpt")
        service.checkpoint(directory)
        restored = StreamingDetectionService.restore(directory)
        cold = sum(
            len(registration.detector.pipeline.incremental_cache)
            for shard in restored._shards.values()
            for registration in shard.scheduler._monitors.values()
        )
        assert cold == 0
