"""Tests for repro.reporting."""

import numpy as np
import pytest

from repro.core.pipeline import FunnelCounters
from repro.core.types import (
    DetectionVerdict,
    FilterReason,
    MetricContext,
    Regression,
    RegressionKind,
    RootCauseScore,
)
from repro.reporting import build_report, format_funnel_table, format_report, funnel_rows
from repro.tsdb import TimeSeries, WindowSpec


def make_regression():
    series = TimeSeries("svc.sub.gcpu")
    rng = np.random.default_rng(0)
    for i in range(900):
        series.append(float(i), 0.001 + float(rng.normal(0, 1e-5)))
    view = WindowSpec(600, 200, 100).view(series, now=900.0)
    regression = Regression(
        context=MetricContext(
            metric_id="svc.sub.gcpu", service="svc", metric_name="gcpu", subroutine="sub"
        ),
        kind=RegressionKind.SHORT_TERM,
        change_index=100,
        change_time=700.0,
        mean_before=0.001,
        mean_after=0.0012,
        window=view,
        detected_at=900.0,
    )
    regression.record(DetectionVerdict.keep(detail="went-away passed"))
    regression.root_cause_candidates = [
        RootCauseScore("abc123", 0.8, {"text_similarity": 0.7})
    ]
    return regression


class TestBuildReport:
    def test_fields(self):
        report = build_report(make_regression())
        assert report.metric_id == "svc.sub.gcpu"
        assert report.magnitude == pytest.approx(0.0002)
        assert report.relative_magnitude == pytest.approx(0.2)
        assert report.detection_latency == pytest.approx(200.0)
        assert report.root_causes[0].change_id == "abc123"
        assert any("went-away" in line for line in report.audit_trail)

    def test_drop_verdict_in_audit(self):
        regression = make_regression()
        regression.record(DetectionVerdict.drop(FilterReason.COST_SHIFT, detail="d"))
        report = build_report(regression)
        assert any("drop(cost_shift)" in line for line in report.audit_trail)

    def test_infinite_relative_magnitude_zeroed(self):
        regression = make_regression()
        regression.mean_before = 0.0
        report = build_report(regression)
        assert report.relative_magnitude == 0.0


class TestFormatReport:
    def test_renders_key_facts(self):
        text = format_report(build_report(make_regression()))
        assert "svc.sub.gcpu" in text
        assert "abc123" in text
        assert "latency" in text

    def test_no_root_cause_message(self):
        regression = make_regression()
        regression.root_cause_candidates = []
        text = format_report(build_report(regression))
        assert "none with sufficient confidence" in text


class TestFunnelFormatting:
    def _funnel(self):
        funnel = FunnelCounters()
        funnel.survived("change_points", 1000)
        funnel.survived("went_away", 10)
        funnel.survived("seasonality", 8)
        funnel.survived("threshold", 6)
        funnel.survived("same_regression", 5)
        funnel.survived("som_dedup", 3)
        funnel.survived("cost_shift", 2)
        funnel.survived("pairwise_dedup", 1)
        return funnel

    def test_funnel_rows_ratios(self):
        rows = dict(funnel_rows(self._funnel()))
        assert rows["# Change points detected"] == "1000"
        assert rows["After went-away detection"].startswith("1/100")
        assert rows["After PairwiseDedup"].startswith("1/1000")

    def test_zero_survivors(self):
        funnel = FunnelCounters()
        funnel.survived("change_points", 10)
        rows = dict(funnel_rows(funnel))
        assert "inf" in rows["After went-away detection"]

    def test_zero_detected(self):
        rows = dict(funnel_rows(FunnelCounters()))
        assert rows["After went-away detection"] == "--"

    def test_format_table_multi_column(self):
        table = format_funnel_table({"svc-a": self._funnel(), "svc-b": self._funnel()})
        assert "svc-a" in table and "svc-b" in table
        assert "After cost-shift analysis" in table
        # Every Table 3 row label present.
        assert table.count("\n") >= 8
