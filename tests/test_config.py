"""Tests for repro.config (Table 1 presets)."""

import pytest

from repro.config import DAY, HOUR, TABLE1_CONFIGS, DetectionConfig, table1_config
from repro.tsdb import WindowSpec


class TestDetectionConfig:
    def test_invalid_threshold_raises(self):
        with pytest.raises(ValueError):
            DetectionConfig(name="x", threshold=-1.0)

    def test_invalid_rerun_raises(self):
        with pytest.raises(ValueError):
            DetectionConfig(name="x", threshold=0.1, rerun_interval=0.0)

    def test_absolute_threshold(self):
        config = DetectionConfig(name="x", threshold=0.001)
        assert config.exceeds_threshold(0.002, baseline=1.0)
        assert not config.exceeds_threshold(0.0005, baseline=1.0)

    def test_relative_threshold(self):
        config = DetectionConfig(name="x", threshold=0.05, relative_threshold=True)
        assert config.exceeds_threshold(0.06, baseline=1.0)  # 6% relative
        assert not config.exceeds_threshold(0.04, baseline=1.0)
        assert config.exceeds_threshold(6.0, baseline=100.0)

    def test_relative_threshold_zero_baseline(self):
        config = DetectionConfig(name="x", threshold=0.05, relative_threshold=True)
        assert config.exceeds_threshold(0.001, baseline=0.0)

    def test_with_windows(self):
        config = table1_config("frontfaas_small").with_windows(analysis=123.0)
        assert config.windows.analysis == 123.0
        assert config.windows.historic == 10 * DAY  # unchanged


class TestTable1Presets:
    def test_all_twelve_rows_present(self):
        assert len(TABLE1_CONFIGS) == 12

    def test_frontfaas_small_matches_paper(self):
        config = table1_config("frontfaas_small")
        assert config.threshold == pytest.approx(0.00005)  # 0.005%
        assert config.rerun_interval == 2 * HOUR
        assert config.windows.historic == 10 * DAY
        assert config.windows.analysis == 4 * HOUR
        assert config.windows.extended == 6 * HOUR
        assert config.uses_stack_traces

    def test_frontfaas_large_matches_paper(self):
        config = table1_config("frontfaas_large")
        assert config.threshold == pytest.approx(0.03)  # 3%
        assert config.rerun_interval == 0.5 * HOUR
        assert config.windows.extended == 0.0  # N/A

    def test_pythonfaas_skips_long_term(self):
        assert not table1_config("pythonfaas_small").long_term
        assert not table1_config("pythonfaas_large").long_term

    def test_invoicer_long_windows(self):
        config = table1_config("invoicer_short")
        assert config.windows.historic == 14 * DAY
        assert config.threshold == pytest.approx(0.005)  # 0.5%

    def test_ct_rows_relative_no_stack_traces(self):
        for key in ("ct_supply_short", "ct_supply_long", "ct_demand"):
            config = table1_config(key)
            assert config.relative_threshold
            assert config.threshold == 0.05
            assert not config.uses_stack_traces

    def test_ct_supply_is_lower_worse(self):
        # Supply-side: a *drop* in max throughput is the regression.
        assert not table1_config("ct_supply_short").higher_is_worse
        # Demand-side: an *increase* in peak requests is the regression.
        assert table1_config("ct_demand").higher_is_worse

    def test_adserving_long_widest_windows(self):
        config = table1_config("adserving_long")
        assert config.windows.historic == 16 * DAY
        assert config.windows.analysis == 9 * DAY

    def test_unknown_key_raises_with_suggestions(self):
        with pytest.raises(KeyError, match="valid keys"):
            table1_config("nope")

    def test_detection_order_thresholds(self):
        # Small-threshold configs wait longer between runs than large ones.
        assert (
            table1_config("frontfaas_small").rerun_interval
            > table1_config("frontfaas_large").rerun_interval
        )
