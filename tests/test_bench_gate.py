"""Tests for the CI benchmark-regression gate logic (no measurements).

Exercises :mod:`benchmarks.check_bench_regression`'s two gates against
synthetic payloads: the hard ratio floor and the dogfooded CUSUM+LRT
change-point gate over absolute-throughput history.
"""

import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(__file__), os.pardir, "benchmarks")
)

from check_bench_regression import (  # noqa: E402
    MIN_HISTORY,
    gate_history,
    gate_ratios,
)

BASELINE = {
    "ratios": {"ingest_goodput_scaling_4v1": 2.5, "incremental_speedup": 2.0},
    "counts": {"reports_delivered": 1},
}


def payload(scaling=2.6, speedup=2.1, reports=1, goodput=100.0):
    return {
        "ratios": {
            "ingest_goodput_scaling_4v1": scaling,
            "incremental_speedup": speedup,
        },
        "counts": {"reports_delivered": reports},
        "absolutes": {"scan_goodput_serial": goodput},
    }


class TestRatioGate:
    def test_passes_at_baseline(self):
        assert gate_ratios(payload(), BASELINE) == []

    def test_tolerates_small_drop(self):
        # 2.1 is a 16% drop from 2.5 — inside the 20% floor.
        assert gate_ratios(payload(scaling=2.1), BASELINE) == []

    def test_fails_on_big_drop(self):
        failures = gate_ratios(payload(scaling=1.5), BASELINE)
        assert len(failures) == 1
        assert "ingest_goodput_scaling_4v1" in failures[0]

    def test_fails_on_missing_ratio(self):
        current = payload()
        del current["ratios"]["incremental_speedup"]
        failures = gate_ratios(current, BASELINE)
        assert any("missing" in failure for failure in failures)

    def test_fails_on_count_mismatch(self):
        failures = gate_ratios(payload(reports=0), BASELINE)
        assert any("reports_delivered" in failure for failure in failures)


class TestHistoryGate:
    def test_short_history_only_records(self):
        history = {}
        for _ in range(MIN_HISTORY - 1):
            assert gate_history(history, payload()) == []
        assert len(history["scan_goodput_serial"]) == MIN_HISTORY - 1

    def test_stable_history_passes(self):
        history = {"scan_goodput_serial": [100.0, 101.0, 99.0, 100.5,
                                           99.5, 100.2, 99.8, 100.1]}
        assert gate_history(history, payload(goodput=100.0)) == []

    def test_detects_sustained_drop(self):
        # Ten good runs, then a sustained 30% regression: the dogfooded
        # CUSUM+LRT pair must flag it once the drop reaches the present.
        history = {
            "scan_goodput_serial": [100.0, 101.0, 99.0, 100.5, 99.5,
                                    100.2, 99.8, 100.1, 70.0, 70.5, 69.5]
        }
        failures = gate_history(history, payload(goodput=70.2))
        assert len(failures) == 1
        assert "scan_goodput_serial" in failures[0]
        assert "drop" in failures[0]

    def test_improvement_is_not_flagged(self):
        history = {
            "scan_goodput_serial": [100.0, 99.0, 101.0, 100.0,
                                    130.0, 131.0, 129.0, 130.5]
        }
        assert gate_history(history, payload(goodput=130.2)) == []

    def test_history_is_bounded(self):
        history = {"scan_goodput_serial": [100.0] * 60}
        gate_history(history, payload(goodput=100.0))
        assert len(history["scan_goodput_serial"]) <= 50
