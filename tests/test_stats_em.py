"""Tests for repro.stats.em."""

import numpy as np
import pytest

from repro.stats.em import em_mean_split


class TestEmMeanSplit:
    def test_finds_exact_split_clean_step(self):
        x = np.concatenate([np.zeros(60), np.ones(40)])
        index, _ = em_mean_split(x)
        assert index == 60

    def test_converges_from_bad_initial_guess(self, step_series):
        index, _ = em_mean_split(step_series, initial_index=10)
        assert abs(index - 100) <= 3

    def test_loglik_increases_with_better_split(self, step_series):
        _, ll_converged = em_mean_split(step_series, initial_index=100)
        # Forcing 1 iteration from a bad guess still can't beat convergence.
        index_bad, ll_bad = em_mean_split(step_series, initial_index=10, max_iterations=0)
        assert ll_converged >= ll_bad

    def test_too_short_returns_none(self):
        assert em_mean_split([1.0, 2.0], min_segment=2) is None

    def test_clamps_initial_index(self, step_series):
        index, _ = em_mean_split(step_series, initial_index=100000)
        assert 0 < index < len(step_series)

    def test_deterministic(self, step_series):
        assert em_mean_split(step_series) == em_mean_split(step_series)

    def test_noise_only_still_returns_valid_split(self, flat_series):
        result = em_mean_split(flat_series)
        assert result is not None
        index, _ = result
        assert 2 <= index <= len(flat_series) - 2
