"""Model-based equality tests: array-backed TimeSeries vs a list model.

The columnar :class:`~repro.tsdb.TimeSeries` (contiguous numpy buffers,
amortized doubling, zero-copy tail views) must be observationally
identical to the obvious pure-Python implementation — element for
element, across every mutation path (``append`` / ``insert`` /
``ingest_many`` / ``drop_before``), every read path (``values`` /
``timestamps`` / ``between`` / ``tail_values`` / ``values_between`` /
``timestamps_between`` / ``as_mapping`` / ``latest``), and both
duplicate policies.  Hypothesis drives random interleavings against the
reference model below; any divergence is a storage-layer bug.

A final test replays an :class:`~repro.quality.AdmissionController`
counter-rollover stream (the rebase path) into both backends and checks
they land on the same rebased cumulative.
"""

import bisect

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quality import AdmissionController, QualityConfig
from repro.quality.admission import ADMIT, HELD
from repro.service.ingest import Sample
from repro.tsdb import TimeSeries


class ListSeries:
    """Reference model: TimeSeries semantics over two Python lists."""

    def __init__(self, duplicate_policy="last_write_wins"):
        self.duplicate_policy = duplicate_policy
        self.ts = []
        self.vals = []

    def append(self, timestamp, value):
        if self.ts and timestamp < self.ts[-1]:
            raise ValueError("out of order")
        if self.ts and timestamp == self.ts[-1]:
            if self.duplicate_policy == "reject":
                raise ValueError("duplicate")
            self.vals[-1] = value
            return
        self.ts.append(timestamp)
        self.vals.append(value)

    def insert(self, timestamp, value):
        pos = bisect.bisect_right(self.ts, timestamp)
        if pos and self.ts[pos - 1] == timestamp:
            if self.duplicate_policy == "reject":
                raise ValueError("duplicate")
            self.vals[pos - 1] = value
            return
        self.ts.insert(pos, timestamp)
        self.vals.insert(pos, value)

    def ingest_many(self, points):
        # Last-write-wins only: point-at-a-time insertion is equivalent
        # to the real batch path (in-order extend + sorted backfill
        # merge) because under LWW the latest arrival wins at every
        # duplicate timestamp regardless of batching.
        written = 0
        for timestamp, value in points:
            if not self.ts or timestamp > self.ts[-1]:
                self.ts.append(timestamp)
                self.vals.append(value)
            else:
                self.insert(timestamp, value)
            written += 1
        return written

    def drop_before(self, cutoff):
        pos = bisect.bisect_left(self.ts, cutoff)
        del self.ts[:pos]
        del self.vals[:pos]
        return pos


def assert_same_state(series, model):
    assert list(series.timestamps) == model.ts
    assert list(series.values) == model.vals
    assert len(series) == len(model.ts)
    if model.ts:
        assert series.latest() == (model.ts[-1], model.vals[-1])
        assert series.start == model.ts[0]
        assert series.end == model.ts[-1]
        assert dict(series.as_mapping()) == dict(zip(model.ts, model.vals))
    else:
        assert series.latest() is None


def assert_same_windows(series, model, start, end, k):
    lo = bisect.bisect_left(model.ts, start)
    hi = bisect.bisect_left(model.ts, end)
    assert list(series.values_between(start, end)) == model.vals[lo:hi]
    assert list(series.timestamps_between(start, end)) == model.ts[lo:hi]
    window = series.between(start, end)
    assert list(window.timestamps) == model.ts[lo:hi]
    assert list(window.values) == model.vals[lo:hi]
    k = min(k, len(model.ts))
    assert list(series.tail_values(len(model.ts) - k)) == (model.vals[-k:] if k else [])


# Timestamps on a tiny integer grid so duplicates and stragglers are
# common; values only need to be distinguishable.
_ts = st.integers(min_value=0, max_value=40).map(float)
_val = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False)
_point = st.tuples(_ts, _val)

_lww_op = st.one_of(
    st.tuples(st.just("append"), _point),
    st.tuples(st.just("insert"), _point),
    st.tuples(st.just("ingest"), st.lists(_point, min_size=1, max_size=8)),
    st.tuples(st.just("drop_before"), _ts),
)
_reject_op = st.one_of(
    st.tuples(st.just("append"), _point),
    st.tuples(st.just("insert"), _point),
    st.tuples(st.just("drop_before"), _ts),
)


def _apply(series, model, op, payload):
    """Apply one op to both backends; both must agree on raising."""
    if op == "append":
        timestamp, value = payload
        real = model_exc = None
        try:
            series.append(timestamp, value)
        except ValueError as exc:
            real = exc
        try:
            model.append(timestamp, value)
        except ValueError as exc:
            model_exc = exc
        assert (real is None) == (model_exc is None)
    elif op == "insert":
        timestamp, value = payload
        real = model_exc = None
        try:
            series.insert(timestamp, value)
        except ValueError as exc:
            real = exc
        try:
            model.insert(timestamp, value)
        except ValueError as exc:
            model_exc = exc
        assert (real is None) == (model_exc is None)
    elif op == "ingest":
        assert series.ingest_many(payload) == model.ingest_many(payload)
    elif op == "drop_before":
        assert series.drop_before(payload) == model.drop_before(payload)
    else:  # pragma: no cover - strategy bug
        raise AssertionError(op)


class TestColumnarMatchesListModel:
    @settings(max_examples=200, deadline=None)
    @given(
        ops=st.lists(_lww_op, min_size=1, max_size=40),
        start=_ts,
        width=st.integers(min_value=0, max_value=20),
        k=st.integers(min_value=0, max_value=12),
    )
    def test_last_write_wins_interleavings(self, ops, start, width, k):
        series = TimeSeries(name="p")
        model = ListSeries()
        for op, payload in ops:
            _apply(series, model, op, payload)
            assert_same_state(series, model)
        assert_same_windows(series, model, start, start + width, k)

    @settings(max_examples=200, deadline=None)
    @given(
        ops=st.lists(_reject_op, min_size=1, max_size=40),
        start=_ts,
        width=st.integers(min_value=0, max_value=20),
        k=st.integers(min_value=0, max_value=12),
    )
    def test_reject_interleavings(self, ops, start, width, k):
        series = TimeSeries(name="p", duplicate_policy="reject")
        model = ListSeries(duplicate_policy="reject")
        for op, payload in ops:
            _apply(series, model, op, payload)
            # A rejected duplicate must leave the series untouched, so
            # the model stays in lockstep even across raises.
            assert_same_state(series, model)
        assert_same_windows(series, model, start, start + width, k)

    def test_reject_backfill_batch_leaves_series_untouched(self):
        series = TimeSeries(name="p", duplicate_policy="reject")
        for i in range(5):
            series.append(float(i * 10), float(i))
        before_ts = list(series.timestamps)
        before_vals = list(series.values)
        # All-straggler batch (every point < last timestamp) containing
        # a duplicate: the sorted backfill merge must raise and roll
        # back nothing because it never wrote anything.
        with pytest.raises(ValueError):
            series.ingest_many([(5.0, 1.0), (15.0, 2.0), (15.0, 3.0)])
        assert list(series.timestamps) == before_ts
        assert list(series.values) == before_vals

    @settings(max_examples=100, deadline=None)
    @given(
        increments=st.lists(
            st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
            min_size=4,
            max_size=24,
        ),
        reset_at=st.integers(min_value=1, max_value=23),
        restart=st.floats(min_value=0.0, max_value=5.0, allow_nan=False),
    )
    def test_counter_rebase_replays_identically(self, increments, reset_at, restart):
        """Admission-controller counter output lands identically in both."""
        reset_at = min(reset_at, len(increments) - 1)
        raw = []
        running = 0.0
        for i, inc in enumerate(increments):
            if i == reset_at:
                running = restart  # the counter process restarted
            running += inc
            raw.append(running)

        controller = AdmissionController(QualityConfig(reorder_window=4))
        emitted = []
        for i, value in enumerate(raw):
            status, sample = controller.admit(
                Sample("cpu", float(i * 60), value, {"type": "counter"})
            )
            assert status in (ADMIT, HELD)
            if sample is not None:
                emitted.append(sample)
            emitted.extend(controller.take_ready())
        emitted.extend(controller.drain_pending())
        emitted.sort(key=lambda s: s.timestamp)
        assert len(emitted) == len(raw)

        # The rebase keeps the cumulative continuous across the restart.
        values = [s.value for s in emitted]
        assert all(b >= a for a, b in zip(values, values[1:]))
        if raw[reset_at] < raw[reset_at - 1]:
            assert controller.counter_resets >= 1

        series = TimeSeries(name="cpu")
        model = ListSeries()
        for sample in emitted:
            series.append(sample.timestamp, sample.value)
            model.append(sample.timestamp, sample.value)
        assert_same_state(series, model)
