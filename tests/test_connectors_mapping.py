"""Tests for the external→internal series identity mapper."""

import pytest

from repro.connectors import SeriesMapper


class TestNameMangling:
    def test_dotted_names_pass_through(self):
        mapped = SeriesMapper(source="csv").map("svc.render.gcpu")
        assert mapped.name == "svc.render.gcpu"
        assert mapped.tags["metric"] == "gcpu"
        assert mapped.tags["source"] == "csv"

    def test_invalid_characters_fold_to_underscore(self):
        mapped = SeriesMapper(source="csv").map('http latency{quantile="0.99"}')
        assert " " not in mapped.name
        assert "{" not in mapped.name and '"' not in mapped.name

    def test_prefix_namespaces_imports(self):
        mapped = SeriesMapper(source="csv", prefix="imported").map("svc.gcpu")
        assert mapped.name == "imported.svc.gcpu"

    def test_empty_name_rejected(self):
        mapper = SeriesMapper(source="csv")
        with pytest.raises(ValueError):
            mapper.map("")
        with pytest.raises(ValueError):
            mapper.map("{}")  # mangles to nothing


class TestUnitAndTypeTagging:
    def test_unit_suffix_lifted(self):
        mapped = SeriesMapper(source="rw").map("http_request_duration_seconds")
        assert mapped.tags["unit"] == "seconds"
        assert mapped.tags["metric"] == "http_request_duration"

    def test_counter_suffix_detected(self):
        mapped = SeriesMapper(source="rw").map("http_requests_total")
        assert mapped.tags["type"] == "counter"
        assert mapped.tags["metric"] == "http_requests"

    def test_counter_then_unit_suffix(self):
        mapped = SeriesMapper(source="rw").map("cpu_usage_seconds_total")
        assert mapped.tags["type"] == "counter"
        assert mapped.tags["unit"] == "seconds"

    def test_explicit_counter_label(self):
        mapped = SeriesMapper(source="rw").map("events", {"type": "counter"})
        assert mapped.tags["type"] == "counter"

    def test_plain_gauge_untyped(self):
        mapped = SeriesMapper(source="rw").map("queue_depth")
        assert "type" not in mapped.tags
        assert "unit" not in mapped.tags


class TestLabelHandling:
    def test_labels_fan_out_into_distinct_series(self):
        mapper = SeriesMapper(source="rw")
        a = mapper.map("lat_seconds", {"job": "api", "zone": "a"})
        b = mapper.map("lat_seconds", {"job": "api", "zone": "b"})
        assert a.name != b.name
        assert a.tags["zone"] == "a" and b.tags["zone"] == "b"

    def test_label_order_does_not_matter(self):
        mapper = SeriesMapper(source="rw")
        a = mapper.map("lat", {"job": "api", "zone": "a"})
        b = mapper.map("lat", {"zone": "a", "job": "api"})
        assert a == b

    def test_dunder_name_label_consumed(self):
        mapped = SeriesMapper(source="rw").map(
            "lat", {"__name__": "lat", "job": "api"}
        )
        assert "__name__" not in mapped.tags
        assert "__name__" not in mapped.name

    def test_default_tags_lose_to_labels(self):
        mapper = SeriesMapper(source="rw", default_tags={"job": "default"})
        assert mapper.map("lat", {"job": "api"}).tags["job"] == "api"
        assert mapper.map("other").tags["job"] == "default"


class TestDeterminismAndMemo:
    def test_mapping_is_deterministic_across_instances(self):
        a = SeriesMapper(source="rw").map("x_total", {"j": "1"})
        b = SeriesMapper(source="rw").map("x_total", {"j": "1"})
        assert a == b

    def test_memo_returns_same_object(self):
        mapper = SeriesMapper(source="rw")
        assert mapper.map("x", {"a": "1"}) is mapper.map("x", {"a": "1"})
