"""Tests for repro.profiling.collector."""

import pytest

from repro.profiling.collector import FleetProfileCollector
from repro.profiling.stacktrace import Frame, StackTrace
from repro.tsdb import TimeSeriesDatabase


def make_samples():
    return [
        StackTrace.from_names(["_start", "svc::A::run", "svc::B::step"], weight=30.0),
        StackTrace.from_names(["_start", "svc::A::run"], weight=70.0),
    ]


class TestFleetProfileCollector:
    def test_ingest_writes_gcpu_series(self):
        db = TimeSeriesDatabase()
        collector = FleetProfileCollector(db, service="svc")
        written = collector.ingest(0.0, make_samples())
        assert written == 3  # _start, A::run, B::step
        series = db.get("svc.svc::A::run.gcpu")
        assert series is not None
        assert series.values[0] == pytest.approx(1.0)
        assert db.get("svc.svc::B::step.gcpu").values[0] == pytest.approx(0.3)

    def test_tags_set_for_routing(self):
        db = TimeSeriesDatabase()
        FleetProfileCollector(db, service="svc").ingest(0.0, make_samples())
        series = db.get("svc.svc::B::step.gcpu")
        assert series.tags == {
            "service": "svc",
            "subroutine": "svc::B::step",
            "metric": "gcpu",
        }

    def test_min_gcpu_cutoff(self):
        db = TimeSeriesDatabase()
        collector = FleetProfileCollector(db, service="svc", min_gcpu=0.5)
        collector.ingest(0.0, make_samples())
        assert db.get("svc.svc::B::step.gcpu") is None  # 0.3 < 0.5
        assert db.get("svc.svc::A::run.gcpu") is not None

    def test_empty_batch_noop(self):
        db = TimeSeriesDatabase()
        collector = FleetProfileCollector(db, service="svc")
        assert collector.ingest(0.0, []) == 0
        assert len(db) == 0

    def test_sample_history_retained(self):
        db = TimeSeriesDatabase()
        collector = FleetProfileCollector(db, service="svc")
        collector.ingest(0.0, make_samples())
        collector.ingest(60.0, make_samples())
        assert len(collector.sample_history) == 4

    def test_history_bounded(self):
        db = TimeSeriesDatabase()
        collector = FleetProfileCollector(db, service="svc")
        collector._history_limit = 3
        collector.ingest(0.0, make_samples())
        collector.ingest(60.0, make_samples())
        assert len(collector.sample_history) == 3

    def test_metadata_series(self):
        db = TimeSeriesDatabase()
        collector = FleetProfileCollector(db, service="svc")
        annotated = StackTrace(
            frames=(
                Frame("_start"),
                Frame("svc::H::handle", metadata="user:enterprise"),
            ),
            weight=25.0,
        )
        plain = StackTrace.from_names(["_start", "svc::H::handle"], weight=75.0)
        collector.ingest(0.0, [annotated, plain])
        meta_series = db.get("svc.svc::H::handle@user:enterprise.gcpu")
        assert meta_series is not None
        assert meta_series.values[0] == pytest.approx(0.25)
        assert meta_series.tags["metadata"] == "user:enterprise"

    def test_metadata_tracking_disabled(self):
        db = TimeSeriesDatabase()
        collector = FleetProfileCollector(db, service="svc", track_metadata=False)
        annotated = StackTrace(
            frames=(Frame("f", metadata="m:1"),), weight=1.0
        )
        collector.ingest(0.0, [annotated])
        assert db.get("svc.f@m:1.gcpu") is None
