"""Tests for the CSV / JSON-lines telemetry importers."""

import io
import json

from repro.connectors import CsvImporter, ImportStats, JsonLinesImporter
from repro.quality import QualityConfig
from repro.service import BackpressurePolicy, StreamingDetectionService


class _Collecting:
    """Minimal ingest target: accepts everything, remembers the samples."""

    def __init__(self):
        self.samples = []

    def ingest_sample(self, sample):
        self.samples.append(sample)
        return True


class TestCsvImporter:
    def test_long_form_with_tag_columns(self):
        stream = io.StringIO(
            "name,timestamp,value,host\n"
            "svc.a.gcpu,60,0.001,web1\n"
            "svc.b.gcpu,60,0.002,web2\n"
        )
        service = _Collecting()
        stats = CsvImporter().import_into(service, stream)
        assert stats.offered == stats.accepted == 2
        assert stats.series == 2
        assert stats.bad_rows == 0
        # Tag columns are identity (like Prometheus labels): rows with
        # different tag values fan out into distinct internal series.
        by_name = {s.name: s for s in service.samples}
        assert by_name["svc.a.gcpu.host_web1"].tags["host"] == "web1"
        assert by_name["svc.a.gcpu.host_web1"].tags["source"] == "csv"

    def test_narrow_form_uses_series_name(self):
        stream = io.StringIO("timestamp,value\n0,1.0\n60,1.1\n")
        service = _Collecting()
        importer = CsvImporter(series_name="ext.latency")
        stats = importer.import_into(service, stream)
        assert stats.offered == 2
        assert all(s.name == "ext.latency" for s in service.samples)

    def test_headerless_narrow_file_keeps_first_row(self):
        stream = io.StringIO("0,1.0\n60,1.1\n")
        service = _Collecting()
        stats = CsvImporter().import_into(service, stream)
        assert stats.offered == 2
        assert stats.first_timestamp == 0.0

    def test_malformed_rows_skipped_not_fatal(self):
        stream = io.StringIO(
            "name,timestamp,value\n"
            "svc.a,60,0.001\n"
            "svc.b,not-a-time,0.002\n"
            "svc.c,120\n"
            "\n"
            "svc.d,180,0.004\n"
        )
        service = _Collecting()
        stats = CsvImporter().import_into(service, stream)
        assert stats.offered == 2
        assert stats.bad_rows == 2

    def test_reads_from_path(self, tmp_path):
        path = tmp_path / "series.csv"
        path.write_text("timestamp,value\n0,1.0\n60,2.0\n")
        stats = CsvImporter().import_into(_Collecting(), str(path))
        assert stats.offered == 2
        assert stats.last_timestamp == 60.0


class TestJsonLinesImporter:
    def test_objects_with_tags(self):
        stream = io.StringIO(
            json.dumps({"name": "svc.a", "timestamp": 60, "value": 1.0,
                        "tags": {"host": "web1"}}) + "\n"
            + json.dumps({"name": "svc.a", "timestamp": 120, "value": 1.1,
                          "labels": {"host": "web1"}}) + "\n"
        )
        service = _Collecting()
        stats = JsonLinesImporter().import_into(service, stream)
        assert stats.offered == 2
        assert service.samples[0].tags["host"] == "web1"
        assert service.samples[0].tags["source"] == "jsonl"

    def test_bad_lines_skipped(self):
        stream = io.StringIO(
            '{"name": "svc.a", "timestamp": 60, "value": 1.0}\n'
            "not json\n"
            '{"name": "svc.b", "timestamp": "sixty", "value": 1.0}\n'
            '{"name": "svc.c", "value": 1.0}\n'
        )
        stats = JsonLinesImporter().import_into(_Collecting(), stream)
        assert stats.offered == 1
        assert stats.bad_rows == 3


class TestImportThroughAdmission:
    def test_imported_counter_gets_rebased(self):
        """A ``*_total`` series rides the admission counter-rebasing."""
        service = StreamingDetectionService(
            n_shards=1, queue_capacity=1024,
            backpressure=BackpressurePolicy.BLOCK, batch_size=8,
            quality=QualityConfig(),
        )
        lines = []
        value, ts = 0.0, 0.0
        for i in range(24):
            value += 5.0
            if i == 12:
                value = 2.0  # process restart: the counter resets
            lines.append(json.dumps(
                {"name": "http_requests_total", "timestamp": ts, "value": value}
            ))
            ts += 60.0
        stats = JsonLinesImporter().import_into(
            service, io.StringIO("\n".join(lines))
        )
        service.flush()
        assert stats.accepted == stats.offered == 24
        counters = service.quality_snapshot()["counters"]
        assert counters.get("counter_resets", 0) == 1
        service.close()

    def test_import_stats_track_acceptance(self):
        class RejectAll:
            def ingest_sample(self, sample):
                return False

        stream = io.StringIO("timestamp,value\n0,1.0\n60,2.0\n")
        stats = CsvImporter().import_into(RejectAll(), stream)
        assert stats.offered == 2
        assert stats.accepted == 0


class TestImportStats:
    def test_time_range_and_series_count(self):
        stats = ImportStats()
        stream = io.StringIO(
            "name,timestamp,value\nsvc.a,120,1\nsvc.b,60,1\nsvc.a,180,1\n"
        )
        list(CsvImporter().iter_samples(stream))  # no stats: still parses
        stream.seek(0)
        service = _Collecting()
        stats = CsvImporter().import_into(service, stream)
        assert (stats.first_timestamp, stats.last_timestamp) == (60.0, 180.0)
        assert stats.series == 2
