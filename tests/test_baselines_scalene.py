"""Tests for the Scalene-like Python-level profiler baseline (§4)."""

import pytest

from repro.baselines import ScaleneLikeProfiler, attribution_error
from repro.profiling.pyperf import PyPerfProfiler, SimulatedCPythonProcess


def process_in_native_code():
    proc = SimulatedCPythonProcess()
    proc.call_python("main")
    proc.call_python("compress_all")
    proc.call_native("zlib_compress")
    return proc


def process_in_python_code():
    proc = SimulatedCPythonProcess()
    proc.call_python("main")
    proc.call_python("parse")
    return proc


class TestScaleneLikeProfiler:
    def test_cannot_see_native_frames(self):
        trace = ScaleneLikeProfiler().sample(process_in_native_code())
        assert "zlib_compress" not in trace.subroutines
        assert trace.subroutines == ("_start", "main", "compress_all")

    def test_pyperf_sees_native_frames(self):
        trace = PyPerfProfiler().sample(process_in_native_code())
        assert trace.subroutines == ("_start", "main", "compress_all", "zlib_compress")

    def test_observe_flags_native_execution(self):
        profiler = ScaleneLikeProfiler()
        assert profiler.observe(process_in_native_code()).in_native_code
        assert not profiler.observe(process_in_python_code()).in_native_code

    def test_python_only_code_identical_to_pyperf(self):
        proc = process_in_python_code()
        scalene_trace = ScaleneLikeProfiler().sample(proc)
        pyperf_trace = PyPerfProfiler().sample(proc)
        assert scalene_trace.subroutines == pyperf_trace.subroutines


class TestAttributionError:
    def test_native_time_misattributed(self):
        # 40% of samples land in native code under compress_all.
        processes = [process_in_native_code()] * 4 + [process_in_python_code()] * 6
        pyperf = PyPerfProfiler()
        scalene = ScaleneLikeProfiler()
        merged = [pyperf.sample(p) for p in processes]
        python_only = [scalene.sample(p) for p in processes]

        errors = attribution_error(merged, python_only)
        # The native frame is invisible to the Python-level profiler ...
        assert errors["zlib_compress"] == pytest.approx(-0.4)
        # ... and frames that agree exactly are omitted: compress_all's
        # *inclusive* gCPU is identical in both views (0.4), so only the
        # native leaf shows an attribution difference.
        assert set(errors) == {"zlib_compress"}

    def test_agreement_when_no_native_code(self):
        processes = [process_in_python_code()] * 5
        merged = [PyPerfProfiler().sample(p) for p in processes]
        python_only = [ScaleneLikeProfiler().sample(p) for p in processes]
        assert attribution_error(merged, python_only) == {}
