"""Tests for repro.fleet.subroutine."""

import numpy as np
import pytest

from repro.fleet.subroutine import CallGraph, SubroutineSpec, build_random_call_graph


def simple_graph():
    graph = CallGraph(root="_start")
    graph.add(SubroutineSpec("main", self_cost=0.0, parent="_start"))
    graph.add(SubroutineSpec("ns::A::f", self_cost=2.0, parent="main"))
    graph.add(SubroutineSpec("ns::A::g", self_cost=3.0, parent="main"))
    graph.add(SubroutineSpec("ns::B::h", self_cost=5.0, parent="ns::A::f"))
    return graph


class TestCallGraphConstruction:
    def test_duplicate_raises(self):
        graph = simple_graph()
        with pytest.raises(ValueError, match="duplicate"):
            graph.add(SubroutineSpec("main", self_cost=1.0))

    def test_unknown_parent_raises(self):
        with pytest.raises(ValueError, match="unknown parent"):
            simple_graph().add(SubroutineSpec("x", self_cost=1.0, parent="nope"))

    def test_negative_cost_raises(self):
        with pytest.raises(ValueError):
            SubroutineSpec("x", self_cost=-1.0)

    def test_contains_and_get(self):
        graph = simple_graph()
        assert "main" in graph
        assert graph.get("ns::A::f").self_cost == 2.0

    def test_children(self):
        assert set(simple_graph().children("main")) == {"ns::A::f", "ns::A::g"}


class TestInclusionProbabilities:
    def test_root_is_one(self):
        probs = simple_graph().inclusion_probabilities()
        assert probs["_start"] == pytest.approx(1.0)

    def test_parent_includes_children(self):
        probs = simple_graph().inclusion_probabilities()
        # f subtree: 2 + 5 = 7 of total 10.
        assert probs["ns::A::f"] == pytest.approx(0.7)
        assert probs["ns::B::h"] == pytest.approx(0.5)
        assert probs["ns::A::g"] == pytest.approx(0.3)

    def test_zero_total_cost(self):
        graph = CallGraph()
        graph.add(SubroutineSpec("a", self_cost=0.0))
        probs = graph.inclusion_probabilities()
        assert all(v == 0.0 for v in probs.values())


class TestMutation:
    def test_scale_cost(self):
        graph = simple_graph()
        graph.scale_cost("ns::A::g", 2.0)
        assert graph.get("ns::A::g").self_cost == 6.0

    def test_scale_negative_raises(self):
        with pytest.raises(ValueError):
            simple_graph().scale_cost("main", -1.0)

    def test_add_cost_floors_at_zero(self):
        graph = simple_graph()
        graph.add_cost("ns::A::f", -100.0)
        assert graph.get("ns::A::f").self_cost == 0.0

    def test_move_cost_conserves_total(self):
        graph = simple_graph()
        before = graph.total_cost()
        moved = graph.move_cost("ns::A::g", "ns::A::f", 0.5)
        assert moved == pytest.approx(1.5)
        assert graph.total_cost() == pytest.approx(before)
        assert graph.get("ns::A::g").self_cost == pytest.approx(1.5)
        assert graph.get("ns::A::f").self_cost == pytest.approx(3.5)

    def test_move_cost_invalid_fraction(self):
        with pytest.raises(ValueError):
            simple_graph().move_cost("main", "ns::A::f", 1.5)


class TestSampling:
    def test_sample_counts_match_probabilities(self, rng):
        graph = simple_graph()
        traces = graph.sample_traces(20_000, rng)
        total = sum(t.weight for t in traces)
        assert total == 20_000
        h_weight = sum(t.weight for t in traces if t.contains("ns::B::h"))
        assert h_weight / total == pytest.approx(0.5, abs=0.02)

    def test_traces_are_root_paths(self, rng):
        for trace in simple_graph().sample_traces(100, rng):
            assert trace.subroutines[0] == "_start"

    def test_zero_samples(self, rng):
        assert simple_graph().sample_traces(0, rng) == []

    def test_uncollapsed(self, rng):
        traces = simple_graph().sample_traces(50, rng, collapse=False)
        assert len(traces) == 50
        assert all(t.weight == 1.0 for t in traces)

    def test_paths_probabilities_sum_to_one(self):
        paths = simple_graph().paths()
        assert sum(p.probability for p in paths) == pytest.approx(1.0)


class TestClone:
    def test_clone_is_deep(self):
        graph = simple_graph()
        copy = graph.clone()
        copy.scale_cost("ns::A::g", 10.0)
        assert graph.get("ns::A::g").self_cost == 3.0
        assert copy.names() == graph.names()


class TestRandomGraph:
    def test_size_and_determinism(self):
        g1 = build_random_call_graph(50, np.random.default_rng(3))
        g2 = build_random_call_graph(50, np.random.default_rng(3))
        assert len(g1.names()) == 51  # root included
        assert g1.names() == g2.names()
        assert g1.inclusion_probabilities() == g2.inclusion_probabilities()

    def test_endpoints_assigned_to_top_level(self):
        graph = build_random_call_graph(40, np.random.default_rng(0))
        endpoints = [
            graph.get(n).endpoint for n in graph.names() if graph.get(n).endpoint
        ]
        assert endpoints  # at least one top-level subroutine has an endpoint
