"""Tests for repro.core.long_term."""

import numpy as np
import pytest

from repro.core.long_term import LongTermDetector
from repro.core.types import MetricContext, RegressionKind
from repro.tsdb import TimeSeries, WindowSpec


def make_view(values, historic=500, analysis=300, extended=100):
    series = TimeSeries("s")
    for i, value in enumerate(values):
        series.append(float(i), float(value))
    spec = WindowSpec(historic=historic, analysis=analysis, extended=extended)
    return spec.view(series, now=float(len(values)))


CONTEXT = MetricContext(metric_id="svc.sub.gcpu", metric_name="gcpu", subroutine="sub")


class TestLongTermDetector:
    def test_detects_gradual_ramp(self, rng):
        values = rng.normal(0.001, 0.00003, 900)
        values += np.concatenate([np.zeros(500), np.linspace(0, 0.0005, 400)])
        regression = LongTermDetector(threshold=0.0002).detect(make_view(values), CONTEXT)
        assert regression is not None
        assert regression.kind is RegressionKind.LONG_TERM
        assert regression.magnitude > 0.0002

    def test_flat_series_none(self, rng):
        values = rng.normal(0.001, 0.00003, 900)
        assert LongTermDetector(threshold=0.0001).detect(make_view(values), CONTEXT) is None

    def test_below_threshold_none(self, rng):
        values = rng.normal(0.001, 0.00003, 900)
        values += np.concatenate([np.zeros(500), np.linspace(0, 0.0001, 400)])
        assert LongTermDetector(threshold=0.01).detect(make_view(values), CONTEXT) is None

    def test_insensitive_to_transient_spike(self, rng):
        # The trend smooths out a short spike; no long-term regression.
        values = rng.normal(0.001, 0.00003, 900)
        values[600:640] += 0.0008
        regression = LongTermDetector(threshold=0.0002).detect(make_view(values), CONTEXT)
        assert regression is None

    def test_seasonal_series_no_false_positive(self):
        rng = np.random.default_rng(3)
        t = np.arange(900)
        values = 0.001 + 0.0004 * np.sin(2 * np.pi * t / 300) + rng.normal(0, 0.00002, 900)
        regression = LongTermDetector(threshold=0.0002, known_period=300).detect(
            make_view(values), CONTEXT
        )
        assert regression is None

    def test_step_change_located(self, rng):
        # A sharp persistent step is found by the DP search branch.
        values = rng.normal(0.001, 0.00003, 900)
        values[650:] += 0.0006
        regression = LongTermDetector(threshold=0.0002).detect(make_view(values), CONTEXT)
        assert regression is not None
        # change_index is within the analysis window [500, 800) -> 0..299.
        assert 0 <= regression.change_index < 300

    def test_gradual_flag_feature(self, rng):
        values = rng.normal(0.001, 0.00001, 900)
        values += np.linspace(0, 0.0008, 900)  # one long ramp
        regression = LongTermDetector(threshold=0.0002).detect(make_view(values), CONTEXT)
        assert regression is not None
        assert regression.features.get("gradual") == 1.0

    def test_invalid_threshold_raises(self):
        with pytest.raises(ValueError):
            LongTermDetector(threshold=-1.0)

    def test_short_series_none(self):
        view = make_view(np.zeros(9), historic=5, analysis=3, extended=1)
        assert LongTermDetector(threshold=0.1).detect(view, CONTEXT) is None
