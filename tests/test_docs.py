"""Documentation suite checks: the docs exist, link, and cannot rot.

The ``docs`` CI job additionally *executes* the RUNBOOK quickstart
(``scripts/run_runbook_quickstart.py``); here we keep the cheap
invariants in the tier-1 suite so a broken link or an undocumented
benchmark fails ``pytest`` locally, not just in CI.
"""

import importlib.util
import os
import re
import sys

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DOCS = os.path.join(REPO_ROOT, "docs")
SCRIPTS = os.path.join(REPO_ROOT, "scripts")


def _load_script(name):
    path = os.path.join(SCRIPTS, name + ".py")
    spec = importlib.util.spec_from_file_location(name, path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def link_checker():
    return _load_script("check_markdown_links")


@pytest.fixture(scope="module")
def quickstart_runner():
    return _load_script("run_runbook_quickstart")


def _read(*parts):
    with open(os.path.join(REPO_ROOT, *parts), encoding="utf-8") as handle:
        return handle.read()


class TestDocsExistAndAreLinked:
    def test_runbook_and_benchmarks_exist(self):
        assert os.path.isfile(os.path.join(DOCS, "RUNBOOK.md"))
        assert os.path.isfile(os.path.join(DOCS, "BENCHMARKS.md"))

    def test_readme_links_to_both(self):
        readme = _read("README.md")
        assert "docs/RUNBOOK.md" in readme
        assert "docs/BENCHMARKS.md" in readme

    def test_runbook_covers_operator_topics(self):
        runbook = _read("docs", "RUNBOOK.md")
        for topic in (
            "/healthz",
            "/metrics",
            "/status",
            "serve-demo",
            "checkpoint",
            "re-alert",
            "backpressure",
        ):
            assert topic in runbook, topic

    def test_runbook_names_every_funnel_stage(self):
        from repro.obs.spans import STAGES

        runbook = _read("docs", "RUNBOOK.md")
        for stage in STAGES:
            assert stage in runbook, stage


class TestBenchmarksDocComplete:
    def test_every_benchmark_file_is_documented(self):
        doc = _read("docs", "BENCHMARKS.md")
        bench_dir = os.path.join(REPO_ROOT, "benchmarks")
        benches = sorted(
            name
            for name in os.listdir(bench_dir)
            if name.startswith("bench_") and name.endswith(".py")
        )
        assert benches, "benchmarks/ went missing?"
        missing = [name for name in benches if f"`{name}`" not in doc]
        assert not missing, f"undocumented benchmarks: {missing}"

    def test_ci_gate_is_documented(self):
        doc = _read("docs", "BENCHMARKS.md")
        assert "check_bench_regression.py" in doc
        assert "ci_baseline.json" in doc


class TestMarkdownLinks:
    def test_default_doc_set_has_no_broken_links(self, link_checker, capsys):
        exit_code = link_checker.main([])
        captured = capsys.readouterr()
        assert exit_code == 0, captured.err
        assert "0 broken" in captured.out

    def test_checker_catches_a_broken_link(self, link_checker, tmp_path):
        bad = tmp_path / "bad.md"
        bad.write_text("[dangling](no/such/file.md)\n", encoding="utf-8")
        problem = link_checker._check_link(str(bad), "no/such/file.md")
        assert problem is not None and "broken" in problem

    def test_checker_validates_anchors(self, link_checker, tmp_path):
        doc = tmp_path / "doc.md"
        doc.write_text("# A Heading Here\n\ntext\n", encoding="utf-8")
        assert link_checker._check_link(str(doc), "#a-heading-here") is None
        assert link_checker._check_link(str(doc), "#nope") is not None


class TestRunbookQuickstart:
    def test_block_extracts_and_exercises_the_service(self, quickstart_runner):
        script = quickstart_runner.extract_quickstart()
        assert "serve-demo" in script
        assert "--obs-port" in script
        assert "--checkpoint-dir" in script
        # Every non-comment line is a command (or its continuation) —
        # an empty extraction must never pass vacuously.
        commands = [
            line
            for line in script.splitlines()
            if line.strip() and not line.strip().startswith("#")
        ]
        assert commands

    def test_missing_marker_raises(self, quickstart_runner, tmp_path):
        plain = tmp_path / "RUNBOOK.md"
        plain.write_text("# no marker\n```bash\necho hi\n```\n", encoding="utf-8")
        with pytest.raises(ValueError):
            quickstart_runner.extract_quickstart(str(plain))


class TestDesignAndExperimentsCurrent:
    """The PR 2/3 features must be described where operators will look."""

    def test_design_documents_obs_layer(self):
        design = _read("DESIGN.md")
        assert "repro.obs" in design
        assert "wire_tracer" in design
        assert "ObservabilityServer" in design

    def test_experiments_documents_service_benchmarks(self):
        experiments = _read("EXPERIMENTS.md")
        assert "bench_service_throughput.py" in experiments
        assert "--workers" in experiments
        assert re.search(r"observability overhead", experiments, re.I)

    def test_ci_has_docs_job(self):
        ci = _read(".github", "workflows", "ci.yml")
        assert "check_markdown_links.py" in ci
        assert "run_runbook_quickstart.py" in ci
