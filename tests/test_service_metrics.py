"""Tests for repro.service.metrics (counters, gauges, histograms, registry)."""

import pickle
import threading

import pytest

from repro.service import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_inc(self):
        counter = Counter()
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_negative_raises(self):
        with pytest.raises(ValueError, match="only go up"):
            Counter().inc(-1)


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge()
        gauge.set(10)
        gauge.inc(2.5)
        gauge.dec()
        assert gauge.value == 11.5


class TestHistogram:
    def test_count_sum_mean(self):
        histogram = Histogram()
        for value in (0.001, 0.002, 0.003):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.sum == pytest.approx(0.006)
        assert histogram.mean == pytest.approx(0.002)

    def test_empty_quantile_is_zero(self):
        assert Histogram().quantile(0.5) == 0.0

    def test_quantile_brackets_observations(self):
        histogram = Histogram(buckets=[1.0, 2.0, 4.0, 8.0])
        for value in (0.5, 1.5, 3.0, 6.0):
            histogram.observe(value)
        p50 = histogram.quantile(0.5)
        p99 = histogram.quantile(0.99)
        assert 0.5 <= p50 <= 3.0
        assert p50 <= p99 <= 6.0

    def test_overflow_bucket(self):
        histogram = Histogram(buckets=[1.0])
        histogram.observe(100.0)
        assert histogram.quantile(1.0) == pytest.approx(100.0)
        assert histogram.state()["counts"] == [0, 1]

    def test_invalid_quantile(self):
        with pytest.raises(ValueError):
            Histogram().quantile(1.5)

    def test_invalid_buckets(self):
        with pytest.raises(ValueError):
            Histogram(buckets=[])
        with pytest.raises(ValueError):
            Histogram(buckets=[2.0, 1.0])


class TestRegistry:
    def test_instruments_created_on_first_use(self):
        metrics = MetricsRegistry()
        metrics.inc("a.count", 3)
        metrics.set_gauge("a.depth", 7)
        metrics.observe("a.seconds", 0.01)
        assert metrics.counter("a.count").value == 3
        assert metrics.gauge("a.depth").value == 7
        assert metrics.histogram("a.seconds").count == 1

    def test_same_instance_returned(self):
        metrics = MetricsRegistry()
        assert metrics.counter("x") is metrics.counter("x")
        assert metrics.histogram("y") is metrics.histogram("y")

    def test_timer_observes_elapsed(self):
        metrics = MetricsRegistry()
        with metrics.timer("op.seconds"):
            pass
        histogram = metrics.histogram("op.seconds")
        assert histogram.count == 1
        assert histogram.sum >= 0.0

    def test_snapshot_restore_round_trip(self):
        metrics = MetricsRegistry()
        metrics.inc("c", 5)
        metrics.set_gauge("g", -2.5)
        for value in (0.001, 0.05, 3.0):
            metrics.observe("h", value)

        snapshot = metrics.snapshot()
        restored = MetricsRegistry()
        restored.restore(snapshot)

        assert restored.snapshot() == snapshot
        assert restored.histogram("h").quantile(0.5) == pytest.approx(
            metrics.histogram("h").quantile(0.5)
        )

    def test_snapshot_is_json_safe(self):
        import json

        metrics = MetricsRegistry()
        metrics.inc("c")
        metrics.observe("h", 0.2)
        json.dumps(metrics.snapshot())

    def test_render_text_exposition(self):
        metrics = MetricsRegistry()
        metrics.inc("service.ingest.accepted", 12)
        metrics.set_gauge("service.queue.depth", 3)
        metrics.observe("pipeline.run_seconds", 0.12)
        text = metrics.render_text()
        assert "# TYPE service_ingest_accepted counter" in text
        assert "service_ingest_accepted 12" in text
        assert "# TYPE service_queue_depth gauge" in text
        assert "# TYPE pipeline_run_seconds histogram" in text
        assert 'pipeline_run_seconds_bucket{le="+Inf"} 1' in text
        assert "pipeline_run_seconds_count 1" in text

    def test_render_empty(self):
        assert MetricsRegistry().render_text() == ""

    def test_pickle_round_trip(self):
        metrics = MetricsRegistry()
        metrics.inc("c", 2)
        metrics.observe("h", 0.5)
        clone = pickle.loads(pickle.dumps(metrics))
        assert clone.counter("c").value == 2
        assert clone.histogram("h").count == 1
        clone.inc("c")  # lock recreated, still usable

    def test_thread_safety_under_contention(self):
        metrics = MetricsRegistry()
        n_threads, per_thread = 8, 500

        def hammer():
            for _ in range(per_thread):
                metrics.inc("contended.count")
                metrics.observe("contended.seconds", 0.001)

        threads = [threading.Thread(target=hammer) for _ in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert metrics.counter("contended.count").value == n_threads * per_thread
        assert metrics.histogram("contended.seconds").count == n_threads * per_thread
