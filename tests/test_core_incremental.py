"""Tests for repro.core.incremental (the per-series scan cache)."""

import pickle

import numpy as np
import pytest

from repro.core import IncrementalScanCache
from repro.tsdb.series import TimeSeries


def make_series(n=300, mean=0.001, std=0.00002, seed=0, name="svc.sub0.gcpu"):
    rng = np.random.default_rng(seed)
    series = TimeSeries(name)
    series.extend((tick * 60.0, float(value))
                  for tick, value in enumerate(rng.normal(mean, std, n)))
    return series


def anchor(cache, series, now, had_candidate=False):
    cache.record_full_scan(series, now, series.values[-200:], had_candidate)


class TestIncrementalScanCache:
    def test_first_decision_is_a_miss(self):
        cache = IncrementalScanCache(max_staleness=12_000.0)
        series = make_series()
        assert cache.should_scan(series, now=18_000.0)
        assert cache.counters() == {
            "hits": 0, "misses": 1, "invalidations": 0, "anchors": 0,
        }

    def test_quiet_series_hits_until_staleness(self):
        cache = IncrementalScanCache(max_staleness=12_000.0)
        series = make_series()
        now = series.timestamp_at(-1)
        anchor(cache, series, now)
        # No new data, within staleness: the previous verdict stands.
        assert not cache.should_scan(series, now + 6_000.0)
        # A full analysis span later the anchor is too old.
        assert cache.should_scan(series, now + 12_000.0)
        assert cache.hits == 1 and cache.misses == 1

    def test_quiet_appends_stay_hits(self):
        cache = IncrementalScanCache(max_staleness=12_000.0)
        series = make_series(seed=1)
        now = series.timestamp_at(-1)
        anchor(cache, series, now)
        rng = np.random.default_rng(2)
        for tick in range(20):
            series.append(now + (tick + 1) * 60.0,
                          float(rng.normal(0.001, 0.00002)))
        assert not cache.should_scan(series, now + 1_200.0)
        assert cache.hit_rate == 1.0

    def test_shifted_appends_force_full_scan(self):
        cache = IncrementalScanCache(max_staleness=1e9)
        series = make_series(seed=3)
        now = series.timestamp_at(-1)
        anchor(cache, series, now)
        for tick in range(30):  # 5-sigma shift: the screen must fire
            series.append(now + (tick + 1) * 60.0, 0.0011)
        assert cache.should_scan(series, now + 1_800.0)

    def test_candidate_series_always_rescanned(self):
        cache = IncrementalScanCache(max_staleness=1e9)
        series = make_series(seed=4)
        now = series.timestamp_at(-1)
        anchor(cache, series, now, had_candidate=True)
        assert cache.should_scan(series, now + 60.0)

    def test_backfill_invalidates_anchor(self):
        cache = IncrementalScanCache(max_staleness=1e9)
        series = make_series(seed=5)
        now = series.timestamp_at(-1)
        anchor(cache, series, now)
        series.insert(30.0, 0.5)  # out-of-order backfill rewrites history
        assert cache.should_scan(series, now + 60.0)
        assert cache.invalidations == 1
        assert len(cache) == 0

    def test_shrunk_series_invalidates_anchor(self):
        cache = IncrementalScanCache(max_staleness=1e9)
        series = make_series(seed=6)
        anchor(cache, series, series.timestamp_at(-1))
        shorter = make_series(n=100, seed=6, name=series.name)
        assert cache.should_scan(shorter, 1e6)
        assert cache.invalidations == 1

    def test_clear_counts_invalidations(self):
        cache = IncrementalScanCache(max_staleness=1e9)
        for index in range(3):
            series = make_series(seed=index, name=f"svc.sub{index}.gcpu")
            anchor(cache, series, series.timestamp_at(-1))
        assert len(cache) == 3
        cache.clear()
        assert len(cache) == 0
        assert cache.invalidations == 3

    def test_forget_is_idempotent(self):
        cache = IncrementalScanCache(max_staleness=1e9)
        series = make_series(seed=7)
        anchor(cache, series, series.timestamp_at(-1))
        cache.forget(series.name)
        cache.forget(series.name)
        assert len(cache) == 0

    def test_rejects_nonpositive_staleness(self):
        with pytest.raises(ValueError, match="max_staleness"):
            IncrementalScanCache(max_staleness=0.0)

    def test_pickle_round_trip_preserves_anchors(self):
        cache = IncrementalScanCache(max_staleness=12_000.0)
        series = make_series(seed=8)
        now = series.timestamp_at(-1)
        anchor(cache, series, now)
        clone = pickle.loads(pickle.dumps(cache))
        assert len(clone) == 1
        assert not clone.should_scan(series, now + 60.0)
