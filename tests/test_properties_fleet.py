"""Property-based tests on fleet and pipeline invariants."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.fleet.events import TransientEvent, TransientEventKind
from repro.fleet.subroutine import CallGraph, SubroutineSpec
from repro.profiling.aggregate import StackTrie
from repro.tsdb import TimeSeries, WindowSpec


def graph_from_spec(costs):
    """Build a chain-with-branches graph from a list of costs."""
    graph = CallGraph(root="_start")
    parents = ["_start"]
    for i, cost in enumerate(costs):
        parent = parents[i % len(parents)]
        name = f"n{i}"
        graph.add(SubroutineSpec(name, self_cost=cost, parent=parent))
        parents.append(name)
    return graph


cost_lists = st.lists(
    st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
    min_size=1,
    max_size=12,
)


class TestCallGraphProperties:
    @given(cost_lists)
    def test_inclusion_probabilities_bounded(self, costs):
        graph = graph_from_spec(costs)
        probabilities = graph.inclusion_probabilities()
        for value in probabilities.values():
            assert -1e-9 <= value <= 1.0 + 1e-9

    @given(cost_lists)
    def test_root_inclusion_is_total(self, costs):
        assume(sum(costs) > 0)
        graph = graph_from_spec(costs)
        assert graph.inclusion_probabilities()["_start"] == pytest.approx(1.0)

    @given(cost_lists)
    def test_parent_dominates_child(self, costs):
        graph = graph_from_spec(costs)
        probabilities = graph.inclusion_probabilities()
        for name in graph.names():
            parent = graph.get(name).parent
            if parent is not None:
                assert probabilities[parent] >= probabilities[name] - 1e-9

    @given(
        cost_lists,
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        st.integers(min_value=0, max_value=11),
        st.integers(min_value=0, max_value=11),
    )
    def test_move_cost_conserves_total(self, costs, fraction, i, j):
        assume(i < len(costs) and j < len(costs) and i != j)
        graph = graph_from_spec(costs)
        total_before = graph.total_cost()
        graph.move_cost(f"n{i}", f"n{j}", fraction)
        assert graph.total_cost() == pytest.approx(total_before, rel=1e-9, abs=1e-9)

    @given(cost_lists, st.integers(min_value=1, max_value=500))
    @settings(max_examples=25, deadline=None)
    def test_sample_weights_sum_to_n(self, costs, n_samples):
        assume(sum(costs) > 0)
        graph = graph_from_spec(costs)
        traces = graph.sample_traces(n_samples, np.random.default_rng(0))
        assert sum(t.weight for t in traces) == pytest.approx(n_samples)

    @given(cost_lists, st.integers(min_value=1, max_value=200))
    @settings(max_examples=25, deadline=None)
    def test_trie_gcpu_matches_graph_inclusion_in_expectation(self, costs, n_samples):
        assume(sum(costs) > 1e-6)
        graph = graph_from_spec(costs)
        traces = graph.sample_traces(50_000, np.random.default_rng(1))
        trie = StackTrie().add_all(traces)
        probabilities = graph.inclusion_probabilities()
        # Spot-check the first subroutine's empirical inclusion.
        name = "n0"
        path_prefix = None
        for trace in traces:
            if name in trace.subroutines:
                idx = trace.subroutines.index(name)
                path_prefix = trace.subroutines[: idx + 1]
                break
        assume(path_prefix is not None)
        assert trie.gcpu(tuple(path_prefix)) == pytest.approx(
            probabilities[name], abs=0.02
        )


class TestEventProperties:
    kinds = st.sampled_from(list(TransientEventKind))

    @given(
        kinds,
        st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
        st.floats(min_value=0.1, max_value=1e5, allow_nan=False),
        st.floats(min_value=0.0, max_value=3.0, allow_nan=False),
        st.floats(min_value=-1e6, max_value=2e6, allow_nan=False),
    )
    def test_multiplier_identity_outside_window(self, kind, start, duration, intensity, t):
        event = TransientEvent(kind, start=start, duration=duration, intensity=intensity)
        if not event.active_at(t):
            for metric in ("cpu", "throughput", "latency", "error_rate"):
                assert event.multiplier(metric, t) == 1.0

    @given(kinds, st.floats(min_value=0.1, max_value=1e4, allow_nan=False))
    def test_zero_intensity_is_identity(self, kind, duration):
        event = TransientEvent(kind, start=0.0, duration=duration, intensity=0.0)
        assert event.multiplier("cpu", duration / 2) == pytest.approx(1.0)


class TestWindowProperties:
    @given(
        st.floats(min_value=1.0, max_value=1e4, allow_nan=False),
        st.floats(min_value=1.0, max_value=1e4, allow_nan=False),
        st.floats(min_value=0.0, max_value=1e4, allow_nan=False),
        st.integers(min_value=0, max_value=300),
    )
    @settings(max_examples=40, deadline=None)
    def test_windows_partition_series(self, historic, analysis, extended, n_points):
        spec = WindowSpec(historic=historic, analysis=analysis, extended=extended)
        series = TimeSeries("s")
        for i in range(n_points):
            series.append(float(i), float(i))
        view = spec.view(series, now=float(n_points))
        # The three windows are disjoint and ordered; together they cover
        # exactly the points within [now - total, now).
        covered = view.historic.size + view.analysis.size + view.extended.size
        expected = sum(
            1 for i in range(n_points) if float(n_points) - spec.total <= i < n_points
        )
        assert covered == expected
        assert np.array_equal(view.full, np.sort(view.full))
