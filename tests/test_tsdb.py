"""Tests for repro.tsdb (series, database, windows)."""

import numpy as np
import pytest

from repro.tsdb import TimeSeries, TimeSeriesDatabase, WindowSpec


class TestTimeSeries:
    def test_append_and_len(self):
        series = TimeSeries("s")
        series.append(0.0, 1.0)
        series.append(1.0, 2.0)
        assert len(series) == 2
        assert list(series) == [(0.0, 1.0), (1.0, 2.0)]

    def test_out_of_order_append_raises(self):
        series = TimeSeries("s")
        series.append(10.0, 1.0)
        with pytest.raises(ValueError):
            series.append(5.0, 2.0)

    def test_equal_timestamp_last_write_wins(self):
        series = TimeSeries("s")
        series.append(1.0, 1.0)
        series.append(1.0, 2.0)
        assert len(series) == 1
        assert list(series) == [(1.0, 2.0)]

    def test_equal_timestamp_reject_policy_raises(self):
        series = TimeSeries("s", duplicate_policy="reject")
        series.append(1.0, 1.0)
        with pytest.raises(ValueError):
            series.append(1.0, 2.0)
        with pytest.raises(ValueError):
            series.insert(1.0, 3.0)
        assert list(series) == [(1.0, 1.0)]

    def test_unknown_duplicate_policy_raises(self):
        with pytest.raises(ValueError):
            TimeSeries("s", duplicate_policy="first_write_wins")

    def test_insert_keeps_order(self):
        series = TimeSeries("s")
        series.extend([(0.0, 0.0), (2.0, 2.0)])
        series.insert(1.0, 1.0)
        assert list(series.timestamps) == [0.0, 1.0, 2.0]

    def test_insert_duplicate_overwrites_in_place(self):
        series = TimeSeries("s")
        series.extend([(0.0, 0.0), (1.0, 1.0), (2.0, 2.0)])
        series.insert(1.0, 9.0)
        assert list(series.timestamps) == [0.0, 1.0, 2.0]
        assert list(series.values) == [0.0, 9.0, 2.0]

    def test_ingest_many_merges_stragglers_sorted(self):
        series = TimeSeries("s")
        series.extend([(0.0, 0.0), (4.0, 4.0), (8.0, 8.0)])
        written = series.ingest_many(
            [(10.0, 10.0), (2.0, 2.0), (6.0, 6.0), (1.0, 1.0), (12.0, 12.0)]
        )
        assert written == 5
        assert list(series.timestamps) == [0.0, 1.0, 2.0, 4.0, 6.0, 8.0, 10.0, 12.0]
        assert list(series.values) == list(series.timestamps)

    def test_ingest_many_duplicate_stragglers_last_write_wins(self):
        series = TimeSeries("s")
        series.extend([(0.0, 0.0), (4.0, 4.0)])
        series.ingest_many([(4.0, 40.0), (2.0, 2.0), (2.0, 20.0), (0.0, -1.0)])
        assert list(series.timestamps) == [0.0, 2.0, 4.0]
        assert list(series.values) == [-1.0, 20.0, 40.0]

    def test_timestamps_between(self):
        series = TimeSeries("s")
        series.extend([(float(i), 0.0) for i in range(10)])
        assert list(series.timestamps_between(2.0, 5.0)) == [2.0, 3.0, 4.0]

    def test_between_half_open(self):
        series = TimeSeries("s")
        series.extend([(0.0, 0.0), (1.0, 1.0), (2.0, 2.0), (3.0, 3.0)])
        sub = series.between(1.0, 3.0)
        assert list(sub.values) == [1.0, 2.0]

    def test_values_between(self):
        series = TimeSeries("s")
        series.extend([(float(i), float(i)) for i in range(10)])
        assert list(series.values_between(2.0, 5.0)) == [2.0, 3.0, 4.0]

    def test_start_end(self):
        series = TimeSeries("s")
        assert series.start is None and series.end is None
        series.extend([(1.0, 0.0), (5.0, 0.0)])
        assert series.start == 1.0 and series.end == 5.0

    def test_drop_before(self):
        series = TimeSeries("s")
        series.extend([(float(i), float(i)) for i in range(10)])
        dropped = series.drop_before(4.0)
        assert dropped == 4
        assert series.start == 4.0

    def test_as_mapping(self):
        series = TimeSeries("s")
        series.extend([(0.0, 1.0), (1.0, 2.0)])
        assert series.as_mapping() == {0.0: 1.0, 1.0: 2.0}


class TestTimeSeriesDatabase:
    def test_write_autocreates(self):
        db = TimeSeriesDatabase()
        db.write("a.b", 0.0, 1.0, tags={"metric": "gcpu"})
        assert "a.b" in db
        assert len(db) == 1

    def test_create_merges_tags(self):
        db = TimeSeriesDatabase()
        db.create("s", {"a": "1"})
        db.create("s", {"b": "2"})
        assert db.get("s").tags == {"a": "1", "b": "2"}

    def test_query_by_tags(self):
        db = TimeSeriesDatabase()
        db.write("x", 0.0, 1.0, tags={"service": "svc", "metric": "gcpu"})
        db.write("y", 0.0, 1.0, tags={"service": "svc", "metric": "cpu"})
        db.write("z", 0.0, 1.0, tags={"service": "other", "metric": "gcpu"})
        assert [s.name for s in db.query(service="svc", metric="gcpu")] == ["x"]
        assert len(db.query(service="svc")) == 2

    def test_get_missing_none(self):
        assert TimeSeriesDatabase().get("nope") is None

    def test_names_sorted(self):
        db = TimeSeriesDatabase()
        db.create("b")
        db.create("a")
        assert db.names() == ["a", "b"]

    def test_retention(self):
        db = TimeSeriesDatabase()
        for i in range(10):
            db.write("s", float(i), 0.0)
        assert db.apply_retention(5.0) == 5
        assert db.get("s").start == 5.0


class TestWindowSpec:
    def test_invalid_durations_raise(self):
        with pytest.raises(ValueError):
            WindowSpec(historic=0, analysis=1)
        with pytest.raises(ValueError):
            WindowSpec(historic=1, analysis=1, extended=-1)

    def test_total(self):
        assert WindowSpec(10, 5, 2).total == 17

    def test_view_slices_correctly(self):
        series = TimeSeries("s")
        for i in range(100):
            series.append(float(i), float(i))
        spec = WindowSpec(historic=50, analysis=30, extended=20)
        view = spec.view(series, now=100.0)
        assert view.historic.size == 50
        assert view.analysis.size == 30
        assert view.extended.size == 20
        assert view.historic[0] == 0.0
        assert view.analysis[0] == 50.0
        assert view.extended[-1] == 99.0

    def test_view_without_extended(self):
        series = TimeSeries("s")
        for i in range(100):
            series.append(float(i), float(i))
        spec = WindowSpec(historic=60, analysis=40)
        view = spec.view(series, now=100.0)
        assert view.extended.size == 0
        assert view.analysis_and_extended.size == 40

    def test_full_concatenation(self):
        series = TimeSeries("s")
        for i in range(10):
            series.append(float(i), float(i))
        view = WindowSpec(5, 3, 2).view(series, now=10.0)
        assert list(view.full) == [float(i) for i in range(10)]

    def test_has_minimum_data(self):
        series = TimeSeries("s")
        for i in range(20):
            series.append(float(i), 0.0)
        view = WindowSpec(10, 5, 5).view(series, now=20.0)
        assert view.has_minimum_data(min_historic=10, min_analysis=5)
        assert not view.has_minimum_data(min_historic=11, min_analysis=5)

    def test_view_beyond_data_is_empty(self):
        series = TimeSeries("s")
        series.append(0.0, 1.0)
        view = WindowSpec(10, 5, 5).view(series, now=1000.0)
        assert view.full.size == 0
