"""Anchors: every constant the paper states, asserted in one place.

If a refactor drifts any paper-specified parameter, this file fails
loudly with the section reference.
"""

import pytest

from repro.config import DAY, HOUR, TABLE1_CONFIGS
from repro.core.change_point import ChangePointDetector
from repro.core.importance import ImportanceWeights
from repro.core.went_away import WentAwayDetector
from repro.som import som_grid_size
from repro.stats.robust import NORMALITY_CONSTANT
from repro.stats.sax import DEFAULT_BUCKETS, DEFAULT_VALID_FRACTION


class TestPaperConstants:
    def test_sax_settings_5_2_2(self):
        # "settled on N=20 and X=3%"
        assert DEFAULT_BUCKETS == 20
        assert DEFAULT_VALID_FRACTION == 0.03
        detector = WentAwayDetector()
        assert detector.n_buckets == 20
        assert detector.valid_fraction == 0.03

    def test_mad_threshold_5_2_2(self):
        # "Median Absolute Deviation with a normality constant of 1.4826"
        # and "a regression coefficient (default 1.5)".
        assert NORMALITY_CONSTANT == 1.4826
        assert WentAwayDetector().regression_coefficient == 1.5

    def test_lrt_significance_5_2_1(self):
        # "the likelihood-ratio chi-squared test with the significance
        # level of 0.01".
        assert ChangePointDetector().significance_level == 0.01

    def test_importance_weights_5_5_1(self):
        # "default values: w1=0.2, w2=0.6, w3=0.1, w4=0.1".
        weights = ImportanceWeights()
        assert weights.relative_cost == 0.2
        assert weights.absolute_cost == 0.6
        assert weights.unpopularity == 0.1
        assert weights.root_cause_found == 0.1
        assert (
            weights.relative_cost
            + weights.absolute_cost
            + weights.unpopularity
            + weights.root_cause_found
            == pytest.approx(1.0)
        )

    def test_som_grid_rule_5_5_1(self):
        # "a grid size of L x L, where L = ceil(n^(1/4))".
        for n, expected in ((1, 1), (16, 2), (17, 3), (81, 3), (82, 4), (625, 5)):
            assert som_grid_size(n) == expected, n

    def test_table1_row_count_and_units(self):
        # Twelve rows; absolute thresholds on the first nine, relative on
        # the last three (the CT rows).
        assert len(TABLE1_CONFIGS) == 12
        relative = [k for k, c in TABLE1_CONFIGS.items() if c.relative_threshold]
        assert sorted(relative) == ["ct_demand", "ct_supply_long", "ct_supply_short"]

    def test_table1_window_extremes(self):
        # Historic windows range 7-16 days; analysis 3 hours - 9 days.
        historics = [c.windows.historic for c in TABLE1_CONFIGS.values()]
        analyses = [c.windows.analysis for c in TABLE1_CONFIGS.values()]
        assert min(historics) == 7 * DAY
        assert max(historics) == 16 * DAY
        assert min(analyses) == 3 * HOUR
        assert max(analyses) == 9 * DAY

    def test_smallest_detection_threshold_is_0_005_percent(self):
        smallest = min(
            c.threshold for c in TABLE1_CONFIGS.values() if not c.relative_threshold
        )
        assert smallest == pytest.approx(0.00005)  # 0.005%

    def test_non_trivial_gcpu_definition_section_2(self):
        # "those with a gCPU of 0.001% or higher as non-trivial".
        from repro.profiling.gcpu import GcpuTable

        table = GcpuTable(total_weight=100.0, weights={"a": 0.002, "b": 1.0})
        assert table.non_trivial() == ["b", "a"]  # 0.002% and 1% both >= 0.001%
        table_tiny = GcpuTable(total_weight=100.0, weights={"c": 0.0005})
        assert table_tiny.non_trivial() == []  # 0.0005% < 0.001%
