"""Tests for repro.som."""

import numpy as np
import pytest

from repro.som import SelfOrganizingMap, som_cluster, som_grid_size


class TestGridSize:
    def test_paper_rule(self):
        assert som_grid_size(16) == 2
        assert som_grid_size(81) == 3
        assert som_grid_size(100) == 4  # ceil(100^0.25) = ceil(3.16)

    def test_small_inputs(self):
        assert som_grid_size(0) == 1
        assert som_grid_size(1) == 1


class TestSelfOrganizingMap:
    def test_invalid_grid_raises(self):
        with pytest.raises(ValueError):
            SelfOrganizingMap(grid_rows=0, grid_cols=2)

    def test_weights_before_fit_raises(self):
        som = SelfOrganizingMap(grid_rows=2, grid_cols=2)
        with pytest.raises(RuntimeError):
            _ = som.weights

    def test_predict_before_fit_raises(self):
        som = SelfOrganizingMap(grid_rows=2, grid_cols=2)
        with pytest.raises(RuntimeError):
            som.predict([[1.0, 2.0]])

    def test_fit_empty_raises(self):
        with pytest.raises(ValueError):
            SelfOrganizingMap(grid_rows=2, grid_cols=2).fit(np.empty((0, 3)))

    def test_separates_two_blobs(self, rng):
        a = rng.normal(0, 0.1, (25, 4))
        b = rng.normal(10, 0.1, (25, 4))
        som = SelfOrganizingMap(grid_rows=2, grid_cols=2, seed=0).fit(np.vstack([a, b]))
        units_a = set(som.predict(a))
        units_b = set(som.predict(b))
        assert units_a.isdisjoint(units_b)

    def test_unit_coordinates(self):
        som = SelfOrganizingMap(grid_rows=3, grid_cols=4)
        assert som.unit_coordinates(0) == (0, 0)
        assert som.unit_coordinates(5) == (1, 1)
        assert som.n_units == 12

    def test_deterministic_with_seed(self, rng):
        data = rng.normal(0, 1, (30, 3))
        w1 = SelfOrganizingMap(2, 2, seed=7).fit(data).weights
        w2 = SelfOrganizingMap(2, 2, seed=7).fit(data).weights
        assert np.allclose(w1, w2)


class TestSomCluster:
    def test_empty(self):
        assert som_cluster(np.empty((0, 2))) == []

    def test_single_item(self):
        assert som_cluster([[1.0, 2.0]]) == [[0]]

    def test_two_blobs_two_clusters(self, rng):
        a = rng.normal(0, 0.1, (20, 3))
        b = rng.normal(5, 0.1, (15, 3))
        clusters = som_cluster(np.vstack([a, b]))
        assert len(clusters) == 2
        assert sorted(clusters[0]) == list(range(20))
        assert sorted(clusters[1]) == list(range(20, 35))

    def test_partition_property(self, rng):
        data = rng.normal(0, 1, (40, 5))
        clusters = som_cluster(data)
        flattened = sorted(i for cluster in clusters for i in cluster)
        assert flattened == list(range(40))

    def test_merge_factor_zero_allows_fragmentation(self, rng):
        a = rng.normal(0, 0.1, (20, 3))
        b = rng.normal(5, 0.1, (15, 3))
        merged = som_cluster(np.vstack([a, b]), merge_factor=0.25)
        unmerged = som_cluster(np.vstack([a, b]), merge_factor=0.0)
        assert len(unmerged) >= len(merged)

    def test_identical_items_single_cluster(self):
        data = np.ones((10, 3))
        clusters = som_cluster(data)
        assert len(clusters) == 1
