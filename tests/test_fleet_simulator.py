"""Tests for repro.fleet.simulator, server, service."""

import numpy as np
import pytest

from repro.fleet import (
    ChangeEffect,
    ChangeLog,
    CodeChange,
    CostShift,
    FleetSimulator,
    Server,
    ServerGeneration,
    ServiceSpec,
    TransientEvent,
    TransientEventKind,
)
from repro.fleet.subroutine import CallGraph, SubroutineSpec


def small_graph():
    graph = CallGraph(root="_start")
    graph.add(SubroutineSpec("svc::M::main", self_cost=0.0, parent="_start", endpoint="/home"))
    graph.add(SubroutineSpec("svc::A::hot", self_cost=6.0, parent="svc::M::main"))
    graph.add(SubroutineSpec("svc::A::warm", self_cost=3.0, parent="svc::M::main"))
    graph.add(SubroutineSpec("svc::B::cold", self_cost=1.0, parent="svc::A::hot"))
    return graph


def make_spec(**overrides):
    defaults = dict(
        name="svc",
        call_graph=small_graph(),
        n_servers=20,
        effective_samples=500_000,
        samples_per_interval=100,
    )
    defaults.update(overrides)
    return ServiceSpec(**defaults)


class TestServerGeneration:
    def test_invalid_mean_raises(self):
        with pytest.raises(ValueError):
            ServerGeneration("g", cpu_mean=1.5, cpu_variance=0.01)

    def test_invalid_sensitivity_raises(self):
        with pytest.raises(ValueError):
            ServerGeneration("g", cpu_mean=0.5, cpu_variance=0.01, regression_sensitivity=0.0)


class TestServiceSpec:
    def test_invalid_servers_raises(self):
        with pytest.raises(ValueError):
            make_spec(n_servers=0)

    def test_build_servers_round_robin(self):
        spec = make_spec(n_servers=7)
        servers = spec.build_servers()
        assert len(servers) == 7
        assert servers[0].generation != servers[1].generation

    def test_seasonal_multiplier_disabled(self):
        spec = make_spec(seasonality_amplitude=0.0)
        assert spec.seasonal_multiplier(12345.0) == 1.0

    def test_seasonal_multiplier_swing(self):
        spec = make_spec(seasonality_amplitude=0.2, seasonality_period=100.0)
        assert spec.seasonal_multiplier(25.0) == pytest.approx(1.2)
        assert spec.seasonal_multiplier(75.0) == pytest.approx(0.8)


class TestFleetSimulator:
    def test_emits_all_metric_kinds(self):
        sim = FleetSimulator(make_spec(), interval=60.0, seed=0)
        result = sim.run(20)
        db = result.database
        assert db.get("svc.cpu") is not None
        assert db.get("svc.throughput") is not None
        assert db.get("svc.latency_ms") is not None
        assert db.get("svc.error_rate") is not None
        assert db.get("svc.svc::A::hot.gcpu") is not None
        assert db.get("svc.endpoint.endpoint.home.gcpu") or db.query(metric="endpoint_gcpu")

    def test_gcpu_tracks_inclusion_probability(self):
        sim = FleetSimulator(make_spec(), interval=60.0, seed=1)
        result = sim.run(50)
        values = result.database.get("svc.svc::A::hot.gcpu").values
        assert values.mean() == pytest.approx(0.7, abs=0.01)

    def test_change_applies_at_deploy_time(self):
        log = ChangeLog(
            [CodeChange("c1", deploy_time=50 * 60.0, effects=(ChangeEffect("svc::A::warm", 2.0),))]
        )
        sim = FleetSimulator(make_spec(), change_log=log, interval=60.0, seed=2)
        result = sim.run(100)
        values = result.database.get("svc.svc::A::warm.gcpu").values
        # gCPU of warm: before 3/10=0.3; after scaling cost 6: 6/13 ~ 0.46.
        assert values[:45].mean() == pytest.approx(0.30, abs=0.02)
        assert values[55:].mean() == pytest.approx(6 / 13, abs=0.02)

    def test_cost_shift_conserves_total(self):
        log = ChangeLog(
            [
                CodeChange(
                    "refactor",
                    deploy_time=30 * 60.0,
                    cost_shifts=(CostShift("svc::A::hot", "svc::A::warm", 0.5),),
                )
            ]
        )
        spec = make_spec()
        sim = FleetSimulator(spec, change_log=log, interval=60.0, seed=3)
        result = sim.run(60)
        # Total graph cost unchanged -> service CPU unchanged.
        cpu = result.database.get("svc.cpu").values
        assert cpu[:25].mean() == pytest.approx(cpu[35:].mean(), abs=0.02)
        # But the target's gCPU increased.
        warm = result.database.get("svc.svc::A::warm.gcpu").values
        assert warm[35:].mean() > warm[:25].mean() + 0.1

    def test_cost_shift_creates_new_subroutine(self):
        log = ChangeLog(
            [
                CodeChange(
                    "extract",
                    deploy_time=10 * 60.0,
                    cost_shifts=(CostShift("svc::A::hot", "svc::A::extracted", 0.3),),
                )
            ]
        )
        sim = FleetSimulator(make_spec(), change_log=log, interval=60.0, seed=4)
        result = sim.run(30)
        assert "svc::A::extracted" in sim.spec.call_graph
        assert result.database.get("svc.svc::A::extracted.gcpu") is not None

    def test_transient_event_perturbs_throughput(self):
        events = [
            TransientEvent(TransientEventKind.TRAFFIC_SHIFT, start=20 * 60.0, duration=10 * 60.0)
        ]
        sim = FleetSimulator(make_spec(), events=events, interval=60.0, seed=5)
        result = sim.run(60)
        tput = result.database.get("svc.throughput").values
        during = tput[22:28].mean()
        outside = np.concatenate([tput[:18], tput[35:]]).mean()
        assert during < 0.8 * outside

    def test_deterministic_given_seed(self):
        r1 = FleetSimulator(make_spec(), interval=60.0, seed=9).run(10)
        r2 = FleetSimulator(make_spec(), interval=60.0, seed=9).run(10)
        assert np.allclose(
            r1.database.get("svc.cpu").values, r2.database.get("svc.cpu").values
        )

    def test_sample_history_accumulates(self):
        sim = FleetSimulator(make_spec(samples_per_interval=50), interval=60.0, seed=6)
        result = sim.run(10)
        assert sum(t.weight for t in result.collector.sample_history) == 500

    def test_invalid_interval_raises(self):
        with pytest.raises(ValueError):
            FleetSimulator(make_spec(), interval=0.0)

    def test_result_bookkeeping(self):
        result = FleetSimulator(make_spec(), interval=30.0, seed=0).run(7)
        assert result.ticks == 7
        assert result.end_time == pytest.approx(210.0)
