"""Tests for repro.stats.cusum."""

import numpy as np
import pytest

from repro.stats.cusum import cusum_changepoint, cusum_statistic


class TestCusumStatistic:
    def test_empty_series(self):
        assert cusum_statistic([]).size == 0

    def test_sums_to_zero_at_end(self, rng):
        curve = cusum_statistic(rng.normal(0, 1, 50))
        assert curve[-1] == pytest.approx(0.0, abs=1e-9)

    def test_step_series_has_extremum_at_step(self):
        x = np.concatenate([np.zeros(50), np.ones(50)])
        curve = cusum_statistic(x)
        assert int(np.argmax(np.abs(curve))) == 49

    def test_constant_series_is_flat(self):
        curve = cusum_statistic(np.full(30, 7.0))
        assert np.allclose(curve, 0.0)


class TestCusumChangepoint:
    def test_locates_step(self, step_series):
        result = cusum_changepoint(step_series)
        assert result is not None
        assert abs(result.index - 100) <= 3

    def test_mean_estimates(self, step_series):
        result = cusum_changepoint(step_series)
        assert result.mean_before == pytest.approx(0.0, abs=0.2)
        assert result.mean_after == pytest.approx(1.0, abs=0.2)
        assert result.shift == pytest.approx(1.0, abs=0.3)

    def test_too_short_returns_none(self):
        assert cusum_changepoint([1.0, 2.0, 3.0], min_segment=2) is None

    def test_statistic_higher_for_cleaner_step(self, rng):
        clean = np.concatenate([rng.normal(0, 0.1, 100), rng.normal(1, 0.1, 100)])
        noisy = np.concatenate([rng.normal(0, 2.0, 100), rng.normal(1, 2.0, 100)])
        assert cusum_changepoint(clean).statistic > cusum_changepoint(noisy).statistic

    def test_respects_min_segment(self):
        x = np.concatenate([np.zeros(4), np.ones(46)])
        result = cusum_changepoint(x, min_segment=10)
        assert result.index >= 10
        assert result.index <= 40

    def test_constant_series_zero_statistic(self):
        result = cusum_changepoint(np.full(20, 3.0))
        assert result.statistic == 0.0

    def test_decrease_also_detected(self, rng):
        x = np.concatenate([rng.normal(5, 0.2, 80), rng.normal(2, 0.2, 80)])
        result = cusum_changepoint(x)
        assert abs(result.index - 80) <= 3
        assert result.shift < 0
