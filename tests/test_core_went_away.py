"""Tests for repro.core.went_away (the §5.2.2 predicate)."""

import numpy as np
import pytest

from repro.core.change_point import ChangePointDetector
from repro.core.types import FilterReason
from repro.core.went_away import WentAwayDetector
from repro.fleet import scenarios
from repro.tsdb import TimeSeries, WindowSpec


def make_view(values, historic=600, analysis=200, extended=100):
    """Lay out ``values`` over a historic/analysis/extended window split."""
    series = TimeSeries("s")
    for i, value in enumerate(values):
        series.append(float(i), float(value))
    spec = WindowSpec(historic=historic, analysis=analysis, extended=extended)
    return spec.view(series, now=float(len(values)))


def detect_in_analysis(view):
    candidate = ChangePointDetector().detect_increase(view.analysis)
    assert candidate is not None, "test setup: no change point found"
    return candidate


class TestWentAwayDetector:
    def test_true_step_regression_kept(self, rng):
        values = rng.normal(0.001, 0.00002, 900)
        values[700:] += 0.0002
        view = make_view(values)
        candidate = detect_in_analysis(view)
        diagnosis = WentAwayDetector().diagnose(view, candidate)
        assert diagnosis.is_true_regression
        assert not diagnosis.gone_away

    def test_transient_dip_filtered(self):
        # Figure 1(c)-style (negated to an oriented increase): a bump late
        # in the analysis window that recovers in the extended window.
        rng = np.random.default_rng(5)
        values = rng.normal(0.001, 0.00002, 900)
        values[700:790] += 0.0004  # transient; recovered by t=790
        view = make_view(values)
        candidate = detect_in_analysis(view)
        diagnosis = WentAwayDetector().diagnose(view, candidate)
        assert not diagnosis.is_true_regression
        assert diagnosis.gone_away

    def test_figure7_spike_does_not_mask_end_regression(self):
        # A historic spike plus a true regression at the very end.
        rng = np.random.default_rng(7)
        values = rng.normal(0.001, 0.00002, 900)
        values[300:330] += 0.0008        # historic spike
        values[760:] += 0.0004           # true end regression
        view = make_view(values)
        candidate = ChangePointDetector().detect_increase(view.analysis)
        assert candidate is not None
        diagnosis = WentAwayDetector().diagnose(view, candidate)
        assert diagnosis.is_true_regression

    def test_new_pattern_reports_without_trend(self, rng):
        # A jump to a level never seen historically is a new pattern.
        values = rng.normal(0.001, 0.00001, 900)
        values[700:] += 0.001  # 100x the noise; all post letters invalid
        view = make_view(values)
        candidate = detect_in_analysis(view)
        diagnosis = WentAwayDetector().diagnose(view, candidate)
        assert diagnosis.new_pattern

    def test_improvement_new_pattern_not_reported(self, rng):
        # A drop below every historically valid bucket: a new pattern but
        # cheaper, so not a regression.  (Construct directly: the change
        # point detector would not even flag it as an increase.)
        values = rng.normal(0.001, 0.00001, 900)
        values[700:] -= 0.0008
        view = make_view(values)
        from repro.core.change_point import ChangePointCandidate

        candidate = ChangePointCandidate(
            index=100, mean_before=0.001, mean_after=0.0002, p_value=0.0
        )
        diagnosis = WentAwayDetector().diagnose(view, candidate)
        assert not diagnosis.new_pattern

    def test_check_returns_verdict(self, rng):
        values = rng.normal(0.001, 0.00002, 900)
        values[700:] += 0.0002
        view = make_view(values)
        candidate = detect_in_analysis(view)
        verdict = WentAwayDetector().check(view, candidate)
        assert verdict.passed

    def test_check_drop_reason(self):
        rng = np.random.default_rng(5)
        values = rng.normal(0.001, 0.00002, 900)
        values[700:790] += 0.0004
        view = make_view(values)
        candidate = detect_in_analysis(view)
        verdict = WentAwayDetector().check(view, candidate)
        assert not verdict.passed
        assert verdict.reason is FilterReason.WENT_AWAY

    def test_lasting_trend_for_gradual_ramp(self, rng):
        values = rng.normal(0.001, 0.00002, 900)
        values[650:] += np.linspace(0, 0.0003, 250)
        view = make_view(values)
        candidate = ChangePointDetector().detect_increase(view.analysis)
        if candidate is None:
            pytest.skip("ramp produced no significant change point")
        diagnosis = WentAwayDetector().diagnose(view, candidate)
        assert diagnosis.lasting_trend

    def test_significant_regression_requires_percentiles(self, rng):
        # A shift well inside the historic value range (not significant).
        values = rng.normal(0.001, 0.0002, 900)  # wide historic noise
        values[700:] += 0.00005  # tiny vs noise
        view = make_view(values)
        from repro.core.change_point import ChangePointCandidate

        candidate = ChangePointCandidate(
            index=100, mean_before=0.001, mean_after=0.00105, p_value=0.005
        )
        diagnosis = WentAwayDetector().diagnose(view, candidate)
        assert not diagnosis.significant_regression
