"""End-to-end tests for repro.service.service (StreamingDetectionService)."""

import numpy as np
import pytest

from repro.config import DetectionConfig
from repro.runtime import CollectingSink
from repro.service import (
    BackpressurePolicy,
    Sample,
    ServiceStats,
    StreamingDetectionService,
)
from repro.tsdb import WindowSpec


def small_config(**overrides):
    defaults = dict(
        name="test",
        threshold=0.00005,
        rerun_interval=6_000.0,
        windows=WindowSpec(historic=36_000.0, analysis=12_000.0, extended=6_000.0),
        long_term=False,
    )
    defaults.update(overrides)
    return DetectionConfig(**defaults)


N_TICKS = 1_100
INTERVAL = 60.0
SERIES = [f"svc.sub{i}.gcpu" for i in range(8)]


def make_samples(seed=3, regress_index=3):
    rng = np.random.default_rng(seed)
    samples = []
    for index, name in enumerate(SERIES):
        values = rng.normal(0.001, 0.00002, N_TICKS)
        if index == regress_index:
            values[700:] += 0.0003
        tags = {"metric": "gcpu", "service": "svc", "subroutine": name.split(".")[1]}
        samples.extend(
            Sample(name, tick * INTERVAL, float(values[tick]), tags)
            for tick in range(N_TICKS)
        )
    samples.sort(key=lambda s: s.timestamp)
    return samples


@pytest.fixture(scope="module")
def samples():
    return make_samples()


def build(sink, n_shards=4, **kwargs):
    kwargs.setdefault("backpressure", BackpressurePolicy.BLOCK)
    kwargs.setdefault("queue_capacity", 512)
    service = StreamingDetectionService(n_shards=n_shards, sinks=[sink], **kwargs)
    service.register_monitor("gcpu", small_config(), series_filter={"metric": "gcpu"})
    return service


class TestEndToEnd:
    def test_multi_shard_detects_the_regression(self, samples):
        sink = CollectingSink()
        service = build(sink, n_shards=4)
        assert service.ingest_many(samples) == len(samples)
        reports = service.advance_to(N_TICKS * INTERVAL)
        assert [r.metric_id for r in reports] == ["svc.sub3.gcpu"]
        assert sink.reports == reports
        assert service.funnel.counts["change_points"] >= 1

    def test_series_partitioned_across_shards(self, samples):
        service = build(CollectingSink(), n_shards=4)
        service.ingest_many(samples)
        service.flush()
        per_shard = [len(service.shard_database(i)) for i in range(4)]
        assert sum(per_shard) == len(SERIES)
        # Routing is by series name: each series lives on exactly one shard.
        assert all(count >= 0 for count in per_shard)
        owned = {
            name
            for shard_id in range(4)
            for name in service.shard_database(shard_id).names()
        }
        assert owned == set(SERIES)

    def test_no_duplicate_reports_on_re_advance(self, samples):
        sink = CollectingSink()
        service = build(sink, n_shards=2)
        service.ingest_many(samples)
        first = service.advance_to(N_TICKS * INTERVAL)
        again = service.advance_to(N_TICKS * INTERVAL)  # no new due scans
        assert len(first) == 1
        assert again == []
        assert len(sink.reports) == 1

    def test_stats_consistent(self, samples):
        service = build(CollectingSink(), n_shards=4)
        service.ingest_many(samples)
        service.advance_to(N_TICKS * INTERVAL)
        stats = service.stats()
        assert isinstance(stats, ServiceStats)
        assert stats.n_shards == 4
        assert stats.clock == N_TICKS * INTERVAL
        assert stats.offered == len(samples)
        assert stats.accepted == len(samples)
        assert stats.flushed == len(samples)  # BLOCK policy loses nothing
        assert stats.dropped == 0 and stats.rejected == 0
        assert stats.reported == 1
        assert stats.scans == sum(shard.scans for shard in stats.shards)
        assert sum(shard.series for shard in stats.shards) == len(SERIES)
        assert stats.metrics["counters"]["scheduler.scans"] == stats.scans
        rendered = stats.render()
        assert "shards=4" in rendered
        assert "scan latency" in rendered

    def test_render_metrics_exposition(self, samples):
        service = build(CollectingSink(), n_shards=2)
        service.ingest_many(samples[: len(SERIES) * 10])
        service.advance_to(600.0)
        text = service.render_metrics()
        assert "ingest_accepted" in text
        assert "service_advance_seconds" in text
        assert "# TYPE service_shards gauge" in text

    def test_background_flushers_drain_queues(self, samples):
        service = build(CollectingSink(), n_shards=2, queue_capacity=100_000)
        service.start(flush_interval=0.01)
        try:
            service.ingest_many(samples[:4_000])
            import time

            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline and service.stats().flushed < 4_000:
                time.sleep(0.01)
        finally:
            service.stop()
        stats = service.stats()
        assert stats.flushed == 4_000
        assert all(shard.pending == 0 for shard in stats.shards)

    def test_start_twice_raises(self):
        service = StreamingDetectionService(n_shards=1)
        service.start()
        try:
            with pytest.raises(RuntimeError, match="already started"):
                service.start()
        finally:
            service.stop()


class TestConfigurationErrors:
    def test_invalid_shard_count(self):
        with pytest.raises(ValueError, match="n_shards"):
            StreamingDetectionService(n_shards=0)

    def test_custom_routing_key_co_locates(self, samples):
        service = StreamingDetectionService(
            n_shards=4, routing_key=lambda sample: sample.tags["service"]
        )
        service.ingest_many(samples[: len(SERIES)])
        service.flush()
        populated = [
            shard_id for shard_id in range(4) if len(service.shard_database(shard_id))
        ]
        assert len(populated) == 1  # whole service on one shard
        assert len(service.shard_database(populated[0])) == len(SERIES)
