"""Tests for repro.profiling.pyperf (Figure 5 reconstruction)."""

import pytest

from repro.profiling.pyperf import (
    EVAL_FRAME_SYMBOL,
    PyPerfProfiler,
    SimulatedCPythonProcess,
    VcsFrame,
    merge_stacks,
)
from repro.profiling.stacktrace import Frame


class TestMergeStacks:
    def test_figure5_example(self):
        # System stack: _start, eval, eval, C-lib-foo (interpreter frames
        # elided); VCS: Py-funX, Py-funZ.
        system = [
            Frame("_start", kind="system"),
            Frame(EVAL_FRAME_SYMBOL, kind="interpreter"),
            Frame(EVAL_FRAME_SYMBOL, kind="interpreter"),
            Frame("C-lib-foo", kind="native"),
        ]
        vcs = [VcsFrame("Py-funX"), VcsFrame("Py-funZ")]
        merged = merge_stacks(system, vcs)
        assert merged.subroutines == ("_start", "Py-funX", "Py-funZ", "C-lib-foo")

    def test_interpreter_bookkeeping_dropped(self):
        system = [
            Frame("_start", kind="system"),
            Frame("Py_RunMain", kind="interpreter"),
            Frame(EVAL_FRAME_SYMBOL, kind="interpreter"),
        ]
        merged = merge_stacks(system, [VcsFrame("main")])
        assert merged.subroutines == ("_start", "main")

    def test_vcs_mismatch_raises(self):
        system = [Frame(EVAL_FRAME_SYMBOL, kind="interpreter")]
        with pytest.raises(ValueError, match="corrupt sample"):
            merge_stacks(system, [])

    def test_metadata_propagates(self):
        system = [Frame(EVAL_FRAME_SYMBOL, kind="interpreter")]
        merged = merge_stacks(system, [VcsFrame("handler", metadata="u:vip")])
        assert merged.frames[0].metadata == "u:vip"
        assert merged.frames[0].kind == "python"


class TestSimulatedCPythonProcess:
    def test_call_and_return(self):
        proc = SimulatedCPythonProcess()
        proc.call_python("main")
        proc.call_native("zlib")
        assert len(proc.vcs) == 1
        proc.ret()  # zlib
        proc.ret()  # main
        assert len(proc.vcs) == 0

    def test_return_past_bootstrap_raises(self):
        proc = SimulatedCPythonProcess()
        with pytest.raises(IndexError):
            proc.ret()

    def test_vcs_tracks_python_only(self):
        proc = SimulatedCPythonProcess()
        proc.call_python("a")
        proc.call_native("lib1")
        proc.call_python("b")
        assert [f.function for f in proc.vcs] == ["a", "b"]


class TestPyPerfProfiler:
    def _proc(self):
        proc = SimulatedCPythonProcess()
        proc.call_python("main")
        proc.call_python("handler")
        proc.call_native("json_dumps")
        return proc

    def test_sample_merges_end_to_end(self):
        profiler = PyPerfProfiler()
        trace = profiler.sample(self._proc())
        assert trace.subroutines == ("_start", "main", "handler", "json_dumps")
        assert profiler.samples_taken == 1

    def test_naive_sample_shows_interpreter_frames(self):
        profiler = PyPerfProfiler()
        naive = profiler.naive_sample(self._proc())
        # The naive OS-profiler view cannot name Python functions.
        names = naive.subroutines
        assert EVAL_FRAME_SYMBOL in names
        assert "main" not in names
        assert "handler" not in names

    def test_invalid_interval_raises(self):
        with pytest.raises(ValueError):
            PyPerfProfiler(sample_interval=0)

    def test_frame_kinds(self):
        trace = PyPerfProfiler().sample(self._proc())
        kinds = [f.kind for f in trace.frames]
        assert kinds == ["system", "python", "python", "native"]


class TestInterpreterVersions:
    """PyPerf "handles various Python versions" (§4): the bootstrap
    layouts differ, the merged trace does not."""

    def test_all_profiles_constructible(self):
        from repro.profiling.pyperf import INTERPRETER_PROFILES

        for version in INTERPRETER_PROFILES:
            proc = SimulatedCPythonProcess(python_version=version)
            proc.call_python("main")
            merged = PyPerfProfiler().sample(proc)
            # Bootstrap differences are invisible after the merge.
            assert merged.subroutines == ("_start", "main")

    def test_unknown_version_raises(self):
        with pytest.raises(ValueError, match="unsupported python_version"):
            SimulatedCPythonProcess(python_version="2.7")

    def test_naive_view_differs_across_versions(self):
        old = SimulatedCPythonProcess(python_version="3.8")
        new = SimulatedCPythonProcess(python_version="3.12")
        profiler = PyPerfProfiler()
        assert (
            profiler.naive_sample(old).subroutines
            != profiler.naive_sample(new).subroutines
        )

    def test_ret_guard_respects_version_bootstrap(self):
        proc = SimulatedCPythonProcess(python_version="3.12")
        proc.call_python("f")
        proc.ret()
        with pytest.raises(IndexError):
            proc.ret()
