"""Tests for repro.stats.incremental (Welford moments, Page's CUSUM)."""

import pickle

import numpy as np
import pytest

from repro.stats import RunningMoments, StreamingCusum


class TestRunningMoments:
    def test_matches_numpy(self):
        rng = np.random.default_rng(0)
        values = rng.normal(5.0, 2.0, 500)
        moments = RunningMoments()
        moments.update_many(values)
        assert moments.n == 500
        assert moments.mean == pytest.approx(values.mean())
        assert moments.variance == pytest.approx(values.var(), rel=1e-9)
        assert moments.std == pytest.approx(values.std(), rel=1e-9)

    def test_empty_and_single(self):
        moments = RunningMoments()
        assert moments.n == 0
        assert moments.variance == 0.0
        moments.update(3.0)
        assert moments.mean == 3.0
        assert moments.variance == 0.0

    def test_incremental_equals_batch(self):
        rng = np.random.default_rng(1)
        values = rng.normal(0.0, 1.0, 100)
        one_by_one = RunningMoments()
        for value in values:
            one_by_one.update(float(value))
        batched = RunningMoments()
        batched.update_many(values)
        assert one_by_one.mean == pytest.approx(batched.mean)
        assert one_by_one.variance == pytest.approx(batched.variance)


class TestStreamingCusum:
    def test_quiet_stream_does_not_fire(self):
        # One staleness-window's worth of quiet points: between full
        # scans the screen sees at most an analysis span of new data.
        rng = np.random.default_rng(2)
        reference = rng.normal(0.001, 0.00002, 200)
        cusum = StreamingCusum.from_reference(reference)
        assert not cusum.update_many(rng.normal(0.001, 0.00002, 150))

    def test_fires_on_upward_shift(self):
        rng = np.random.default_rng(3)
        reference = rng.normal(0.001, 0.00002, 200)
        cusum = StreamingCusum.from_reference(reference)
        shifted = rng.normal(0.001, 0.00002, 100) + 0.0001  # 5 sigma
        assert cusum.update_many(shifted)
        assert cusum.fired

    def test_fires_on_downward_shift(self):
        rng = np.random.default_rng(4)
        reference = rng.normal(0.001, 0.00002, 200)
        cusum = StreamingCusum.from_reference(reference)
        assert cusum.update_many(rng.normal(0.001, 0.00002, 100) - 0.0001)

    def test_fired_is_sticky_until_reanchor(self):
        cusum = StreamingCusum(mean=0.0, std=1.0)
        cusum.update_many([10.0])
        assert cusum.fired
        cusum.update_many([0.0] * 50)  # quiet again, still latched
        assert cusum.fired
        cusum.reanchor(mean=0.0, std=1.0)
        assert not cusum.fired
        assert not cusum.update_many([0.0] * 10)

    def test_zero_std_fires_on_any_deviation(self):
        cusum = StreamingCusum(mean=1.0, std=0.0)
        assert not cusum.update(1.0)
        assert cusum.update(1.0 + 1e-9)

    def test_pickle_round_trip(self):
        cusum = StreamingCusum(mean=0.0, std=1.0)
        cusum.update_many([0.5, -0.5, 0.5])
        clone = pickle.loads(pickle.dumps(cusum))
        assert clone.fired == cusum.fired
        assert clone.update(100.0)
