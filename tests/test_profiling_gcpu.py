"""Tests for repro.profiling.gcpu and the sampler."""

import time
import threading

import pytest

from repro.profiling.gcpu import GcpuTable, compute_gcpu, stack_trace_overlap
from repro.profiling.sampler import ThreadStackSampler
from repro.profiling.stacktrace import StackTrace


def traces(*specs):
    """Build traces from (names, weight) pairs."""
    return [StackTrace.from_names(names, weight=w) for names, w in specs]


class TestComputeGcpu:
    def test_paper_definition(self):
        # foo in 8 of 100 samples -> gCPU 8%.
        samples = traces((["main", "foo"], 8.0), (["main", "bar"], 92.0))
        table = compute_gcpu(samples)
        assert table.gcpu("foo") == pytest.approx(0.08)
        assert table.gcpu("main") == pytest.approx(1.0)

    def test_includes_children(self):
        # Parent's gCPU covers samples landing in its children.
        samples = traces((["p", "c1"], 3.0), (["p", "c2"], 2.0), (["q"], 5.0))
        table = compute_gcpu(samples)
        assert table.gcpu("p") == pytest.approx(0.5)

    def test_recursion_counts_once(self):
        samples = traces((["f", "f", "f"], 1.0), (["g"], 1.0))
        assert compute_gcpu(samples).gcpu("f") == pytest.approx(0.5)

    def test_unknown_subroutine_zero(self):
        assert compute_gcpu(traces((["a"], 1.0))).gcpu("zzz") == 0.0

    def test_empty_samples(self):
        table = compute_gcpu([])
        assert table.gcpu("anything") == 0.0

    def test_subroutines_sorted_by_gcpu(self):
        samples = traces((["hot"], 9.0), (["cold"], 1.0))
        assert compute_gcpu(samples).subroutines() == ["hot", "cold"]

    def test_non_trivial_threshold(self):
        samples = traces((["hot"], 99999.0), (["tiny"], 1.0))
        table = compute_gcpu(samples)
        assert "tiny" in table.non_trivial(threshold=1e-5)
        assert "tiny" not in table.non_trivial(threshold=1e-3)

    def test_as_dict(self):
        table = compute_gcpu(traces((["a", "b"], 1.0)))
        assert table.as_dict() == {"a": 1.0, "b": 1.0}


class TestStackTraceOverlap:
    def test_full_overlap_same_path(self):
        samples = traces((["a", "b"], 10.0))
        assert stack_trace_overlap(samples, "a", "b") == 1.0

    def test_no_overlap(self):
        samples = traces((["a"], 1.0), (["b"], 1.0))
        assert stack_trace_overlap(samples, "a", "b") == 0.0

    def test_partial_overlap(self):
        samples = traces((["a", "b"], 1.0), (["a", "c"], 1.0), (["d", "b"], 2.0))
        # a in 2 samples, b in 3 (weights 1+2), both in 1 -> 1 / (2+3-1).
        assert stack_trace_overlap(samples, "a", "b") == pytest.approx(0.25)

    def test_neither_present(self):
        assert stack_trace_overlap(traces((["x"], 1.0)), "a", "b") == 0.0


class TestThreadStackSampler:
    def test_collects_samples_of_busy_thread(self):
        stop = threading.Event()

        def busy_loop_for_sampler_test():
            while not stop.is_set():
                sum(range(1000))

        worker = threading.Thread(target=busy_loop_for_sampler_test, daemon=True)
        worker.start()
        sampler = ThreadStackSampler(interval=0.005, target_thread_ids=[worker.ident])
        sampler.start()
        time.sleep(0.25)
        stats = sampler.stop()
        stop.set()
        worker.join()

        assert stats.samples > 5
        assert stats.effective_rate > 0
        joined = {name for trace in sampler.samples for name in trace.subroutines}
        assert any("busy_loop_for_sampler_test" in name for name in joined)

    def test_double_start_raises(self):
        sampler = ThreadStackSampler(interval=0.05)
        sampler.start()
        try:
            with pytest.raises(RuntimeError):
                sampler.start()
        finally:
            sampler.stop()

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            ThreadStackSampler().stop()

    def test_invalid_interval_raises(self):
        with pytest.raises(ValueError):
            ThreadStackSampler(interval=0.0)

    def test_stacks_are_root_first(self):
        stop = threading.Event()

        def outer_fn_for_order_test():
            inner_fn_for_order_test()

        def inner_fn_for_order_test():
            while not stop.is_set():
                sum(range(500))

        worker = threading.Thread(target=outer_fn_for_order_test, daemon=True)
        worker.start()
        sampler = ThreadStackSampler(interval=0.005, target_thread_ids=[worker.ident])
        sampler.start()
        time.sleep(0.15)
        sampler.stop()
        stop.set()
        worker.join()

        for trace in sampler.samples:
            names = [n for n in trace.subroutines if "order_test" in n]
            if len(names) == 2:
                assert "outer" in names[0] and "inner" in names[1]
                break
        else:
            pytest.fail("no sample captured both frames")
