"""Tests for repro.stats.robust."""

import numpy as np
import pytest

from repro.stats.robust import NORMALITY_CONSTANT, mad, mad_threshold


class TestMad:
    def test_known_value(self):
        # median=3, |x-3| = [2,1,0,1,2] -> median 1.
        assert mad([1, 2, 3, 4, 5]) == 1.0

    def test_empty(self):
        assert mad([]) == 0.0

    def test_constant(self):
        assert mad(np.full(10, 2.5)) == 0.0

    def test_robust_to_single_outlier(self):
        base = mad([1, 2, 3, 4, 5])
        assert mad([1, 2, 3, 4, 1000]) == pytest.approx(base, abs=0.5)

    def test_scales_with_data(self):
        assert mad([10, 20, 30, 40, 50]) == 10.0


class TestMadThreshold:
    def test_formula(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0]
        assert mad_threshold(values, coefficient=1.5) == pytest.approx(
            1.5 * 1.0 * NORMALITY_CONSTANT
        )

    def test_default_coefficient_is_paper_default(self):
        values = [0.0, 1.0, 2.0]
        assert mad_threshold(values) == mad_threshold(values, coefficient=1.5)

    def test_normality_constant_value(self):
        assert NORMALITY_CONSTANT == 1.4826

    def test_gaussian_consistency(self, rng):
        # For a large normal sample, MAD * 1.4826 approximates sigma.
        x = rng.normal(0, 2.0, 20_000)
        assert mad(x) * NORMALITY_CONSTANT == pytest.approx(2.0, rel=0.05)
