"""Tests for repro.faults: plans, specs, and the injector's decision model.

The property that matters everywhere: injection decisions are pure
functions of (plan, seed, invocation history) — two injectors built from
the same plan make identical decisions in identical order, which is what
lets the chaos suite compare fault-ridden runs against fault-free ones.
"""

import json

import pytest

from repro.faults import (
    FaultInjector,
    FaultKind,
    FaultPlan,
    FaultSpec,
    InjectedFault,
)
from repro.obs.spans import EventLog
from repro.service.metrics import MetricsRegistry


class TestFaultSpec:
    def test_site_follows_kind(self):
        assert FaultSpec(FaultKind.WORKER_CRASH).site == "worker.advance"
        assert FaultSpec(FaultKind.ADVANCE_HANG).site == "worker.advance"
        assert FaultSpec(FaultKind.FLUSH_ERROR).site == "ingest.flush"
        assert FaultSpec(FaultKind.FLUSHER_DEATH).site == "flusher"
        assert FaultSpec(FaultKind.CHECKPOINT_CORRUPT).site == "checkpoint.blob"
        assert FaultSpec(FaultKind.CLOCK_SKEW).site == "clock"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"times": 0},
            {"after": -1},
            {"probability": -0.1},
            {"probability": 1.5},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            FaultSpec(FaultKind.WORKER_CRASH, **kwargs)

    def test_dict_round_trip(self):
        spec = FaultSpec(
            FaultKind.ADVANCE_HANG, shard=2, times=3, after=1,
            probability=0.25, hang_seconds=0.7,
        )
        assert FaultSpec.from_dict(spec.to_dict()) == spec

    def test_from_dict_rejects_unknown_kind_and_keys(self):
        with pytest.raises(ValueError, match="kind"):
            FaultSpec.from_dict({"kind": "meteor_strike"})
        with pytest.raises(ValueError, match="unknown fault spec keys"):
            FaultSpec.from_dict({"kind": "worker_crash", "blast_radius": 3})


class TestFaultPlan:
    def test_json_round_trip(self, tmp_path):
        plan = FaultPlan(seed=9, specs=(
            FaultSpec(FaultKind.WORKER_CRASH, times=2),
            FaultSpec(FaultKind.CLOCK_SKEW, skew_seconds=-3600.0),
        ))
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(plan.to_dict()), encoding="utf-8")
        assert FaultPlan.from_json_file(str(path)) == plan

    def test_from_json_file_errors_are_value_errors(self, tmp_path):
        with pytest.raises(ValueError, match="cannot read"):
            FaultPlan.from_json_file(str(tmp_path / "missing.json"))
        bad = tmp_path / "bad.json"
        bad.write_text("{not json", encoding="utf-8")
        with pytest.raises(ValueError, match="cannot read"):
            FaultPlan.from_json_file(str(bad))

    def test_chaos_is_deterministic_in_seed(self):
        assert FaultPlan.chaos(5) == FaultPlan.chaos(5)
        assert FaultPlan.chaos(5).to_dict() == FaultPlan.chaos(5).to_dict()

    @pytest.mark.parametrize("seed", range(8))
    def test_chaos_budgets_are_finite(self, seed):
        """Chaos plans must exhaust, or runs could never converge."""
        plan = FaultPlan.chaos(seed)
        assert plan.specs
        for spec in plan.specs:
            assert spec.times is not None
        kinds = {spec.kind for spec in plan.specs}
        assert FaultKind.WORKER_CRASH in kinds
        assert kinds & {FaultKind.CHECKPOINT_CORRUPT, FaultKind.CHECKPOINT_TRUNCATE}


class TestInjectorDecisions:
    def test_after_and_times_gating(self):
        plan = FaultPlan(specs=(
            FaultSpec(FaultKind.FLUSH_ERROR, times=1, after=2),
        ))
        injector = FaultInjector(plan)
        injector.maybe_raise("ingest.flush")  # invocation 1: gated by after
        injector.maybe_raise("ingest.flush")  # invocation 2: gated by after
        with pytest.raises(InjectedFault, match="flush_error"):
            injector.maybe_raise("ingest.flush")  # invocation 3: fires
        injector.maybe_raise("ingest.flush")  # budget spent: clean again
        assert injector.counts() == {"flush_error": 1}
        assert injector.exhausted()

    def test_shard_filter(self):
        plan = FaultPlan(specs=(FaultSpec(FaultKind.FLUSH_ERROR, shard=1),))
        injector = FaultInjector(plan)
        injector.maybe_raise("ingest.flush", shard=0)  # no match
        with pytest.raises(InjectedFault):
            injector.maybe_raise("ingest.flush", shard=1)

    def test_probability_stream_is_deterministic(self):
        plan = FaultPlan(seed=3, specs=(
            FaultSpec(FaultKind.FLUSH_ERROR, times=None, probability=0.5),
        ))

        def decisions(injector):
            fired = []
            for _ in range(64):
                try:
                    injector.maybe_raise("ingest.flush")
                    fired.append(False)
                except InjectedFault:
                    fired.append(True)
            return fired

        first = decisions(FaultInjector(plan))
        second = decisions(FaultInjector(plan))
        assert first == second
        assert any(first) and not all(first)

    def test_one_invocation_at_most_one_fault(self):
        plan = FaultPlan(specs=(
            FaultSpec(FaultKind.FLUSH_ERROR, times=1),
            FaultSpec(FaultKind.FLUSH_ERROR, times=1),
        ))
        injector = FaultInjector(plan)
        with pytest.raises(InjectedFault):
            injector.maybe_raise("ingest.flush")
        # The second spec did not see the first invocation; it fires on
        # its own invocation instead of stacking on the first.
        with pytest.raises(InjectedFault):
            injector.maybe_raise("ingest.flush")
        injector.maybe_raise("ingest.flush")  # both budgets spent

    def test_worker_directives(self):
        plan = FaultPlan(specs=(
            FaultSpec(FaultKind.WORKER_CRASH, times=1),
            FaultSpec(FaultKind.ADVANCE_HANG, times=1, hang_seconds=0.7),
        ))
        injector = FaultInjector(plan)
        assert injector.worker_directive(0) == ("crash", 0.0)
        assert injector.worker_directive(0) == ("hang", 0.7)
        assert injector.worker_directive(0) is None

    def test_corrupt_payload_flip_and_truncate(self):
        payload = bytes(range(64))
        flip = FaultInjector(FaultPlan(specs=(
            FaultSpec(FaultKind.CHECKPOINT_CORRUPT),
        )))
        mutated = flip.corrupt_payload("checkpoint.blob", payload)
        assert mutated is not None and mutated != payload
        assert len(mutated) == len(payload)
        assert flip.corrupt_payload("checkpoint.blob", payload) is None  # spent

        truncate = FaultInjector(FaultPlan(specs=(
            FaultSpec(FaultKind.CHECKPOINT_TRUNCATE),
        )))
        short = truncate.corrupt_payload("checkpoint.blob", payload)
        assert short == payload[:32]

    def test_clock_skew_stays_applied(self):
        plan = FaultPlan(specs=(
            FaultSpec(FaultKind.CLOCK_SKEW, skew_seconds=-3600.0, after=1),
        ))
        injector = FaultInjector(plan)
        assert injector.clock_skew() == 0.0  # gated by after
        assert injector.clock_skew() == -3600.0  # the step lands
        assert injector.clock_skew() == -3600.0  # ... and stays

    def test_metrics_and_events_record_every_firing(self):
        registry = MetricsRegistry()
        events = EventLog()
        plan = FaultPlan(specs=(FaultSpec(FaultKind.FLUSH_ERROR, times=2),))
        injector = FaultInjector(plan, metrics=registry, events=events)
        for _ in range(2):
            with pytest.raises(InjectedFault):
                injector.maybe_raise("ingest.flush", shard=1)
        counters = registry.snapshot()["counters"]
        assert counters["faults.injected"] == 2.0
        assert counters["faults.injected.flush_error"] == 2.0
        recorded = events.events(kind="fault_injected")
        assert len(recorded) == 2
        assert recorded[0].fields["site"] == "ingest.flush"
        assert recorded[0].fields["shard"] == 1

    def test_snapshot_shape(self):
        plan = FaultPlan(seed=4, specs=(FaultSpec(FaultKind.WORKER_CRASH),))
        injector = FaultInjector(plan)
        injector.worker_directive(0)
        snapshot = injector.snapshot()
        assert snapshot["seed"] == 4
        assert snapshot["injected_total"] == 1
        (spec,) = snapshot["specs"]
        assert spec["kind"] == "worker_crash"
        assert spec["seen"] == 1 and spec["fired"] == 1


class TestServiceClockHygiene:
    """Checkpoint age must come from the monotonic clock (satellite of
    the NTP-step bug): an injected wall-clock skew moves the displayed
    ``last_at`` but can never make ``age_seconds`` lie."""

    def test_skew_moves_display_not_age(self, tmp_path):
        import time

        from repro.service import StreamingDetectionService

        plan = FaultPlan(specs=(
            FaultSpec(FaultKind.CLOCK_SKEW, skew_seconds=-7200.0),
        ))
        service = StreamingDetectionService(
            n_shards=1, fault_injector=FaultInjector(plan)
        )
        try:
            assert service.healthz()["checkpoint"]["age_seconds"] is None
            service.checkpoint(str(tmp_path / "ckpt"))
            health = service.healthz()
            age = health["checkpoint"]["age_seconds"]
            assert age is not None and 0.0 <= age < 60.0
            # The displayed wall timestamp carries the injected -2h step.
            assert health["checkpoint"]["last_at"] < time.time() - 3600.0
        finally:
            service.close()

    def test_faults_snapshot_none_without_injector(self):
        from repro.service import StreamingDetectionService

        service = StreamingDetectionService(n_shards=1)
        try:
            assert service.faults_snapshot() is None
        finally:
            service.close()
