"""Tests for repro.service.ingest (bounded queues and backpressure)."""

import pickle
import threading
import time

import pytest

from repro.service import BackpressurePolicy, MetricsRegistry, Sample, ShardIngestWorker
from repro.tsdb import TimeSeriesDatabase


def samples(n, name="s.gcpu", start=0.0):
    return [Sample(name, start + i * 60.0, float(i + 1)) for i in range(n)]


def make_worker(policy, capacity=4, batch_size=2, metrics=None):
    db = TimeSeriesDatabase()
    worker = ShardIngestWorker(
        0, db, capacity=capacity, policy=policy, batch_size=batch_size, metrics=metrics
    )
    return db, worker


class TestRejectPolicy:
    def test_rejects_beyond_capacity(self):
        db, worker = make_worker(BackpressurePolicy.REJECT)
        results = [worker.offer(s) for s in samples(6)]
        assert results == [True] * 4 + [False] * 2
        assert worker.rejected == 2
        assert worker.pending == 4

    def test_rejected_samples_never_reach_tsdb(self):
        db, worker = make_worker(BackpressurePolicy.REJECT)
        for s in samples(6):
            worker.offer(s)
        worker.flush()
        series = db.get("s.gcpu")
        # The oldest 4 were kept; the newest 2 rejected.
        assert list(series.values) == [1.0, 2.0, 3.0, 4.0]


class TestDropOldestPolicy:
    def test_oldest_evicted(self):
        db, worker = make_worker(BackpressurePolicy.DROP_OLDEST)
        for s in samples(6):
            assert worker.offer(s)  # drop-oldest never refuses the new sample
        assert worker.dropped_oldest == 2
        worker.flush()
        # The newest 4 survived.
        assert list(db.get("s.gcpu").values) == [3.0, 4.0, 5.0, 6.0]


class TestBlockPolicy:
    def test_caller_runs_flush_keeps_everything(self):
        db, worker = make_worker(BackpressurePolicy.BLOCK)
        for s in samples(10):
            assert worker.offer(s)
        worker.flush()
        assert worker.blocking_flushes >= 1
        assert worker.dropped_oldest == 0 and worker.rejected == 0
        assert list(db.get("s.gcpu").values) == [float(i + 1) for i in range(10)]


class TestFlushing:
    def test_flush_returns_written_count(self):
        db, worker = make_worker(BackpressurePolicy.BLOCK, capacity=100)
        for s in samples(7):
            worker.offer(s)
        assert worker.flush() == 7
        assert worker.pending == 0
        assert worker.flushed == 7

    def test_flush_batches_by_batch_size(self):
        db, worker = make_worker(BackpressurePolicy.BLOCK, capacity=100, batch_size=3)
        for s in samples(7):
            worker.offer(s)
        worker.flush()
        assert worker.flushes == 3  # 3 + 3 + 1

    def test_batch_groups_multiple_series(self):
        db, worker = make_worker(BackpressurePolicy.BLOCK, capacity=100, batch_size=100)
        worker.offer(Sample("a.gcpu", 0.0, 1.0, {"metric": "gcpu"}))
        worker.offer(Sample("b.gcpu", 0.0, 2.0, {"metric": "gcpu"}))
        worker.offer(Sample("a.gcpu", 60.0, 3.0, {"metric": "gcpu"}))
        worker.flush()
        assert list(db.get("a.gcpu").values) == [1.0, 3.0]
        assert list(db.get("b.gcpu").values) == [2.0]
        assert db.get("a.gcpu").tags == {"metric": "gcpu"}

    def test_out_of_order_sample_inserted_sorted(self):
        db, worker = make_worker(BackpressurePolicy.BLOCK, capacity=100)
        worker.offer(Sample("s", 120.0, 2.0))
        worker.offer(Sample("s", 60.0, 1.0))  # straggler
        worker.flush()
        assert list(db.get("s").timestamps) == [60.0, 120.0]

    def test_offer_many(self):
        db, worker = make_worker(BackpressurePolicy.REJECT, capacity=3)
        assert worker.offer_many(samples(5)) == 3


class TestCountersAndMetrics:
    def test_counters_dict(self):
        db, worker = make_worker(BackpressurePolicy.DROP_OLDEST)
        for s in samples(6):
            worker.offer(s)
        worker.flush()
        counters = worker.counters()
        assert counters["offered"] == 6
        assert counters["accepted"] == 6
        assert counters["dropped_oldest"] == 2
        assert counters["flushed"] == 4
        assert counters["pending"] == 0

    def test_metrics_registry_wired(self):
        metrics = MetricsRegistry()
        db, worker = make_worker(BackpressurePolicy.DROP_OLDEST, metrics=metrics)
        for s in samples(6):
            worker.offer(s)
        worker.flush()
        snapshot = metrics.snapshot()
        assert snapshot["counters"]["ingest.accepted"] == 6
        assert snapshot["counters"]["ingest.dropped_oldest"] == 2
        assert snapshot["counters"]["ingest.flushed"] == 4
        assert snapshot["histograms"]["ingest.flush_seconds"]["count"] >= 1

    def test_invalid_params(self):
        db = TimeSeriesDatabase()
        with pytest.raises(ValueError):
            ShardIngestWorker(0, db, capacity=0)
        with pytest.raises(ValueError):
            ShardIngestWorker(0, db, batch_size=0)


class TestAdvanceProtocol:
    """The begin/complete/abort advance bracket around parallel swaps.

    While a shard advance is in flight, the live database is about to be
    superseded: any flush into it would be silently discarded with it.
    These tests pin the contract that no code path writes into the stale
    database — and that nothing is lost on either the success or the
    failure path.
    """

    def test_flush_is_noop_while_advancing(self):
        db, worker = make_worker(BackpressurePolicy.DROP_OLDEST, capacity=8)
        worker.offer_many(samples(3))
        worker.begin_advance()
        # A background flusher firing mid-advance must not touch the db.
        assert worker.flush() == 0
        assert len(db) == 0
        assert worker.pending == 3
        worker.abort_advance()
        assert worker.flush() == 3
        assert worker.flushed == 3

    def test_abort_restores_drained_samples_in_order(self):
        db, worker = make_worker(BackpressurePolicy.DROP_OLDEST, capacity=8)
        worker.offer_many(samples(2))
        worker.begin_advance()
        drained = worker.drain_pending()  # ownership moved to the blob
        worker.offer_many(samples(2, start=600.0))  # offered mid-advance
        worker.abort_advance(drained)  # blob failed: give them back
        worker.flush()
        series = db.get("s.gcpu")
        assert list(series.timestamps) == [0.0, 60.0, 600.0, 660.0]
        assert worker.flushed == 4

    def test_block_offer_waits_instead_of_flushing_stale_database(self):
        db, worker = make_worker(
            BackpressurePolicy.BLOCK, capacity=2, batch_size=2
        )
        worker.offer_many(samples(2))  # queue full
        baseline = worker.begin_advance()
        advanced = pickle.loads(pickle.dumps(worker))  # worker-process copy

        unparked = threading.Event()

        def produce():
            worker.offer(Sample("s.gcpu", 600.0, 9.0))
            unparked.set()

        producer = threading.Thread(target=produce, daemon=True)
        producer.start()
        time.sleep(0.05)
        # The BLOCK offer is parked: it did not flush into the stale db.
        assert not unparked.is_set()
        assert len(db) == 0

        # The service thread transfers queue ownership to the blob; the
        # drain frees room, so the parked producer lands in the live queue.
        worker.drain_pending()
        assert unparked.wait(timeout=2.0)
        producer.join(timeout=2.0)

        # Meanwhile the "worker process" flushes the blob's copy and the
        # advanced state is installed: deltas merge, nothing is lost.
        advanced.flush()
        worker.complete_advance(advanced, advanced.database, baseline)
        assert worker.pending == 1  # the parked offer was carried over
        worker.flush()
        assert worker.database is advanced.database
        total = sum(len(series) for series in advanced.database)
        assert total == 3
        assert worker.flushed == 3

    def test_complete_advance_merges_flush_side_deltas(self):
        db, worker = make_worker(
            BackpressurePolicy.DROP_OLDEST, capacity=16, batch_size=4
        )
        worker.offer_many(samples(4))
        worker.flush()  # pre-advance flushes belong to the baseline
        worker.offer_many(samples(4, start=600.0))
        baseline = worker.begin_advance()
        advanced = pickle.loads(pickle.dumps(worker))
        worker.drain_pending()
        advanced.flush()  # the worker process's flushes on our behalf
        worker.complete_advance(advanced, advanced.database, baseline)
        assert worker.flushed == 8
        assert worker.flushes == advanced.flushes
        # Offer-side counters never left the live object.
        assert worker.offered == 8
        assert worker.accepted == 8

    def test_pickled_copy_is_never_advancing(self):
        db, worker = make_worker(BackpressurePolicy.BLOCK, capacity=4)
        worker.offer_many(samples(2))
        worker.begin_advance()
        clone = pickle.loads(pickle.dumps(worker))
        # The blob's copy must flush freely in the worker process.
        assert clone.flush() == 2
        worker.abort_advance()


class TestFlushFailureSafety:
    """A failed batch write must not lose the popped samples."""

    def test_failed_flush_requeues_batch_in_order(self):
        from repro.faults import FaultInjector, FaultKind, FaultPlan, FaultSpec
        from repro.faults.injector import InjectedFault

        registry = MetricsRegistry()
        db, worker = make_worker(
            BackpressurePolicy.BLOCK, capacity=16, batch_size=4, metrics=registry
        )
        worker.fault_injector = FaultInjector(
            FaultPlan(specs=(FaultSpec(FaultKind.FLUSH_ERROR, times=1),))
        )
        worker.offer_many(samples(6))
        with pytest.raises(InjectedFault):
            worker.flush()
        # Nothing written, nothing lost, order preserved.
        assert worker.pending == 6
        assert worker.flushed == 0
        assert worker.flush_failures == 1
        assert registry.snapshot()["counters"]["ingest.flush_failures"] == 1.0
        # The retry writes the same samples in the same order.
        assert worker.flush() == 6
        series = db.get("s.gcpu")
        assert [value for _, value in series] == [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]

    def test_database_error_requeues_batch(self):
        db, worker = make_worker(BackpressurePolicy.DROP_OLDEST, capacity=16)

        class Boom(RuntimeError):
            pass

        original = worker.database.write_batch

        def failing(rows):
            raise Boom("disk on fire")

        worker.offer_many(samples(3))
        worker.database.write_batch = failing
        with pytest.raises(Boom):
            worker.flush()
        assert worker.pending == 3
        worker.database.write_batch = original
        assert worker.flush() == 3

    def test_injector_is_dropped_on_pickle(self):
        from repro.faults import FaultInjector, FaultPlan

        db, worker = make_worker(BackpressurePolicy.BLOCK)
        worker.fault_injector = FaultInjector(FaultPlan())
        clone = pickle.loads(pickle.dumps(worker))
        assert clone.fault_injector is None
