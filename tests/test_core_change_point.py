"""Tests for repro.core.change_point."""

import numpy as np
import pytest

from repro.core.change_point import ChangePointDetector


class TestChangePointDetector:
    def test_detects_clear_step(self, step_series):
        candidate = ChangePointDetector().detect(step_series)
        assert candidate is not None
        assert abs(candidate.index - 100) <= 3
        assert candidate.magnitude == pytest.approx(1.0, abs=0.3)

    def test_rejects_pure_noise(self, rng):
        detector = ChangePointDetector()
        rejections = sum(
            detector.detect(rng.normal(0, 1, 150)) is None for _ in range(20)
        )
        # CUSUM scans for the *best* split, so the effective false-alarm
        # rate exceeds the nominal 1% (a multiple-testing effect the
        # paper's production numbers also show — millions of change
        # points before the went-away filter).  The bulk must still be
        # rejected here.
        assert rejections >= 12

    def test_detects_tiny_shift_given_low_noise(self, rng):
        # A 0.005%-scale shift with hyperscale-averaged noise.
        x = np.concatenate(
            [rng.normal(0.001, 0.000005, 150), rng.normal(0.00105, 0.000005, 150)]
        )
        candidate = ChangePointDetector().detect(x)
        assert candidate is not None
        assert abs(candidate.index - 150) <= 3
        assert candidate.magnitude == pytest.approx(0.00005, rel=0.2)

    def test_too_short_returns_none(self):
        assert ChangePointDetector().detect([1.0, 2.0, 3.0]) is None

    def test_detect_increase_filters_improvements(self, rng):
        improvement = np.concatenate([rng.normal(5, 0.1, 80), rng.normal(3, 0.1, 80)])
        detector = ChangePointDetector()
        assert detector.detect(improvement) is not None
        assert detector.detect_increase(improvement) is None

    def test_detect_increase_keeps_regressions(self, step_series):
        assert ChangePointDetector().detect_increase(step_series) is not None

    def test_invalid_significance_raises(self):
        with pytest.raises(ValueError):
            ChangePointDetector(significance_level=0.0)

    def test_em_refines_cusum_guess(self, rng):
        # A small step near the edge where CUSUM is weakest.
        x = np.concatenate([rng.normal(0, 0.2, 160), rng.normal(1.0, 0.2, 40)])
        candidate = ChangePointDetector().detect(x)
        assert candidate is not None
        assert abs(candidate.index - 160) <= 2

    def test_p_value_below_significance(self, step_series):
        candidate = ChangePointDetector(significance_level=0.01).detect(step_series)
        assert candidate.p_value < 0.01
