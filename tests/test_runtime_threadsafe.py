"""Thread-safety regression tests for DetectionScheduler.advance_to.

The streaming service calls ``advance_to`` from whatever thread drives
detection while background flusher threads mutate the TSDB; before the
advance lock, two concurrent callers could both see the same due scan
and run it twice (duplicate incident reports) or interleave clock
updates. These tests pin the invariant: every due scan executes exactly
once no matter how many threads race the clock forward.
"""

import threading

import numpy as np

from repro.config import DetectionConfig
from repro.runtime import CollectingSink, DetectionScheduler
from repro.tsdb import TimeSeriesDatabase, WindowSpec

from conftest import fill_series


def small_config(**overrides):
    defaults = dict(
        name="test",
        threshold=0.00005,
        rerun_interval=6_000.0,
        windows=WindowSpec(historic=36_000.0, analysis=12_000.0, extended=6_000.0),
        long_term=False,
    )
    defaults.update(overrides)
    return DetectionConfig(**defaults)


def regression_db(seed=11):
    rng = np.random.default_rng(seed)
    db = TimeSeriesDatabase()
    values = rng.normal(0.001, 0.00002, 2_100)
    values[700:] += 0.0002
    fill_series(
        db,
        "svc.sub.gcpu",
        values,
        tags={"service": "svc", "subroutine": "sub", "metric": "gcpu"},
    )
    return db


class TestConcurrentAdvance:
    def test_each_due_scan_runs_exactly_once(self):
        db = regression_db()
        sink = CollectingSink()
        scheduler = DetectionScheduler(db, sinks=[sink])
        scheduler.register("svc", small_config(), series_filter={"service": "svc"})

        target = 120_000.0
        n_threads = 8
        barrier = threading.Barrier(n_threads)
        outcomes_per_thread = [[] for _ in range(n_threads)]
        errors = []

        def advance(slot):
            try:
                barrier.wait()
                outcomes_per_thread[slot] = scheduler.advance_to(target)
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [
            threading.Thread(target=advance, args=(slot,)) for slot in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert not errors
        # First scan at windows.total=54000, then every 6000 up to 120000.
        all_outcomes = [o for per in outcomes_per_thread for o in per]
        assert sorted(o.now for o in all_outcomes) == [
            54_000.0 + 6_000.0 * i for i in range(12)
        ]
        assert scheduler.now == target
        # The regression is reported once, not once per racing thread.
        assert len(sink.reports) == 1

    def test_staggered_targets_partition_the_scans(self):
        db = regression_db()
        scheduler = DetectionScheduler(db)
        scheduler.register("svc", small_config(), first_run=54_000.0)

        targets = [60_000.0, 90_000.0, 120_000.0]
        results = {}
        lock = threading.Lock()

        def advance(target):
            try:
                outcomes = scheduler.advance_to(target)
            except ValueError:
                # A later target won the race; "backwards" is the
                # documented answer, and no scan may have run for us.
                outcomes = []
            with lock:
                results[target] = outcomes

        threads = [threading.Thread(target=advance, args=(t,)) for t in targets]
        # Start in reverse so a later target may win the lock first; the
        # scheduler must still run each scan exactly once overall.
        for thread in reversed(threads):
            thread.start()
        for thread in threads:
            thread.join()

        scan_times = sorted(o.now for outcomes in results.values() for o in outcomes)
        assert scan_times == [54_000.0 + 6_000.0 * i for i in range(12)]
        assert scheduler.now == 120_000.0

    def test_concurrent_ingest_during_advance(self):
        """Flusher-style appends racing advance_to must not corrupt scans."""
        db = regression_db()
        scheduler = DetectionScheduler(db)
        scheduler.register("svc", small_config(), series_filter={"service": "svc"})
        stop = threading.Event()

        def append_points():
            series = db.get("svc.sub.gcpu")
            timestamp = series.end
            while not stop.is_set():
                timestamp += 60.0
                series.append(timestamp, 0.0012)

        writer = threading.Thread(target=append_points)
        writer.start()
        try:
            outcomes = scheduler.advance_to(120_000.0)
        finally:
            stop.set()
            writer.join()
        assert len(outcomes) == 12
