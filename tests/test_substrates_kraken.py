"""Tests for repro.substrates.kraken."""

import numpy as np
import pytest

from repro.substrates.kraken import KrakenLoadTester, ThroughputModel
from repro.tsdb import TimeSeriesDatabase


class TestThroughputModel:
    def test_latency_blows_up_near_capacity(self):
        model = ThroughputModel(capacity=1000.0, base_latency_ms=5.0)
        assert model.latency_ms(100.0) < model.latency_ms(900.0) < model.latency_ms(990.0)

    def test_errors_only_past_knee(self):
        model = ThroughputModel(capacity=1000.0, error_knee=0.9)
        assert model.error_rate(800.0) == 0.0
        assert model.error_rate(950.0) > 0.0
        assert model.error_rate(1100.0) == 1.0

    def test_regress_shrinks_capacity(self):
        model = ThroughputModel(capacity=1000.0)
        model.regress(0.9)
        assert model.capacity == pytest.approx(900.0)

    def test_invalid_capacity_raises(self):
        with pytest.raises(ValueError):
            ThroughputModel(capacity=0.0)

    def test_invalid_regress_raises(self):
        with pytest.raises(ValueError):
            ThroughputModel(capacity=1.0).regress(1.5)


class TestKrakenLoadTester:
    def test_finds_capacity_neighborhood(self):
        model = ThroughputModel(capacity=1000.0)
        result = KrakenLoadTester().run(model)
        # Max throughput is near capacity, below it, limited by health.
        assert 0.7 * model.capacity <= result.max_throughput <= model.capacity
        assert result.limiting_metric in ("latency", "error_rate")

    def test_regression_reduces_measured_max(self):
        model = ThroughputModel(capacity=1000.0)
        tester = KrakenLoadTester()
        healthy = tester.run(model).max_throughput
        model.regress(0.85)
        regressed = tester.run(model).max_throughput
        assert regressed < healthy
        assert regressed / healthy == pytest.approx(0.85, abs=0.07)

    def test_steps_are_increasing(self):
        result = KrakenLoadTester(step_fraction=0.1).run(ThroughputModel(capacity=500.0))
        assert result.steps == sorted(result.steps)

    def test_invalid_step_raises(self):
        with pytest.raises(ValueError):
            KrakenLoadTester(step_fraction=0.0)

    def test_benchmark_series_written(self):
        db = TimeSeriesDatabase()
        model = ThroughputModel(capacity=800.0)
        tester = KrakenLoadTester()
        tester.benchmark_series(
            db, "webtier", model, timestamps=[0.0, 3600.0], rng=np.random.default_rng(0)
        )
        series = db.get("webtier.max_throughput")
        assert len(series) == 2
        assert series.tags["metric"] == "max_throughput"

    def test_ct_supply_detection_end_to_end(self):
        """Kraken series + CT-supply config: a capacity regression is
        reported, measured load-test noise alone is not."""
        from repro import FBDetect, table1_config

        rng = np.random.default_rng(7)
        db = TimeSeriesDatabase()
        model = ThroughputModel(capacity=1000.0)
        tester = KrakenLoadTester()
        for hour in range(900):
            if hour == 700:
                model.regress(0.9)  # 10% supply regression
            tester.benchmark_series(
                db, "webtier", model, timestamps=[hour * 3600.0], rng=rng
            )
        config = table1_config("ct_supply_short").with_windows(
            historic=600 * 3600.0, analysis=200 * 3600.0, extended=100 * 3600.0
        )
        detector = FBDetect(config, series_filter={"metric": "max_throughput"})
        result = detector.run(db, now=900 * 3600.0)
        assert len(result.reported) == 1
        assert abs(result.reported[0].relative_magnitude) >= 0.05
