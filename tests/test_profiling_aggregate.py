"""Tests for repro.profiling.aggregate (stack tries and differentials)."""

import pytest

from repro.profiling.aggregate import StackTrie, diff_tries
from repro.profiling.stacktrace import StackTrace


def traces(*specs):
    return [StackTrace.from_names(names, weight=w) for names, w in specs]


class TestStackTrie:
    def test_weights(self):
        trie = StackTrie().add_all(
            traces((["a", "b"], 3.0), (["a", "c"], 2.0), (["a"], 1.0))
        )
        assert trie.total_weight == 6.0
        a = trie.lookup(("a",))
        assert a.total_weight == 6.0
        assert a.self_weight == 1.0
        assert trie.lookup(("a", "b")).self_weight == 3.0

    def test_lookup_missing(self):
        trie = StackTrie().add_all(traces((["a"], 1.0)))
        assert trie.lookup(("z",)) is None
        assert trie.lookup(("a", "z")) is None

    def test_gcpu_matches_definition(self):
        trie = StackTrie().add_all(traces((["main", "foo"], 8.0), (["main", "bar"], 92.0)))
        assert trie.gcpu(("main", "foo")) == pytest.approx(0.08)
        assert trie.gcpu(("main",)) == pytest.approx(1.0)

    def test_gcpu_empty_trie(self):
        assert StackTrie().gcpu(("a",)) == 0.0

    def test_folded_format(self):
        trie = StackTrie().add_all(traces((["a", "b"], 2.0), (["a"], 1.0)))
        lines = trie.folded().splitlines()
        assert "a 1" in lines
        assert "a;b 2" in lines

    def test_folded_roundtrip_total(self):
        samples = traces((["a", "b", "c"], 5.0), (["a", "b"], 2.0), (["d"], 3.0))
        trie = StackTrie().add_all(samples)
        total = sum(float(line.rsplit(" ", 1)[1]) for line in trie.folded().splitlines())
        assert total == pytest.approx(10.0)

    def test_hottest_paths(self):
        trie = StackTrie().add_all(
            traces((["a", "hot"], 9.0), (["a", "warm"], 5.0), (["cold"], 1.0))
        )
        hottest = trie.hottest_paths(2)
        assert hottest[0][0] == ("a", "hot")
        assert hottest[0][1] == 9.0
        assert len(hottest) == 2


class TestDiffTries:
    def test_regression_surfaces_first(self):
        before = StackTrie().add_all(
            traces((["main", "parse"], 10.0), (["main", "render"], 90.0))
        )
        after = StackTrie().add_all(
            traces((["main", "parse"], 20.0), (["main", "render"], 80.0))
        )
        diffs = diff_tries(before, after)
        deltas = {d.path: d.delta for d in diffs}
        assert deltas[("main", "parse")] == pytest.approx(0.10)
        assert deltas[("main", "render")] == pytest.approx(-0.10)
        # Sorted by |delta|: parse/render before main (whose delta is 0
        # and therefore suppressed entirely).
        assert ("main",) not in deltas

    def test_new_path_appears(self):
        before = StackTrie().add_all(traces((["a"], 1.0)))
        after = StackTrie().add_all(traces((["a"], 1.0), (["b"], 1.0)))
        diffs = diff_tries(before, after)
        by_path = {d.path: d for d in diffs}
        assert by_path[("b",)].before == 0.0
        assert by_path[("b",)].after == pytest.approx(0.5)

    def test_min_delta_suppresses_noise(self):
        before = StackTrie().add_all(traces((["a"], 1000.0), (["b"], 1.0)))
        after = StackTrie().add_all(traces((["a"], 1000.0), (["b"], 1.1)))
        assert diff_tries(before, after, min_delta=0.01) == []

    def test_different_sample_counts_normalized(self):
        before = StackTrie().add_all(traces((["a"], 10.0), (["b"], 10.0)))
        after = StackTrie().add_all(traces((["a"], 1000.0), (["b"], 1000.0)))
        assert diff_tries(before, after) == []
