"""Tests for repro.quality.gaps and the pipeline's gap-aware gating."""

import numpy as np
import pytest

from repro.config import DetectionConfig
from repro.core.pipeline import DetectionPipeline
from repro.quality import QualityGate, window_coverage
from repro.service.metrics import MetricsRegistry
from repro.tsdb import TimeSeriesDatabase, WindowSpec

from conftest import fill_series

INTERVAL = 60.0


def small_config(**overrides):
    defaults = dict(
        name="test",
        threshold=0.00002,
        rerun_interval=3600.0,
        windows=WindowSpec(historic=36_000.0, analysis=12_000.0, extended=6_000.0),
    )
    defaults.update(overrides)
    return DetectionConfig(**defaults)


class TestWindowCoverage:
    def test_full_window(self):
        assert window_coverage(10, 0.0, 600.0, 60.0) == 1.0

    def test_half_empty_window(self):
        assert window_coverage(5, 0.0, 600.0, 60.0) == 0.5

    def test_degenerate_cases_abstain(self):
        assert window_coverage(0, 0.0, 0.0, 60.0) == 1.0
        assert window_coverage(0, 0.0, 600.0, 0.0) == 1.0
        assert window_coverage(3, 0.0, 30.0, 60.0) == 1.0  # expected < 1

    def test_overfull_clamps(self):
        assert window_coverage(100, 0.0, 600.0, 60.0) == 1.0


class TestQualityGate:
    def test_cadence_is_median_spacing(self):
        gate = QualityGate(min_cadence_points=4)
        assert gate.cadence([0.0, 60.0, 120.0, 180.0]) == 60.0
        # One late batch does not move the median.
        assert gate.cadence([0.0, 60.0, 120.0, 300.0, 360.0]) == 60.0

    def test_cadence_abstains_on_short_history(self):
        gate = QualityGate()
        assert gate.cadence([0.0, 60.0]) is None

    def test_window_ok_thresholds(self):
        gate = QualityGate(min_coverage=0.5, min_cadence_points=4)
        historic = [i * 60.0 for i in range(20)]
        ok, coverage = gate.window_ok(historic, 10, 1200.0, 1800.0)
        assert ok and coverage == 1.0
        ok, coverage = gate.window_ok(historic, 3, 1200.0, 1800.0)
        assert not ok and coverage == pytest.approx(0.3)

    def test_window_ok_abstains_without_cadence(self):
        gate = QualityGate()
        assert gate.window_ok([0.0, 60.0], 0, 0.0, 600.0) == (True, 1.0)

    def test_staleness(self):
        gate = QualityGate(stale_after_analysis_windows=3.0)
        assert not gate.is_stale(9_000.0, 10_000.0, 1_000.0)
        assert gate.is_stale(5_000.0, 10_000.0, 1_000.0)
        assert not gate.is_stale(5_000.0, 10_000.0, 0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            QualityGate(min_coverage=0.0)
        with pytest.raises(ValueError):
            QualityGate(stale_after_analysis_windows=0.0)
        with pytest.raises(ValueError):
            QualityGate(min_cadence_points=1)


class TestPipelineDegenerateSeries:
    """ISSUE satellite: the pipeline must neither crash nor alert on
    all-NaN or constant-zero series — with or without a quality gate
    (NaN protection is unconditional; direct-TSDB paths get it too)."""

    @pytest.mark.parametrize("gate", [None, QualityGate()])
    def test_all_nan_series_no_crash_no_alert(self, gate):
        db = TimeSeriesDatabase()
        fill_series(db, "svc.allnan.gcpu", [float("nan")] * 900,
                    tags={"metric": "gcpu"})
        pipeline = DetectionPipeline(small_config(), quality_gate=gate)
        result = pipeline.run(db, now=54_000.0)
        assert result.reported == []

    @pytest.mark.parametrize("gate", [None, QualityGate()])
    def test_constant_zero_series_no_crash_no_alert(self, gate):
        db = TimeSeriesDatabase()
        fill_series(db, "svc.zero.gcpu", [0.0] * 900, tags={"metric": "gcpu"})
        pipeline = DetectionPipeline(small_config(), quality_gate=gate)
        result = pipeline.run(db, now=54_000.0)
        assert result.reported == []

    def test_nan_burst_in_window_suppresses_scan(self):
        rng = np.random.default_rng(5)
        values = rng.normal(0.001, 0.00002, 900)
        values[750:780] = float("nan")  # burst inside the analysis window
        db = TimeSeriesDatabase()
        fill_series(db, "svc.burst.gcpu", values, tags={"metric": "gcpu"})
        pipeline = DetectionPipeline(small_config(), metrics=MetricsRegistry())
        result = pipeline.run(db, now=54_000.0)
        assert result.reported == []
        counters = pipeline.metrics.snapshot()["counters"]
        assert counters.get("pipeline.quality.non_finite_skips", 0) >= 1


class TestPipelineGapGating:
    def test_gappy_window_is_suppressed_not_alerted(self):
        """A window that lost most of its points must not fire a false
        change point from the survivors."""
        rng = np.random.default_rng(11)
        values = rng.normal(0.001, 0.00002, 900)
        db = TimeSeriesDatabase()
        series = db.create("svc.gappy.gcpu", {"metric": "gcpu"})
        for index, value in enumerate(values):
            tick = index * INTERVAL
            # Analysis window [36000, 48000): keep one point in ten.
            if 36_000.0 <= tick < 48_000.0 and index % 10:
                continue
            series.append(tick, float(value) + (0.5 if tick >= 36_000.0 else 0.0))
        pipeline = DetectionPipeline(
            small_config(), quality_gate=QualityGate(min_coverage=0.5),
            metrics=MetricsRegistry(),
        )
        result = pipeline.run(db, now=54_000.0)
        assert result.reported == []
        counters = pipeline.metrics.snapshot()["counters"]
        assert counters.get("pipeline.quality.low_coverage_skips", 0) >= 1

    def test_stale_series_evicted_until_it_resumes(self):
        rng = np.random.default_rng(13)
        db = TimeSeriesDatabase()
        series = fill_series(
            db, "svc.dead.gcpu", rng.normal(0.001, 0.00002, 900),
            tags={"metric": "gcpu"},
        )
        pipeline = DetectionPipeline(small_config(), quality_gate=QualityGate(),
                                     metrics=MetricsRegistry())
        # Newest point is 900 ticks old => far beyond 3 analysis spans.
        far_future = 900 * INTERVAL + 4 * 12_000.0
        result = pipeline.run(db, now=far_future)
        assert result.reported == []
        assert pipeline.stale_series() == ["svc.dead.gcpu"]
        counters = pipeline.metrics.snapshot()["counters"]
        assert counters.get("pipeline.quality.stale_evictions", 0) == 1
        # The series resumes: next run un-evicts it.
        series.append(far_future - INTERVAL, 0.001)
        pipeline.run(db, now=far_future)
        assert pipeline.stale_series() == []

    def test_no_gate_means_no_gating(self):
        rng = np.random.default_rng(13)
        db = TimeSeriesDatabase()
        fill_series(db, "svc.dead.gcpu", rng.normal(0.001, 0.00002, 900),
                    tags={"metric": "gcpu"})
        pipeline = DetectionPipeline(small_config())
        pipeline.run(db, now=900 * INTERVAL + 4 * 12_000.0)
        assert pipeline.stale_series() == []
