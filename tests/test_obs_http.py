"""Tests for repro.obs.http (the /metrics, /healthz, /status endpoints)."""

import json
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.config import DetectionConfig
from repro.obs import STAGES, ObservabilityServer
from repro.obs.http import PROMETHEUS_CONTENT_TYPE
from repro.runtime import CollectingSink
from repro.service import BackpressurePolicy, Sample, StreamingDetectionService
from repro.tsdb import WindowSpec

N_TICKS = 1_100
INTERVAL = 60.0


def _config():
    return DetectionConfig(
        name="test",
        threshold=0.00005,
        rerun_interval=6_000.0,
        windows=WindowSpec(historic=36_000.0, analysis=12_000.0, extended=6_000.0),
        long_term=False,
    )


def _make_samples(seed=3, regress_index=3, n_series=8):
    rng = np.random.default_rng(seed)
    samples = []
    for index in range(n_series):
        values = rng.normal(0.001, 0.00002, N_TICKS)
        if index == regress_index:
            values[700:] += 0.0003
        samples.extend(
            Sample(
                f"svc.sub{index}.gcpu",
                tick * INTERVAL,
                float(values[tick]),
                {"metric": "gcpu"},
            )
            for tick in range(N_TICKS)
        )
    return samples


def _service(**kwargs):
    kwargs.setdefault("n_shards", 2)
    kwargs.setdefault("queue_capacity", 2**16)
    kwargs.setdefault("backpressure", BackpressurePolicy.BLOCK)
    sink = CollectingSink()
    service = StreamingDetectionService(sinks=[sink], **kwargs)
    service.register_monitor("gcpu", _config(), series_filter={"metric": "gcpu"})
    return service, sink


def _get(url):
    with urllib.request.urlopen(url, timeout=5.0) as response:
        return response.status, dict(response.headers), response.read().decode()


@pytest.fixture(scope="module")
def advanced_service():
    service, sink = _service()
    service.ingest_many(_make_samples())
    reports = service.advance_to(N_TICKS * INTERVAL)
    with ObservabilityServer(service) as server:
        yield service, sink, server, reports
    service.close()


class TestMetricsEndpoint:
    def test_prometheus_text_exposition(self, advanced_service):
        _service_, _sink, server, _reports = advanced_service
        status, headers, body = _get(server.url + "/metrics")
        assert status == 200
        assert headers["Content-Type"] == PROMETHEUS_CONTENT_TYPE
        # Golden structural lines: counters, gauges, and the PR 2
        # advance-latency histogram plus incremental-cache counters.
        assert "# TYPE scheduler_scans counter" in body
        assert "# TYPE service_shards gauge" in body
        assert "# TYPE service_shard_advance_seconds histogram" in body
        assert 'service_shard_advance_seconds_bucket{le="+Inf"}' in body
        assert "service_shard_advance_seconds_count" in body
        assert "pipeline_incremental_hits" in body
        assert "pipeline_incremental_misses" in body
        assert "service_reports_delivered 1" in body

    def test_matches_in_process_render(self, advanced_service):
        service, _sink, server, _reports = advanced_service
        _status, _headers, body = _get(server.url + "/metrics")
        assert body == service.render_metrics()


class TestHealthzEndpoint:
    def test_healthy_service_answers_200(self, advanced_service):
        service, _sink, server, _reports = advanced_service
        status, _headers, body = _get(server.url + "/healthz")
        payload = json.loads(body)
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["saturated_shards"] == 0
        assert payload["clock"] == N_TICKS * INTERVAL
        assert len(payload["shards"]) == service.n_shards
        for shard in payload["shards"]:
            assert shard["pending"] < shard["capacity"]
            assert not shard["saturated"]

    def test_checkpoint_age_reported_after_checkpoint(self, tmp_path):
        service, _sink = _service(n_shards=1)
        try:
            assert service.healthz()["checkpoint"]["age_seconds"] is None
            service.checkpoint(str(tmp_path / "ckpt"))
            age = service.healthz()["checkpoint"]["age_seconds"]
            assert age is not None and 0.0 <= age < 60.0
        finally:
            service.close()

    def test_saturated_queue_degrades_to_503(self):
        service, _sink = _service(
            n_shards=1,
            queue_capacity=8,
            backpressure=BackpressurePolicy.REJECT,
        )
        try:
            # Overfill the only shard's queue without flushing: offers
            # beyond capacity are rejected, pending == capacity.
            for tick in range(20):
                service.ingest("svc.sub0.gcpu", float(tick), 1.0, {"metric": "gcpu"})
            health = service.healthz()
            assert health["status"] == "degraded"
            assert health["saturated_shards"] == 1
            assert health["shards"][0]["pending"] == 8
            with ObservabilityServer(service) as server:
                with pytest.raises(urllib.error.HTTPError) as excinfo:
                    _get(server.url + "/healthz")
                assert excinfo.value.code == 503
                payload = json.loads(excinfo.value.read())
                assert payload["status"] == "degraded"
                # Draining the queue restores health on the same server.
                service.flush()
                status, _headers, body = _get(server.url + "/healthz")
                assert status == 200
                assert json.loads(body)["status"] == "ok"
        finally:
            service.close()


class TestStatusEndpoint:
    def test_funnel_matches_service_state(self, advanced_service):
        service, _sink, server, reports = advanced_service
        status, headers, body = _get(server.url + "/status")
        assert status == 200
        assert headers["Content-Type"].startswith("application/json")
        payload = json.loads(body)
        assert payload["funnel"] == dict(service.funnel.counts)
        assert payload["reported"] == len(reports) == 1
        assert payload["scans"] == service.stats().scans
        assert payload["monitors"] == ["gcpu"]

    def test_funnel_trace_telescopes_and_matches_funnel(self, advanced_service):
        service, _sink, _server, _reports = advanced_service
        payload = service.status_snapshot()
        trace = payload["funnel_trace"]
        assert trace["telescopes"]
        stages = {row["stage"]: row for row in trace["stages"]}
        assert list(stages) == list(STAGES)
        # Windowed trace covers every scan (capacity not exceeded), so
        # its per-stage survivors equal the cumulative funnel exactly.
        for stage in STAGES:
            assert stages[stage]["outputs"] == payload["funnel"][stage]
        # Telescoping view: stage N+1 consumed exactly stage N's output.
        ordered = [stages[stage] for stage in STAGES]
        for earlier, later in zip(ordered, ordered[1:]):
            assert later["inputs"] == earlier["outputs"]

    def test_index_and_unknown_paths(self, advanced_service):
        _service_, _sink, server, _reports = advanced_service
        status, _headers, body = _get(server.url + "/")
        assert status == 200
        assert set(json.loads(body)["endpoints"]) == {
            "/metrics",
            "/healthz",
            "/status",
            "/faults",
            "/quality",
            "/detectors",
        }
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(server.url + "/nope")
        assert excinfo.value.code == 404


class TestServerLifecycle:
    def test_start_stop_idempotent_and_ephemeral_port(self):
        service, _sink = _service(n_shards=1)
        try:
            server = ObservabilityServer(service, port=0)
            server.start()
            server.start()  # idempotent
            assert server.running
            assert server.port > 0
            assert str(server.port) in server.url
            server.stop()
            server.stop()  # idempotent
            assert not server.running
        finally:
            service.close()


class TestEndToEndAcceptance:
    """ISSUE 3 acceptance: a deterministic scenario where /status funnel
    telescopes and matches the final detection funnel exactly, over HTTP,
    in both serial and parallel execution."""

    @pytest.mark.parametrize("workers", [1, 2])
    def test_status_funnel_equals_detection_report(self, workers):
        service, sink = _service(n_shards=2, workers=workers)
        try:
            service.ingest_many(_make_samples())
            reports = service.advance_to(N_TICKS * INTERVAL)
            assert [r.metric_id for r in reports] == ["svc.sub3.gcpu"]
            with ObservabilityServer(service) as server:
                payload = json.loads(_get(server.url + "/status")[2])
            assert payload["funnel"] == dict(service.funnel.counts)
            assert payload["funnel_trace"]["telescopes"]
            stages = {
                row["stage"]: row for row in payload["funnel_trace"]["stages"]
            }
            for stage in STAGES:
                assert stages[stage]["outputs"] == service.funnel.counts[stage]
            assert payload["reported"] == len(sink.reports) == 1
        finally:
            service.close()


class TestHandlerErrorPaths:
    """Regression tests for the catch-all error handler.

    The bug: a renderer raising *after* headers were sent used to make
    the catch-all answer again with a 500 — two responses on one
    keep-alive connection, desynchronizing every request behind it.
    """

    def test_error_before_headers_answers_500_and_survives(self):
        service, _sink = _service(n_shards=1)
        try:
            def boom():
                raise RuntimeError("renderer exploded")

            service.status_snapshot = boom
            with ObservabilityServer(service) as server:
                with pytest.raises(urllib.error.HTTPError) as excinfo:
                    urllib.request.urlopen(server.url + "/status", timeout=5.0)
                assert excinfo.value.code == 500
                assert "renderer exploded" in json.loads(
                    excinfo.value.read()
                )["error"]
                # The server is still healthy for the next request.
                with urllib.request.urlopen(
                    server.url + "/healthz", timeout=5.0
                ) as response:
                    assert response.status == 200
        finally:
            service.close()

    def test_error_after_headers_closes_instead_of_double_responding(
        self, monkeypatch
    ):
        import socket

        from repro.obs import http as obs_http

        def partial_then_raise(self):
            # Headers and a full body go out the wire...
            self._send_text(200, "partial", "text/plain")
            # ...and only then does the renderer fail.
            raise RuntimeError("late failure")

        monkeypatch.setattr(
            obs_http._Handler, "_quality_payload", partial_then_raise
        )
        service, _sink = _service(n_shards=1)
        try:
            with ObservabilityServer(service) as server:
                connection = socket.create_connection(
                    (server.host, server.port), timeout=5.0
                )
                try:
                    connection.sendall(
                        b"GET /quality HTTP/1.1\r\nHost: t\r\n"
                        b"Connection: keep-alive\r\n\r\n"
                    )
                    connection.settimeout(5.0)
                    received = b""
                    while True:
                        try:
                            chunk = connection.recv(4096)
                        except socket.timeout:  # pragma: no cover - slack
                            break
                        if not chunk:
                            break  # server closed the connection: good
                        received += chunk
                finally:
                    connection.close()
            # Exactly one response went out — the 200 that was already
            # in flight — and the connection was closed, not answered a
            # second time with a 500.
            assert received.count(b"HTTP/1.1") == 1
            assert received.startswith(b"HTTP/1.1 200")
            assert b"500" not in received.split(b"\r\n", 1)[0]
        finally:
            service.close()
