"""Tests for repro.obs.spans (funnel spans, trace store, live funnel)."""

import pickle

import numpy as np
import pytest

from repro.config import DetectionConfig
from repro.core.pipeline import DetectionPipeline, STAGES as PIPELINE_STAGES
from repro.obs.spans import (
    STAGES,
    FunnelTrace,
    RunTrace,
    Span,
    StageTally,
    TraceStore,
)
from repro.runtime import CollectingSink
from repro.service import Sample, StreamingDetectionService
from repro.tsdb import TimeSeriesDatabase, WindowSpec


def test_pipeline_reexports_canonical_stages():
    assert PIPELINE_STAGES is STAGES
    assert STAGES[0] == "change_points"
    assert STAGES[-1] == "pairwise_dedup"


class TestStageTally:
    def test_observe_counts_passes_and_drops(self):
        tally = StageTally()
        tally.observe(True, seconds=0.5)
        tally.observe(False, "went_away", seconds=0.25)
        tally.observe(False, "went_away", seconds=0.25)
        assert tally.inputs == 3
        assert tally.outputs == 1
        assert tally.drops == {"went_away": 2}
        assert tally.seconds == pytest.approx(1.0)

    def test_bulk_records_collection_stages(self):
        tally = StageTally()
        tally.bulk(10, 4, "som_duplicate", 0.1)
        span = tally.freeze("som_dedup")
        assert span.inputs == 10
        assert span.outputs == 4
        assert span.dropped == 6
        assert span.drops == {"som_duplicate": 6}

    def test_bulk_with_no_drops_records_no_reason(self):
        tally = StageTally()
        tally.bulk(3, 3, "som_duplicate", 0.0)
        assert tally.drops == {}


class TestRunTrace:
    @staticmethod
    def _chain(counts):
        spans = tuple(
            Span(stage=stage, inputs=inp, outputs=out, seconds=0.0)
            for stage, (inp, out) in zip(STAGES, counts)
        )
        return RunTrace(
            monitor="m", now=1.0, wall_started=0.0, seconds=0.0, spans=spans
        )

    def test_telescoping_counts(self):
        run = self._chain(
            [(10, 4), (4, 3), (3, 3), (3, 2), (2, 2), (2, 1), (1, 1), (1, 1)]
        )
        assert run.telescopes()

    def test_non_telescoping_detected(self):
        run = self._chain(
            [(10, 4), (4, 3), (3, 3), (5, 2), (2, 2), (2, 1), (1, 1), (1, 1)]
        )
        assert not run.telescopes()

    def test_span_lookup(self):
        run = self._chain([(1, 1)] * len(STAGES))
        assert run.span("threshold").stage == "threshold"
        with pytest.raises(KeyError):
            run.span("nope")


class TestTraceStore:
    @staticmethod
    def _run(now):
        return RunTrace(
            monitor="m", now=now, wall_started=now, seconds=0.0, spans=()
        )

    def test_ring_buffer_evicts_oldest(self):
        store = TraceStore(capacity=3)
        for now in range(5):
            store.record(self._run(float(now)))
        assert len(store) == 3
        assert store.recorded == 5
        assert [run.now for run in store.runs()] == [2.0, 3.0, 4.0]

    def test_record_many_appends_in_order(self):
        store = TraceStore(capacity=10)
        store.record_many([self._run(1.0), self._run(2.0)])
        assert [run.now for run in store.runs()] == [1.0, 2.0]

    def test_pickle_drops_buffered_runs_keeps_config(self):
        store = TraceStore(capacity=7)
        store.record(self._run(1.0))
        clone = pickle.loads(pickle.dumps(store))
        assert clone.capacity == 7
        assert clone.recorded == 1  # history counter survives
        assert len(clone) == 0  # buffered runs are process-local
        clone.record(self._run(2.0))  # and the clone still works
        assert len(clone) == 1

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            TraceStore(capacity=0)


def _seeded_database(n_series=6, n_regressed=2, n=1_700, step=600.0, seed=0):
    rng = np.random.default_rng(seed)
    database = TimeSeriesDatabase()
    for index in range(n_series):
        values = rng.normal(1.0, 0.01, n)
        if index < n_regressed:
            # Starts mid-analysis-window and persists through the
            # extended window, so the went-away check keeps it.
            values[-50:] += 0.5
        database.write_batch(
            (f"s{index}.gcpu", i * step, float(values[i]), {"metric": "gcpu"})
            for i in range(n)
        )
    return database, n * step


def _config(**overrides):
    defaults = dict(
        name="test",
        threshold=0.05,
        windows=WindowSpec(
            historic=10 * 86_400.0, analysis=4 * 3_600.0, extended=6 * 3_600.0
        ),
        long_term=False,
    )
    defaults.update(overrides)
    return DetectionConfig(**defaults)


class TestPipelineTracing:
    def test_each_run_emits_exactly_one_span_per_stage(self):
        database, end = _seeded_database()
        store = TraceStore()
        pipeline = DetectionPipeline(_config(), tracer=store)
        pipeline.run(database, end)
        pipeline.run(database, end + 600.0)
        assert len(store) == 2
        for run in store.runs():
            assert len(run.spans) == len(STAGES)
            assert [span.stage for span in run.spans] == list(STAGES)

    def test_short_term_spans_telescope(self):
        database, end = _seeded_database()
        store = TraceStore()
        pipeline = DetectionPipeline(_config(), tracer=store)
        result = pipeline.run(database, end)
        run = store.runs()[0]
        assert result.reported  # the scenario actually detects something
        assert run.telescopes()
        # Stage N's survivors are exactly stage N+1's inputs.
        for earlier, later in zip(run.spans, run.spans[1:]):
            assert later.inputs == earlier.outputs

    def test_span_outputs_equal_funnel_counters(self):
        database, end = _seeded_database()
        store = TraceStore()
        pipeline = DetectionPipeline(_config(), tracer=store)
        result = pipeline.run(database, end)
        run = store.runs()[0]
        for stage in STAGES:
            assert run.span(stage).outputs == result.funnel.counts[stage], stage

    def test_change_point_drop_reasons_cover_all_series(self):
        database, end = _seeded_database(n_series=6, n_regressed=2)
        store = TraceStore()
        pipeline = DetectionPipeline(_config(), tracer=store)
        pipeline.run(database, end)
        span = store.runs()[0].span("change_points")
        assert span.inputs == 6  # every matched series entered the stage
        assert span.outputs + sum(span.drops.values()) == span.inputs

    def test_no_tracer_records_nothing(self):
        database, end = _seeded_database()
        pipeline = DetectionPipeline(_config())
        result = pipeline.run(database, end)
        assert pipeline.tracer is None
        assert result.reported

    def test_long_term_path_breaks_telescoping_honestly(self):
        database, end = _seeded_database()
        store = TraceStore()
        pipeline = DetectionPipeline(_config(long_term=True), tracer=store)
        pipeline.run(database, end)
        run = store.runs()[0]
        # Long-term candidates enter at change_points and re-join at
        # threshold, so threshold inputs exceed seasonality outputs.
        assert run.span("threshold").inputs >= run.span("seasonality").outputs


class TestFunnelTrace:
    def test_aggregates_and_renders(self):
        database, end = _seeded_database()
        store = TraceStore()
        pipeline = DetectionPipeline(_config(), tracer=store)
        pipeline.run(database, end)
        pipeline.run(database, end + 600.0)
        trace = FunnelTrace.from_store(store)
        assert len(trace.runs) == 2
        per_run = [run.span("change_points").inputs for run in store.runs()]
        assert trace.totals["change_points"].inputs == sum(per_run)
        rows = trace.rows()
        assert [row["stage"] for row in rows] == list(STAGES)
        detected = trace.totals["change_points"].outputs
        for row in rows:
            if row["outputs"]:
                assert row["reduction"] == pytest.approx(
                    detected / row["outputs"]
                )
        rendered = trace.render()
        assert "change_points" in rendered
        assert "FunnelTrace over 2 run(s)" in rendered

    def test_to_dict_is_json_shaped(self):
        trace = FunnelTrace([])
        payload = trace.to_dict()
        assert payload["runs"] == 0
        assert len(payload["stages"]) == len(STAGES)


def _streamed_service(workers, n_shards=2, seed=3):
    rng = np.random.default_rng(seed)
    n_ticks, interval = 1_100, 60.0
    sink = CollectingSink()
    service = StreamingDetectionService(
        n_shards=n_shards, workers=workers, sinks=[sink], queue_capacity=2**16
    )
    config = _config(
        threshold=0.00005,
        rerun_interval=6_000.0,
        windows=WindowSpec(
            historic=36_000.0, analysis=12_000.0, extended=6_000.0
        ),
    )
    service.register_monitor("gcpu", config, series_filter={"metric": "gcpu"})
    samples = []
    for index in range(8):
        values = rng.normal(0.001, 0.00002, n_ticks)
        if index == 3:
            values[700:] += 0.0003
        samples.extend(
            Sample(
                f"svc.sub{index}.gcpu",
                tick * interval,
                float(values[tick]),
                {"metric": "gcpu"},
            )
            for tick in range(n_ticks)
        )
    service.ingest_many(samples)
    return service, n_ticks * interval


class TestServiceTracing:
    def test_serial_service_records_one_trace_per_scan(self):
        service, end = _streamed_service(workers=1)
        service.advance_to(end)
        assert len(service.traces) == service.stats().scans
        for run in service.traces.runs():
            assert [span.stage for span in run.spans] == list(STAGES)
        service.close()

    def test_parallel_workers_ship_traces_back(self):
        serial, end = _streamed_service(workers=1)
        serial.advance_to(end)
        parallel, end = _streamed_service(workers=2)
        parallel.advance_to(end)
        try:
            assert len(parallel.traces) == parallel.stats().scans
            assert len(parallel.traces) == len(serial.traces)
            # The merged funnel totals are identical to the serial path.
            serial_totals = FunnelTrace.from_store(serial.traces).to_dict()
            parallel_totals = FunnelTrace.from_store(parallel.traces).to_dict()
            for s_row, p_row in zip(
                serial_totals["stages"], parallel_totals["stages"]
            ):
                assert s_row["inputs"] == p_row["inputs"], s_row["stage"]
                assert s_row["outputs"] == p_row["outputs"], s_row["stage"]
        finally:
            serial.close()
            parallel.close()

    def test_funnel_trace_outputs_match_service_funnel(self):
        service, end = _streamed_service(workers=1)
        service.advance_to(end)
        trace = service.funnel_trace()
        for stage in STAGES:
            assert trace.totals[stage].outputs == service.funnel.counts[stage]
        service.close()


class TestEventLog:
    def test_record_and_filter(self):
        from repro.obs.spans import EventLog

        log = EventLog(capacity=8)
        log.record("degraded", shard=1, category="advance")
        log.record("recovered", shard=1, category="advance")
        log.record("degraded", shard=0, category="flusher")
        assert len(log) == 3
        assert log.recorded == 3
        degraded = log.events(kind="degraded")
        assert [e.fields["shard"] for e in degraded] == [1, 0]
        assert degraded[0].to_dict()["category"] == "advance"

    def test_capacity_bounds_buffer_but_not_recorded(self):
        from repro.obs.spans import EventLog

        log = EventLog(capacity=4)
        for index in range(10):
            log.record("tick", index=index)
        assert len(log) == 4
        assert log.recorded == 10
        assert [e.fields["index"] for e in log.events()] == [6, 7, 8, 9]

    def test_pickles_to_empty_shell(self):
        from repro.obs.spans import EventLog

        log = EventLog(capacity=4)
        log.record("tick")
        clone = pickle.loads(pickle.dumps(log))
        assert len(clone) == 0
        assert clone.capacity == 4
        clone.record("tock")  # usable after unpickling
        assert len(clone) == 1
