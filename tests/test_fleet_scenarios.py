"""Tests for repro.fleet.scenarios (the paper's §2 simulations)."""

import numpy as np
import pytest

from repro.fleet import scenarios


class TestSingleServerCpu:
    def test_regression_invisible_in_noise(self):
        # Figure 1(a): the 0.005% shift is buried in sigma=0.1 noise.
        series = scenarios.single_server_cpu(n_points=500)
        before, after = series[:250], series[250:]
        shift = after.mean() - before.mean()
        assert abs(shift) < 3 * series.std() / np.sqrt(250)

    def test_clipping(self):
        series = scenarios.single_server_cpu(n_points=1000)
        assert series.min() >= 0.0
        assert series.max() <= 1.0

    def test_mean_level(self):
        series = scenarios.single_server_cpu(n_points=2000)
        assert series.mean() == pytest.approx(0.5, abs=0.02)


class TestProcessLevelAverage:
    def test_noise_shrinks_with_m(self):
        small = scenarios.process_level_average(500_000, seed=1)
        large = scenarios.process_level_average(50_000_000, seed=1)
        assert large.std() < small.std()

    def test_mixture_mean(self):
        series = scenarios.process_level_average(5_000_000)
        assert series.mean() == pytest.approx(0.5, abs=0.001)

    def test_regression_visible_at_large_m(self):
        # Figure 2(c): at m=50M the 0.005% average shift is detectable.
        series = scenarios.process_level_average(50_000_000, n_points=500, seed=0)
        shift = series[250:].mean() - series[:250].mean()
        noise = series[:250].std() / np.sqrt(250)
        assert shift == pytest.approx(0.00005, abs=3 * noise)
        assert shift > 3 * noise


class TestSubroutineLevelAverage:
    def test_thousand_fold_server_reduction(self):
        # Figure 3: k=1000 subroutines make the regression detectable at
        # m=50k servers, 1000x fewer than Figure 2's m=50M.
        series = scenarios.subroutine_level_average(
            m_servers=50_000, k_subroutines=1000, n_points=500, seed=0
        )
        shift = series[250:].mean() - series[:250].mean()
        noise = series[:250].std() / np.sqrt(250)
        assert shift > 3 * noise  # clearly detectable

    def test_small_m_regression_invisible(self):
        # Figure 3(a): at m=500 the regression is buried in noise.
        series = scenarios.subroutine_level_average(
            m_servers=500, k_subroutines=1000, n_points=500, seed=0
        )
        shift = series[250:].mean() - series[:250].mean()
        assert abs(shift) < 5 * series[:250].std() / np.sqrt(250)

    def test_clipping_raises_mean(self):
        # Footnote 2: censoring negative samples raises the mean well
        # above mu/k = 0.05%; the paper's Figure 3 sits around 0.17%.
        series = scenarios.subroutine_level_average(
            m_servers=500, k_subroutines=1000, n_points=20, seed=1
        )
        assert series.mean() > 0.001


class TestCostShiftSeries:
    def test_target_jumps_domain_flat(self):
        target, domain = scenarios.cost_shift_series(n_points=400, seed=2)
        target_shift = target[250:].mean() - target[:150].mean()
        domain_shift = abs(domain[250:].mean() - domain[:150].mean())
        assert target_shift == pytest.approx(0.0003, rel=0.2)
        assert domain_shift < 0.1 * target_shift


class TestTransientThroughputDrop:
    def test_recovers(self):
        series = scenarios.transient_throughput_drop(
            n_points=500, drop_start=200, drop_length=40, seed=3
        )
        assert series[210:230].mean() < 0.7 * series[:190].mean()
        assert series[260:].mean() == pytest.approx(series[:190].mean(), rel=0.05)


class TestSpikeThenRegression:
    def test_shape(self):
        series = scenarios.spike_then_regression(n_points=500, seed=4)
        base = series[:200].mean()
        spike = series[227:235].mean()
        end = series[450:].mean()
        assert spike > base + 0.0005
        assert end == pytest.approx(base + 0.0004, rel=0.25)
        # Between spike and regression the series is back to baseline.
        assert series[300:400].mean() == pytest.approx(base, rel=0.1)


class TestNoisyStep:
    def test_step_at_index(self):
        series = scenarios.noisy_step_series(100, 60, base=1.0, shift=0.5, noise_std=0.01)
        assert series[:60].mean() == pytest.approx(1.0, abs=0.01)
        assert series[60:].mean() == pytest.approx(1.5, abs=0.01)
