"""End-to-end integration tests: simulator -> TSDB -> pipeline -> report.

These mirror the production loop: a fleet simulator emits gCPU and
service metrics while code changes and transient events occur; FBDetect
scans periodically and must report the injected true regression (with
the correct root cause), while filtering transients and cost shifts.
"""

import numpy as np
import pytest

from repro import FBDetect
from repro.config import DetectionConfig
from repro.core.types import FilterReason
from repro.fleet import (
    ChangeEffect,
    ChangeLog,
    CodeChange,
    CostShift,
    FleetSimulator,
    ServiceSpec,
    TransientEvent,
    TransientEventKind,
)
from repro.fleet.subroutine import CallGraph, SubroutineSpec
from repro.reporting import build_report, format_report
from repro.tsdb import WindowSpec


def build_graph():
    graph = CallGraph(root="_start")
    graph.add(SubroutineSpec("svc::Main::serve", self_cost=0.0, parent="_start", endpoint="/api"))
    graph.add(SubroutineSpec("svc::Feed::rank", self_cost=40.0, parent="svc::Main::serve"))
    graph.add(SubroutineSpec("svc::Feed::fetch", self_cost=30.0, parent="svc::Main::serve"))
    graph.add(SubroutineSpec("svc::Util::parse", self_cost=20.0, parent="svc::Feed::fetch"))
    graph.add(SubroutineSpec("svc::Util::format", self_cost=10.0, parent="svc::Feed::rank"))
    return graph


def config():
    # 600/200/100 ticks at 60s.
    return DetectionConfig(
        name="integration",
        threshold=0.002,
        rerun_interval=6_000.0,
        windows=WindowSpec(historic=36_000.0, analysis=12_000.0, extended=6_000.0),
        long_term=False,
    )


@pytest.fixture(scope="module")
def true_regression_run():
    """900 ticks; a 1.3x regression on svc::Util::parse at t=42000."""
    log = ChangeLog(
        [
            CodeChange(
                "bad-commit",
                deploy_time=42_000.0,
                title="rewrite svc::Util::parse tokenizer",
                summary="replaces the parse loop of svc::Util::parse",
                author="dev1",
                effects=(ChangeEffect("svc::Util::parse", 1.3),),
            ),
            CodeChange(
                "benign-commit",
                deploy_time=41_000.0,
                title="docs update",
                summary="readme only",
            ),
        ]
    )
    spec = ServiceSpec(
        name="svc",
        call_graph=build_graph(),
        n_servers=40,
        effective_samples=2_000_000,
        samples_per_interval=200,
        seasonality_amplitude=0.0,
    )
    sim = FleetSimulator(spec, change_log=log, interval=60.0, seed=11)
    result = sim.run(900)
    detector = FBDetect(
        config(),
        change_log=log,
        samples=result.collector.sample_history,
        series_filter={"metric": "gcpu"},
    )
    return result, detector.run(result.database, now=result.end_time)


class TestTrueRegressionEndToEnd:
    def test_regression_reported(self, true_regression_run):
        _, pipeline_result = true_regression_run
        assert pipeline_result.reported
        metric_ids = [r.context.metric_id for r in pipeline_result.reported]
        assert any("parse" in m or "fetch" in m for m in metric_ids)

    def test_upstream_callers_deduplicated(self, true_regression_run):
        # parse's regression also lifts fetch (its caller); dedup leaves
        # few reports, not one per affected series.
        _, pipeline_result = true_regression_run
        assert len(pipeline_result.reported) <= 2

    def test_root_cause_identified(self, true_regression_run):
        _, pipeline_result = true_regression_run
        top_candidates = [
            r.root_cause_candidates[0].change_id
            for r in pipeline_result.reported
            if r.root_cause_candidates
        ]
        assert "bad-commit" in top_candidates

    def test_report_renders(self, true_regression_run):
        _, pipeline_result = true_regression_run
        text = format_report(build_report(pipeline_result.reported[0]))
        assert "Performance regression" in text


class TestTransientEndToEnd:
    def test_transient_event_not_reported(self):
        events = [
            TransientEvent(
                TransientEventKind.CANARY_TEST, start=45_000.0, duration=3_000.0,
                intensity=2.0,
            )
        ]
        spec = ServiceSpec(
            name="svc",
            call_graph=build_graph(),
            n_servers=40,
            effective_samples=2_000_000,
            samples_per_interval=0,
        )
        sim = FleetSimulator(spec, events=events, interval=60.0, seed=13)
        result = sim.run(900)
        detector = FBDetect(config(), series_filter={"metric": "cpu"})
        pipeline_result = detector.run(result.database, now=result.end_time)
        assert pipeline_result.reported == []


class TestCostShiftEndToEnd:
    def test_refactor_not_reported(self):
        # Move 40% of rank's cost into format: format's gCPU jumps hugely
        # but the class/caller totals stay flat.
        log = ChangeLog(
            [
                CodeChange(
                    "refactor",
                    deploy_time=42_000.0,
                    title="extract formatting from rank",
                    cost_shifts=(CostShift("svc::Feed::rank", "svc::Util::format", 0.2),),
                )
            ]
        )
        spec = ServiceSpec(
            name="svc",
            call_graph=build_graph(),
            n_servers=40,
            effective_samples=2_000_000,
            samples_per_interval=200,
        )
        sim = FleetSimulator(spec, change_log=log, interval=60.0, seed=17)
        result = sim.run(900)
        detector = FBDetect(
            config(),
            change_log=log,
            samples=result.collector.sample_history,
            series_filter={"metric": "gcpu"},
        )
        pipeline_result = detector.run(result.database, now=result.end_time)
        # format's jump must be filtered as a cost shift (or deduped into
        # a group whose representative is then filtered).
        format_reports = [
            r
            for r in pipeline_result.reported
            if r.context.subroutine == "svc::Util::format"
        ]
        assert format_reports == []
        cost_shift_drops = [
            c
            for c in pipeline_result.all_candidates
            if any(v.reason is FilterReason.COST_SHIFT for v in c.verdicts)
        ]
        assert cost_shift_drops


class TestPeriodicOperation:
    def test_regression_reported_exactly_once_across_runs(self):
        log = ChangeLog(
            [
                CodeChange(
                    "bad",
                    deploy_time=42_000.0,
                    title="regress svc::Feed::rank",
                    effects=(ChangeEffect("svc::Feed::rank", 1.2),),
                )
            ]
        )
        spec = ServiceSpec(
            name="svc",
            call_graph=build_graph(),
            n_servers=40,
            effective_samples=2_000_000,
            samples_per_interval=0,
        )
        sim = FleetSimulator(spec, change_log=log, interval=60.0, seed=19)
        result = sim.run(1100)
        detector = FBDetect(config(), change_log=log, series_filter={"metric": "gcpu"})
        runs = detector.run_periodic(
            result.database, start=54_000.0, end=result.end_time
        )
        reported_rank = [
            r
            for run in runs
            for r in run.reported
            if r.context.subroutine == "svc::Feed::rank"
        ]
        assert len(reported_rank) == 1
