"""Tests for repro.fleet.changes and repro.fleet.events."""

import pytest

from repro.fleet.changes import ChangeEffect, ChangeLog, CodeChange, CostShift
from repro.fleet.events import TransientEvent, TransientEventKind


class TestCodeChange:
    def test_modified_subroutines_union(self):
        change = CodeChange(
            "c1",
            deploy_time=0.0,
            effects=(ChangeEffect("a", 1.2),),
            cost_shifts=(CostShift("b", "c", 0.5),),
        )
        assert change.modified_subroutines == ("a", "b", "c")

    def test_is_regression(self):
        regression = CodeChange("c", 0.0, effects=(ChangeEffect("a", 1.5),))
        improvement = CodeChange("c", 0.0, effects=(ChangeEffect("a", 0.8),))
        assert regression.is_regression
        assert not improvement.is_regression

    def test_invalid_kind_raises(self):
        with pytest.raises(ValueError):
            CodeChange("c", 0.0, kind="deploy")

    def test_invalid_effect_raises(self):
        with pytest.raises(ValueError):
            ChangeEffect("a", -0.1)

    def test_invalid_shift_raises(self):
        with pytest.raises(ValueError):
            CostShift("a", "b", 1.1)


class TestChangeLog:
    def _log(self):
        return ChangeLog(
            [
                CodeChange("late", deploy_time=100.0),
                CodeChange("early", deploy_time=10.0),
                CodeChange("hidden", deploy_time=50.0, exported=False),
            ]
        )

    def test_sorted_by_deploy_time(self):
        log = self._log()
        assert [c.change_id for c in log] == ["early", "hidden", "late"]

    def test_deployed_between_excludes_unexported(self):
        log = self._log()
        ids = [c.change_id for c in log.deployed_between(0.0, 200.0)]
        assert ids == ["early", "late"]

    def test_all_between_includes_unexported(self):
        log = self._log()
        ids = [c.change_id for c in log.all_between(0.0, 200.0)]
        assert "hidden" in ids

    def test_window_is_half_open(self):
        log = self._log()
        assert [c.change_id for c in log.deployed_between(10.0, 100.0)] == ["early"]

    def test_add_keeps_order(self):
        log = self._log()
        log.add(CodeChange("mid", deploy_time=60.0))
        assert [c.change_id for c in log][2] == "mid"

    def test_get(self):
        log = self._log()
        assert log.get("early").deploy_time == 10.0
        assert log.get("nope") is None

    def test_modifying(self):
        log = ChangeLog(
            [
                CodeChange("c1", 0.0, effects=(ChangeEffect("foo", 1.1),)),
                CodeChange("c2", 0.0, effects=(ChangeEffect("bar", 1.1),)),
                CodeChange(
                    "c3", 0.0, exported=False, effects=(ChangeEffect("foo", 1.1),)
                ),
            ]
        )
        assert [c.change_id for c in log.modifying("foo")] == ["c1"]


class TestTransientEvent:
    def test_active_window(self):
        event = TransientEvent(TransientEventKind.LOAD_SPIKE, start=10.0, duration=5.0)
        assert not event.active_at(9.9)
        assert event.active_at(10.0)
        assert event.active_at(14.9)
        assert not event.active_at(15.0)
        assert event.end == 15.0

    def test_multiplier_inactive_is_one(self):
        event = TransientEvent(TransientEventKind.LOAD_SPIKE, start=10.0, duration=5.0)
        assert event.multiplier("cpu", 0.0) == 1.0

    def test_load_spike_raises_cpu_and_throughput(self):
        event = TransientEvent(TransientEventKind.LOAD_SPIKE, start=0.0, duration=100.0)
        assert event.multiplier("cpu", 10.0) > 1.0
        assert event.multiplier("throughput", 10.0) > 1.0

    def test_server_failure_drops_throughput(self):
        event = TransientEvent(TransientEventKind.SERVER_FAILURE, start=0.0, duration=100.0)
        assert event.multiplier("throughput", 10.0) < 1.0
        assert event.multiplier("error_rate", 10.0) > 1.0

    def test_unaffected_metric_is_one(self):
        event = TransientEvent(TransientEventKind.CANARY_TEST, start=0.0, duration=10.0)
        assert event.multiplier("error_rate", 5.0) == 1.0

    def test_intensity_scales_deviation(self):
        strong = TransientEvent(TransientEventKind.LOAD_SPIKE, 0.0, 100.0, intensity=1.0)
        weak = TransientEvent(TransientEventKind.LOAD_SPIKE, 0.0, 100.0, intensity=0.5)
        assert strong.multiplier("cpu", 10.0) - 1.0 == pytest.approx(
            2 * (weak.multiplier("cpu", 10.0) - 1.0)
        )

    def test_rampdown_near_end(self):
        event = TransientEvent(TransientEventKind.LOAD_SPIKE, 0.0, 100.0)
        mid = event.multiplier("cpu", 50.0)
        late = event.multiplier("cpu", 99.0)
        assert abs(late - 1.0) < abs(mid - 1.0)

    def test_invalid_duration_raises(self):
        with pytest.raises(ValueError):
            TransientEvent(TransientEventKind.LOAD_SPIKE, 0.0, 0.0)
