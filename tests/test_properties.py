"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.profiling.gcpu import compute_gcpu, stack_trace_overlap
from repro.profiling.stacktrace import StackTrace
from repro.som import som_cluster, som_grid_size
from repro.stats.cusum import cusum_statistic
from repro.stats.mann_kendall import mann_kendall_test
from repro.stats.robust import mad, mad_threshold
from repro.stats.sax import sax_encode
from repro.stats.stl import stl_decompose
from repro.stats.theil_sen import theil_sen
from repro.text.similarity import token_cosine_similarity
from repro.tsdb import TimeSeries

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
small_series = st.lists(finite_floats, min_size=3, max_size=60)


class TestStatsProperties:
    @given(small_series)
    def test_cusum_ends_at_zero(self, values):
        curve = cusum_statistic(values)
        scale = max(1.0, float(np.max(np.abs(values))))
        assert abs(curve[-1]) <= 1e-6 * scale * len(values)

    @given(small_series)
    def test_mad_nonnegative_and_shift_invariant(self, values):
        assert mad(values) >= 0.0
        shifted = [v + 10.0 for v in values]
        assert mad(shifted) == pytest.approx(mad(values), abs=1e-6)

    @given(small_series, st.floats(min_value=0.1, max_value=5.0))
    def test_mad_threshold_scales_with_coefficient(self, values, coefficient):
        base = mad_threshold(values, 1.0)
        assert mad_threshold(values, coefficient) == pytest.approx(
            coefficient * base, rel=1e-9
        )

    @given(small_series)
    def test_mann_kendall_antisymmetric(self, values):
        assume(len(set(values)) > 1)
        forward = mann_kendall_test(values)
        reverse = mann_kendall_test(values[::-1])
        assert forward.s == -reverse.s

    @given(small_series)
    def test_sax_total_and_range(self, values):
        encoding = sax_encode(values)
        assert len(encoding.string) == len(values)
        assert all(0 <= letter < encoding.n_buckets for letter in encoding.letters)
        # Valid letters hold at least the validity threshold of points.
        counts = encoding.letter_counts()
        threshold = max(1, int(np.ceil(0.03 * len(values))))
        for letter in encoding.valid_letters:
            assert counts[letter] >= threshold

    @given(
        st.lists(finite_floats, min_size=2, max_size=40),
        st.floats(min_value=-100, max_value=100),
        st.floats(min_value=-10, max_value=10),
    )
    def test_theil_sen_affine_equivariance(self, values, shift, scale):
        fit = theil_sen(values)
        transformed = theil_sen([scale * v + shift for v in values])
        tolerance = max(1e-6, 1e-9 * max(abs(v) for v in values) * abs(scale))
        assert transformed.slope == pytest.approx(scale * fit.slope, abs=tolerance)

    @given(
        arrays(np.float64, st.integers(min_value=24, max_value=60),
               elements=st.floats(min_value=-100, max_value=100)),
    )
    @settings(max_examples=25, deadline=None)
    def test_stl_reconstruction_identity(self, values):
        result = stl_decompose(values, period=8)
        assert np.allclose(result.seasonal + result.trend + result.residual, values)


class TestTextProperties:
    texts = st.text(
        alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd"), max_codepoint=127),
        min_size=1,
        max_size=30,
    )

    @given(texts)
    def test_self_similarity_is_one(self, text):
        assume(any(c.isalnum() for c in text))
        assert token_cosine_similarity(text, text) == pytest.approx(1.0)

    @given(texts, texts)
    def test_similarity_symmetric_and_bounded(self, a, b):
        s1 = token_cosine_similarity(a, b)
        s2 = token_cosine_similarity(b, a)
        assert s1 == pytest.approx(s2)
        assert 0.0 <= s1 <= 1.0 + 1e-9


class TestGcpuProperties:
    stack_names = st.lists(
        st.sampled_from(["a", "b", "c", "d", "e"]), min_size=1, max_size=5
    )
    sample_lists = st.lists(
        st.tuples(stack_names, st.floats(min_value=0.1, max_value=10.0)),
        min_size=1,
        max_size=20,
    )

    @given(sample_lists)
    def test_gcpu_in_unit_interval(self, specs):
        samples = [StackTrace.from_names(names, weight=w) for names, w in specs]
        table = compute_gcpu(samples)
        for subroutine in table.subroutines():
            assert 0.0 <= table.gcpu(subroutine) <= 1.0 + 1e-9

    @given(sample_lists)
    def test_overlap_symmetric_and_bounded(self, specs):
        samples = [StackTrace.from_names(names, weight=w) for names, w in specs]
        overlap_ab = stack_trace_overlap(samples, "a", "b")
        overlap_ba = stack_trace_overlap(samples, "b", "a")
        assert overlap_ab == pytest.approx(overlap_ba)
        assert 0.0 <= overlap_ab <= 1.0 + 1e-9

    @given(sample_lists)
    def test_root_frame_gcpu_dominates(self, specs):
        # A subroutine present in every sample has gCPU 1.
        samples = [
            StackTrace.from_names(["root"] + names, weight=w) for names, w in specs
        ]
        assert compute_gcpu(samples).gcpu("root") == pytest.approx(1.0)


class TestSomProperties:
    @given(st.integers(min_value=1, max_value=10_000))
    def test_grid_size_covers_items(self, n):
        size = som_grid_size(n)
        assert size >= 1
        assert (size + 1) ** 4 > n  # ceil(n^0.25) definition

    @given(
        arrays(
            np.float64,
            st.tuples(st.integers(min_value=1, max_value=12), st.just(3)),
            elements=st.floats(min_value=-5, max_value=5),
        )
    )
    @settings(max_examples=20, deadline=None)
    def test_cluster_partition(self, data):
        clusters = som_cluster(data)
        flattened = sorted(i for cluster in clusters for i in cluster)
        assert flattened == list(range(data.shape[0]))


class TestTsdbProperties:
    @given(st.lists(st.tuples(finite_floats, finite_floats), min_size=0, max_size=30))
    def test_insert_always_sorted(self, points):
        series = TimeSeries("s")
        for timestamp, value in points:
            series.insert(timestamp, value)
        timestamps = series.timestamps
        assert np.all(timestamps[:-1] <= timestamps[1:])

    @given(
        st.lists(finite_floats, min_size=1, max_size=30),
        finite_floats,
        finite_floats,
    )
    def test_between_subset(self, values, a, b):
        lo, hi = min(a, b), max(a, b)
        series = TimeSeries("s")
        for i, value in enumerate(values):
            series.append(float(i), value)
        sub = series.between(lo, hi)
        assert all(lo <= t < hi for t in sub.timestamps)
