"""Tests for repro.service.router (consistent-hash shard routing)."""

import pytest

from repro.service import ConsistentHashRouter


KEYS = [f"svc{i % 7}.sub{i}.gcpu" for i in range(1000)]


class TestDeterminism:
    def test_same_key_same_shard(self):
        router = ConsistentHashRouter(range(8))
        assert all(router.shard_for(k) == router.shard_for(k) for k in KEYS)

    def test_independent_instances_agree(self):
        a = ConsistentHashRouter(range(8))
        b = ConsistentHashRouter(range(8))
        assert [a.shard_for(k) for k in KEYS] == [b.shard_for(k) for k in KEYS]

    def test_insertion_order_irrelevant(self):
        a = ConsistentHashRouter([0, 1, 2, 3])
        b = ConsistentHashRouter([3, 1, 0, 2])
        assert [a.shard_for(k) for k in KEYS] == [b.shard_for(k) for k in KEYS]

    def test_single_shard_gets_everything(self):
        router = ConsistentHashRouter([0])
        assert set(router.distribution(KEYS).values()) == {len(KEYS)}


class TestBalance:
    def test_every_shard_used(self):
        router = ConsistentHashRouter(range(8), replicas=64)
        counts = router.distribution(KEYS)
        assert all(count > 0 for count in counts.values())

    def test_no_shard_dominates(self):
        router = ConsistentHashRouter(range(8), replicas=64)
        counts = router.distribution(KEYS)
        mean = len(KEYS) / len(counts)
        assert max(counts.values()) < 3 * mean

    def test_more_replicas_smooth_distribution(self):
        coarse = ConsistentHashRouter(range(8), replicas=4)
        fine = ConsistentHashRouter(range(8), replicas=256)

        def spread(router):
            counts = router.distribution(KEYS)
            return max(counts.values()) - min(counts.values())

        assert spread(fine) <= spread(coarse)


class TestMembership:
    def test_remove_only_remaps_removed_shards_keys(self):
        router = ConsistentHashRouter(range(8))
        before = {k: router.shard_for(k) for k in KEYS}
        router.remove_shard(3)
        for key, owner in before.items():
            if owner != 3:
                assert router.shard_for(key) == owner
            else:
                assert router.shard_for(key) != 3

    def test_add_restores_original_mapping(self):
        router = ConsistentHashRouter(range(8))
        before = {k: router.shard_for(k) for k in KEYS}
        router.remove_shard(5)
        router.add_shard(5)
        assert {k: router.shard_for(k) for k in KEYS} == before

    def test_duplicate_add_raises(self):
        router = ConsistentHashRouter(range(2))
        with pytest.raises(ValueError, match="already registered"):
            router.add_shard(1)

    def test_remove_unknown_raises(self):
        router = ConsistentHashRouter(range(2))
        with pytest.raises(ValueError, match="not registered"):
            router.remove_shard(9)

    def test_empty_ring_raises(self):
        router = ConsistentHashRouter()
        with pytest.raises(RuntimeError, match="no shards"):
            router.shard_for("anything")

    def test_len_and_contains(self):
        router = ConsistentHashRouter(range(3))
        assert len(router) == 3
        assert 2 in router
        assert 7 not in router
        assert router.shards == [0, 1, 2]

    def test_invalid_replicas(self):
        with pytest.raises(ValueError, match="replicas"):
            ConsistentHashRouter(range(2), replicas=0)
