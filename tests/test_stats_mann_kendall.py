"""Tests for repro.stats.mann_kendall."""

import numpy as np
import pytest

from repro.stats.mann_kendall import mann_kendall_test


class TestMannKendall:
    def test_increasing_trend(self, rng):
        x = np.arange(50) + rng.normal(0, 0.5, 50)
        result = mann_kendall_test(x)
        assert result.trend == "increasing"
        assert result.is_increasing
        assert result.z > 0

    def test_decreasing_trend(self, rng):
        x = -np.arange(50) + rng.normal(0, 0.5, 50)
        result = mann_kendall_test(x)
        assert result.trend == "decreasing"
        assert result.is_decreasing

    def test_no_trend_in_noise(self, rng):
        result = mann_kendall_test(rng.normal(0, 1, 100))
        assert result.trend == "no trend"

    def test_short_series_no_trend(self):
        assert mann_kendall_test([1.0, 2.0]).trend == "no trend"

    def test_constant_series(self):
        result = mann_kendall_test(np.full(30, 5.0))
        assert result.trend == "no trend"
        assert result.s == 0

    def test_s_statistic_perfect_monotone(self):
        n = 10
        result = mann_kendall_test(np.arange(n, dtype=float))
        assert result.s == n * (n - 1) // 2

    def test_tie_handling(self):
        # Heavily tied but rising series should still detect the trend.
        x = np.repeat([1.0, 2.0, 3.0, 4.0, 5.0], 6)
        result = mann_kendall_test(x)
        assert result.trend == "increasing"

    def test_significance_level(self, rng):
        x = np.arange(20) * 0.05 + rng.normal(0, 1, 20)  # weak trend
        strict = mann_kendall_test(x, significance_level=1e-10)
        assert strict.trend == "no trend"

    def test_p_value_in_unit_interval(self, rng):
        result = mann_kendall_test(rng.normal(0, 1, 40))
        assert 0.0 <= result.p_value <= 1.0
