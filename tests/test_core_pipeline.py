"""Tests for repro.core.pipeline and repro.core.detector."""

import numpy as np
import pytest

from repro import FBDetect, TimeSeriesDatabase, table1_config
from repro.config import DetectionConfig
from repro.core.pipeline import STAGES, DetectionPipeline, FunnelCounters
from repro.core.types import FilterReason, RegressionKind
from repro.fleet.changes import ChangeEffect, ChangeLog, CodeChange
from repro.tsdb import WindowSpec

from conftest import fill_series


def small_config(**overrides):
    defaults = dict(
        name="test",
        threshold=0.00002,
        rerun_interval=3600.0,
        windows=WindowSpec(historic=36_000.0, analysis=12_000.0, extended=6_000.0),
    )
    defaults.update(overrides)
    return DetectionConfig(**defaults)


def regression_values(rng, n=900, base=0.001, shift=0.0002, at=700):
    values = rng.normal(base, 0.00002, n)
    values[at:] += shift
    return values


class TestFunnelCounters:
    def test_stage_order_matches_table3(self):
        assert STAGES[0] == "change_points"
        assert STAGES[-1] == "pairwise_dedup"
        assert "went_away" in STAGES and "cost_shift" in STAGES

    def test_unknown_stage_raises(self):
        with pytest.raises(KeyError):
            FunnelCounters().survived("nope")

    def test_reduction_ratios(self):
        funnel = FunnelCounters()
        funnel.survived("change_points", 100)
        funnel.survived("went_away", 10)
        ratios = funnel.reduction_ratios()
        assert ratios["went_away"] == 10.0
        assert ratios["seasonality"] == float("inf")

    def test_merge(self):
        a, b = FunnelCounters(), FunnelCounters()
        a.survived("change_points", 5)
        b.survived("change_points", 7)
        a.merge(b)
        assert a.counts["change_points"] == 12


class TestDetectionPipeline:
    def test_reports_true_regression(self, rng):
        db = TimeSeriesDatabase()
        fill_series(
            db,
            "svc.ns::K::B.gcpu",
            regression_values(rng),
            tags={"service": "svc", "subroutine": "ns::K::B", "metric": "gcpu"},
        )
        pipeline = DetectionPipeline(small_config())
        result = pipeline.run(db, now=54_000.0)
        assert len(result.reported) == 1
        regression = result.reported[0]
        assert regression.magnitude == pytest.approx(0.0002, rel=0.25)
        assert result.funnel.counts["change_points"] >= 1

    def test_clean_series_reports_nothing(self, rng):
        db = TimeSeriesDatabase()
        fill_series(db, "svc.clean.gcpu", rng.normal(0.001, 0.00002, 900),
                    tags={"metric": "gcpu"})
        result = DetectionPipeline(small_config()).run(db, now=54_000.0)
        assert result.reported == []

    def test_transient_filtered_by_went_away(self):
        rng = np.random.default_rng(5)
        values = rng.normal(0.001, 0.00002, 900)
        values[700:790] += 0.0004
        db = TimeSeriesDatabase()
        fill_series(db, "svc.t.gcpu", values, tags={"metric": "gcpu"})
        result = DetectionPipeline(small_config(long_term=False)).run(db, now=54_000.0)
        assert result.reported == []
        # The candidate existed and was dropped by the went-away stage.
        dropped = [
            c for c in result.all_candidates
            if c.verdicts and c.verdicts[-1].reason is FilterReason.WENT_AWAY
        ]
        assert dropped

    def test_below_threshold_filtered(self, rng):
        db = TimeSeriesDatabase()
        fill_series(db, "svc.small.gcpu", regression_values(rng, shift=0.00008),
                    tags={"metric": "gcpu"})
        config = small_config(threshold=0.001)  # demand a 0.1% shift
        result = DetectionPipeline(config).run(db, now=54_000.0)
        assert result.reported == []

    def test_throughput_orientation(self, rng):
        # A throughput *drop* is a regression for lower-is-worse metrics.
        values = rng.normal(100.0, 1.0, 900)
        values[700:] -= 10.0
        db = TimeSeriesDatabase()
        fill_series(db, "svc.throughput", values, tags={"metric": "throughput"})
        config = small_config(higher_is_worse=False, threshold=5.0, long_term=False)
        result = DetectionPipeline(config).run(db, now=54_000.0)
        assert len(result.reported) == 1

    def test_duplicate_callers_deduplicated(self, rng):
        # Five callers of the same regressed subroutine: one report.
        db = TimeSeriesDatabase()
        shared = rng.normal(0, 0.00002, 900)
        for i in range(5):
            values = 0.001 + shared + rng.normal(0, 0.000002, 900)
            values[700:] += 0.0002
            fill_series(
                db,
                f"svc.ns::K::caller{i}.gcpu",
                values,
                tags={"service": "svc", "subroutine": f"ns::K::caller{i}", "metric": "gcpu"},
            )
        result = DetectionPipeline(small_config(long_term=False)).run(db, now=54_000.0)
        assert result.funnel.counts["change_points"] == 5
        assert len(result.reported) <= 2  # SOM + pairwise collapse the family

    def test_same_regression_across_runs(self, rng):
        db = TimeSeriesDatabase()
        fill_series(db, "svc.s.gcpu", regression_values(rng),
                    tags={"metric": "gcpu", "service": "svc", "subroutine": "s"})
        pipeline = DetectionPipeline(small_config(long_term=False))
        first = pipeline.run(db, now=54_000.0)
        second = pipeline.run(db, now=54_000.0 + 1800.0)
        assert len(first.reported) == 1
        assert second.reported == []  # SameRegressionMerger suppressed it

    def test_series_filter(self, rng):
        db = TimeSeriesDatabase()
        fill_series(db, "a.gcpu", regression_values(rng),
                    tags={"service": "a", "metric": "gcpu"})
        fill_series(db, "b.gcpu", regression_values(rng, at=710),
                    tags={"service": "b", "metric": "gcpu"})
        pipeline = DetectionPipeline(small_config(), series_filter={"service": "a"})
        result = pipeline.run(db, now=54_000.0)
        assert all(r.context.service == "a" for r in result.reported)

    def test_root_cause_attached(self, rng):
        db = TimeSeriesDatabase()
        fill_series(db, "svc.ns::K::B.gcpu", regression_values(rng),
                    tags={"service": "svc", "subroutine": "ns::K::B", "metric": "gcpu"})
        # Change deployed just before the regression at t ~ 42000+700*60...
        # The regression's change time falls inside the analysis window.
        log = ChangeLog(
            [
                CodeChange(
                    "culprit",
                    deploy_time=41_500.0,
                    title="rework ns::K::B inner loop",
                    effects=(ChangeEffect("ns::K::B", 1.2),),
                )
            ]
        )
        pipeline = DetectionPipeline(small_config(long_term=False), change_log=log)
        result = pipeline.run(db, now=54_000.0)
        assert result.reported
        assert result.reported[0].root_cause_candidates
        assert result.reported[0].root_cause_candidates[0].change_id == "culprit"

    def test_insufficient_data_skipped(self):
        db = TimeSeriesDatabase()
        fill_series(db, "svc.sparse.gcpu", [0.001] * 5, tags={"metric": "gcpu"})
        result = DetectionPipeline(small_config()).run(db, now=54_000.0)
        assert result.all_candidates == []


class TestFBDetect:
    def test_detect_series_convenience(self, rng):
        detector = FBDetect(small_config())
        result = detector.detect_series(regression_values(rng), tags={"metric": "gcpu"})
        assert len(result.reported) == 1

    def test_run_periodic_reports_once(self, rng):
        db = TimeSeriesDatabase()
        fill_series(db, "svc.s.gcpu", regression_values(rng),
                    tags={"metric": "gcpu"})
        detector = FBDetect(small_config(long_term=False))
        results = detector.run_periodic(db, start=50_000.0, end=54_000.0)
        total_reported = sum(len(r.reported) for r in results)
        assert total_reported == 1

    def test_table1_config_integration(self, rng):
        config = table1_config("frontfaas_small").with_windows(
            historic=36_000.0, analysis=12_000.0, extended=6_000.0
        )
        detector = FBDetect(config)
        result = detector.detect_series(
            regression_values(rng, shift=0.0001), tags={"metric": "gcpu"}
        )
        assert len(result.reported) >= 1


class TestIncrementalScanIntegration:
    """Pipeline-level contracts of the incremental scan cache."""

    def append_quiet(self, series, rng, start, n=10, mean=0.001):
        for tick in range(n):
            series.append(start + (tick + 1) * 60.0,
                          float(rng.normal(mean, 0.00002)))

    def test_lower_is_worse_quiet_series_hits_cache(self, rng):
        """Regression test: the screen anchors on *raw* values.

        With a negated (oriented) anchor, every lower-is-worse series
        has a sign-flipped reference mean, the screen fires on the very
        first folded point, and the cache never produces a hit.
        """
        db = TimeSeriesDatabase()
        fill_series(db, "svc.qps", rng.normal(0.001, 0.00002, 900),
                    tags={"metric": "qps"})
        pipeline = DetectionPipeline(
            small_config(higher_is_worse=False), incremental=True
        )
        pipeline.run(db, now=54_000.0)
        self.append_quiet(db.get("svc.qps"), rng, start=54_000.0)
        pipeline.run(db, now=54_600.0)
        cache = pipeline.incremental_cache
        assert cache.hits >= 1
        assert cache.invalidations == 0

    def test_lower_is_worse_drop_still_detected_incrementally(self, rng):
        """A throughput drop must fire the screen and reach the detector."""
        db = TimeSeriesDatabase()
        values = rng.normal(0.001, 0.00002, 900)
        values[700:] -= 0.0003  # drop = regression when lower is worse
        fill_series(db, "svc.qps", values, tags={"metric": "qps"})
        pipeline = DetectionPipeline(
            small_config(higher_is_worse=False), incremental=True
        )
        result = pipeline.run(db, now=54_000.0)
        assert len(result.reported) == 1

    def test_registry_miss_counter_agrees_with_cache(self, rng):
        """Misses are counted at the decision point, not after the scan.

        A series too short for ``has_minimum_data`` bails before the
        detector runs; the registry counter must still see that miss or
        the two hit rates diverge.
        """
        from repro.service import MetricsRegistry

        db = TimeSeriesDatabase()
        fill_series(db, "svc.sparse.gcpu", [0.001] * 5,
                    tags={"metric": "gcpu"})
        registry = MetricsRegistry()
        pipeline = DetectionPipeline(
            small_config(), incremental=True, metrics=registry
        )
        pipeline.run(db, now=54_000.0)
        pipeline.run(db, now=54_060.0)
        cache = pipeline.incremental_cache
        counters = registry.snapshot()["counters"]
        assert cache.misses == 2
        assert counters.get("pipeline.incremental.misses", 0) == cache.misses
        assert counters.get("pipeline.incremental.hits", 0) == cache.hits
