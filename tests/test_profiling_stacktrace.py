"""Tests for repro.profiling.stacktrace."""

import threading

import pytest

from repro.profiling.stacktrace import (
    Frame,
    StackTrace,
    current_frame_metadata,
    set_frame_metadata,
)


class TestFrame:
    def test_class_name_parsing(self):
        assert Frame("ns::Klass::method").class_name == "ns::Klass"
        assert Frame("plain_function").class_name is None

    def test_with_metadata(self):
        frame = Frame("f").with_metadata("user:vip")
        assert frame.metadata == "user:vip"
        assert frame.subroutine == "f"


class TestStackTrace:
    def test_from_names(self):
        trace = StackTrace.from_names(["a", "b", "c"])
        assert trace.subroutines == ("a", "b", "c")
        assert len(trace) == 3
        assert trace.leaf.subroutine == "c"

    def test_weight_must_be_positive(self):
        with pytest.raises(ValueError):
            StackTrace.from_names(["a"], weight=0.0)

    def test_contains(self):
        trace = StackTrace.from_names(["a", "b"])
        assert trace.contains("a")
        assert not trace.contains("z")

    def test_callers_of(self):
        trace = StackTrace.from_names(["a", "b", "c", "b"])
        assert trace.callers_of("b") == ("a", "c")
        assert trace.callers_of("a") == ()

    def test_callees_of(self):
        trace = StackTrace.from_names(["a", "b", "c", "d"])
        assert trace.callees_of("b") == ("c", "d")
        assert trace.callees_of("d") == ()
        assert trace.callees_of("zzz") == ()

    def test_metadata_values(self):
        frames = (Frame("a"), Frame("b", metadata="m1"), Frame("c", metadata="m2"))
        assert StackTrace(frames=frames).metadata_values() == ("m1", "m2")

    def test_key_collapses_identical(self):
        t1 = StackTrace.from_names(["a", "b"])
        t2 = StackTrace.from_names(["a", "b"], weight=5.0)
        assert t1.key() == t2.key()

    def test_empty_trace(self):
        trace = StackTrace(frames=())
        assert trace.leaf is None
        assert len(trace) == 0


class TestSetFrameMetadata:
    def test_context_manager(self):
        assert current_frame_metadata() is None
        with set_frame_metadata("user_category:enterprise"):
            assert current_frame_metadata() == "user_category:enterprise"
        assert current_frame_metadata() is None

    def test_nesting_innermost_wins(self):
        with set_frame_metadata("outer"):
            with set_frame_metadata("inner"):
                assert current_frame_metadata() == "inner"
            assert current_frame_metadata() == "outer"

    def test_thread_local(self):
        results = {}

        def worker():
            results["other"] = current_frame_metadata()

        with set_frame_metadata("main-only"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert results["other"] is None
