"""Tests for repro.text."""

import numpy as np
import pytest

from repro.text.similarity import cosine_similarity, text_cosine_similarity
from repro.text.tfidf import NgramTfidfVectorizer, TfidfVectorizer
from repro.text.tokenize import char_ngrams, tokenize_identifier, tokenize_text


class TestTokenizeIdentifier:
    def test_snake_case(self):
        assert tokenize_identifier("get_assoc_range") == ["get", "assoc", "range"]

    def test_camel_case(self):
        assert tokenize_identifier("FrontFaaSRanker") == ["front", "faa", "s", "ranker"]

    def test_namespaces(self):
        assert tokenize_identifier("svc::Klass::method") == ["svc", "klass", "method"]

    def test_mixed(self):
        assert tokenize_identifier("TaoClient::getAssoc_range") == [
            "tao",
            "client",
            "get",
            "assoc",
            "range",
        ]

    def test_empty(self):
        assert tokenize_identifier("") == []

    def test_numbers_kept(self):
        assert "v2" in tokenize_identifier("parse_v2") or "2" in tokenize_identifier("parse_v2")


class TestTokenizeText:
    def test_prose(self):
        assert tokenize_text("Loosening constraints for foo") == [
            "loosening",
            "constraints",
            "for",
            "foo",
        ]

    def test_embedded_identifiers(self):
        tokens = tokenize_text("optimize fooBar handler")
        assert "foo" in tokens and "bar" in tokens


class TestCharNgrams:
    def test_paper_gram_lengths(self):
        grams = char_ngrams("abcd")
        assert "ab" in grams and "abc" in grams
        assert "abcd" not in grams

    def test_counts(self):
        grams = char_ngrams("abcd", n_values=(2,))
        assert grams == ["ab", "bc", "cd"]

    def test_short_text(self):
        assert char_ngrams("a", n_values=(2, 3)) == []

    def test_invalid_n_raises(self):
        with pytest.raises(ValueError):
            char_ngrams("abc", n_values=(0,))


class TestTfidfVectorizer:
    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            TfidfVectorizer().transform("hello")

    def test_vectors_l2_normalized(self):
        v = TfidfVectorizer().fit(["alpha beta", "beta gamma"])
        assert np.linalg.norm(v.transform("alpha beta")) == pytest.approx(1.0)

    def test_rare_token_weighs_more(self):
        corpus = ["common rare", "common other", "common thing"]
        v = TfidfVectorizer().fit(corpus)
        vec = v.transform("common rare")
        rare_weight = vec[v.vocabulary["rare"]]
        common_weight = vec[v.vocabulary["common"]]
        assert rare_weight > common_weight

    def test_oov_ignored(self):
        v = TfidfVectorizer().fit(["alpha"])
        vec = v.transform("completely unknown words")
        assert np.allclose(vec, 0.0)

    def test_fit_transform_shape(self):
        matrix = TfidfVectorizer().fit_transform(["a b", "b c", "c d"])
        assert matrix.shape[0] == 3


class TestNgramTfidf:
    def test_similar_ids_close_features(self):
        corpus = ["svc.render_feed.gcpu", "svc.render_feed.latency", "db.query.gcpu"]
        v = NgramTfidfVectorizer().fit(corpus)
        f_same1 = v.metric_id_feature("svc.render_feed.gcpu")
        f_same2 = v.metric_id_feature("svc.render_feed.latency")
        f_diff = v.metric_id_feature("db.query.gcpu")
        assert abs(f_same1 - f_same2) < abs(f_same1 - f_diff)

    def test_deterministic(self):
        v = NgramTfidfVectorizer().fit(["x.gcpu", "y.gcpu"])
        assert v.metric_id_feature("x.gcpu") == v.metric_id_feature("x.gcpu")


class TestCosineSimilarity:
    def test_identical(self):
        assert cosine_similarity([1.0, 2.0], [1.0, 2.0]) == pytest.approx(1.0)

    def test_orthogonal(self):
        assert cosine_similarity([1.0, 0.0], [0.0, 1.0]) == 0.0

    def test_zero_vector(self):
        assert cosine_similarity([0.0, 0.0], [1.0, 1.0]) == 0.0

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            cosine_similarity([1.0], [1.0, 2.0])


class TestTextCosineSimilarity:
    def test_identical_texts(self):
        assert text_cosine_similarity("foo bar", "foo bar") == pytest.approx(1.0)

    def test_disjoint_texts(self):
        assert text_cosine_similarity("alpha beta", "gamma delta") == 0.0

    def test_partial_overlap_between(self):
        similarity = text_cosine_similarity("loosening constraints for foo", "tighten foo")
        assert 0.0 < similarity < 1.0

    def test_prefitted_vectorizer(self):
        v = TfidfVectorizer().fit(["alpha beta gamma", "beta gamma delta"])
        assert text_cosine_similarity("alpha beta", "beta delta", vectorizer=v) > 0.0
