"""Tests for repro.stats.theil_sen."""

import numpy as np
import pytest

from repro.stats.theil_sen import theil_sen


class TestTheilSen:
    def test_exact_line(self):
        fit = theil_sen(2.0 * np.arange(30) + 5.0)
        assert fit.slope == pytest.approx(2.0)
        assert fit.intercept == pytest.approx(5.0)

    def test_robust_to_outliers(self):
        y = 1.0 * np.arange(50) + 3.0
        y[[5, 17, 33]] = 1000.0  # 6% outliers
        fit = theil_sen(y)
        assert fit.slope == pytest.approx(1.0, abs=0.05)

    def test_flat_series(self):
        fit = theil_sen(np.full(20, 4.0))
        assert fit.slope == 0.0
        assert fit.intercept == pytest.approx(4.0)

    def test_custom_x(self):
        x = np.array([0.0, 2.0, 4.0, 6.0])
        y = 3.0 * x + 1.0
        fit = theil_sen(y, x=x)
        assert fit.slope == pytest.approx(3.0)

    def test_predict(self):
        fit = theil_sen(2.0 * np.arange(10))
        assert np.allclose(fit.predict([0, 5]), [0.0, 10.0])

    def test_too_few_points_raises(self):
        with pytest.raises(ValueError):
            theil_sen([1.0])

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            theil_sen([1.0, 2.0], x=[0.0])

    def test_duplicate_x_values(self):
        # All pairwise dx zero -> slope 0, intercept = median(y).
        fit = theil_sen([1.0, 5.0, 9.0], x=[2.0, 2.0, 2.0])
        assert fit.slope == 0.0
        assert fit.intercept == pytest.approx(5.0)

    def test_long_series_subsampling_deterministic(self):
        y = 0.5 * np.arange(1500) + np.sin(np.arange(1500))
        fit1 = theil_sen(y)
        fit2 = theil_sen(y)
        assert fit1.slope == fit2.slope
        assert fit1.slope == pytest.approx(0.5, abs=0.05)
