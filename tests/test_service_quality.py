"""End-to-end tests for the data-quality admission layer in the service.

The acceptance drill from the ISSUE: a fleet stream damaged with
reordering, gaps, NaN bursts, and a counter rollover must produce
**byte-identical** incident reports to the clean run (no false alerts,
no missed regressions), with the quarantined counts visible on
``/quality`` and preserved across checkpoint/restore under parallel
(``workers=4``) shard advances.
"""

import json
import math
import urllib.request

import numpy as np
import pytest

from repro.config import DetectionConfig
from repro.fleet import DirtyDataSpec, dirty_stream
from repro.obs import ObservabilityServer
from repro.runtime import CollectingSink
from repro.service import BackpressurePolicy, Sample, StreamingDetectionService
from repro.tsdb import WindowSpec

N_TICKS = 1_100
INTERVAL = 60.0
CHANGE_TICK = 700
REGRESS_INDEX = 3
SERIES = [f"svc.sub{i}.gcpu" for i in range(8)]
COUNTER = "svc.requests.count"
N_SHARDS = 4
ROUND_TICKS = 200


def small_config():
    return DetectionConfig(
        name="quality",
        threshold=0.00005,
        rerun_interval=6_000.0,
        windows=WindowSpec(historic=36_000.0, analysis=12_000.0, extended=6_000.0),
        long_term=False,
    )


def make_stream(seed=7):
    rng = np.random.default_rng(seed)
    table = {}
    for index, name in enumerate(SERIES):
        values = rng.normal(0.001, 0.00002, N_TICKS)
        if index == REGRESS_INDEX:
            values[CHANGE_TICK:] += 0.0003
        table[name] = values
    samples = []
    for tick in range(N_TICKS):
        for name in SERIES:
            samples.append(
                Sample(name, tick * INTERVAL, float(table[name][tick]),
                       {"metric": "gcpu"})
            )
        # Integer-valued cumulative counter: admission's rollover
        # rebasing reconstructs it bit-exactly.
        samples.append(
            Sample(COUNTER, tick * INTERVAL, float(7 * tick),
                   {"metric": "requests", "type": "counter"})
        )
    return samples


def dirty_spec():
    # 9 series, one sample each per tick: a shuffle block of 3 ticks
    # displaces each series by <= 3 positions (reorder window is 16).
    return DirtyDataSpec(
        seed=5,
        reorder_block=3 * (len(SERIES) + 1),
        nan_series=(SERIES[0], SERIES[REGRESS_INDEX]),
        gap_series=(SERIES[1], SERIES[2]),
        gap_fraction=0.05,
        rollover_series=(COUNTER,),
    )


def make_service(sink, workers=4):
    service = StreamingDetectionService(
        n_shards=N_SHARDS,
        workers=workers,
        sinks=[sink],
        queue_capacity=2**14,
        backpressure=BackpressurePolicy.BLOCK,
        batch_size=128,
    )
    service.register_monitor(
        "gcpu", small_config(), series_filter={"metric": "gcpu"}
    )
    return service


def drive(service, samples):
    """Ingest/advance in timestamp rounds.

    Rounds are cut by *timestamp*, not stream position, so the clean
    and dirty runs advance (and therefore scan) at identical instants
    with identical data visible — delivery order within a round is
    whatever the stream says it is.
    """
    span = ROUND_TICKS * INTERVAL
    rounds = int(math.ceil(N_TICKS / ROUND_TICKS))
    for index in range(rounds):
        begin, end = index * span, (index + 1) * span
        batch = [s for s in samples if begin <= s.timestamp < end]
        service.ingest_many(batch)
        service.advance_to(end)
    service.flush()
    return rounds * span


def report_bytes(reports):
    return json.dumps([r.to_dict() for r in reports], sort_keys=True)


def tsdb_state(service):
    state = {}
    for shard_id in range(service.n_shards):
        for series in service.shard_database(shard_id):
            state[series.name] = (
                series.timestamps.tolist(), series.values.tolist()
            )
    return state


@pytest.fixture(scope="module")
def clean_run():
    samples = make_stream()
    sink = CollectingSink()
    service = make_service(sink)
    try:
        drive(service, samples)
        assert [r.metric_id for r in sink.reports] == [SERIES[REGRESS_INDEX]]
        quality = service.quality_snapshot()
        assert quality["enabled"]
        # Clean data: admission is transparent.
        assert quality["quarantined_points"] == 0
        assert quality["counters"]["repaired"] == 0
        assert quality["counters"]["counter_resets"] == 0
        return samples, report_bytes(sink.reports), tsdb_state(service)
    finally:
        service.close()


class TestDirtyDataDrill:
    def test_dirty_run_is_byte_identical_to_clean(self, clean_run):
        samples, reference, clean_tsdb = clean_run
        spec = dirty_spec()
        dirty = dirty_stream(samples, spec)
        assert dirty != samples
        sink = CollectingSink()
        service = make_service(sink)
        try:
            drive(service, dirty)

            # No false alerts, no missed regressions — byte-identical.
            assert report_bytes(sink.reports) == reference

            # The TSDB itself is reconstructed exactly for every series
            # that did not genuinely lose points.
            dirty_tsdb = tsdb_state(service)
            for name, arrays in clean_tsdb.items():
                if name in spec.gap_series:
                    continue
                assert dirty_tsdb[name] == arrays, name

            # The damage actually happened and was absorbed.
            quality = service.quality_snapshot()
            counters = quality["counters"]
            n_nans = sum(1 for s in dirty if s.value != s.value)
            assert n_nans > 0
            assert quality["quarantined_points"] == n_nans
            assert counters["counter_resets"] == 1
            assert counters["reordered"] > 0
            assert counters["duplicates"] == 0

            # Gap series lost points but stayed below the alert surface.
            for name in spec.gap_series:
                assert len(dirty_tsdb[name][0]) < len(clean_tsdb[name][0])
        finally:
            service.close()


class TestQualityEndpoint:
    def test_quarantines_visible_over_http(self):
        sink = CollectingSink()
        service = make_service(sink, workers=1)
        try:
            for tick in range(20):
                service.ingest(SERIES[0], tick * INTERVAL, 0.001,
                               {"metric": "gcpu"})
            for tick in range(3):
                service.ingest(SERIES[0], (20 + tick) * INTERVAL, math.nan,
                               {"metric": "gcpu"})
            with ObservabilityServer(service) as server:
                with urllib.request.urlopen(
                    server.url + "/quality", timeout=5.0
                ) as response:
                    payload = json.loads(response.read())
            assert payload["enabled"]
            assert payload["quarantined_points"] == 3
            shard = next(
                s for s in payload["shards"]
                if s["quarantine"]["total"] == 3
            )
            offender = shard["quarantine"]["series"][SERIES[0]]
            assert offender["reasons"] == {"not_finite": 3}
            assert shard["scores"][SERIES[0]] == pytest.approx(20 / 23)
        finally:
            service.close()

    def test_disabled_quality_reports_disabled(self):
        sink = CollectingSink()
        service = StreamingDetectionService(
            n_shards=1, sinks=[sink], quality=None
        )
        try:
            assert service.quality_snapshot() == {
                "enabled": False,
                "counters": {},
                "quarantined_points": 0,
                "stale_series": [],
                "shards": [],
            }
        finally:
            service.close()


class TestCheckpointRestore:
    def test_quarantine_survives_checkpoint_restore_parallel(self, tmp_path):
        """Quarantine state and admission counters ride the checkpoint,
        with parallel (workers=4) advances in between."""
        samples = make_stream()[: 9 * 400]
        spec = dirty_spec()
        dirty = dirty_stream(samples, spec)
        sink = CollectingSink()
        service = make_service(sink, workers=4)
        ckpt = str(tmp_path / "ckpt")
        try:
            service.ingest_many(dirty)
            service.advance_to(400 * INTERVAL)
            before = service.quality_snapshot()
            assert before["quarantined_points"] > 0
            service.checkpoint(ckpt)
        finally:
            service.close()

        restored = StreamingDetectionService.restore(
            ckpt, sinks=[CollectingSink()], workers=4
        )
        try:
            after = restored.quality_snapshot()
            assert after["enabled"]
            assert after["counters"] == before["counters"]
            assert after["quarantined_points"] == before["quarantined_points"]
            shard_quarantines = {
                shard["shard"]: shard["quarantine"]["series"]
                for shard in before["shards"]
            }
            for shard in after["shards"]:
                assert shard["quarantine"]["series"] == (
                    shard_quarantines[shard["shard"]]
                )
            # The restored admission layer is live, not a fossil.
            restored.ingest(SERIES[0], 500 * INTERVAL, math.nan,
                            {"metric": "gcpu"})
            assert (
                restored.quality_snapshot()["quarantined_points"]
                == before["quarantined_points"] + 1
            )
        finally:
            restored.close()


class TestUnquarantine:
    def test_release_clears_series_and_records_event(self):
        sink = CollectingSink()
        service = make_service(sink, workers=1)
        try:
            for tick in range(4):
                service.ingest(SERIES[0], tick * INTERVAL, math.nan,
                               {"metric": "gcpu"})
            assert service.quality_snapshot()["quarantined_points"] == 4
            assert service.unquarantine(SERIES[0]) == 4
            assert service.quality_snapshot()["quarantined_points"] == 0
            counters = service.metrics.snapshot()["counters"]
            assert counters["quality.released"] == 4.0
            assert service.events.events(kind="series_unquarantined")
            assert service.unquarantine(SERIES[0]) == 0
        finally:
            service.close()


class TestPrometheusNaming:
    """ISSUE satellite: quality metrics follow the text-format naming
    conventions so /metrics stays parseable by the golden test."""

    def test_quality_counters_render_and_parse(self):
        sink = CollectingSink()
        service = make_service(sink, workers=1)
        try:
            service.ingest(SERIES[0], 0.0, math.nan, {"metric": "gcpu"})
            service.ingest(SERIES[0], INTERVAL, -1.0, {"metric": "gcpu"})
            text = service.render_metrics()
            assert "# TYPE quality_quarantined counter" in text
            assert "quality_quarantined_not_finite 1" in text
            assert "# TYPE quality_repaired counter" in text
            for line in text.splitlines():
                if line.startswith("# TYPE "):
                    _, _, name, kind = line.split(" ")
                    assert kind in ("counter", "gauge", "histogram")
                else:
                    name = line.split("{", 1)[0].split(" ", 1)[0]
                    float(line.rsplit(" ", 1)[1])  # value parses
                # Prometheus metric-name charset.
                assert name[0].isalpha() or name[0] == "_"
                assert all(c.isalnum() or c == "_" for c in name)
        finally:
            service.close()
