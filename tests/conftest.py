"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import DetectionConfig
from repro.tsdb import TimeSeriesDatabase, WindowSpec


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator."""
    return np.random.default_rng(1234)


@pytest.fixture
def step_series(rng) -> np.ndarray:
    """200 points stepping from mean 0 to mean 1 at index 100."""
    return np.concatenate([rng.normal(0, 0.5, 100), rng.normal(1, 0.5, 100)])


@pytest.fixture
def flat_series(rng) -> np.ndarray:
    """200 points of pure noise around 0."""
    return rng.normal(0, 0.5, 200)


@pytest.fixture
def small_config() -> DetectionConfig:
    """A config with laptop-scale windows (600/200/100 points at 60s)."""
    return DetectionConfig(
        name="test",
        threshold=0.00002,
        rerun_interval=3600.0,
        windows=WindowSpec(historic=36_000.0, analysis=12_000.0, extended=6_000.0),
    )


@pytest.fixture
def empty_db() -> TimeSeriesDatabase:
    return TimeSeriesDatabase()


def fill_series(db: TimeSeriesDatabase, name: str, values, interval: float = 60.0, tags=None):
    """Write ``values`` on a uniform grid starting at t=0."""
    series = db.create(name, tags or {})
    for i, value in enumerate(values):
        series.append(i * interval, float(value))
    return series
