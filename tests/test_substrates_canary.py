"""Tests for repro.substrates.canary."""

import numpy as np
import pytest

from repro.substrates.canary import CanaryAnalysis, compare_canary


class TestCanaryAnalysis:
    def test_detects_clear_regression(self, rng):
        control = rng.normal(100.0, 2.0, 200)
        canary = rng.normal(103.0, 2.0, 200)
        verdict = compare_canary(control, canary)
        assert verdict.regressed
        assert verdict.relative_delta == pytest.approx(0.03, abs=0.01)
        lo, hi = verdict.confidence_interval
        assert lo <= verdict.relative_delta <= hi

    def test_no_difference_no_regression(self, rng):
        control = rng.normal(100.0, 2.0, 200)
        canary = rng.normal(100.0, 2.0, 200)
        assert not compare_canary(control, canary).regressed

    def test_improvement_not_flagged(self, rng):
        control = rng.normal(100.0, 2.0, 200)
        canary = rng.normal(95.0, 2.0, 200)
        verdict = compare_canary(control, canary)
        assert not verdict.regressed
        assert verdict.relative_delta < 0

    def test_lower_is_worse_orientation(self, rng):
        control = rng.normal(1000.0, 10.0, 200)   # throughput
        canary = rng.normal(950.0, 10.0, 200)
        verdict = compare_canary(control, canary, higher_is_worse=False)
        assert verdict.regressed

    def test_min_relative_delta_guard(self, rng):
        # Statistically significant but operationally negligible.
        control = rng.normal(100.0, 0.1, 100_000)
        canary = rng.normal(100.01, 0.1, 100_000)
        analysis = CanaryAnalysis(min_relative_delta=0.005)
        assert not analysis.compare(control, canary).regressed

    def test_too_few_samples_raises(self):
        with pytest.raises(ValueError):
            compare_canary([1.0], [1.0, 2.0])

    def test_invalid_params_raise(self):
        with pytest.raises(ValueError):
            CanaryAnalysis(significance_level=0.0)
        with pytest.raises(ValueError):
            CanaryAnalysis(min_relative_delta=-0.1)

    def test_zero_control_mean(self):
        verdict = compare_canary([0.0, 0.0, 0.0], [1.0, 1.0, 1.1])
        assert verdict.relative_delta == float("inf")

    def test_corroborates_fbdetect_magnitude(self, rng):
        """The §6.2 workflow: a canary comparison recovers the same
        magnitude as the in-production regression."""
        injected = 0.02  # 2% regression
        control = rng.normal(50.0, 0.5, 500)
        canary = rng.normal(50.0 * (1 + injected), 0.5, 500)
        verdict = compare_canary(control, canary)
        assert verdict.regressed
        assert verdict.relative_delta == pytest.approx(injected, rel=0.2)
