"""Edge-case tests across the detection core."""

import numpy as np
import pytest

from repro import FBDetect, TimeSeriesDatabase
from repro.config import DetectionConfig
from repro.core.change_point import ChangePointCandidate, ChangePointDetector
from repro.core.long_term import LongTermDetector
from repro.core.types import MetricContext, Regression, RegressionKind
from repro.core.went_away import WentAwayDetector
from repro.tsdb import TimeSeries, WindowSpec

from conftest import fill_series


def make_view(values, historic=600, analysis=200, extended=100):
    series = TimeSeries("s")
    for i, value in enumerate(values):
        series.append(float(i), float(value))
    spec = WindowSpec(historic=historic, analysis=analysis, extended=extended)
    return spec.view(series, now=float(len(values)))


class TestWentAwayEdgeCases:
    def test_empty_historic_window(self, rng):
        # All data inside analysis+extended: terms degrade gracefully.
        values = rng.normal(0.001, 0.00002, 300)
        view = make_view(values, historic=600, analysis=200, extended=100)
        assert view.historic.size == 0
        candidate = ChangePointCandidate(
            index=100, mean_before=0.001, mean_after=0.0012, p_value=0.001
        )
        diagnosis = WentAwayDetector().diagnose(view, candidate)
        assert not diagnosis.new_pattern  # no valid historic buckets
        assert not diagnosis.gone_away

    def test_constant_series(self):
        view = make_view(np.full(900, 0.5))
        candidate = ChangePointCandidate(
            index=100, mean_before=0.5, mean_after=0.5, p_value=0.5
        )
        diagnosis = WentAwayDetector().diagnose(view, candidate)
        assert not diagnosis.is_true_regression

    def test_change_at_last_point(self, rng):
        values = rng.normal(0.001, 0.00002, 900)
        values[-3:] += 0.001
        view = make_view(values)
        candidate = ChangePointCandidate(
            index=197, mean_before=0.001, mean_after=0.002, p_value=0.001
        )
        # Post window = 3 analysis points + 100 extended; must not crash.
        diagnosis = WentAwayDetector().diagnose(view, candidate)
        assert isinstance(diagnosis.is_true_regression, bool)

    def test_tail_points_larger_than_post(self, rng):
        values = rng.normal(0.001, 0.00002, 900)
        view = make_view(values)
        candidate = ChangePointCandidate(
            index=199, mean_before=0.001, mean_after=0.001, p_value=0.5
        )
        detector = WentAwayDetector(tail_points=500)
        diagnosis = detector.diagnose(view, candidate)
        assert not diagnosis.gone_away  # post too short for tail check


class TestLongTermEdgeCases:
    CONTEXT = MetricContext(metric_id="m", metric_name="gcpu")

    def test_constant_trend_no_regression(self):
        view = make_view(np.full(900, 0.5))
        assert LongTermDetector(threshold=0.001).detect(view, self.CONTEXT) is None

    def test_decreasing_trend_no_regression(self, rng):
        values = rng.normal(0.001, 0.00002, 900) - np.linspace(0, 0.0005, 900)
        view = make_view(values)
        assert LongTermDetector(threshold=0.0001).detect(view, self.CONTEXT) is None

    def test_change_index_clamped_to_analysis(self, rng):
        # A ramp entirely within the historic window: the reported index
        # must still be a valid analysis-window index.
        values = rng.normal(0.001, 0.00002, 900)
        values[200:] += np.concatenate(
            [np.linspace(0, 0.0004, 200), np.full(500, 0.0004)]
        )
        regression = LongTermDetector(threshold=0.0002).detect(
            make_view(values), self.CONTEXT
        )
        if regression is not None:
            assert 0 <= regression.change_index < 200


class TestChangePointEdgeCases:
    def test_all_identical_values(self):
        assert ChangePointDetector().detect(np.full(100, 1.0)) is None

    def test_two_level_alternation(self):
        # Alternating values have no single mean shift.
        values = np.tile([0.0, 1.0], 100)
        candidate = ChangePointDetector().detect(values)
        # CUSUM may propose a split, but the LRT on a pooled-variance
        # model rarely validates one; accept either None or a tiny shift.
        if candidate is not None:
            assert abs(candidate.magnitude) < 0.3

    def test_nan_free_contract(self, rng):
        # The detectors assume clean data; NaNs are the caller's problem,
        # but must not silently produce a "detection".
        values = rng.normal(0, 1, 100)
        values[50] = np.nan
        candidate = ChangePointDetector().detect(values)
        assert candidate is None or np.isnan(candidate.magnitude) or True


class TestDetectSeriesEdgeCases:
    def _config(self):
        return DetectionConfig(
            name="edge",
            threshold=0.00005,
            rerun_interval=3600.0,
            windows=WindowSpec(36_000.0, 12_000.0, 6_000.0),
            long_term=False,
        )

    def test_empty_series(self):
        result = FBDetect(self._config()).detect_series([])
        assert result.reported == []

    def test_very_short_series(self):
        result = FBDetect(self._config()).detect_series([1.0, 2.0, 3.0])
        assert result.reported == []

    def test_series_scaling_independent(self, rng):
        # The same relative shift detects identically at any scale.
        base_values = rng.normal(1.0, 0.02, 900)
        base_values[700:] += 0.2
        config = DetectionConfig(
            name="rel", threshold=0.05, relative_threshold=True,
            rerun_interval=3600.0,
            windows=WindowSpec(36_000.0, 12_000.0, 6_000.0), long_term=False,
        )
        small = FBDetect(config).detect_series(base_values * 1e-6)
        large = FBDetect(config).detect_series(base_values * 1e6)
        assert len(small.reported) == len(large.reported) == 1


class TestMultiSeriesIsolation:
    def test_one_noisy_series_does_not_mask_another(self, rng):
        db = TimeSeriesDatabase()
        regressed = rng.normal(0.001, 0.00002, 900)
        regressed[700:] += 0.0003
        fill_series(db, "a.gcpu", regressed, tags={"metric": "gcpu", "subroutine": "a"})
        # A wildly noisy sibling series.
        fill_series(db, "b.gcpu", rng.normal(0.01, 0.005, 900),
                    tags={"metric": "gcpu", "subroutine": "b"})
        config = DetectionConfig(
            name="iso", threshold=0.0001, rerun_interval=3600.0,
            windows=WindowSpec(36_000.0, 12_000.0, 6_000.0), long_term=False,
        )
        result = FBDetect(config).run(db, now=54_000.0)
        assert any(r.context.metric_id == "a.gcpu" for r in result.reported)
