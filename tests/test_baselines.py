"""Tests for repro.baselines."""

import numpy as np
import pytest

from repro.baselines import (
    AdaptiveKernelDensityModel,
    ExtremeLowDensityModel,
    KSigmaModel,
    NaiveChangePointDetector,
    sweep_tradeoff,
)


def make_pairs(rng, n_pos=15, n_neg=15):
    positives, negatives = [], []
    for _ in range(n_pos):
        historic = rng.normal(0.001, 0.00002, 400)
        analysis = rng.normal(0.0013, 0.00002, 150)  # clear shift
        positives.append((historic, analysis))
    for _ in range(n_neg):
        historic = rng.normal(0.001, 0.00002, 400)
        analysis = rng.normal(0.001, 0.00002, 150)
        negatives.append((historic, analysis))
    return positives, negatives


class TestKSigma:
    def test_flags_shift(self, rng):
        h = rng.normal(0, 1, 300)
        a = rng.normal(3, 1, 100)
        assert KSigmaModel(2.0).is_anomalous(h, a)

    def test_passes_noise(self, rng):
        h = rng.normal(0, 1, 300)
        a = rng.normal(0, 1, 100)
        assert not KSigmaModel(2.0).is_anomalous(h, a)

    def test_empty_windows(self):
        assert not KSigmaModel(1.0).is_anomalous([], [1.0])

    def test_constant_historic(self):
        assert KSigmaModel(1.0).is_anomalous([1.0] * 10, [2.0] * 5)
        assert not KSigmaModel(1.0).is_anomalous([1.0] * 10, [1.0] * 5)


class TestKernelDensity:
    def test_flags_out_of_distribution(self, rng):
        h = rng.normal(0, 1, 200)
        a = rng.normal(6, 0.5, 50)
        assert AdaptiveKernelDensityModel(0.05).is_anomalous(h, a)

    def test_passes_in_distribution(self, rng):
        h = rng.normal(0, 1, 200)
        a = rng.normal(0, 1, 50)
        assert not AdaptiveKernelDensityModel(0.01).is_anomalous(h, a)

    def test_short_historic_no_flag(self):
        assert not AdaptiveKernelDensityModel(0.05).is_anomalous([1.0, 2.0], [5.0])


class TestExtremeLowDensity:
    def test_flags_extreme_fraction(self, rng):
        h = rng.normal(0, 1, 500)
        a = np.full(50, 10.0)
        assert ExtremeLowDensityModel(0.5).is_anomalous(h, a)

    def test_passes_normal(self, rng):
        h = rng.normal(0, 1, 500)
        a = rng.normal(0, 1, 50)
        assert not ExtremeLowDensityModel(0.5).is_anomalous(h, a)


class TestSweepTradeoff:
    def test_monotone_tradeoff(self, rng):
        positives, negatives = make_pairs(rng)
        points = sweep_tradeoff(KSigmaModel, positives, negatives)
        fps = [p.false_positive_rate for p in points]
        fns = [p.false_negative_rate for p in points]
        # Raising sensitivity lowers FPs and raises (or keeps) FNs.
        assert fps == sorted(fps, reverse=True)
        assert fns == sorted(fns)

    def test_rates_in_unit_interval(self, rng):
        positives, negatives = make_pairs(rng)
        for model in (KSigmaModel, AdaptiveKernelDensityModel, ExtremeLowDensityModel):
            for point in sweep_tradeoff(model, positives, negatives):
                assert 0.0 <= point.false_positive_rate <= 1.0
                assert 0.0 <= point.false_negative_rate <= 1.0

    def test_empty_inputs(self):
        points = sweep_tradeoff(KSigmaModel, [], [])
        assert all(p.false_positive_rate == 0.0 for p in points)


class TestNaiveChangePoint:
    def test_flags_transients_unlike_fbdetect(self):
        # The naive baseline reports a recovered transient as a regression.
        rng = np.random.default_rng(5)
        analysis = rng.normal(0.001, 0.00002, 200)
        analysis[100:180] += 0.0004  # transient
        detector = NaiveChangePointDetector()
        assert detector.is_anomalous([], analysis)

    def test_detects_real_steps_too(self, rng):
        analysis = rng.normal(0.001, 0.00002, 200)
        analysis[100:] += 0.0004
        assert NaiveChangePointDetector().is_anomalous([], analysis)

    def test_rejects_flat(self, rng):
        assert not NaiveChangePointDetector(significance_level=1e-6).is_anomalous(
            [], rng.normal(0.001, 0.00002, 200)
        )
