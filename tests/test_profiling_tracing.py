"""Tests for repro.profiling.tracing (endpoint-level tracing)."""

import threading

import pytest

from repro.profiling.tracing import EndpointCostAggregator, Tracer
from repro.tsdb import TimeSeriesDatabase


class TestTracer:
    def test_basic_request_and_spans(self):
        tracer = Tracer()
        with tracer.request("/feed") as trace:
            with tracer.span("render", cpu_cost=0.5):
                with tracer.span("rank", cpu_cost=0.3):
                    pass
        assert len(tracer.completed) == 1
        assert trace.endpoint == "/feed"
        assert trace.total_cpu_cost == pytest.approx(0.8)
        names = sorted(span.name for span in trace.spans)
        assert names == ["rank", "render"]

    def test_parent_child_links(self):
        tracer = Tracer()
        with tracer.request("/x") as trace:
            with tracer.span("outer") as outer:
                with tracer.span("inner") as inner:
                    pass
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        assert [s.name for s in trace.children_of(outer.span_id)] == ["inner"]

    def test_span_outside_request_raises(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError, match="outside"):
            with tracer.span("orphan"):
                pass

    def test_cross_thread_spans_aggregate(self):
        tracer = Tracer()
        with tracer.request("/async") as trace:
            with tracer.span("dispatch", cpu_cost=0.1) as dispatch:
                def worker():
                    with tracer.span(
                        "background", cpu_cost=0.4, parent=dispatch, trace=trace
                    ):
                        pass

                thread = threading.Thread(target=worker)
                thread.start()
                thread.join()
        assert trace.total_cpu_cost == pytest.approx(0.5)
        assert trace.thread_count == 2
        background = next(s for s in trace.spans if s.name == "background")
        assert background.parent_id == dispatch.span_id

    def test_subtree_cost(self):
        tracer = Tracer()
        with tracer.request("/x") as trace:
            with tracer.span("a", cpu_cost=1.0) as a:
                with tracer.span("b", cpu_cost=2.0):
                    pass
            with tracer.span("c", cpu_cost=4.0):
                pass
        assert trace.subtree_cost(a.span_id) == pytest.approx(3.0)

    def test_subtree_cost_unknown_raises(self):
        tracer = Tracer()
        with tracer.request("/x") as trace:
            with tracer.span("a"):
                pass
        with pytest.raises(KeyError):
            trace.subtree_cost(999)

    def test_latency_spans_whole_request(self):
        times = iter([0.0, 1.0, 2.0, 5.0, 9.0])
        tracer = Tracer(clock=lambda: next(times))
        with tracer.request("/t") as trace:
            with tracer.span("a"):      # start 1.0, end 2.0
                pass
            with tracer.span("b"):      # start 5.0, end 9.0
                pass
        assert trace.end_to_end_latency == pytest.approx(8.0)

    def test_empty_trace(self):
        tracer = Tracer()
        with tracer.request("/empty") as trace:
            pass
        assert trace.total_cpu_cost == 0.0
        assert trace.end_to_end_latency == 0.0


class TestEndpointCostAggregator:
    def _traces(self, tracer, endpoint, costs):
        for cost in costs:
            with tracer.request(endpoint):
                with tracer.span("work", cpu_cost=cost):
                    pass

    def test_aggregation(self):
        tracer = Tracer()
        self._traces(tracer, "/feed", [1.0, 3.0])
        self._traces(tracer, "/profile", [2.0])
        db = TimeSeriesDatabase()
        written = EndpointCostAggregator(db, "svc").ingest(60.0, tracer.completed)
        assert written == 6
        cost = db.get("svc.endpoint.feed.cost")
        assert cost.values[0] == pytest.approx(2.0)
        requests = db.get("svc.endpoint.feed.requests")
        assert requests.values[0] == 2.0
        assert db.get("svc.endpoint.profile.cost").values[0] == pytest.approx(2.0)

    def test_tags_for_routing(self):
        tracer = Tracer()
        self._traces(tracer, "/feed", [1.0])
        db = TimeSeriesDatabase()
        EndpointCostAggregator(db, "svc").ingest(0.0, tracer.completed)
        series = db.get("svc.endpoint.feed.cost")
        assert series.tags["endpoint"] == "/feed"
        assert series.tags["metric"] == "endpoint_cost"

    def test_empty_ingest(self):
        db = TimeSeriesDatabase()
        assert EndpointCostAggregator(db, "svc").ingest(0.0, []) == 0

    def test_endpoint_regression_detectable(self):
        # Endpoint cost series built from traces feed the normal pipeline.
        import numpy as np

        from repro import FBDetect
        from repro.config import DetectionConfig
        from repro.tsdb import WindowSpec

        tracer = Tracer()
        db = TimeSeriesDatabase()
        aggregator = EndpointCostAggregator(db, "svc")
        rng = np.random.default_rng(0)
        for tick in range(900):
            base = 1.0 if tick < 700 else 1.2  # 20% endpoint regression
            self._traces(tracer, "/feed", [base + rng.normal(0, 0.02) for _ in range(5)])
            aggregator.ingest(tick * 60.0, tracer.completed)
            tracer.completed.clear()

        config = DetectionConfig(
            name="endpoint",
            threshold=0.05,
            rerun_interval=3600.0,
            windows=WindowSpec(36_000.0, 12_000.0, 6_000.0),
            long_term=False,
        )
        detector = FBDetect(config, series_filter={"metric": "endpoint_cost"})
        result = detector.run(db, now=900 * 60.0)
        assert len(result.reported) == 1
        assert result.reported[0].context.endpoint == "/feed"
