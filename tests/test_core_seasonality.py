"""Tests for repro.core.seasonality."""

import numpy as np
import pytest

from repro.core.change_point import ChangePointCandidate, ChangePointDetector
from repro.core.seasonality import SeasonalityDetector
from repro.core.types import FilterReason
from repro.tsdb import TimeSeries, WindowSpec


def make_view(values, historic=600, analysis=200, extended=100):
    series = TimeSeries("s")
    for i, value in enumerate(values):
        series.append(float(i), float(value))
    spec = WindowSpec(historic=historic, analysis=analysis, extended=extended)
    return spec.view(series, now=float(len(values)))


class TestSeasonalityDetector:
    def test_seasonal_rise_filtered(self):
        # A pure diurnal pattern: the rising edge of a cycle can look like
        # a regression; deseasonalizing reveals no shift.
        rng = np.random.default_rng(0)
        t = np.arange(900)
        # Phase chosen so the analysis window [700, 800) covers exactly
        # the rising half-cycle of a period-200 season; the historic
        # window holds 3.5 full cycles for the decomposition.
        values = 0.001 + 0.0003 * np.sin(np.pi * (t - 750) / 100) + rng.normal(0, 0.00002, 900)
        view = make_view(values, historic=700, analysis=100, extended=100)
        candidate = ChangePointDetector().detect_increase(view.analysis)
        assert candidate is not None
        verdict = SeasonalityDetector(known_period=200).check(view, candidate)
        assert not verdict.passed
        assert verdict.reason is FilterReason.SEASONALITY

    def test_real_regression_on_seasonal_series_kept(self):
        rng = np.random.default_rng(1)
        t = np.arange(900)
        values = 0.001 + 0.0001 * np.sin(2 * np.pi * t / 300) + rng.normal(0, 0.00002, 900)
        values[700:] += 0.0004  # genuine step on top of seasonality
        view = make_view(values)
        candidate = ChangePointDetector().detect_increase(view.analysis)
        assert candidate is not None
        verdict = SeasonalityDetector(known_period=300).check(view, candidate)
        assert verdict.passed

    def test_no_seasonality_keeps(self, rng):
        values = rng.normal(0.001, 0.00002, 900)
        values[700:] += 0.0002
        view = make_view(values)
        candidate = ChangePointDetector().detect_increase(view.analysis)
        verdict = SeasonalityDetector().check(view, candidate)
        # A step itself induces autocorrelation, so a spurious period may
        # be detected — but deseasonalizing must not erase the real shift.
        assert verdict.passed

    def test_autodetects_period(self):
        rng = np.random.default_rng(2)
        t = np.arange(900)
        values = 0.001 + 0.0003 * np.sin(2 * np.pi * t / 100) + rng.normal(0, 0.00001, 900)
        view = make_view(values)
        candidate = ChangePointCandidate(
            index=100, mean_before=0.001, mean_after=0.0012, p_value=0.001
        )
        detector = SeasonalityDetector()  # no known_period
        verdict = detector.check(view, candidate)
        assert not verdict.passed

    def test_zscore_none_when_too_short(self):
        detector = SeasonalityDetector()
        assert detector._zscore(np.zeros(5), 2, period=10) is None

    def test_zscore_none_for_bad_changepoint(self):
        detector = SeasonalityDetector()
        assert detector._zscore(np.zeros(100), 0, period=10) is None
