"""Per-sink fault isolation in report delivery (service and scheduler).

The regression these tests pin down: sink delivery used to run inline
with no isolation, so one raising sink aborted the delivery loop —
losing the report for every later sink — and a sufficiently broken sink
could fail the shard advance itself.  Delivery must be best-effort per
sink: a bad sink is counted and logged, every other sink still gets the
report, and the advance returns normally.
"""

import numpy as np
import pytest

from repro.config import DetectionConfig
from repro.reporting import build_report
from repro.runtime import CollectingSink, DetectionScheduler, JsonLinesSink
from repro.service import BackpressurePolicy, Sample, StreamingDetectionService
from repro.tsdb import TimeSeriesDatabase, WindowSpec

from conftest import fill_series
from test_reporting import make_regression

N_SERIES = 8
INTERVAL = 60.0
TICKS = 1000


class RaisingSink:
    """Fails every delivery; optionally also fails close()."""

    def __init__(self, fail_close=False):
        self.fail_close = fail_close
        self.attempts = 0
        self.closed = False

    def deliver(self, report):
        self.attempts += 1
        raise RuntimeError("sink exploded")

    def close(self):
        self.closed = True
        if self.fail_close:
            raise RuntimeError("close exploded")


def scan_config():
    return DetectionConfig(
        name="sinks-test", threshold=0.00005, rerun_interval=6_000.0,
        windows=WindowSpec(36_000.0, 12_000.0, 6_000.0), long_term=False,
    )


def run_service(sinks):
    """One deterministic run with a planted regression; returns
    (delivered report keys, the service's final metrics counters)."""
    service = StreamingDetectionService(
        n_shards=2, sinks=sinks, queue_capacity=1 << 16,
        backpressure=BackpressurePolicy.BLOCK, batch_size=1024,
    )
    service.register_monitor(
        "gcpu", scan_config(), series_filter={"metric": "gcpu"}
    )
    rng = np.random.default_rng(17)
    for index in range(N_SERIES):
        values = rng.normal(0.001, 0.00002, TICKS)
        if index == 2:
            values[700:] += 0.0004  # the planted regression
        service.ingest_many(
            [
                Sample(f"svc.sub{index}.gcpu", tick * INTERVAL,
                       float(values[tick]), {"metric": "gcpu"})
                for tick in range(TICKS)
            ]
        )
    reports = service.advance_to(TICKS * INTERVAL)
    counters = service.metrics.snapshot()["counters"]
    service.close()
    keys = [(r.metric_id, r.change_time) for r in reports]
    return keys, counters


class TestServiceSinkIsolation:
    def test_raising_sink_does_not_change_delivery(self):
        """The failing-sink run delivers the same report set."""
        baseline_keys, _ = run_service([CollectingSink()])
        assert baseline_keys  # the planted regression is caught

        collecting = CollectingSink()
        raising = RaisingSink()
        keys, counters = run_service([raising, collecting])

        assert keys == baseline_keys
        assert [(r.metric_id, r.change_time) for r in collecting.reports] \
            == baseline_keys
        assert raising.attempts == len(baseline_keys)
        assert counters["service.sinks.errors"] == len(baseline_keys)
        assert counters["service.sinks.delivered"] == len(baseline_keys)

    def test_sink_order_does_not_matter(self):
        collecting = CollectingSink()
        keys, counters = run_service([collecting, RaisingSink()])
        assert [(r.metric_id, r.change_time) for r in collecting.reports] \
            == keys
        assert counters["service.sinks.errors"] >= 1

    def test_sink_error_recorded_on_event_log(self):
        service = StreamingDetectionService(
            n_shards=1, sinks=[RaisingSink()], queue_capacity=64,
            backpressure=BackpressurePolicy.BLOCK, batch_size=8,
        )
        service._deliver_to_sinks(build_report(make_regression()))
        events = service.events.events("sink_error")
        assert len(events) == 1
        assert events[0].fields["sink"] == "RaisingSink"
        counters = service.metrics.snapshot()["counters"]
        assert counters["service.sinks.errors"] == 1
        service.close()

    def test_close_isolates_sink_failures(self):
        bad = RaisingSink(fail_close=True)
        good = RaisingSink(fail_close=False)
        service = StreamingDetectionService(
            n_shards=1, sinks=[bad, good], queue_capacity=64,
            backpressure=BackpressurePolicy.BLOCK, batch_size=8,
        )
        service.close()  # must not raise
        assert bad.closed and good.closed


class TestSchedulerSinkIsolation:
    def test_raising_sink_does_not_starve_later_sinks(self, rng, tmp_path):
        db = TimeSeriesDatabase()
        values = rng.normal(0.001, 0.00002, 1100)
        values[700:] += 0.0002
        fill_series(db, "svc.sub.gcpu", values,
                    tags={"service": "svc", "subroutine": "sub",
                          "metric": "gcpu"})
        path = tmp_path / "incidents.jsonl"
        raising = RaisingSink()
        scheduler = DetectionScheduler(
            db, sinks=[raising, JsonLinesSink(str(path))]
        )
        scheduler.register("svc", scan_config())
        scheduler.advance_to(66_000.0)
        assert raising.attempts == 1
        # The sink after the raising one still received the report.
        assert len(path.read_text().strip().splitlines()) == 1


class TestJsonLinesSinkHandle:
    def test_path_mode_holds_one_handle(self, tmp_path):
        path = tmp_path / "incidents.jsonl"
        sink = JsonLinesSink(str(path))
        sink.deliver(build_report(make_regression()))
        first_stream = sink._stream
        assert first_stream is not None
        sink.deliver(build_report(make_regression()))
        assert sink._stream is first_stream  # no reopen per report
        sink.close()
        assert len(path.read_text().strip().splitlines()) == 2

    def test_write_failure_reopens_on_next_delivery(self, tmp_path):
        path = tmp_path / "incidents.jsonl"
        sink = JsonLinesSink(str(path))
        sink.deliver(build_report(make_regression()))
        sink._stream.close()  # simulate the fd dying under the sink
        with pytest.raises(ValueError):
            sink.deliver(build_report(make_regression()))
        # The dead handle was dropped; delivery recovers on a fresh one.
        sink.deliver(build_report(make_regression()))
        sink.close()
        assert len(path.read_text().strip().splitlines()) == 2

    def test_close_leaves_caller_owned_streams_open(self):
        import io

        stream = io.StringIO()
        sink = JsonLinesSink(stream)
        sink.deliver(build_report(make_regression()))
        sink.close()
        assert not stream.closed  # caller owns it, caller closes it

    def test_close_idempotent(self, tmp_path):
        sink = JsonLinesSink(str(tmp_path / "x.jsonl"))
        sink.deliver(build_report(make_regression()))
        sink.close()
        sink.close()
