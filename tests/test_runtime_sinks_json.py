"""Tests for JSON report serialization and the JsonLinesSink."""

import io
import json

import numpy as np
import pytest

from repro.config import DetectionConfig
from repro.runtime import DetectionScheduler, JsonLinesSink
from repro.tsdb import TimeSeriesDatabase, WindowSpec

from conftest import fill_series
from test_reporting import make_regression

from repro.reporting import build_report


class TestToDict:
    def test_roundtrips_through_json(self):
        report = build_report(make_regression())
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["metric_id"] == "svc.sub.gcpu"
        assert payload["magnitude"] == pytest.approx(0.0002)
        assert payload["detection_latency"] == pytest.approx(200.0)
        assert payload["root_causes"][0]["change_id"] == "abc123"
        assert isinstance(payload["audit_trail"], list)


class TestJsonLinesSink:
    def test_writes_to_stream(self):
        stream = io.StringIO()
        sink = JsonLinesSink(stream)
        sink.deliver(build_report(make_regression()))
        sink.deliver(build_report(make_regression()))
        lines = stream.getvalue().strip().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0])["service"] == "svc"

    def test_writes_to_path(self, tmp_path):
        path = tmp_path / "incidents.jsonl"
        sink = JsonLinesSink(str(path))
        sink.deliver(build_report(make_regression()))
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["kind"] == "short_term"

    def test_scheduler_integration(self, rng, tmp_path):
        db = TimeSeriesDatabase()
        values = rng.normal(0.001, 0.00002, 1100)
        values[700:] += 0.0002
        fill_series(db, "svc.sub.gcpu", values,
                    tags={"service": "svc", "subroutine": "sub", "metric": "gcpu"})
        path = tmp_path / "incidents.jsonl"
        scheduler = DetectionScheduler(db, sinks=[JsonLinesSink(str(path))])
        scheduler.register(
            "svc",
            DetectionConfig(
                name="svc", threshold=0.00005, rerun_interval=6_000.0,
                windows=WindowSpec(36_000.0, 12_000.0, 6_000.0), long_term=False,
            ),
        )
        scheduler.advance_to(60_000.0)
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 1
        payload = json.loads(lines[0])
        assert payload["metric_id"] == "svc.sub.gcpu"
