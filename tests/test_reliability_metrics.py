"""Coredump metric emission (§3) and site-reliability detection (§8).

The paper lists coredump count among monitored metrics and names "site
and hardware reliability" as a future application domain.  These tests
exercise both: the simulator emits coredump counts, and the unchanged
pipeline detects a persistent error-rate regression (a reliability
anomaly) just like a performance one.
"""

import numpy as np
import pytest

from repro import FBDetect, TimeSeriesDatabase
from repro.config import DetectionConfig
from repro.fleet import FleetSimulator, ServiceSpec
from repro.fleet.subroutine import CallGraph, SubroutineSpec
from repro.tsdb import WindowSpec

from conftest import fill_series


def tiny_graph():
    graph = CallGraph(root="_start")
    graph.add(SubroutineSpec("svc::M::run", self_cost=1.0, parent="_start"))
    return graph


class TestCoredumpMetric:
    def test_emitted_with_tags(self):
        spec = ServiceSpec("svc", tiny_graph(), n_servers=20, effective_samples=10_000,
                           samples_per_interval=0)
        result = FleetSimulator(spec, interval=60.0, seed=0).run(20)
        series = result.database.get("svc.coredumps")
        assert series is not None
        assert series.tags == {"service": "svc", "metric": "coredumps"}
        assert len(series) == 20

    def test_counts_are_nonnegative_integers(self):
        spec = ServiceSpec("svc", tiny_graph(), n_servers=20, effective_samples=10_000,
                           samples_per_interval=0, base_error_rate=0.05)
        result = FleetSimulator(spec, interval=60.0, seed=1).run(50)
        values = result.database.get("svc.coredumps").values
        assert np.all(values >= 0)
        assert np.all(values == np.round(values))

    def test_rate_scales_with_error_rate(self):
        quiet_spec = ServiceSpec("q", tiny_graph(), n_servers=50, effective_samples=10_000,
                                 samples_per_interval=0, base_error_rate=0.001)
        crashy_spec = ServiceSpec("c", tiny_graph(), n_servers=50, effective_samples=10_000,
                                  samples_per_interval=0, base_error_rate=0.1)
        quiet = FleetSimulator(quiet_spec, interval=60.0, seed=2).run(100)
        crashy = FleetSimulator(crashy_spec, interval=60.0, seed=2).run(100)
        assert (
            crashy.database.get("c.coredumps").values.mean()
            > quiet.database.get("q.coredumps").values.mean()
        )


class TestReliabilityAnomalyDetection:
    def test_error_rate_regression_detected(self, rng):
        """§8's new-domain claim holds: the pipeline is metric-agnostic."""
        db = TimeSeriesDatabase()
        values = rng.normal(0.001, 0.0001, 900)
        values[700:] *= 6.0  # error rate sextuples after a bad change
        fill_series(db, "svc.error_rate", np.maximum(values, 0.0),
                    tags={"service": "svc", "metric": "error_rate"})
        config = DetectionConfig(
            name="reliability",
            threshold=0.5,
            relative_threshold=True,
            rerun_interval=3600.0,
            windows=WindowSpec(36_000.0, 12_000.0, 6_000.0),
            long_term=False,
        )
        detector = FBDetect(config, series_filter={"metric": "error_rate"})
        result = detector.run(db, now=54_000.0)
        assert len(result.reported) == 1
        assert result.reported[0].relative_magnitude > 0.5

    def test_transient_error_burst_filtered(self):
        rng = np.random.default_rng(6)
        db = TimeSeriesDatabase()
        values = rng.normal(0.001, 0.0001, 900)
        values[700:780] *= 6.0  # burst recovers
        fill_series(db, "svc.error_rate", np.maximum(values, 0.0),
                    tags={"service": "svc", "metric": "error_rate"})
        config = DetectionConfig(
            name="reliability",
            threshold=0.5,
            relative_threshold=True,
            rerun_interval=3600.0,
            windows=WindowSpec(36_000.0, 12_000.0, 6_000.0),
            long_term=False,
        )
        detector = FBDetect(config, series_filter={"metric": "error_rate"})
        result = detector.run(db, now=54_000.0)
        assert result.reported == []
