"""Tests for the buffered, retried, deduplicated webhook sink."""

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import pytest

from repro.connectors import WebhookSink, alert_id, slack_payload
from repro.obs.logging import correlation_id
from repro.reporting import build_report

from test_reporting import make_regression


class FlakyEndpoint:
    """In-process webhook endpoint that fails the first ``fail_first``
    requests (HTTP 503) and records the bodies of accepted ones."""

    def __init__(self, fail_first=0):
        self.fail_first = fail_first
        self.requests = 0
        self.accepted = []
        self._lock = threading.Lock()
        endpoint = self

        class Handler(BaseHTTPRequestHandler):
            def do_POST(self):
                body = self.rfile.read(
                    int(self.headers.get("Content-Length", 0))
                )
                with endpoint._lock:
                    endpoint.requests += 1
                    fail = endpoint.requests <= endpoint.fail_first
                    if not fail:
                        endpoint.accepted.append(json.loads(body))
                self.send_response(503 if fail else 200)
                self.send_header("Content-Length", "2")
                self.end_headers()
                self.wfile.write(b"ok")

            def log_message(self, *args):
                pass

        self._server = ThreadingHTTPServer(("127.0.0.1", 0), Handler)
        self._thread = threading.Thread(
            target=self._server.serve_forever, daemon=True
        )
        self._thread.start()
        self.url = f"http://127.0.0.1:{self._server.server_address[1]}/hook"

    def close(self):
        self._server.shutdown()
        self._server.server_close()


@pytest.fixture
def report():
    return build_report(make_regression())


class TestPayload:
    def test_golden_slack_shape(self, report):
        payload = slack_payload(report)
        expected_id = correlation_id(
            "svc.sub.gcpu", 700.0, prefix="alert"
        )
        assert payload == {
            "text": "Performance regression in svc.sub.gcpu: +20.00% vs baseline",
            "attachments": [
                {
                    "color": "#c0392b",
                    "title": "Performance regression in svc.sub.gcpu",
                    "fields": [
                        {"title": "Service", "value": "svc", "short": True},
                        {"title": "Path", "value": "short_term", "short": True},
                        {"title": "Magnitude",
                         "value": "+0.0002 (+20.00% of baseline 0.001)",
                         "short": False},
                        {"title": "Change began", "value": "t=700s",
                         "short": True},
                        {"title": "Detection latency", "value": "200s",
                         "short": True},
                        {"title": "Top root-cause candidate",
                         "value": "abc123", "short": False},
                    ],
                    "footer": expected_id,
                    "ts": 900,
                }
            ],
        }

    def test_alert_id_matches_service_correlation_scheme(self, report):
        assert alert_id(report) == correlation_id(
            report.metric_id, report.change_time, prefix="alert"
        )
        assert alert_id(report).startswith("alert-")


class TestDelivery:
    def test_delivers_to_live_endpoint(self, report):
        endpoint = FlakyEndpoint()
        try:
            sink = WebhookSink(endpoint.url)
            sink.deliver(report)
            assert sink.flush(timeout=5.0)
            sink.close()
        finally:
            endpoint.close()
        assert sink.counters["delivered"] == 1
        assert endpoint.accepted[0]["attachments"][0]["footer"] == alert_id(report)

    def test_retries_until_endpoint_recovers(self, report):
        endpoint = FlakyEndpoint(fail_first=2)
        try:
            sink = WebhookSink(
                endpoint.url, max_retries=4, backoff=0.01, backoff_cap=0.05
            )
            sink.deliver(report)
            assert sink.flush(timeout=10.0)
            sink.close()
        finally:
            endpoint.close()
        assert sink.counters["retries"] == 2
        assert sink.counters["delivered"] == 1
        assert sink.counters["failed"] == 0
        assert len(endpoint.accepted) == 1  # delivered exactly once

    def test_gives_up_after_max_retries(self, report):
        endpoint = FlakyEndpoint(fail_first=10**6)
        try:
            sink = WebhookSink(
                endpoint.url, max_retries=2, backoff=0.01, backoff_cap=0.02
            )
            sink.deliver(report)
            sink.flush(timeout=10.0)
            sink.close()
        finally:
            endpoint.close()
        assert sink.counters["failed"] == 1
        assert sink.counters["retries"] == 2
        assert sink.counters["delivered"] == 0

    def test_dead_endpoint_never_raises_into_caller(self, report):
        # Port 9 (discard) is never bound: connection refused instantly.
        sink = WebhookSink(
            "http://127.0.0.1:9/hook", timeout=0.2,
            max_retries=1, backoff=0.01,
        )
        sink.deliver(report)  # must not raise, must not block
        sink.close(timeout=5.0)
        assert sink.counters["enqueued"] == 1
        assert sink.counters["failed"] == 1

    def test_dedup_on_alert_id(self, report):
        endpoint = FlakyEndpoint()
        try:
            sink = WebhookSink(endpoint.url)
            sink.deliver(report)
            sink.deliver(report)  # same (metric, change time)
            assert sink.flush(timeout=5.0)
            sink.close()
        finally:
            endpoint.close()
        assert sink.counters["enqueued"] == 1
        assert sink.counters["deduped"] == 1
        assert len(endpoint.accepted) == 1

    def test_queue_overflow_evicts_oldest(self):
        import time

        gate = threading.Event()
        posted = []

        def poster(url, body, timeout):
            gate.wait(5.0)  # stall the drain so the queue backs up
            posted.append(json.loads(body))

        sink = WebhookSink("http://example.invalid/hook",
                           capacity=2, poster=poster)
        reports = []
        for change_time in (100.0, 200.0, 300.0, 400.0):
            regression = make_regression()
            regression.change_time = change_time
            reports.append(build_report(regression))

        sink.deliver(reports[0])
        for _ in range(500):  # wait until the drain thread holds it
            if sink.pending and not sink._queue:
                break
            time.sleep(0.01)
        sink.deliver(reports[1])
        sink.deliver(reports[2])
        sink.deliver(reports[3])  # overflows: reports[1] (oldest) evicted
        assert sink.counters["evicted"] == 1
        gate.set()
        assert sink.flush(timeout=5.0)
        sink.close()
        footers = [p["attachments"][0]["footer"] for p in posted]
        assert footers == [alert_id(reports[0]), alert_id(reports[2]),
                           alert_id(reports[3])]

    def test_metrics_mirrored_to_registry(self, report):
        from repro.service.metrics import MetricsRegistry

        registry = MetricsRegistry()
        endpoint = FlakyEndpoint()
        try:
            sink = WebhookSink(endpoint.url, metrics=registry)
            sink.deliver(report)
            assert sink.flush(timeout=5.0)
            sink.close()
        finally:
            endpoint.close()
        counters = registry.snapshot()["counters"]
        assert counters["sink.webhook.enqueued"] == 1
        assert counters["sink.webhook.delivered"] == 1

    def test_close_on_dead_endpoint_is_bounded(self, report):
        import time

        sink = WebhookSink(
            "http://127.0.0.1:9/hook", timeout=0.2,
            max_retries=8, backoff=0.5, backoff_cap=5.0,
        )
        sink.deliver(report)
        started = time.monotonic()
        sink.close(timeout=0.5)
        # flush() gives up at its timeout and close() interrupts the
        # backoff ladder; a dead endpoint must not hang shutdown.
        assert time.monotonic() - started < 5.0
