"""Tests for repro.stats.autocorrelation."""

import numpy as np
import pytest

from repro.stats.autocorrelation import acf, detect_season_length, has_significant_seasonality


class TestAcf:
    def test_lag_zero_is_one(self, rng):
        result = acf(rng.normal(0, 1, 100))
        assert result[0] == pytest.approx(1.0)

    def test_periodic_series_peaks_at_period(self, rng):
        t = np.arange(300)
        y = np.sin(2 * np.pi * t / 25) + rng.normal(0, 0.1, 300)
        correlations = acf(y, max_lag=60)
        assert correlations[25] > 0.7

    def test_white_noise_low_correlations(self, rng):
        correlations = acf(rng.normal(0, 1, 2000), max_lag=20)
        assert np.all(np.abs(correlations[1:]) < 0.1)

    def test_constant_series(self):
        correlations = acf(np.full(50, 3.0), max_lag=10)
        assert correlations[0] == 1.0
        assert np.all(correlations[1:] == 0.0)

    def test_empty(self):
        assert acf([]).size == 0

    def test_max_lag_respected(self, rng):
        assert acf(rng.normal(0, 1, 100), max_lag=7).size == 8


class TestDetectSeasonLength:
    def test_finds_true_period(self, rng):
        t = np.arange(400)
        y = np.sin(2 * np.pi * t / 20) + rng.normal(0, 0.1, 400)
        assert detect_season_length(y) == 20

    def test_no_season_in_noise(self, rng):
        assert detect_season_length(rng.normal(0, 1, 300)) is None

    def test_no_season_in_trend(self):
        assert detect_season_length(np.arange(100, dtype=float), max_period=30) is None

    def test_short_series_none(self):
        assert detect_season_length([1.0, 2.0, 3.0]) is None

    def test_min_period_respected(self, rng):
        t = np.arange(400)
        y = np.sin(2 * np.pi * t / 5) + rng.normal(0, 0.05, 400)
        # Period 5 exists but we forbid periods below 10: harmonic at 10 ok.
        period = detect_season_length(y, min_period=10)
        assert period is None or period % 5 == 0


class TestHasSignificantSeasonality:
    def test_true_for_seasonal(self, rng):
        t = np.arange(300)
        y = np.sin(2 * np.pi * t / 30) + rng.normal(0, 0.1, 300)
        assert has_significant_seasonality(y)

    def test_false_for_noise(self, rng):
        assert not has_significant_seasonality(rng.normal(0, 1, 300))
