"""Tests for repro.stats.changepoint_dp."""

import numpy as np
import pytest

from repro.stats.changepoint_dp import (
    best_split_normal_loss,
    multi_split_normal_loss,
)


class TestBestSplit:
    def test_finds_step(self, step_series):
        result = best_split_normal_loss(step_series)
        assert abs(result.index - 100) <= 3

    def test_gain_positive_for_real_step(self, step_series):
        assert best_split_normal_loss(step_series).gain > 0

    def test_gain_small_for_noise(self, rng):
        noise = rng.normal(0, 1, 200)
        step = np.concatenate([rng.normal(0, 1, 100), rng.normal(5, 1, 100)])
        assert (
            best_split_normal_loss(noise).gain < best_split_normal_loss(step).gain
        )

    def test_too_short_none(self):
        assert best_split_normal_loss([1.0, 2.0, 3.0]) is None

    def test_loss_matches_manual_rss(self):
        x = np.array([0.0, 0.0, 0.0, 10.0, 10.0, 10.0])
        result = best_split_normal_loss(x, min_segment=2)
        assert result.index == 3
        assert result.loss == pytest.approx(0.0, abs=1e-9)

    def test_min_segment_respected(self):
        x = np.concatenate([np.zeros(3), np.ones(47)])
        result = best_split_normal_loss(x, min_segment=10)
        assert 10 <= result.index <= 40


class TestMultiSplit:
    def test_two_changepoints(self):
        x = np.concatenate([np.zeros(30), np.full(30, 5.0), np.full(30, 10.0)])
        splits = multi_split_normal_loss(x, n_changepoints=2)
        assert splits == [30, 60]

    def test_zero_changepoints(self):
        assert multi_split_normal_loss(np.arange(20.0), 0) == []

    def test_too_short_for_k(self):
        assert multi_split_normal_loss(np.arange(5.0), 3, min_segment=2) == []

    def test_single_equals_best_split(self, step_series):
        multi = multi_split_normal_loss(step_series, 1)
        single = best_split_normal_loss(step_series)
        assert multi == [single.index]
