"""End-to-end tests for shadow-mode challenger detectors in the service.

The tentpole contract: challengers registered via
``register_monitor(..., shadow=[...])`` score every full scan but never
alert — the primary incident reports are **byte-identical** with or
without them, on both the serial and parallel (``workers=4``) advance
paths; their funnel tallies surface on ``detectors_snapshot()`` / the
``/detectors`` endpoint / ``detector_*`` Prometheus counters, and ride
shard checkpoints.
"""

import json
import math
import urllib.request

import numpy as np
import pytest

from repro.config import DetectionConfig
from repro.obs import ObservabilityServer
from repro.runtime import CollectingSink
from repro.service import BackpressurePolicy, Sample, StreamingDetectionService
from repro.tsdb import WindowSpec

N_TICKS = 1_100
INTERVAL = 60.0
CHANGE_TICK = 700
REGRESS_INDEX = 3
SERIES = [f"svc.sub{i}.gcpu" for i in range(8)]
N_SHARDS = 4
ROUND_TICKS = 200

#: Cheap deterministic challengers; the tuple form exercises the
#: parameterized spec path end to end.
SHADOW = ("mad", ("threshold", {"level": 0.00106}))
SHADOW_IDS = ["mad-v1-6a16dc1f", "threshold-v1-238595f7"]


def small_config():
    return DetectionConfig(
        name="shadow",
        threshold=0.00005,
        rerun_interval=6_000.0,
        windows=WindowSpec(historic=36_000.0, analysis=12_000.0, extended=6_000.0),
        long_term=False,
    )


def make_stream(seed=7):
    rng = np.random.default_rng(seed)
    table = {}
    for index, name in enumerate(SERIES):
        values = rng.normal(0.001, 0.00002, N_TICKS)
        if index == REGRESS_INDEX:
            values[CHANGE_TICK:] += 0.0003
        table[name] = values
    return [
        Sample(name, tick * INTERVAL, float(table[name][tick]), {"metric": "gcpu"})
        for tick in range(N_TICKS)
        for name in SERIES
    ]


def make_service(sink, workers=1, shadow=None):
    service = StreamingDetectionService(
        n_shards=N_SHARDS,
        workers=workers,
        sinks=[sink],
        queue_capacity=2**14,
        backpressure=BackpressurePolicy.BLOCK,
        batch_size=128,
    )
    service.register_monitor(
        "gcpu", small_config(), series_filter={"metric": "gcpu"}, shadow=shadow
    )
    return service


def drive(service, samples):
    span = ROUND_TICKS * INTERVAL
    rounds = int(math.ceil(N_TICKS / ROUND_TICKS))
    for index in range(rounds):
        begin, end = index * span, (index + 1) * span
        service.ingest_many([s for s in samples if begin <= s.timestamp < end])
        service.advance_to(end)
    service.flush()


def report_bytes(reports):
    return json.dumps([r.to_dict() for r in reports], sort_keys=True)


@pytest.fixture(scope="module")
def plain_run():
    samples = make_stream()
    sink = CollectingSink()
    service = make_service(sink)
    try:
        drive(service, samples)
        assert [r.metric_id for r in sink.reports] == [SERIES[REGRESS_INDEX]]
        snapshot = service.detectors_snapshot()
        assert snapshot == {"enabled": False, "detectors": []}
        return samples, report_bytes(sink.reports)
    finally:
        service.close()


def run_with_shadow(samples, workers):
    sink = CollectingSink()
    service = make_service(sink, workers=workers, shadow=SHADOW)
    try:
        drive(service, samples)
        return (
            report_bytes(sink.reports),
            service.detectors_snapshot(),
            service.render_metrics(),
        )
    finally:
        service.close()


class TestAlertInert:
    def test_serial_shadow_is_byte_identical(self, plain_run):
        samples, reference = plain_run
        reports, snapshot, _ = run_with_shadow(samples, workers=1)
        assert reports == reference
        assert snapshot["enabled"]
        assert [row["id"] for row in snapshot["detectors"]] == SHADOW_IDS
        for row in snapshot["detectors"]:
            assert row["tally"]["scans"] > 0
            assert row["tally"]["errors"] == 0

    def test_parallel_shadow_is_byte_identical(self, plain_run):
        """Shadow state rides worker round-trips: the parallel run's
        reports match the serial reference and the tallies match the
        serial run's exactly (scored once per scan, no double counts)."""
        samples, reference = plain_run
        serial_reports, serial_snapshot, _ = run_with_shadow(samples, workers=1)
        parallel_reports, parallel_snapshot, metrics_text = run_with_shadow(
            samples, workers=4
        )
        assert parallel_reports == reference == serial_reports
        assert parallel_snapshot == serial_snapshot
        # Tallies flow into Prometheus via the sanitized counter names.
        assert "detector_" in metrics_text


class TestDetectorsEndpoint:
    def test_snapshot_served_over_http(self, plain_run):
        samples, _ = plain_run
        sink = CollectingSink()
        service = make_service(sink, shadow=SHADOW)
        try:
            drive(service, samples)
            with ObservabilityServer(service) as server:
                with urllib.request.urlopen(
                    server.url + "/detectors", timeout=5.0
                ) as response:
                    payload = json.loads(response.read())
                with urllib.request.urlopen(
                    server.url + "/", timeout=5.0
                ) as response:
                    index = json.loads(response.read())
            assert "/detectors" in index["endpoints"]
            assert payload == json.loads(
                json.dumps(service.detectors_snapshot(), sort_keys=True,
                           default=str)
            )
            assert payload["enabled"]
        finally:
            service.close()

    def test_shadowless_service_reports_disabled(self):
        sink = CollectingSink()
        service = make_service(sink)
        try:
            with ObservabilityServer(service) as server:
                with urllib.request.urlopen(
                    server.url + "/detectors", timeout=5.0
                ) as response:
                    payload = json.loads(response.read())
            assert payload == {"enabled": False, "detectors": []}
        finally:
            service.close()


class TestCheckpointRestore:
    def test_tallies_survive_checkpoint_restore_parallel(self, tmp_path):
        """Shadow tallies ride the scheduler pickle through a checkpoint
        and keep accruing (same IDs) after restore under workers=4."""
        samples = make_stream()
        cut = 1_000 * INTERVAL
        sink = CollectingSink()
        service = make_service(sink, workers=4, shadow=SHADOW)
        ckpt = str(tmp_path / "ckpt")
        try:
            service.ingest_many([s for s in samples if s.timestamp < cut])
            service.advance_to(cut)  # first scan lands at tick 900
            before = service.detectors_snapshot()
            assert before["enabled"]
            assert all(row["tally"]["scans"] > 0 for row in before["detectors"])
            service.checkpoint(ckpt)
        finally:
            service.close()

        restored = StreamingDetectionService.restore(
            ckpt, sinks=[CollectingSink()], workers=4
        )
        try:
            after = restored.detectors_snapshot()
            assert after == before
            # The restored scorer is live: replay the stream tail across
            # the next rerun boundary and the tallies grow on the same
            # detector IDs.
            restored.ingest_many(
                [s for s in samples if s.timestamp >= restored.clock]
            )
            restored.advance_to(N_TICKS * INTERVAL + 6_000.0)
            final = restored.detectors_snapshot()
            assert [row["id"] for row in final["detectors"]] == SHADOW_IDS
            assert all(
                final_row["tally"]["scans"] > before_row["tally"]["scans"]
                for final_row, before_row in zip(
                    final["detectors"], before["detectors"]
                )
            )
        finally:
            restored.close()
