"""Tests for the Mozilla corpus importer and the committed slice."""

import io
import json
import os
import subprocess
import sys

import pytest

from repro.connectors import SeriesMapper, import_corpus, load_corpus
from repro.connectors.mozilla import INVALID_STATUSES, corpus_samples

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SLICE_PATH = os.path.join(REPO, "benchmarks", "data", "mozilla_slice.json")


def tiny_slice(**overrides):
    payload = {
        "dataset": "test",
        "interval_seconds": 3600,
        "series": [
            {
                "signature_id": 1,
                "framework": "talos",
                "suite": "tp5o",
                "test": "responsiveness",
                "platform": "windows10-64",
                "repository": "autoland",
                "unit": "ms",
                "lower_is_better": True,
                "measurements": [[1000, 1.0], [4600, 1.1], [8200, 1.2]],
            },
            {
                "signature_id": 2,
                "framework": "awsy",
                "suite": "memory",
                "test": "base-memory",
                "platform": "linux1804-64",
                "repository": "autoland",
                "unit": "bytes",
                "lower_is_better": True,
                "measurements": [[1000, 9.0], [4600, 9.1]],
            },
        ],
        "alerts": [
            {"signature_id": 1, "push_timestamp": 4600,
             "is_regression": True, "status": "acknowledged"},
            {"signature_id": 1, "push_timestamp": 8200,
             "is_regression": True, "status": "invalid"},
            {"signature_id": 2, "push_timestamp": 4600,
             "is_regression": False, "status": "acknowledged"},
        ],
    }
    payload.update(overrides)
    return payload


class TestLoadCorpus:
    def test_loads_from_stream(self):
        corpus = load_corpus(io.StringIO(json.dumps(tiny_slice())))
        assert len(corpus.series) == 2
        assert len(corpus.alerts) == 3
        assert corpus.span == (1000.0, 8200.0)

    def test_missing_keys_raise_value_error(self):
        bad = tiny_slice()
        del bad["series"][0]["framework"]
        with pytest.raises(ValueError, match="malformed"):
            load_corpus(io.StringIO(json.dumps(bad)))

    def test_unsorted_measurements_rejected(self):
        bad = tiny_slice()
        bad["series"][0]["measurements"] = [[4600, 1.0], [1000, 1.1]]
        with pytest.raises(ValueError, match="time-ordered"):
            load_corpus(io.StringIO(json.dumps(bad)))

    def test_empty_series_rejected(self):
        with pytest.raises(ValueError):
            load_corpus(io.StringIO(json.dumps(tiny_slice(series=[]))))


class TestGroundTruth:
    def test_invalid_and_improvement_alerts_excluded(self):
        corpus = load_corpus(io.StringIO(json.dumps(tiny_slice())))
        mapper = SeriesMapper(source="mozilla")
        labels = corpus.labeled_regressions(mapper)
        # Of three alerts only one is ground truth: the acknowledged
        # regression.  The sheriff-invalid one and the improvement
        # (is_regression false) are excluded.
        assert sum(len(times) for times in labels.values()) == 1
        [(name, times)] = labels.items()
        assert times == [4600.0]
        assert name == mapper.map(corpus.series[0].external_name).name

    def test_invalid_statuses_frozen(self):
        assert "invalid" in INVALID_STATUSES
        assert "acknowledged" not in INVALID_STATUSES


class TestCorpusSamples:
    def test_interleaved_in_push_order(self):
        corpus = load_corpus(io.StringIO(json.dumps(tiny_slice())))
        samples = list(corpus_samples(corpus, SeriesMapper(source="mozilla")))
        assert [s.timestamp for s in samples] == sorted(
            s.timestamp for s in samples
        )
        assert len({s.name for s in samples}) == 2

    def test_tags_carry_perfherder_dimensions(self):
        corpus = load_corpus(io.StringIO(json.dumps(tiny_slice())))
        sample = next(
            iter(corpus_samples(corpus, SeriesMapper(source="mozilla")))
        )
        assert sample.tags["source"] == "mozilla"
        assert sample.tags["suite"] in ("tp5o", "memory")
        assert sample.tags["metric"] in ("responsiveness", "base-memory")

    def test_import_corpus_offers_everything(self):
        class Collecting:
            def __init__(self):
                self.samples = []

            def ingest_sample(self, sample):
                self.samples.append(sample)
                return True

        corpus = load_corpus(io.StringIO(json.dumps(tiny_slice())))
        target = Collecting()
        stats = import_corpus(target, corpus)
        assert stats.offered == stats.accepted == 5
        assert stats.series == 2


class TestCommittedSlice:
    def test_slice_loads_and_is_labeled(self):
        corpus = load_corpus(SLICE_PATH)
        labels = corpus.labeled_regressions(SeriesMapper(source="mozilla"))
        assert len(corpus.series) == 12
        assert sum(len(times) for times in labels.values()) == 4

    def test_slice_matches_generator(self):
        """The committed file is exactly what the generator produces."""
        result = subprocess.run(
            [sys.executable,
             os.path.join(REPO, "scripts", "make_mozilla_slice.py"),
             "--check"],
            capture_output=True, text=True,
            env={**os.environ, "PYTHONPATH": os.path.join(REPO, "src")},
        )
        assert result.returncode == 0, result.stdout + result.stderr
