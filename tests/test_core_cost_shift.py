"""Tests for repro.core.cost_shift."""

import zlib

import numpy as np
import pytest

from repro.core.cost_shift import CostDomain, CostShiftDetector
from repro.core.types import FilterReason, MetricContext, Regression, RegressionKind
from repro.fleet.changes import ChangeEffect, ChangeLog, CodeChange, CostShift
from repro.profiling.stacktrace import StackTrace
from repro.tsdb import TimeSeriesDatabase, WindowSpec


def write_series(db, name, pre, post, tags, n=300, change_at=200):
    """A series at level ``pre`` switching to ``post`` at index change_at."""
    series = db.create(name, tags)
    rng = np.random.default_rng(zlib.crc32(name.encode("utf-8")))
    for i in range(n):
        level = pre if i < change_at else post
        series.append(i * 60.0, level + rng.normal(0, level * 0.01 + 1e-9))
    return series


def make_regression(db, subroutine, service="svc", magnitude=0.0002, endpoint=None,
                    metadata=None):
    """A regression object for ``subroutine`` with the change at t=12000s."""
    spec = WindowSpec(historic=10_000.0, analysis=5_000.0, extended=3_000.0)
    series = db.get(f"{service}.{subroutine}.gcpu")
    view = spec.view(series, now=18_000.0)
    # Change at absolute t=12000 -> analysis index (12000-10000)/60 ~ 33.
    return Regression(
        context=MetricContext(
            metric_id=f"{service}.{subroutine}.gcpu",
            service=service,
            metric_name="gcpu",
            subroutine=subroutine,
            endpoint=endpoint,
            metadata=metadata,
        ),
        kind=RegressionKind.SHORT_TERM,
        change_index=33,
        change_time=12_000.0,
        mean_before=0.001,
        mean_after=0.001 + magnitude,
        window=view,
    )


class TestCostShiftDetector:
    def _db_with_shift(self):
        """B's gCPU jumps, its class sibling A drops, caller stays flat."""
        db = TimeSeriesDatabase()
        write_series(db, "svc.ns::K::B.gcpu", 0.0010, 0.0012,
                     {"service": "svc", "subroutine": "ns::K::B", "metric": "gcpu"})
        write_series(db, "svc.ns::K::A.gcpu", 0.0012, 0.0010,
                     {"service": "svc", "subroutine": "ns::K::A", "metric": "gcpu"})
        write_series(db, "svc.ns::P::caller.gcpu", 0.0030, 0.0030,
                     {"service": "svc", "subroutine": "ns::P::caller", "metric": "gcpu"})
        return db

    def test_cost_shift_filtered_via_class_domain(self):
        db = self._db_with_shift()
        detector = CostShiftDetector(db)
        regression = make_regression(db, "ns::K::B")
        verdict = detector.check(regression)
        assert not verdict.passed
        assert verdict.reason is FilterReason.COST_SHIFT
        assert "class" in verdict.detail

    def test_cost_shift_filtered_via_caller_domain(self):
        db = self._db_with_shift()
        samples = [
            StackTrace.from_names(["_start", "ns::P::caller", "ns::K::B"], weight=5.0),
            StackTrace.from_names(["_start", "ns::P::caller", "ns::K::A"], weight=5.0),
        ]
        detector = CostShiftDetector(db, samples=samples)
        regression = make_regression(db, "ns::K::B")
        verdict = detector.check(regression)
        assert not verdict.passed

    def test_true_regression_kept(self):
        # B jumps and the class total jumps with it: a real regression.
        db = TimeSeriesDatabase()
        write_series(db, "svc.ns::K::B.gcpu", 0.0010, 0.0012,
                     {"service": "svc", "subroutine": "ns::K::B", "metric": "gcpu"})
        write_series(db, "svc.ns::K::A.gcpu", 0.0012, 0.0012,
                     {"service": "svc", "subroutine": "ns::K::A", "metric": "gcpu"})
        detector = CostShiftDetector(db)
        verdict = detector.check(make_regression(db, "ns::K::B"))
        assert verdict.passed

    def test_huge_domain_excluded(self):
        # The domain's cost dwarfs the regression: inconclusive, kept.
        db = TimeSeriesDatabase()
        write_series(db, "svc.ns::K::B.gcpu", 0.0010, 0.0012,
                     {"service": "svc", "subroutine": "ns::K::B", "metric": "gcpu"})
        write_series(db, "svc.ns::K::A.gcpu", 0.2, 0.2,  # 20% CPU class-mate
                     {"service": "svc", "subroutine": "ns::K::A", "metric": "gcpu"})
        detector = CostShiftDetector(db, exclusion_ratio=100.0)
        verdict = detector.check(make_regression(db, "ns::K::B"))
        assert verdict.passed

    def test_new_subroutine_not_cost_shift(self):
        # The domain has no pre-regression data: rule 1.
        db = TimeSeriesDatabase()
        series = db.create(
            "svc.ns::K::B.gcpu",
            {"service": "svc", "subroutine": "ns::K::B", "metric": "gcpu"},
        )
        # Data only after t=12000 (the change time).
        for i in range(100):
            series.append(12_000.0 + i * 60.0, 0.0012)
        spec = WindowSpec(historic=10_000.0, analysis=5_000.0, extended=3_000.0)
        regression = Regression(
            context=MetricContext(
                metric_id="svc.ns::K::B.gcpu",
                service="svc",
                metric_name="gcpu",
                subroutine="ns::K::B",
            ),
            kind=RegressionKind.SHORT_TERM,
            change_index=33,
            change_time=12_000.0,
            mean_before=0.0,
            mean_after=0.0012,
            window=spec.view(series, now=18_000.0),
        )
        # Give it a class sibling so a class domain exists but with no
        # pre-change data either.
        verdict = CostShiftDetector(db).check(regression)
        assert verdict.passed

    def test_non_subroutine_metric_kept(self):
        db = TimeSeriesDatabase()
        write_series(db, "svc.ns::K::B.gcpu", 0.001, 0.0012,
                     {"service": "svc", "subroutine": "ns::K::B", "metric": "gcpu"})
        regression = make_regression(db, "ns::K::B")
        object.__setattr__(regression.context, "subroutine", None)
        verdict = CostShiftDetector(db).check(regression)
        assert verdict.passed

    def test_commit_domain(self):
        # A commit touches A and B; total across them is flat -> shift.
        db = self._db_with_shift()
        log = ChangeLog(
            [
                CodeChange(
                    "refactor-1",
                    deploy_time=11_900.0,
                    cost_shifts=(CostShift("ns::K::A", "ns::K::B", 0.2),),
                )
            ]
        )
        detector = CostShiftDetector(db, change_log=log)
        verdict = detector.check(make_regression(db, "ns::K::B"))
        assert not verdict.passed

    def test_custom_provider(self):
        db = self._db_with_shift()
        custom_domain = CostDomain(
            name="my-domain", kind="custom",
            members=frozenset({"ns::K::A", "ns::K::B"}),
        )
        detector = CostShiftDetector(db)
        detector.add_provider(lambda regression: [custom_domain])
        verdict = detector.check(make_regression(db, "ns::K::B"))
        assert not verdict.passed

    def test_endpoint_domain(self):
        db = TimeSeriesDatabase()
        write_series(db, "svc.ns::K::B.gcpu", 0.0010, 0.0012,
                     {"service": "svc", "subroutine": "ns::K::B", "metric": "gcpu"})
        write_series(db, "svc.endpoint.feed.a.gcpu", 0.0008, 0.0010,
                     {"service": "svc", "endpoint": "/feed/a", "metric": "endpoint_gcpu"})
        write_series(db, "svc.endpoint.feed.b.gcpu", 0.0008, 0.0006,
                     {"service": "svc", "endpoint": "/feed/b", "metric": "endpoint_gcpu"})
        detector = CostShiftDetector(db)
        regression = make_regression(db, "ns::K::B", endpoint="/feed/a")
        # Endpoint domain members are looked up by endpoint tag series;
        # domain total flat -> cost shift between sibling endpoints.
        verdict = detector.check(regression)
        assert not verdict.passed


class TestCostDomain:
    def test_members_coerced_to_frozenset(self):
        domain = CostDomain(name="d", kind="custom", members={"a", "b"})
        assert isinstance(domain.members, frozenset)
