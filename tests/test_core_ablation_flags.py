"""Tests for the pipeline's ablation switches."""

import numpy as np
import pytest

from repro import FBDetect, TimeSeriesDatabase
from repro.config import DetectionConfig
from repro.tsdb import WindowSpec

from conftest import fill_series


def config():
    return DetectionConfig(
        name="ablate",
        threshold=0.00005,
        rerun_interval=3600.0,
        windows=WindowSpec(36_000.0, 12_000.0, 6_000.0),
        long_term=False,
    )


def transient_db(seed=5):
    rng = np.random.default_rng(seed)
    values = rng.normal(0.001, 0.00002, 900)
    values[700:790] += 0.0004  # recovers before the window ends
    db = TimeSeriesDatabase()
    fill_series(db, "svc.t.gcpu", values, tags={"metric": "gcpu", "subroutine": "t"})
    return db


def family_db(rng, n=5):
    db = TimeSeriesDatabase()
    shared = rng.normal(0, 0.00002, 900)
    for i in range(n):
        values = 0.001 + shared + rng.normal(0, 2e-6, 900)
        values[700:] += 0.0002
        fill_series(
            db, f"svc.ns::K::c{i}.gcpu", values,
            tags={"metric": "gcpu", "subroutine": f"ns::K::c{i}", "service": "svc"},
        )
    return db


class TestAblationFlags:
    def test_disable_went_away_lets_transient_through(self):
        strict = FBDetect(config()).run(transient_db(), now=54_000.0)
        loose = FBDetect(config(), enable_went_away=False).run(
            transient_db(), now=54_000.0
        )
        assert strict.reported == []
        assert len(loose.reported) >= 1

    def test_disable_som_dedup_multiplies_reports(self, rng):
        db = family_db(rng)
        merged = FBDetect(config()).run(db, now=54_000.0)
        unmerged = FBDetect(
            config(), enable_som_dedup=False, enable_pairwise_dedup=False
        ).run(db, now=54_000.0)
        assert len(unmerged.reported) > len(merged.reported)
        assert len(unmerged.reported) == 5

    def test_disable_pairwise_only(self, rng):
        # A larger family: SOM clustering quality improves with more
        # items (n=12 -> a 2x2 grid with clear density structure).
        db = family_db(rng, n=12)
        result = FBDetect(config(), enable_pairwise_dedup=False).run(db, now=54_000.0)
        # SOMDedup alone still collapses most of the family.
        assert len(result.reported) < 12
        assert result.groups == []

    def test_funnel_stages_still_counted_when_disabled(self):
        result = FBDetect(config(), enable_went_away=False).run(
            transient_db(), now=54_000.0
        )
        # The stage column still exists in the funnel (pass-through).
        assert result.funnel.counts["went_away"] >= 1

    def test_defaults_enable_everything(self):
        detector = FBDetect(config())
        pipeline = detector.pipeline
        assert pipeline.enable_went_away
        assert pipeline.enable_seasonality
        assert pipeline.enable_cost_shift
        assert pipeline.enable_som_dedup
        assert pipeline.enable_pairwise_dedup
