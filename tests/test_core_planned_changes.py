"""Tests for repro.core.planned_changes (the §8 extension)."""

import numpy as np
import pytest

from repro import FBDetect, TimeSeriesDatabase
from repro.config import DetectionConfig
from repro.core.planned_changes import PlannedChange, PlannedChangeCorrelator
from repro.core.types import FilterReason, MetricContext, Regression, RegressionKind
from repro.tsdb import TimeSeries, WindowSpec

from conftest import fill_series


def make_regression(change_time=42_000.0, service="svc", metric="cpu", magnitude=0.05):
    series = TimeSeries("svc.cpu")
    rng = np.random.default_rng(0)
    for i in range(900):
        series.append(i * 60.0, 0.5 + float(rng.normal(0, 0.005)))
    view = WindowSpec(36_000.0, 12_000.0, 6_000.0).view(series, now=54_000.0)
    return Regression(
        context=MetricContext(metric_id="svc.cpu", service=service, metric_name=metric),
        kind=RegressionKind.SHORT_TERM,
        change_index=100,
        change_time=change_time,
        mean_before=0.5,
        mean_after=0.5 + magnitude,
        window=view,
    )


class TestPlannedChange:
    def test_invalid_window_raises(self):
        with pytest.raises(ValueError):
            PlannedChange("x", start=10.0, end=5.0)

    def test_covers_time_window(self):
        change = PlannedChange("x", start=40_000.0, end=44_000.0)
        assert change.covers(make_regression(change_time=42_000.0), slack=0.0)
        assert not change.covers(make_regression(change_time=50_000.0), slack=0.0)

    def test_slack_extends_window(self):
        change = PlannedChange("x", start=43_000.0, end=44_000.0)
        assert change.covers(make_regression(change_time=42_500.0), slack=600.0)

    def test_scope_filters(self):
        change = PlannedChange(
            "x", start=0.0, services=frozenset({"other"}),
        )
        assert not change.covers(make_regression(service="svc"), slack=0.0)
        change = PlannedChange("x", start=0.0, metrics=frozenset({"throughput"}))
        assert not change.covers(make_regression(metric="cpu"), slack=0.0)

    def test_impact_bound(self):
        change = PlannedChange("x", start=0.0, expected_relative_impact=0.05)
        small = make_regression(magnitude=0.02)   # 4% relative
        large = make_regression(magnitude=0.2)    # 40% relative
        assert change.covers(small, slack=0.0)
        assert not change.covers(large, slack=0.0)


class TestPlannedChangeCorrelator:
    def test_suppresses_covered(self):
        correlator = PlannedChangeCorrelator(
            [PlannedChange("maint-1", start=40_000.0, end=50_000.0, description="drain")]
        )
        verdict = correlator.check(make_regression())
        assert not verdict.passed
        assert verdict.reason is FilterReason.PLANNED_CHANGE
        assert "maint-1" in verdict.detail

    def test_keeps_uncovered(self):
        correlator = PlannedChangeCorrelator(
            [PlannedChange("maint-1", start=0.0, end=1_000.0)]
        )
        assert correlator.check(make_regression()).passed

    def test_register_and_withdraw(self):
        correlator = PlannedChangeCorrelator()
        correlator.register(PlannedChange("a", start=0.0))
        assert [c.change_id for c in correlator.planned()] == ["a"]
        assert correlator.withdraw("a")
        assert not correlator.withdraw("a")
        assert correlator.check(make_regression()).passed

    def test_invalid_slack_raises(self):
        with pytest.raises(ValueError):
            PlannedChangeCorrelator(time_slack=-1.0)


class TestPipelineIntegration:
    def _config(self):
        return DetectionConfig(
            name="planned",
            threshold=0.00005,
            rerun_interval=3600.0,
            windows=WindowSpec(36_000.0, 12_000.0, 6_000.0),
            long_term=False,
        )

    def _db(self, rng):
        db = TimeSeriesDatabase()
        values = rng.normal(0.001, 0.00002, 900)
        values[700:] += 0.0002  # change at t=42000
        fill_series(db, "svc.sub.gcpu", values,
                    tags={"service": "svc", "subroutine": "sub", "metric": "gcpu"})
        return db

    def test_planned_change_suppresses_report(self, rng):
        correlator = PlannedChangeCorrelator(
            [PlannedChange("exp-ramp", start=41_000.0, end=43_000.0, services=frozenset({"svc"}))]
        )
        detector = FBDetect(self._config(), planned_changes=correlator)
        result = detector.run(self._db(rng), now=54_000.0)
        assert result.reported == []
        dropped = [
            c for c in result.all_candidates
            if any(v.reason is FilterReason.PLANNED_CHANGE for v in c.verdicts)
        ]
        assert dropped

    def test_without_correlator_reports(self, rng):
        detector = FBDetect(self._config())
        result = detector.run(self._db(rng), now=54_000.0)
        assert len(result.reported) == 1

    def test_unrelated_planned_change_does_not_suppress(self, rng):
        correlator = PlannedChangeCorrelator(
            [PlannedChange("other", start=41_000.0, end=43_000.0,
                           services=frozenset({"different-service"}))]
        )
        detector = FBDetect(self._config(), planned_changes=correlator)
        result = detector.run(self._db(rng), now=54_000.0)
        assert len(result.reported) == 1
