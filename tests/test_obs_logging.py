"""Tests for repro.obs.logging (structured JSON logs + correlation ids)."""

import io
import json
import logging
import threading

from repro.obs.logging import (
    JsonLogFormatter,
    configure_json_logging,
    correlation_id,
    current_context,
    get_logger,
    log_context,
)


def teardown_function(_function):
    # Tests install handlers on the shared "repro" logger; leave it clean.
    root = logging.getLogger("repro")
    for handler in list(root.handlers):
        if isinstance(handler.formatter, JsonLogFormatter):
            root.removeHandler(handler)
    root.setLevel(logging.NOTSET)


class TestCorrelationId:
    def test_deterministic_across_calls(self):
        first = correlation_id("web.render.gcpu", 86400.0, prefix="alert")
        second = correlation_id("web.render.gcpu", 86400.0, prefix="alert")
        assert first == second
        assert first.startswith("alert-")
        assert len(first) == len("alert-") + 12  # blake2b digest_size=6

    def test_distinct_inputs_distinct_ids(self):
        assert correlation_id("a", 1.0) != correlation_id("a", 2.0)
        assert correlation_id("a", 1.0) != correlation_id("b", 1.0)

    def test_docstring_example_value(self):
        # Pinned so serial/parallel/restart runs keep joining on one key.
        assert (
            correlation_id("web.render.gcpu", 86400.0, prefix="alert")
            == "alert-c5d9d33f5808"
        )


class TestLogContext:
    def test_binds_and_unbinds(self):
        assert current_context() == {}
        with log_context(series="s1", alert="a1"):
            assert current_context() == {"series": "s1", "alert": "a1"}
        assert current_context() == {}

    def test_nested_scopes_shadow_and_restore(self):
        with log_context(series="outer", shard=1):
            with log_context(series="inner"):
                assert current_context() == {"series": "inner", "shard": 1}
            assert current_context() == {"series": "outer", "shard": 1}

    def test_threads_do_not_share_context(self):
        seen = {}

        def worker(name):
            with log_context(series=name):
                seen[name] = current_context()["series"]

        with log_context(series="main"):
            threads = [
                threading.Thread(target=worker, args=(f"t{i}",)) for i in range(4)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert current_context()["series"] == "main"
        assert seen == {f"t{i}": f"t{i}" for i in range(4)}


class TestJsonOutput:
    def test_one_json_object_per_line_with_context_and_fields(self):
        stream = io.StringIO()
        configure_json_logging(stream=stream, level=logging.DEBUG)
        log = get_logger("repro.test.json")
        with log_context(series="svc.sub0.gcpu", alert="alert-abc"):
            log.info("incident delivered", shard=3, magnitude=0.0021)
        payload = json.loads(stream.getvalue().strip())
        assert payload["event"] == "incident delivered"
        assert payload["level"] == "info"
        assert payload["logger"] == "repro.test.json"
        assert payload["series"] == "svc.sub0.gcpu"
        assert payload["alert"] == "alert-abc"
        assert payload["shard"] == 3
        assert payload["magnitude"] == 0.0021
        assert isinstance(payload["ts"], float)

    def test_non_serializable_fields_fall_back_to_str(self):
        stream = io.StringIO()
        configure_json_logging(stream=stream, level=logging.DEBUG)
        get_logger("repro.test.fallback").info("event", obj=object())
        payload = json.loads(stream.getvalue().strip())
        assert payload["obj"].startswith("<object object")

    def test_exception_logging_includes_traceback(self):
        stream = io.StringIO()
        configure_json_logging(stream=stream, level=logging.DEBUG)
        log = get_logger("repro.test.exc")
        try:
            raise ValueError("boom")
        except ValueError:
            log.exception("scan failed", shard=1)
        payload = json.loads(stream.getvalue().strip())
        assert payload["event"] == "scan failed"
        assert "ValueError: boom" in payload["exception"]

    def test_configure_is_idempotent_per_stream(self):
        stream = io.StringIO()
        configure_json_logging(stream=stream)
        configure_json_logging(stream=stream)
        get_logger("repro.test.idem").info("once")
        lines = [line for line in stream.getvalue().splitlines() if line]
        assert len(lines) == 1

    def test_disabled_level_emits_nothing(self):
        stream = io.StringIO()
        configure_json_logging(stream=stream, level=logging.WARNING)
        log = get_logger("repro.test.level")
        log.debug("quiet", detail=1)
        log.info("also quiet")
        assert stream.getvalue() == ""
        assert not log.isEnabledFor(logging.DEBUG)
        assert log.isEnabledFor(logging.ERROR)


class TestGetLogger:
    def test_names_are_rooted_under_repro(self):
        assert get_logger("service").logger.name == "repro.service"
        assert get_logger("repro.core.pipeline").logger.name == "repro.core.pipeline"
        assert get_logger("repro").logger.name == "repro"
