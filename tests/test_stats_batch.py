"""Bit-identity tests: vectorized batch stats vs their scalar twins.

The columnar scan path replaces per-series Python loops with whole-matrix
array ops (:func:`cusum_screen_batch`, :func:`cusum_changepoint_batch`,
:func:`mad_batch`, :func:`summarize_batch`, ``update_many``).  The
incremental-scan correctness argument — and the shadow-mode /
chaos-drill byte-identical-reports oracle built on it — requires a
k-row fold to be *bit-identical* to k independent single-row folds
(row-wise helpers likewise bit-identical to their scalar twins), and
the vectorized CUSUM fold to agree with the scalar recursion on every
decision.  Hypothesis hunts for rows where the op order diverges.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats.cusum import cusum_changepoint, cusum_changepoint_batch
from repro.stats.descriptive import summarize, summarize_batch
from repro.stats.incremental import RunningMoments, StreamingCusum, cusum_screen_batch
from repro.stats.robust import mad, mad_batch, mad_threshold, mad_threshold_batch

_val = st.floats(min_value=-1e3, max_value=1e3, allow_nan=False, allow_infinity=False)
_matrix = st.integers(min_value=1, max_value=6).flatmap(
    lambda n: st.lists(
        st.lists(_val, min_size=n, max_size=n), min_size=1, max_size=5
    )
)
_reference = st.lists(_val, min_size=2, max_size=20)


class TestCusumScreenBatch:
    @settings(max_examples=150, deadline=None)
    @given(
        rows=st.lists(
            st.tuples(_reference, st.lists(_val, min_size=1, max_size=12)),
            min_size=1,
            max_size=5,
        ),
        width=st.integers(min_value=1, max_value=12),
        drift=st.floats(min_value=0.0, max_value=2.0, allow_nan=False),
        threshold=st.floats(min_value=0.5, max_value=8.0, allow_nan=False),
    )
    def test_rows_match_single_row_fold(self, rows, width, drift, threshold):
        """A k-row fold is bit-identical to k independent 1-row folds.

        This is the guarantee the incremental-scan cache leans on: it
        groups series into (k, n) matrices by batch width, so every
        row's outcome must be exactly what screening that one series
        alone (``should_scan`` / ``update_many``) would produce —
        regardless of which other series share the matrix.
        """
        k = len(rows)
        means = np.empty(k)
        stds = np.empty(k)
        values = np.empty((k, width))
        for i, (reference, new) in enumerate(rows):
            x = np.asarray(reference, dtype=float)
            means[i] = x.mean()
            stds[i] = x.std()
            # Cycle the drawn points out to the common batch width.
            values[i] = [new[j % len(new)] for j in range(width)]
        pos, neg, fired_at = cusum_screen_batch(
            values, means, stds, np.zeros(k), np.zeros(k), drift, threshold
        )
        for i in range(k):
            screen = StreamingCusum(means[i], stds[i], drift=drift, threshold=threshold)
            screen.update_many(values[i])
            want_at = screen.n - 1 if screen.fired else -1
            # Bit-identical, not approx: same kernel, same op order.
            assert pos[i] == screen.pos, f"row {i} pos"
            assert neg[i] == screen.neg, f"row {i} neg"
            assert fired_at[i] == want_at, f"row {i} fired_at"

    @settings(max_examples=100, deadline=None)
    @given(
        pos0=st.floats(min_value=0.0, max_value=5.0, allow_nan=False),
        neg0=st.floats(min_value=0.0, max_value=5.0, allow_nan=False),
        new=st.lists(_val, min_size=1, max_size=10),
    )
    def test_carried_evidence_matches_single_row_fold(self, pos0, neg0, new):
        """Non-zero carried-in S+/S- (the checkpointed-anchor path)."""
        values = np.asarray([new], dtype=float)
        pos, neg, fired_at = cusum_screen_batch(
            values, np.array([1.0]), np.array([2.0]),
            np.array([pos0]), np.array([neg0]), 0.75, 6.0,
        )
        screen = StreamingCusum(1.0, 2.0)
        screen.pos, screen.neg = pos0, neg0
        screen.update_many(new)
        assert pos[0] == screen.pos
        assert neg[0] == screen.neg
        assert fired_at[0] == (screen.n - 1 if screen.fired else -1)

    def test_scalar_and_batch_folds_agree(self):
        """update() loop vs update_many(): same decisions, ~same sums.

        The vectorized fold reassociates the running sums (cumsum minus
        running minimum instead of an iterated clamp), so sums agree to
        rounding — and decisions agree outright at any realistic margin.
        """
        rng = np.random.default_rng(7)
        cases = [
            rng.normal(0.0, 1.0, 50),                      # quiet
            np.concatenate([rng.normal(0.0, 1.0, 20),
                            rng.normal(4.0, 1.0, 30)]),    # upward shift
            np.concatenate([rng.normal(0.0, 1.0, 20),
                            rng.normal(-4.0, 1.0, 30)]),   # downward shift
        ]
        for values in cases:
            one = StreamingCusum(0.0, 1.0)
            many = StreamingCusum(0.0, 1.0)
            for value in values:
                # update_many stops consuming at the firing point (the
                # pipeline reanchors there), so the scalar mirror does too.
                if one.update(value):
                    break
            many.update_many(values)
            assert many.fired == one.fired
            assert many.n == one.n
            assert many.pos == pytest.approx(one.pos, rel=1e-9, abs=1e-9)
            assert many.neg == pytest.approx(one.neg, rel=1e-9, abs=1e-9)

    def test_degenerate_std_rows(self):
        """std == 0: fire on any value != mean, sums left untouched."""
        values = np.array([[5.0, 5.0, 5.0], [5.0, 6.0, 5.0]])
        pos, neg, fired_at = cusum_screen_batch(
            values, np.array([5.0, 5.0]), np.array([0.0, 0.0]),
            np.array([0.3, 0.4]), np.array([0.1, 0.2]), 0.75, 6.0,
        )
        assert fired_at[0] == -1
        assert fired_at[1] == 1
        assert list(pos) == [0.3, 0.4]
        assert list(neg) == [0.1, 0.2]

    def test_update_many_latched_screen_consumes_one_point(self):
        screen = StreamingCusum(0.0, 1.0, drift=0.0, threshold=0.5)
        assert screen.update_many([10.0])  # fires on the first point
        n_at_fire = screen.n
        assert screen.update_many([0.0, 0.0, 0.0])
        assert screen.n == n_at_fire + 1  # latched: scalar early-exit


class TestBatchScanHelpers:
    @settings(max_examples=100, deadline=None)
    @given(matrix=_matrix)
    def test_mad_batch_matches_scalar(self, matrix):
        x = np.asarray(matrix, dtype=float)
        batch = mad_batch(x)
        thresholds = mad_threshold_batch(x, 2.5)
        for i, row in enumerate(matrix):
            assert batch[i] == mad(row)
            assert thresholds[i] == mad_threshold(row, 2.5)

    @settings(max_examples=100, deadline=None)
    @given(matrix=_matrix)
    def test_summarize_batch_matches_scalar(self, matrix):
        x = np.asarray(matrix, dtype=float)
        for i, summary in enumerate(summarize_batch(x)):
            assert summary == summarize(matrix[i])

    @settings(max_examples=100, deadline=None)
    @given(
        width=st.integers(min_value=4, max_value=12),
        seeds=st.lists(st.integers(min_value=0, max_value=2**31), min_size=1, max_size=4),
    )
    def test_cusum_changepoint_batch_matches_scalar(self, width, seeds):
        rows = []
        for seed in seeds:
            rng = np.random.default_rng(seed)
            row = rng.normal(size=width)
            if seed % 2:  # plant a shift in half the rows
                row[width // 2:] += 3.0
            rows.append(row)
        x = np.asarray(rows)
        for i, result in enumerate(cusum_changepoint_batch(x)):
            want = cusum_changepoint(rows[i])
            if want is None:
                assert result is None
            else:
                # Field-by-field: the curve is an ndarray, so dataclass
                # equality would be ambiguous.
                assert result.index == want.index
                assert result.statistic == want.statistic
                assert result.mean_before == want.mean_before
                assert result.mean_after == want.mean_after
                assert np.array_equal(result.curve, want.curve)

    @settings(max_examples=100, deadline=None)
    @given(values=st.lists(_val, min_size=1, max_size=30))
    def test_running_moments_update_many_matches_loop(self, values):
        one = RunningMoments()
        many = RunningMoments()
        for value in values:
            one.update(value)
        many.update_many(values)
        assert many.n == one.n
        # Chan's merge reassociates the sums, so exact bitwise equality
        # is not promised here — only numerical agreement.
        assert many.mean == pytest.approx(one.mean, rel=1e-9, abs=1e-9)
        assert many.std == pytest.approx(one.std, rel=1e-6, abs=1e-6)
