"""End-to-end metadata-annotated regression detection (§3).

A subroutine annotates its frames with ``SetFrameMetadata`` per user
category; a regression that only affects one category is invisible in
the subroutine's overall gCPU but shows in the metadata-annotated
series.
"""

import numpy as np
import pytest

from repro import FBDetect
from repro.config import DetectionConfig
from repro.profiling.collector import FleetProfileCollector
from repro.profiling.stacktrace import Frame, StackTrace
from repro.tsdb import TimeSeriesDatabase, WindowSpec


def category_samples(rng, enterprise_weight: float, consumer_weight: float):
    """One interval's samples: the handler serves two user categories."""
    other = max(0.0, 100.0 - enterprise_weight - consumer_weight)
    samples = [
        StackTrace(
            frames=(
                Frame("_start"),
                Frame("svc::H::handle", metadata="user:enterprise"),
            ),
            weight=enterprise_weight * (1.0 + rng.normal(0, 0.01)),
        ),
        StackTrace(
            frames=(
                Frame("_start"),
                Frame("svc::H::handle", metadata="user:consumer"),
            ),
            weight=consumer_weight * (1.0 + rng.normal(0, 0.01)),
        ),
    ]
    if other > 0:
        samples.append(StackTrace.from_names(["_start", "svc::Other::run"], weight=other))
    return samples


@pytest.fixture(scope="module")
def metadata_db():
    rng = np.random.default_rng(3)
    db = TimeSeriesDatabase()
    collector = FleetProfileCollector(db, service="svc")
    for tick in range(900):
        if tick < 700:
            enterprise, consumer = 5.0, 15.0
        else:
            # Enterprise handling regresses 40%; consumer shrinks so the
            # subroutine's total stays flat — invisible without metadata.
            enterprise, consumer = 7.0, 13.0
        collector.ingest(tick * 60.0, category_samples(rng, enterprise, consumer))
    return db


def config():
    return DetectionConfig(
        name="metadata",
        threshold=0.005,
        rerun_interval=3600.0,
        windows=WindowSpec(36_000.0, 12_000.0, 6_000.0),
        long_term=False,
    )


class TestMetadataAnnotatedDetection:
    def test_overall_subroutine_flat(self, metadata_db):
        series = metadata_db.get("svc.svc::H::handle.gcpu")
        values = series.values
        assert values[:700].mean() == pytest.approx(values[720:].mean(), rel=0.02)

    def test_metadata_series_regresses(self, metadata_db):
        series = metadata_db.get("svc.svc::H::handle@user:enterprise.gcpu")
        values = series.values
        assert values[720:].mean() > values[:700].mean() * 1.2

    def test_pipeline_reports_only_the_category(self, metadata_db):
        detector = FBDetect(config(), series_filter={"metric": "gcpu"})
        result = detector.run(metadata_db, now=900 * 60.0)
        reported_ids = {r.context.metric_id for r in result.reported}
        assert "svc.svc::H::handle@user:enterprise.gcpu" in reported_ids
        assert "svc.svc::H::handle.gcpu" not in reported_ids

    def test_regression_context_carries_metadata(self, metadata_db):
        detector = FBDetect(config(), series_filter={"metric": "gcpu"})
        result = detector.run(metadata_db, now=900 * 60.0)
        enterprise = [
            r for r in result.reported
            if r.context.metric_id == "svc.svc::H::handle@user:enterprise.gcpu"
        ]
        assert enterprise[0].context.metadata == "user:enterprise"
