"""The from-scratch E-divisive change-point tester."""

import numpy as np
import pytest

from repro.stats import EDivisiveResult, best_e_divisive_split, e_divisive_test
from repro.stats.e_divisive import _distance_matrix, _split_statistics


def step_series(n=240, change=160, shift=1.0, seed=3):
    rng = np.random.default_rng(seed)
    values = rng.normal(0.0, 0.1, n)
    values[change:] += shift
    return values


class TestBestSplit:
    def test_tiny_hand_case(self):
        # [0, 0, 1, 1]: the only admissible split at min_segment=2 is the
        # true one; E = 2*1 - 0 - 0 = 2 scaled by m*k/(m+k) = 1.
        split = best_e_divisive_split(np.array([0.0, 0.0, 1.0, 1.0]))
        assert split is not None
        index, statistic = split
        assert index == 2
        assert statistic == pytest.approx(2.0)

    def test_too_short_returns_none(self):
        assert best_e_divisive_split(np.array([1.0, 2.0, 3.0])) is None
        assert best_e_divisive_split(np.array([])) is None

    def test_finds_step_location(self):
        values = step_series()
        split = best_e_divisive_split(values)
        assert split is not None
        assert abs(split[0] - 160) <= 3

    def test_prefix_sums_match_bruteforce(self):
        # The O(1)-per-split prefix-sum reads must equal the brute-force
        # pairwise sums on a small series.
        rng = np.random.default_rng(9)
        values = rng.normal(0.0, 1.0, 24)
        dist = _distance_matrix(values)
        t_values, q = _split_statistics(dist, min_segment=2)
        for t, statistic in zip(t_values, q):
            a, b = values[:t], values[t:]
            m, k = len(a), len(b)
            cross = sum(abs(x - y) for x in a for y in b) / (m * k)
            within_a = (
                sum(abs(a[i] - a[j]) for i in range(m) for j in range(i + 1, m))
                / (m * (m - 1) / 2)
            )
            within_b = (
                sum(abs(b[i] - b[j]) for i in range(k) for j in range(i + 1, k))
                / (k * (k - 1) / 2)
            )
            energy = 2 * cross - within_a - within_b
            expected = (m * k / (m + k)) * energy
            assert statistic == pytest.approx(expected, rel=1e-9)


class TestPermutationTest:
    def test_clean_noise_not_significant(self):
        rng = np.random.default_rng(17)
        result = e_divisive_test(rng.normal(0.0, 1.0, 200), seed=5)
        assert result is not None
        assert not result.significant
        assert result.p_value > 0.05

    def test_step_detected_and_significant(self):
        result = e_divisive_test(step_series(), seed=5)
        assert result is not None
        assert result.significant
        assert abs(result.index - 160) <= 3
        assert result.p_value == pytest.approx(0.01)  # (1+0)/(99+1)
        assert result.magnitude == pytest.approx(1.0, abs=0.1)
        assert result.mean_after > result.mean_before

    def test_deterministic_for_seed(self):
        values = step_series()
        first = e_divisive_test(values, seed=11)
        second = e_divisive_test(values, seed=11)
        assert first == second

    def test_p_value_bounds(self):
        # p = (1 + exceeded) / (B + 1) is always within (0, 1].
        rng = np.random.default_rng(23)
        for _ in range(3):
            result = e_divisive_test(
                rng.normal(0.0, 1.0, 60), n_permutations=19, seed=1
            )
            assert result is not None
            assert 0.0 < result.p_value <= 1.0

    def test_zero_permutations_never_significant(self):
        result = e_divisive_test(step_series(), n_permutations=0)
        assert result is not None
        assert result.p_value == 1.0
        assert not result.significant

    def test_short_series_returns_none(self):
        assert e_divisive_test(np.array([1.0, 2.0, 3.0])) is None

    def test_result_is_frozen_dataclass(self):
        result = e_divisive_test(step_series(), seed=5)
        assert isinstance(result, EDivisiveResult)
        with pytest.raises(AttributeError):
            result.index = 0
