"""Tests for repro.reporting.investigation."""

import numpy as np
import pytest

from repro.core.types import MetricContext, Regression, RegressionKind
from repro.profiling.stacktrace import StackTrace
from repro.reporting import format_investigation, investigate_regression
from repro.tsdb import TimeSeries, WindowSpec


def make_regression(subroutine="parse"):
    series = TimeSeries("svc.parse.gcpu")
    for i in range(900):
        series.append(float(i), 0.001)
    view = WindowSpec(600, 200, 100).view(series, now=900.0)
    return Regression(
        context=MetricContext(
            metric_id="svc.parse.gcpu", service="svc", metric_name="gcpu",
            subroutine=subroutine,
        ),
        kind=RegressionKind.SHORT_TERM,
        change_index=100,
        change_time=700.0,
        mean_before=0.001,
        mean_after=0.0012,
        window=view,
    )


def samples(parse_weight):
    return [
        StackTrace.from_names(["main", "parse"], weight=parse_weight),
        StackTrace.from_names(["main", "render"], weight=100.0 - parse_weight),
    ]


class TestInvestigateRegression:
    def test_gainer_is_regressed_path(self):
        investigation = investigate_regression(
            make_regression(), samples(10.0), samples(20.0)
        )
        gainer_paths = [d.path for d in investigation.top_gainers]
        assert ("main", "parse") in gainer_paths
        assert investigation.regressed_path_delta == pytest.approx(0.10)

    def test_loser_shows_where_cost_came_from(self):
        investigation = investigate_regression(
            make_regression(), samples(10.0), samples(20.0)
        )
        loser_paths = [d.path for d in investigation.top_losers]
        assert ("main", "render") in loser_paths

    def test_unknown_subroutine_zero_delta(self):
        investigation = investigate_regression(
            make_regression(subroutine="zzz"), samples(10.0), samples(20.0)
        )
        assert investigation.regressed_path_delta == 0.0

    def test_k_limits_output(self):
        before = [StackTrace.from_names([f"f{i}"], weight=1.0) for i in range(20)]
        after = [StackTrace.from_names([f"f{i}"], weight=float(i + 1)) for i in range(20)]
        investigation = investigate_regression(make_regression(), before, after, k=3)
        assert len(investigation.top_gainers) <= 3
        assert len(investigation.top_losers) <= 3


class TestFormatInvestigation:
    def test_renders_paths(self):
        investigation = investigate_regression(
            make_regression(), samples(10.0), samples(20.0)
        )
        text = format_investigation(investigation)
        assert "gained:" in text
        assert "main->parse" in text
        assert "+0.1000" in text

    def test_no_movement_message(self):
        investigation = investigate_regression(
            make_regression(), samples(10.0), samples(10.0)
        )
        assert "no significant movement" in format_investigation(investigation)
