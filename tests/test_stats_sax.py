"""Tests for repro.stats.sax."""

import numpy as np
import pytest

from repro.stats.sax import DEFAULT_BUCKETS, DEFAULT_VALID_FRACTION, sax_encode


class TestSaxEncode:
    def test_paper_defaults(self):
        assert DEFAULT_BUCKETS == 20
        assert DEFAULT_VALID_FRACTION == 0.03

    def test_paper_example_shape(self):
        # The paper's example series discretized to 4 letters rises then falls.
        enc = sax_encode([1.1, 2.0, 3.1, 4.2, 3.5, 2.3, 1.1], n_buckets=4)
        assert len(enc.string) == 7
        assert enc.string[0] == "a"
        assert enc.string[3] == "d"
        assert enc.string[-1] == "a"

    def test_string_and_letters_consistent(self):
        enc = sax_encode([0.0, 0.5, 1.0], n_buckets=4)
        assert [ord(c) - ord("a") for c in enc.string] == list(enc.letters)

    def test_empty_series(self):
        enc = sax_encode([])
        assert enc.string == ""
        assert enc.valid_letters == frozenset()

    def test_constant_series_single_bucket(self):
        enc = sax_encode(np.full(10, 3.0), n_buckets=5)
        assert len(set(enc.letters)) == 1
        assert enc.invalid_fraction() == 0.0

    def test_validity_threshold(self):
        # 97 points in bucket 'a', 3 in top bucket: at 3% of 100 = 3 points,
        # both buckets are valid; at 10%, only 'a' is.
        values = [0.0] * 97 + [1.0] * 3
        enc3 = sax_encode(values, n_buckets=2, valid_fraction=0.03)
        assert len(enc3.valid_letters) == 2
        enc10 = sax_encode(values, n_buckets=2, valid_fraction=0.10)
        assert enc10.valid_letters == frozenset({0})

    def test_outlier_bucket_invalid_at_defaults(self):
        # A single spike among 200 points is < 3% -> invalid bucket.
        values = [0.0] * 199 + [10.0]
        enc = sax_encode(values)
        assert enc.max_letter() not in enc.valid_letters
        assert enc.max_valid_letter() < enc.max_letter()

    def test_external_value_range(self):
        historic = sax_encode([0.0, 1.0] * 50)
        grid = (historic.bucket_edges[0], historic.bucket_edges[-1])
        post = sax_encode([2.0, 2.1], value_range=grid)
        # Values above the grid clip into the top bucket.
        assert all(letter == post.n_buckets - 1 for letter in post.letters)

    def test_letter_counts(self):
        enc = sax_encode([0.0, 0.0, 1.0], n_buckets=2)
        counts = enc.letter_counts()
        assert counts[0] == 2
        assert counts[1] == 1

    def test_bucket_lower_bound_monotone(self):
        enc = sax_encode(np.linspace(0, 1, 100), n_buckets=10)
        bounds = [enc.bucket_lower_bound(i) for i in range(10)]
        assert bounds == sorted(bounds)

    def test_invalid_bucket_count_raises(self):
        with pytest.raises(ValueError):
            sax_encode([1.0], n_buckets=0)
        with pytest.raises(ValueError):
            sax_encode([1.0], n_buckets=100)

    def test_invalid_fraction_computation(self):
        values = [0.0] * 99 + [10.0]
        enc = sax_encode(values, n_buckets=10, valid_fraction=0.03)
        assert enc.invalid_fraction() == pytest.approx(0.01)
