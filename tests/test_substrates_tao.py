"""Tests for repro.substrates.tao."""

import pytest

from repro.substrates.tao import TaoMetricsEmitter, TaoStore
from repro.tsdb import TimeSeriesDatabase


class TestTaoObjects:
    def test_add_and_get(self):
        store = TaoStore()
        user = store.obj_add("user", {"name": "alice"})
        fetched = store.obj_get(user.object_id)
        assert fetched is user
        assert fetched.data["name"] == "alice"

    def test_get_missing(self):
        assert TaoStore().obj_get(999) is None

    def test_ids_unique(self):
        store = TaoStore()
        a = store.obj_add("user")
        b = store.obj_add("user")
        assert a.object_id != b.object_id


class TestTaoAssociations:
    def _store(self):
        store = TaoStore()
        self.alice = store.obj_add("user")
        self.bob = store.obj_add("user")
        self.carol = store.obj_add("user")
        return store

    def test_add_and_get(self):
        store = self._store()
        store.assoc_add(self.alice.object_id, "friend", self.bob.object_id, time=1.0)
        assoc = store.assoc_get(self.alice.object_id, "friend", self.bob.object_id)
        assert assoc is not None
        assert assoc.id2 == self.bob.object_id

    def test_range_newest_first(self):
        store = self._store()
        store.assoc_add(self.alice.object_id, "friend", self.bob.object_id, time=1.0)
        store.assoc_add(self.alice.object_id, "friend", self.carol.object_id, time=5.0)
        page = store.assoc_range(self.alice.object_id, "friend")
        assert [a.id2 for a in page] == [self.carol.object_id, self.bob.object_id]

    def test_range_pagination(self):
        store = self._store()
        for i, t in enumerate([1.0, 2.0, 3.0]):
            target = store.obj_add("post")
            store.assoc_add(self.alice.object_id, "likes", target.object_id, time=t)
        assert len(store.assoc_range(self.alice.object_id, "likes", offset=1, limit=1)) == 1

    def test_re_add_refreshes(self):
        store = self._store()
        store.assoc_add(self.alice.object_id, "friend", self.bob.object_id, time=1.0)
        store.assoc_add(self.alice.object_id, "friend", self.bob.object_id, time=9.0)
        assert store.assoc_count(self.alice.object_id, "friend") == 1
        assoc = store.assoc_get(self.alice.object_id, "friend", self.bob.object_id)
        assert assoc.time == 9.0

    def test_delete(self):
        store = self._store()
        store.assoc_add(self.alice.object_id, "friend", self.bob.object_id, time=1.0)
        assert store.assoc_delete(self.alice.object_id, "friend", self.bob.object_id)
        assert not store.assoc_delete(self.alice.object_id, "friend", self.bob.object_id)
        assert store.assoc_count(self.alice.object_id, "friend") == 0

    def test_count(self):
        store = self._store()
        assert store.assoc_count(self.alice.object_id, "friend") == 0
        store.assoc_add(self.alice.object_id, "friend", self.bob.object_id, time=1.0)
        assert store.assoc_count(self.alice.object_id, "friend") == 1


class TestTaoAccounting:
    def test_operations_counted_per_type(self):
        store = TaoStore()
        user = store.obj_add("user")
        post = store.obj_add("post")
        store.assoc_add(user.object_id, "likes", post.object_id, time=1.0)
        store.assoc_range(user.object_id, "likes")
        assert store.operation_counts[("obj_add", "user")] == 1
        assert store.operation_counts[("assoc_range", "likes")] == 1

    def test_regress_data_type_scales_cost(self):
        store = TaoStore()
        user = store.obj_add("user")
        post = store.obj_add("post")
        store.assoc_add(user.object_id, "likes", post.object_id, time=1.0)
        baseline = store.reset_accounting()[("assoc_add", "likes")]
        store.regress_data_type("likes", 1.5)
        store.assoc_add(user.object_id, "likes", post.object_id, time=2.0)
        regressed = store.reset_accounting()[("assoc_add", "likes")]
        assert regressed == pytest.approx(1.5 * baseline)

    def test_regress_invalid_factor(self):
        with pytest.raises(ValueError):
            TaoStore().regress_data_type("likes", 0.0)

    def test_reset_clears(self):
        store = TaoStore()
        store.obj_add("user")
        store.reset_accounting()
        assert store.operation_counts == {}
        assert store.operation_cost == {}


class TestTaoMetricsEmitter:
    def test_emits_per_type_series(self):
        store = TaoStore()
        db = TimeSeriesDatabase()
        emitter = TaoMetricsEmitter(db)
        user = store.obj_add("user")
        post = store.obj_add("post")
        store.assoc_add(user.object_id, "likes", post.object_id, time=1.0)
        written = emitter.ingest(60.0, store)
        assert written >= 5
        assert db.get("tao.likes.io_cost") is not None
        assert db.get("tao.likes.io_count").values[0] == 1.0
        assert db.get("tao.query_throughput") is not None

    def test_per_data_type_regression_detectable(self):
        """A regressed data type's io_cost series trips the pipeline."""
        import numpy as np

        from repro import FBDetect
        from repro.config import DetectionConfig
        from repro.tsdb import WindowSpec

        rng = np.random.default_rng(1)
        store = TaoStore()
        db = TimeSeriesDatabase()
        emitter = TaoMetricsEmitter(db)
        user = store.obj_add("user")
        posts = [store.obj_add("post") for _ in range(5)]
        store.reset_accounting()

        for tick in range(900):
            if tick == 700:
                store.regress_data_type("likes", 1.3)
            for _ in range(int(20 + rng.integers(0, 3))):
                store.assoc_add(
                    user.object_id, "likes",
                    posts[int(rng.integers(0, 5))].object_id, time=float(tick),
                )
            emitter.ingest(tick * 60.0, store)

        config = DetectionConfig(
            name="tao",
            threshold=0.05,
            relative_threshold=True,
            rerun_interval=3600.0,
            windows=WindowSpec(36_000.0, 12_000.0, 6_000.0),
            long_term=False,
        )
        detector = FBDetect(config, series_filter={"metric": "io_cost"})
        result = detector.run(db, now=900 * 60.0)
        assert len(result.reported) == 1
        assert result.reported[0].context.metric_id == "tao.likes.io_cost"
