"""Tests for the remote-write-shaped HTTP ingest receiver."""

import json
import urllib.error
import urllib.request

import pytest

from repro.connectors import RemoteWriteReceiver, SeriesMapper, parse_remote_write
from repro.service import BackpressurePolicy, StreamingDetectionService


def _post(url, payload, expect_error=False):
    request = urllib.request.Request(
        url, data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=5.0) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        if not expect_error:
            raise
        return error.code, json.loads(error.read())


PROMPB_PAYLOAD = {
    "timeseries": [
        {
            "labels": [
                {"name": "__name__", "value": "http_latency_seconds"},
                {"name": "job", "value": "api"},
            ],
            "samples": [
                {"value": 0.12, "timestamp": 1_700_000_000_000},
                {"value": 0.13, "timestamp": 1_700_000_060_000},
            ],
        }
    ]
}

FLAT_PAYLOAD = {
    "series": [
        {
            "name": "queue_depth",
            "labels": {"job": "api"},
            "samples": [[1_700_000_000_000, 4.0], [1_700_000_060_000, 5.0]],
        }
    ]
}


class TestParse:
    def test_prompb_shape(self):
        samples = list(
            parse_remote_write(PROMPB_PAYLOAD, SeriesMapper(source="rw"))
        )
        assert len(samples) == 2
        assert samples[0].timestamp == 1_700_000_000.0  # ms -> s
        assert samples[0].tags["unit"] == "seconds"
        assert samples[0].tags["job"] == "api"

    def test_flat_shape(self):
        samples = list(
            parse_remote_write(FLAT_PAYLOAD, SeriesMapper(source="rw"))
        )
        assert len(samples) == 2
        assert samples[1].value == 5.0

    @pytest.mark.parametrize("payload", [
        [],  # not an object
        {},  # no timeseries
        {"timeseries": "nope"},
        {"timeseries": [{"labels": [], "samples": []}]},  # no name
        {"timeseries": [{"labels": [{"name": "__name__", "value": "x"}],
                         "samples": [{"value": "NaNish"}]}]},
        {"series": [{"name": "x", "samples": [[1, 2, 3]]}]},
    ])
    def test_malformed_payloads_raise(self, payload):
        with pytest.raises(ValueError):
            list(parse_remote_write(payload, SeriesMapper(source="rw")))


@pytest.fixture
def service():
    service = StreamingDetectionService(
        n_shards=2, queue_capacity=1024,
        backpressure=BackpressurePolicy.BLOCK, batch_size=64,
    )
    yield service
    service.close()


class TestReceiver:
    def test_push_lands_in_service(self, service):
        with RemoteWriteReceiver(service) as receiver:
            status, body = _post(receiver.url, PROMPB_PAYLOAD)
        assert status == 200
        assert body == {"offered": 2, "accepted": 2}
        service.flush()
        assert service.stats().accepted == 2
        counters = service.metrics.snapshot()["counters"]
        assert counters["connectors.remote_write.requests"] == 1
        assert counters["connectors.remote_write.samples"] == 2

    def test_both_payload_shapes_accepted(self, service):
        with RemoteWriteReceiver(service) as receiver:
            assert _post(receiver.url, PROMPB_PAYLOAD)[0] == 200
            assert _post(receiver.url, FLAT_PAYLOAD)[0] == 200
        service.flush()
        assert service.stats().accepted == 4

    def test_malformed_payload_rejected_with_400(self, service):
        with RemoteWriteReceiver(service) as receiver:
            status, body = _post(
                receiver.url, {"timeseries": "garbage"}, expect_error=True
            )
        assert status == 400
        assert "error" in body
        service.flush()
        assert service.stats().accepted == 0
        counters = service.metrics.snapshot()["counters"]
        assert counters["connectors.remote_write.rejected_requests"] == 1

    def test_unknown_path_404_wrong_method_405(self, service):
        with RemoteWriteReceiver(service) as receiver:
            base = f"http://{receiver.host}:{receiver.port}"
            status, _ = _post(
                f"{base}/api/v2/write", FLAT_PAYLOAD, expect_error=True
            )
            assert status == 404
            with urllib.request.urlopen(f"{base}/", timeout=5.0) as response:
                index = json.loads(response.read())
            assert "/api/v1/write" in index["endpoints"]

    def test_start_stop_idempotent(self, service):
        receiver = RemoteWriteReceiver(service)
        assert receiver.start() is receiver.start()
        port = receiver.port
        receiver.stop()
        receiver.stop()
        # Port is released: a new receiver can bind it again.
        fresh = RemoteWriteReceiver(service, port=port).start()
        fresh.stop()

    def test_counter_series_tagged_for_rebasing(self, service):
        payload = {
            "series": [
                {"name": "http_requests_total",
                 "samples": [[1_700_000_000_000, 100.0]]}
            ]
        }
        with RemoteWriteReceiver(service) as receiver:
            status, _ = _post(receiver.url, payload)
        assert status == 200
        service.flush()
        assert service.stats().accepted == 1
        # The receiver's default mapper marks it for admission rebasing.
        mapped = SeriesMapper(source="remote_write").map("http_requests_total")
        assert mapped.tags["type"] == "counter"
