"""Tests for repro.workloads."""

import numpy as np
import pytest

from repro.workloads import (
    LabeledWindow,
    WindowKind,
    build_preset,
    generate_corpus,
    generate_labeled_window,
    magnitude_distribution,
    preset_names,
)


class TestGenerateLabeledWindow:
    def test_window_slices(self, rng):
        window = generate_labeled_window(
            WindowKind.CLEAN, rng, historic_points=100, analysis_points=40, extended_points=10
        )
        assert window.historic.size == 100
        assert window.analysis.size == 40
        assert window.extended.size == 10
        assert window.values.size == 150

    def test_regression_has_magnitude(self, rng):
        window = generate_labeled_window(WindowKind.REGRESSION, rng)
        assert window.is_true_regression
        assert window.magnitude > 0
        # The shift is actually present in the data.
        assert window.extended.mean() > window.historic.mean() + 0.5 * window.magnitude

    def test_explicit_magnitude(self, rng):
        window = generate_labeled_window(WindowKind.REGRESSION, rng, magnitude=0.0005)
        assert window.magnitude == 0.0005

    def test_transient_recovers(self, rng):
        window = generate_labeled_window(WindowKind.TRANSIENT, rng)
        assert not window.is_true_regression
        assert window.magnitude == 0.0
        # Extended window back at baseline.
        assert window.extended.mean() == pytest.approx(window.historic.mean(), rel=0.05)

    def test_seasonal_has_periodicity(self, rng):
        window = generate_labeled_window(WindowKind.SEASONAL, rng)
        from repro.stats.autocorrelation import has_significant_seasonality

        assert has_significant_seasonality(window.values)

    def test_gradual_is_true_regression(self, rng):
        window = generate_labeled_window(WindowKind.GRADUAL, rng)
        assert window.is_true_regression
        assert window.values[-20:].mean() > window.values[:20].mean()

    def test_values_nonnegative(self, rng):
        for kind in WindowKind:
            window = generate_labeled_window(kind, rng)
            assert window.values.min() >= 0.0


class TestGenerateCorpus:
    def test_composition(self):
        corpus = generate_corpus(
            n_regressions=5, n_clean=7, n_transients=3, n_seasonal=2, n_gradual=1
        )
        assert len(corpus) == 18
        kinds = [w.kind for w in corpus]
        assert kinds.count(WindowKind.REGRESSION) == 5
        assert kinds.count(WindowKind.CLEAN) == 7

    def test_deterministic(self):
        c1 = generate_corpus(3, 3, 3, seed=42)
        c2 = generate_corpus(3, 3, 3, seed=42)
        assert all(np.allclose(a.values, b.values) for a, b in zip(c1, c2))

    def test_magnitude_distribution(self):
        corpus = generate_corpus(n_regressions=50, n_clean=0, n_transients=0, seed=7)
        magnitudes = magnitude_distribution(corpus)
        assert magnitudes.size == 50
        # Paper-like spread: smallest well below median, largest well above.
        assert magnitudes.min() < np.median(magnitudes) / 3
        assert magnitudes.max() > np.median(magnitudes) * 3


class TestPresets:
    def test_all_presets_build(self):
        for key in preset_names():
            preset = build_preset(key)
            assert preset.config is not None
            assert preset.service.n_servers > 0
            assert preset.description

    def test_invoicer_is_tiny(self):
        assert build_preset("invoicer_short").service.n_servers == 16

    def test_ct_has_no_stack_samples(self):
        preset = build_preset("ct_supply_short")
        assert preset.service.samples_per_interval == 0
        assert not preset.config.uses_stack_traces

    def test_unknown_preset_raises(self):
        with pytest.raises(KeyError):
            build_preset("nope")

    def test_deterministic_call_graph(self):
        g1 = build_preset("invoicer_short", seed=5).service.call_graph
        g2 = build_preset("invoicer_short", seed=5).service.call_graph
        assert g1.names() == g2.names()
