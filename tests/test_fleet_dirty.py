"""Tests for repro.fleet.dirty (dirty-data stream transforms)."""

import math

import pytest

from repro.fleet import (
    DirtyDataSpec,
    dirty_stream,
    drop_gaps,
    inject_nan_bursts,
    reorder_within_blocks,
    rollover_counter,
)
from repro.service import Sample


def stream(n_ticks=50, series=("a", "b"), interval=60.0):
    samples = []
    for tick in range(n_ticks):
        for name in series:
            samples.append(
                Sample(name, tick * interval, float(tick), {"metric": "gcpu"})
            )
    return samples


class TestReorder:
    def test_same_points_locally_permuted(self):
        clean = stream()
        dirty = reorder_within_blocks(clean, block=8, seed=1)
        assert dirty != clean  # the shuffle actually moved something
        assert sorted(dirty, key=lambda s: (s.name, s.timestamp)) == sorted(
            clean, key=lambda s: (s.name, s.timestamp)
        )
        # No point moved across its block boundary.
        for index, sample in enumerate(dirty):
            original = clean.index(sample)
            assert original // 8 == index // 8

    def test_deterministic_under_seed(self):
        clean = stream()
        assert reorder_within_blocks(clean, seed=3) == reorder_within_blocks(
            clean, seed=3
        )
        assert reorder_within_blocks(clean, seed=3) != reorder_within_blocks(
            clean, seed=4
        )

    def test_invalid_block(self):
        with pytest.raises(ValueError):
            reorder_within_blocks([], block=0)


class TestNanBursts:
    def test_adds_extras_only(self):
        clean = stream()
        dirty = inject_nan_bursts(clean, ["a"], bursts=2, burst_len=3, seed=0)
        extras = [s for s in dirty if s.value != s.value]
        assert extras and all(s.name == "a" for s in extras)
        # Every clean point survives untouched, in order.
        assert [s for s in dirty if s.value == s.value] == clean

    def test_unknown_series_is_noop(self):
        clean = stream()
        assert inject_nan_bursts(clean, ["nope"], seed=0) == clean


class TestGaps:
    def test_drops_only_target_series(self):
        clean = stream(n_ticks=200)
        dirty = drop_gaps(clean, ["b"], fraction=0.2, seed=0)
        assert [s for s in dirty if s.name == "a"] == [
            s for s in clean if s.name == "a"
        ]
        remaining = [s for s in dirty if s.name == "b"]
        assert 120 < len(remaining) < 195  # ~20% gone

    def test_fraction_validated(self):
        with pytest.raises(ValueError):
            drop_gaps([], [], fraction=1.5)


class TestRollover:
    def test_tail_rebased_to_restart(self):
        counter = [
            Sample("c", float(t), float(10 * (t + 1)), {"type": "counter"})
            for t in range(6)
        ]
        dirty = rollover_counter(counter, "c", at_index=3)
        values = [s.value for s in dirty]
        # Pre-restart untouched; tail re-based to the last value (30).
        assert values == [10.0, 20.0, 30.0, 10.0, 20.0, 30.0]

    def test_admission_reconstructs_exact_cumulative(self):
        from repro.quality import HELD, AdmissionController, QualityConfig

        counter = [
            Sample("c", float(t), float(7 * (t + 1)), {"type": "counter"})
            for t in range(10)
        ]
        dirty = rollover_counter(counter, "c")
        ctl = AdmissionController(QualityConfig())
        for sample in dirty:
            assert ctl.admit(sample)[0] == HELD  # counters ride the buffer
        repaired = [s.value for s in ctl.drain_pending()]
        assert repaired == [s.value for s in counter]
        assert ctl.counter_resets == 1

    def test_too_short_series_is_noop(self):
        single = [Sample("c", 0.0, 1.0, {"type": "counter"})]
        assert rollover_counter(single, "c") == single

    def test_bad_index_rejected(self):
        counter = [Sample("c", float(t), 1.0, {}) for t in range(4)]
        with pytest.raises(ValueError):
            rollover_counter(counter, "c", at_index=0)


class TestDirtyStream:
    def test_spec_composes_all_damage(self):
        clean = stream(n_ticks=100, series=("a", "b", "c"))
        counter = [
            Sample("cnt", float(t) * 60.0, float(t), {"type": "counter"})
            for t in range(100)
        ]
        spec = DirtyDataSpec(
            seed=2,
            reorder_block=12,
            nan_series=("a",),
            gap_series=("b",),
            gap_fraction=0.1,
            rollover_series=("cnt",),
        )
        dirty = dirty_stream(clean + counter, spec)
        nans = [s for s in dirty if s.value != s.value]
        assert nans and all(s.name == "a" for s in nans)
        assert len([s for s in dirty if s.name == "b"]) < 100
        cnt = sorted(
            (s for s in dirty if s.name == "cnt"), key=lambda s: s.timestamp
        )
        assert min(s.value for s in cnt[50:]) < cnt[49].value  # restarted

    def test_default_spec_reorders_only(self):
        clean = stream()
        dirty = dirty_stream(clean, DirtyDataSpec(seed=0))
        assert len(dirty) == len(clean)
        assert not any(math.isnan(s.value) for s in dirty)
