"""Tests for repro.service.checkpoint and service-level kill/restore.

The headline test streams a fleet through the service, kills it after
the first incident report, restores from the checkpoint, replays the
rest of the stream, and asserts the restored run delivers exactly the
reports the uninterrupted run would have — no losses, no re-alerts.
"""

import json
import os

import numpy as np
import pytest

from repro.config import DetectionConfig
from repro.runtime import CollectingSink
from repro.service import (
    BackpressurePolicy,
    CheckpointError,
    CheckpointManager,
    Sample,
    StreamingDetectionService,
)
from repro.tsdb import WindowSpec


def small_config(**overrides):
    defaults = dict(
        name="test",
        threshold=0.00005,
        rerun_interval=6_000.0,
        windows=WindowSpec(historic=36_000.0, analysis=12_000.0, extended=6_000.0),
        long_term=False,
    )
    defaults.update(overrides)
    return DetectionConfig(**defaults)


class TestCheckpointManager:
    def test_round_trip(self, tmp_path):
        manager = CheckpointManager(str(tmp_path / "ckpt"))
        meta = {"clock": 5400.0, "ledger": {"svc.sub.gcpu": [1200.0]}}
        shards = {0: {"queue": [1, 2, 3]}, 1: {"queue": []}}
        manifest_path = manager.save(meta, shards)
        assert os.path.isfile(manifest_path)
        assert manager.exists()

        loaded_meta, loaded_shards = manager.load()
        assert loaded_meta == meta
        # JSON stringifies the shard keys; payloads survive pickling.
        assert loaded_shards == {"0": {"queue": [1, 2, 3]}, "1": {"queue": []}}

    def test_generation_increments(self, tmp_path):
        manager = CheckpointManager(str(tmp_path))
        manager.save({}, {0: "a"})
        manager.save({}, {0: "b"})
        with open(manager.manifest_path, encoding="utf-8") as source:
            assert json.load(source)["generation"] == 2

    def test_missing_manifest_raises(self, tmp_path):
        manager = CheckpointManager(str(tmp_path / "nowhere"))
        assert not manager.exists()
        with pytest.raises(CheckpointError, match="no checkpoint manifest"):
            manager.load()

    def test_corrupt_blob_detected(self, tmp_path):
        manager = CheckpointManager(str(tmp_path))
        manager.save({}, {0: list(range(100))})
        with open(manager.manifest_path, encoding="utf-8") as source:
            blob_name = json.load(source)["shards"]["0"]["file"]
        blob_path = tmp_path / blob_name
        payload = bytearray(blob_path.read_bytes())
        payload[len(payload) // 2] ^= 0xFF
        blob_path.write_bytes(bytes(payload))
        with pytest.raises(CheckpointError, match="checksum mismatch"):
            manager.load()

    def test_version_mismatch_raises(self, tmp_path):
        manager = CheckpointManager(str(tmp_path))
        manager.save({}, {0: "x"})
        # Rewrite every manifest copy (pointer + generation) so there is
        # no intact generation left to fall back to.
        for name in ("manifest.json", "manifest.g1.json"):
            path = tmp_path / name
            manifest = json.loads(path.read_text(encoding="utf-8"))
            manifest["version"] = 99
            path.write_text(json.dumps(manifest), encoding="utf-8")
        with pytest.raises(CheckpointError, match="version"):
            manager.load()

    def test_corrupt_manifest_raises(self, tmp_path):
        manager = CheckpointManager(str(tmp_path))
        manager.save({}, {})
        for name in ("manifest.json", "manifest.g1.json"):
            (tmp_path / name).write_text("{not json", encoding="utf-8")
        with pytest.raises(CheckpointError, match="unreadable manifest"):
            manager.load()


class TestCheckpointGenerations:
    @staticmethod
    def _blob_of(directory, generation, shard="0"):
        manifest = json.loads(
            (directory / f"manifest.g{generation}.json").read_text(encoding="utf-8")
        )
        return directory / manifest["shards"][shard]["file"]

    def test_corrupt_newest_blob_falls_back_one_generation(self, tmp_path):
        manager = CheckpointManager(str(tmp_path))
        manager.save({"clock": 1.0}, {0: "one"})
        manager.save({"clock": 2.0}, {0: "two"})
        blob = self._blob_of(tmp_path, 2)
        payload = bytearray(blob.read_bytes())
        payload[len(payload) // 2] ^= 0xFF
        blob.write_bytes(bytes(payload))

        meta, shards = manager.load()
        assert meta == {"clock": 1.0}
        assert shards == {"0": "one"}
        info = manager.last_load()
        assert info["generation"] == 1
        assert info["fallbacks"] == 1
        assert "checksum mismatch" in info["skipped"][0]

    def test_truncated_blob_and_corrupt_manifest_fall_back(self, tmp_path):
        manager = CheckpointManager(str(tmp_path))
        manager.save({"clock": 1.0}, {0: "one"})
        manager.save({"clock": 2.0}, {0: "two"})
        manager.save({"clock": 3.0}, {0: "three"})
        # Generation 3: truncated blob.  Generation 2: mangled manifest.
        blob = self._blob_of(tmp_path, 3)
        blob.write_bytes(blob.read_bytes()[:4])
        (tmp_path / "manifest.g2.json").write_text("{not json", encoding="utf-8")

        meta, shards = manager.load()
        assert meta == {"clock": 1.0} and shards == {"0": "one"}
        assert manager.last_load()["fallbacks"] == 2

    def test_intact_newest_means_no_fallback(self, tmp_path):
        manager = CheckpointManager(str(tmp_path))
        manager.save({"clock": 1.0}, {0: "one"})
        manager.save({"clock": 2.0}, {0: "two"})
        meta, _ = manager.load()
        assert meta == {"clock": 2.0}
        assert manager.last_load()["fallbacks"] == 0

    def test_old_generations_and_orphans_pruned(self, tmp_path):
        manager = CheckpointManager(str(tmp_path), keep_generations=2)
        for round_index in range(5):
            manager.save({"round": round_index}, {0: "x", 1: "y"})
        names = sorted(os.listdir(tmp_path))
        assert "manifest.g4.json" in names and "manifest.g5.json" in names
        assert not any(name == f"manifest.g{g}.json" for g in (1, 2, 3) for name in names)
        # Every remaining blob is referenced by a retained manifest.
        referenced = set()
        for generation in (4, 5):
            manifest = json.loads(
                (tmp_path / f"manifest.g{generation}.json").read_text(encoding="utf-8")
            )
            referenced.update(e["file"] for e in manifest["shards"].values())
        blobs = {name for name in names if name.endswith(".pkl")}
        assert blobs == referenced

    def test_shard_shrink_prunes_stale_blobs(self, tmp_path):
        manager = CheckpointManager(str(tmp_path), keep_generations=1)
        manager.save({}, {0: "a", 1: "b", 2: "c"})
        manager.save({}, {0: "a"})
        blobs = {n for n in os.listdir(tmp_path) if n.endswith(".pkl")}
        assert blobs == {"shard-0.g2.pkl"}

    def test_every_generation_corrupt_raises(self, tmp_path):
        manager = CheckpointManager(str(tmp_path))
        manager.save({}, {0: "one"})
        manager.save({}, {0: "two"})
        for generation in (1, 2):
            blob = self._blob_of(tmp_path, generation)
            blob.write_bytes(b"garbage")
        with pytest.raises(CheckpointError, match="every checkpoint generation"):
            manager.load()

    def test_keep_generations_validated(self, tmp_path):
        with pytest.raises(ValueError, match="keep_generations"):
            CheckpointManager(str(tmp_path), keep_generations=0)


class TestServiceRestoreFallback:
    def test_restore_falls_back_with_ledger_intact(self, stream, tmp_path):
        """Corrupt the newest generation in-place; restore must fall back
        to the previous one and keep the re-alert ledger intact."""
        sink = CollectingSink()
        service = make_service(sink)
        feed(service, stream, 0, KILL_TICK)
        assert sink.reports, "a report must land before the checkpoints"

        directory = str(tmp_path / "ckpt")
        service.checkpoint(directory)
        service.checkpoint(directory)  # generation 2, identical state
        ledger_before = {k: list(v) for k, v in service._reported_ledger.items()}

        # Damage generation 2: one shard blob flipped, its manifest cut.
        manifest2 = json.loads(
            (tmp_path / "ckpt" / "manifest.g2.json").read_text(encoding="utf-8")
        )
        blob_name = manifest2["shards"]["0"]["file"]
        blob = tmp_path / "ckpt" / blob_name
        payload = bytearray(blob.read_bytes())
        payload[len(payload) // 2] ^= 0xFF
        blob.write_bytes(bytes(payload))

        sink_after = CollectingSink()
        restored = StreamingDetectionService.restore(directory, sinks=[sink_after])
        assert restored._reported_ledger == ledger_before
        counters = restored.metrics.snapshot()["counters"]
        assert counters["checkpoint.fallbacks"] == 1.0
        fallback_events = restored.events.events(kind="checkpoint_fallback")
        assert len(fallback_events) == 1
        assert fallback_events[0].fields["generation"] == 1

        # Replay the tail: no re-alerts, same reports as an undisturbed run.
        reference_sink = CollectingSink()
        reference = make_service(reference_sink)
        feed(reference, stream, 0, N_TICKS)
        feed(restored, stream, KILL_TICK, N_TICKS)
        combined = report_keys(sink.reports) + report_keys(sink_after.reports)
        assert combined == report_keys(reference_sink.reports)
        assert len(set(combined)) == len(combined), "duplicate report after fallback"


# -- streaming kill/restore equivalence ---------------------------------

N_TICKS = 1_100
INTERVAL = 60.0
CHANGE_TICK = 700  # regression lands at t=42000, inside the first scan's window
KILL_TICK = 950  # after the first scan (t=54000) has reported
SERIES = [f"svc.sub{i}.gcpu" for i in range(8)]


def make_stream(seed=7):
    """Per-tick sample batches; svc.sub3 regresses at CHANGE_TICK."""
    rng = np.random.default_rng(seed)
    table = {}
    for index, name in enumerate(SERIES):
        values = rng.normal(0.001, 0.00002, N_TICKS)
        if index == 3:
            values[CHANGE_TICK:] += 0.0003
        table[name] = values
    return [
        [
            Sample(
                name,
                tick * INTERVAL,
                float(table[name][tick]),
                {"metric": "gcpu", "service": "svc", "subroutine": name.split(".")[1]},
            )
            for name in SERIES
        ]
        for tick in range(N_TICKS)
    ]


def make_service(sink):
    service = StreamingDetectionService(
        n_shards=2,
        sinks=[sink],
        queue_capacity=256,
        backpressure=BackpressurePolicy.BLOCK,
        batch_size=64,
    )
    service.register_monitor("gcpu", small_config(), series_filter={"metric": "gcpu"})
    return service


def feed(service, ticks, start, end, chunk=100):
    """Stream ticks [start, end), advancing detection after each chunk."""
    for begin in range(start, end, chunk):
        batch = ticks[begin : min(begin + chunk, end)]
        for tick in batch:
            for sample in tick:
                service.ingest_sample(sample)
        service.advance_to(batch[-1][0].timestamp + INTERVAL)


def report_keys(reports):
    return [(r.metric_id, r.change_time) for r in reports]


@pytest.fixture(scope="module")
def stream():
    return make_stream()


class TestKillRestoreEquivalence:
    def test_restored_run_matches_uninterrupted(self, stream, tmp_path):
        # Reference: one service sees the whole stream.
        reference_sink = CollectingSink()
        reference = make_service(reference_sink)
        feed(reference, stream, 0, N_TICKS)

        # Interrupted: kill after the first report, restore, replay the rest.
        sink_before = CollectingSink()
        victim = make_service(sink_before)
        feed(victim, stream, 0, KILL_TICK)
        assert sink_before.reports, "first report must land before the kill"

        directory = str(tmp_path / "ckpt")
        victim.checkpoint(directory)
        del victim  # the "crash"

        sink_after = CollectingSink()
        restored = StreamingDetectionService.restore(directory, sinks=[sink_after])
        feed(restored, stream, KILL_TICK, N_TICKS)

        combined = report_keys(sink_before.reports) + report_keys(sink_after.reports)
        assert combined == report_keys(reference_sink.reports)
        assert len(set(combined)) == len(combined), "duplicate report after restore"
        assert {r.metric_id for r in sink_before.reports} == {"svc.sub3.gcpu"}

        # The restored service kept counting where the victim stopped.
        stats = restored.stats()
        assert stats.reported == len(combined)
        assert stats.scans == reference.stats().scans
        assert stats.clock == reference.stats().clock

    def test_restore_preserves_series_and_ledger(self, stream, tmp_path):
        sink = CollectingSink()
        service = make_service(sink)
        feed(service, stream, 0, KILL_TICK)
        directory = str(tmp_path / "ckpt")
        service.checkpoint(directory)

        restored = StreamingDetectionService.restore(directory)
        assert restored.clock == service.clock
        assert restored.monitors() == ["gcpu"]
        assert restored._reported_ledger == service._reported_ledger
        assert restored.funnel.counts == service.funnel.counts
        total_series = sum(
            len(restored.shard_database(shard_id)) for shard_id in range(2)
        )
        assert total_series == len(SERIES)

    def test_queued_unflushed_samples_survive(self, tmp_path):
        service = StreamingDetectionService(n_shards=2, queue_capacity=64)
        for index in range(10):
            service.ingest(f"q.sub{index}.gcpu", 60.0 * index, 0.001)
        assert service.stats().flushed == 0  # still queued

        directory = str(tmp_path / "ckpt")
        service.checkpoint(directory)
        restored = StreamingDetectionService.restore(directory)
        assert restored.stats().accepted == 10
        assert restored.flush() == 10
        total_series = sum(
            len(restored.shard_database(shard_id)) for shard_id in range(2)
        )
        assert total_series == 10

    def test_restore_missing_checkpoint_raises(self, tmp_path):
        with pytest.raises(CheckpointError):
            StreamingDetectionService.restore(str(tmp_path / "empty"))
