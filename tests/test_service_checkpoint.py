"""Tests for repro.service.checkpoint and service-level kill/restore.

The headline test streams a fleet through the service, kills it after
the first incident report, restores from the checkpoint, replays the
rest of the stream, and asserts the restored run delivers exactly the
reports the uninterrupted run would have — no losses, no re-alerts.
"""

import json
import os

import numpy as np
import pytest

from repro.config import DetectionConfig
from repro.runtime import CollectingSink
from repro.service import (
    BackpressurePolicy,
    CheckpointError,
    CheckpointManager,
    Sample,
    StreamingDetectionService,
)
from repro.tsdb import WindowSpec


def small_config(**overrides):
    defaults = dict(
        name="test",
        threshold=0.00005,
        rerun_interval=6_000.0,
        windows=WindowSpec(historic=36_000.0, analysis=12_000.0, extended=6_000.0),
        long_term=False,
    )
    defaults.update(overrides)
    return DetectionConfig(**defaults)


class TestCheckpointManager:
    def test_round_trip(self, tmp_path):
        manager = CheckpointManager(str(tmp_path / "ckpt"))
        meta = {"clock": 5400.0, "ledger": {"svc.sub.gcpu": [1200.0]}}
        shards = {0: {"queue": [1, 2, 3]}, 1: {"queue": []}}
        manifest_path = manager.save(meta, shards)
        assert os.path.isfile(manifest_path)
        assert manager.exists()

        loaded_meta, loaded_shards = manager.load()
        assert loaded_meta == meta
        # JSON stringifies the shard keys; payloads survive pickling.
        assert loaded_shards == {"0": {"queue": [1, 2, 3]}, "1": {"queue": []}}

    def test_generation_increments(self, tmp_path):
        manager = CheckpointManager(str(tmp_path))
        manager.save({}, {0: "a"})
        manager.save({}, {0: "b"})
        with open(manager.manifest_path, encoding="utf-8") as source:
            assert json.load(source)["generation"] == 2

    def test_missing_manifest_raises(self, tmp_path):
        manager = CheckpointManager(str(tmp_path / "nowhere"))
        assert not manager.exists()
        with pytest.raises(CheckpointError, match="no checkpoint manifest"):
            manager.load()

    def test_corrupt_blob_detected(self, tmp_path):
        manager = CheckpointManager(str(tmp_path))
        manager.save({}, {0: list(range(100))})
        blob_path = tmp_path / "shard-0.pkl"
        payload = bytearray(blob_path.read_bytes())
        payload[len(payload) // 2] ^= 0xFF
        blob_path.write_bytes(bytes(payload))
        with pytest.raises(CheckpointError, match="checksum mismatch"):
            manager.load()

    def test_version_mismatch_raises(self, tmp_path):
        manager = CheckpointManager(str(tmp_path))
        manager.save({}, {0: "x"})
        with open(manager.manifest_path, encoding="utf-8") as source:
            manifest = json.load(source)
        manifest["version"] = 99
        with open(manager.manifest_path, "w", encoding="utf-8") as sink:
            json.dump(manifest, sink)
        with pytest.raises(CheckpointError, match="version"):
            manager.load()

    def test_corrupt_manifest_raises(self, tmp_path):
        manager = CheckpointManager(str(tmp_path))
        manager.save({}, {})
        with open(manager.manifest_path, "w", encoding="utf-8") as sink:
            sink.write("{not json")
        with pytest.raises(CheckpointError, match="unreadable manifest"):
            manager.load()


# -- streaming kill/restore equivalence ---------------------------------

N_TICKS = 1_100
INTERVAL = 60.0
CHANGE_TICK = 700  # regression lands at t=42000, inside the first scan's window
KILL_TICK = 950  # after the first scan (t=54000) has reported
SERIES = [f"svc.sub{i}.gcpu" for i in range(8)]


def make_stream(seed=7):
    """Per-tick sample batches; svc.sub3 regresses at CHANGE_TICK."""
    rng = np.random.default_rng(seed)
    table = {}
    for index, name in enumerate(SERIES):
        values = rng.normal(0.001, 0.00002, N_TICKS)
        if index == 3:
            values[CHANGE_TICK:] += 0.0003
        table[name] = values
    return [
        [
            Sample(
                name,
                tick * INTERVAL,
                float(table[name][tick]),
                {"metric": "gcpu", "service": "svc", "subroutine": name.split(".")[1]},
            )
            for name in SERIES
        ]
        for tick in range(N_TICKS)
    ]


def make_service(sink):
    service = StreamingDetectionService(
        n_shards=2,
        sinks=[sink],
        queue_capacity=256,
        backpressure=BackpressurePolicy.BLOCK,
        batch_size=64,
    )
    service.register_monitor("gcpu", small_config(), series_filter={"metric": "gcpu"})
    return service


def feed(service, ticks, start, end, chunk=100):
    """Stream ticks [start, end), advancing detection after each chunk."""
    for begin in range(start, end, chunk):
        batch = ticks[begin : min(begin + chunk, end)]
        for tick in batch:
            for sample in tick:
                service.ingest_sample(sample)
        service.advance_to(batch[-1][0].timestamp + INTERVAL)


def report_keys(reports):
    return [(r.metric_id, r.change_time) for r in reports]


@pytest.fixture(scope="module")
def stream():
    return make_stream()


class TestKillRestoreEquivalence:
    def test_restored_run_matches_uninterrupted(self, stream, tmp_path):
        # Reference: one service sees the whole stream.
        reference_sink = CollectingSink()
        reference = make_service(reference_sink)
        feed(reference, stream, 0, N_TICKS)

        # Interrupted: kill after the first report, restore, replay the rest.
        sink_before = CollectingSink()
        victim = make_service(sink_before)
        feed(victim, stream, 0, KILL_TICK)
        assert sink_before.reports, "first report must land before the kill"

        directory = str(tmp_path / "ckpt")
        victim.checkpoint(directory)
        del victim  # the "crash"

        sink_after = CollectingSink()
        restored = StreamingDetectionService.restore(directory, sinks=[sink_after])
        feed(restored, stream, KILL_TICK, N_TICKS)

        combined = report_keys(sink_before.reports) + report_keys(sink_after.reports)
        assert combined == report_keys(reference_sink.reports)
        assert len(set(combined)) == len(combined), "duplicate report after restore"
        assert {r.metric_id for r in sink_before.reports} == {"svc.sub3.gcpu"}

        # The restored service kept counting where the victim stopped.
        stats = restored.stats()
        assert stats.reported == len(combined)
        assert stats.scans == reference.stats().scans
        assert stats.clock == reference.stats().clock

    def test_restore_preserves_series_and_ledger(self, stream, tmp_path):
        sink = CollectingSink()
        service = make_service(sink)
        feed(service, stream, 0, KILL_TICK)
        directory = str(tmp_path / "ckpt")
        service.checkpoint(directory)

        restored = StreamingDetectionService.restore(directory)
        assert restored.clock == service.clock
        assert restored.monitors() == ["gcpu"]
        assert restored._reported_ledger == service._reported_ledger
        assert restored.funnel.counts == service.funnel.counts
        total_series = sum(
            len(restored.shard_database(shard_id)) for shard_id in range(2)
        )
        assert total_series == len(SERIES)

    def test_queued_unflushed_samples_survive(self, tmp_path):
        service = StreamingDetectionService(n_shards=2, queue_capacity=64)
        for index in range(10):
            service.ingest(f"q.sub{index}.gcpu", 60.0 * index, 0.001)
        assert service.stats().flushed == 0  # still queued

        directory = str(tmp_path / "ckpt")
        service.checkpoint(directory)
        restored = StreamingDetectionService.restore(directory)
        assert restored.stats().accepted == 10
        assert restored.flush() == 10
        total_series = sum(
            len(restored.shard_database(shard_id)) for shard_id in range(2)
        )
        assert total_series == 10

    def test_restore_missing_checkpoint_raises(self, tmp_path):
        with pytest.raises(CheckpointError):
            StreamingDetectionService.restore(str(tmp_path / "empty"))
