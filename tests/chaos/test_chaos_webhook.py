"""Chaos drill: the webhook endpoint dies mid-run.

The alerting edge's failure contract, asserted end-to-end: a service
streaming a regression-bearing workload to both a
:class:`~repro.runtime.CollectingSink` and a
:class:`~repro.connectors.WebhookSink` whose endpoint is killed in the
middle of the run must

- deliver **exactly the same** incident reports (metric, change time)
  as a clean run with no webhook at all — a dying alert receiver never
  changes what detection reports;
- complete every shard advance without an exception — webhook I/O never
  runs on the scan path;
- account for every enqueued alert on the sink's counters (delivered
  before the kill, failed after — none silently vanish).
"""

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import numpy as np

from repro.config import DetectionConfig
from repro.connectors import WebhookSink
from repro.runtime import CollectingSink
from repro.service import BackpressurePolicy, Sample, StreamingDetectionService
from repro.tsdb import WindowSpec

N_TICKS = 1_100
INTERVAL = 60.0
SERIES = [f"svc.sub{i}.gcpu" for i in range(8)]
REGRESSED = {SERIES[2], SERIES[5]}  # two planted regressions
ADVANCE_EVERY = 100  # ticks per ingest/advance round
KILL_ROUND = 6  # the endpoint dies before this advance round


def small_config():
    return DetectionConfig(
        name="chaos-webhook",
        threshold=0.00005,
        rerun_interval=6_000.0,
        windows=WindowSpec(historic=36_000.0, analysis=12_000.0,
                           extended=6_000.0),
        long_term=False,
    )


class RecordingEndpoint:
    """In-process webhook receiver that can be killed mid-run."""

    def __init__(self):
        self.accepted = []
        self._lock = threading.Lock()
        endpoint = self

        class Handler(BaseHTTPRequestHandler):
            def do_POST(self):
                body = self.rfile.read(
                    int(self.headers.get("Content-Length", 0))
                )
                with endpoint._lock:
                    endpoint.accepted.append(json.loads(body))
                self.send_response(200)
                self.send_header("Content-Length", "2")
                self.end_headers()
                self.wfile.write(b"ok")

            def log_message(self, *args):
                pass

        self._server = ThreadingHTTPServer(("127.0.0.1", 0), Handler)
        self._thread = threading.Thread(
            target=self._server.serve_forever, daemon=True
        )
        self._thread.start()
        self.url = f"http://127.0.0.1:{self._server.server_address[1]}/hook"

    def kill(self):
        self._server.shutdown()
        self._server.server_close()


def make_stream(seed=23):
    rng = np.random.default_rng(seed)
    ticks = []
    for tick in range(N_TICKS):
        batch = []
        for name in SERIES:
            value = float(rng.normal(0.001, 0.00002))
            if name in REGRESSED and tick >= 700:
                value += 0.0004
            batch.append(Sample(name, tick * INTERVAL, value,
                                {"metric": "gcpu"}))
        ticks.append(batch)
    return ticks


def run_stream(ticks, webhook_sink=None, on_round=None):
    """Drive one full run; returns the delivered report keys."""
    collecting = CollectingSink()
    sinks = [collecting] if webhook_sink is None else [collecting, webhook_sink]
    service = StreamingDetectionService(
        n_shards=4, sinks=sinks, queue_capacity=1 << 16,
        backpressure=BackpressurePolicy.BLOCK, batch_size=1024,
    )
    service.register_monitor(
        "gcpu", small_config(), series_filter={"metric": "gcpu"}
    )
    round_index = 0
    for start in range(0, N_TICKS, ADVANCE_EVERY):
        for batch in ticks[start:start + ADVANCE_EVERY]:
            service.ingest_many(batch)
        round_index += 1
        if on_round is not None:
            on_round(round_index)
        # Must never raise, whatever the webhook endpoint is doing.
        service.advance_to(min(start + ADVANCE_EVERY, N_TICKS) * INTERVAL)
    counters = dict(service.metrics.snapshot()["counters"])
    service.close()
    keys = [(r.metric_id, r.change_time) for r in collecting.reports]
    return keys, counters


def test_webhook_endpoint_dies_mid_run():
    ticks = make_stream()

    # Clean reference: no webhook at all.
    clean_keys, _ = run_stream(ticks)
    assert len(clean_keys) >= 2  # both planted regressions caught

    # Chaos run: the endpoint is killed partway through the stream.
    endpoint = RecordingEndpoint()
    sink = WebhookSink(
        endpoint.url, timeout=0.5, max_retries=2,
        backoff=0.01, backoff_cap=0.05,
    )

    def on_round(round_index):
        if round_index == KILL_ROUND:
            endpoint.kill()

    chaos_keys, counters = run_stream(ticks, webhook_sink=sink,
                                      on_round=on_round)
    sink.close(timeout=10.0)

    # The alert set is identical: a dead alert receiver never changes
    # what detection reports, and no advance failed along the way.
    assert chaos_keys == clean_keys

    # Every enqueued alert is accounted for: delivered before the kill
    # or failed after it — never silently lost, never blocking.
    tally = sink.counters
    assert tally["enqueued"] == len(clean_keys)
    assert tally["delivered"] + tally["failed"] == tally["enqueued"]
    assert tally["delivered"] == len(endpoint.accepted)

    # No sink exception leaked into the service delivery loop: the
    # webhook sink enqueues without raising, so the service counts
    # every delivery as a success.
    assert counters.get("service.sinks.errors", 0) == 0


def test_webhook_endpoint_dead_from_the_start():
    """Same stream against an endpoint that never existed."""
    ticks = make_stream()
    clean_keys, _ = run_stream(ticks)

    sink = WebhookSink(
        "http://127.0.0.1:9/hook", timeout=0.2, max_retries=1,
        backoff=0.01, backoff_cap=0.02,
    )
    chaos_keys, _ = run_stream(ticks, webhook_sink=sink)
    sink.close(timeout=10.0)

    assert chaos_keys == clean_keys
    assert sink.counters["failed"] == sink.counters["enqueued"]
    assert sink.counters["enqueued"] == len(clean_keys)
