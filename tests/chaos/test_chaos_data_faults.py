"""Chaos drill for the data plane: ``data.corrupt`` / ``data.reorder`` /
``data.gap`` fault sites versus a clean run.

Data faults differ from process faults: they genuinely remove points
(gaps) or replace them with garbage (corruption), so the dirty run
cannot be byte-identical to the clean one.  The contract is instead:

- zero false alerts and zero missed regressions — the *set* of alerted
  metrics matches the clean run exactly;
- every damaged sample is accounted for — quarantined (corruption),
  absent (gaps), or re-sequenced (reordering), never silently wrong in
  a shard TSDB;
- quarantine state and admission counters survive the SIGKILL pattern
  (checkpoint -> abandon the process -> restore), under parallel
  (``workers=4``) shard advances.

``REPRO_CHAOS_SEED`` overrides the fault-plan seed, mirroring the
process-fault drill next door.
"""

import math
import os

import numpy as np
import pytest

from repro.config import DetectionConfig
from repro.faults import FaultInjector, FaultKind, FaultPlan, FaultSpec
from repro.runtime import CollectingSink
from repro.service import BackpressurePolicy, Sample, StreamingDetectionService
from repro.tsdb import WindowSpec

N_TICKS = 1_100
INTERVAL = 60.0
CHANGE_TICK = 700
REGRESS_INDEX = 3
SERIES = [f"svc.sub{i}.gcpu" for i in range(8)]
N_SHARDS = 4
ADVANCE_EVERY = 200  # ticks per ingest/advance round
CHECKPOINT_ROUND = 2  # round after which the kill-pattern checkpoint lands

# Budgets for the one data-fault seed: finite, so the run provably
# absorbs *all* of the damage (``injector.exhausted()``), and small
# enough that gaps stay far below the gap-gate's coverage floor.
CORRUPT_BUDGET = 15
GAP_BUDGET = 60
REORDER_BUDGET = 400


def _seed():
    return int(os.environ.get("REPRO_CHAOS_SEED", "0"))


def small_config():
    return DetectionConfig(
        name="chaos-data",
        threshold=0.00005,
        rerun_interval=6_000.0,
        windows=WindowSpec(historic=36_000.0, analysis=12_000.0, extended=6_000.0),
        long_term=False,
    )


def make_stream(seed=7):
    rng = np.random.default_rng(seed)
    table = {}
    for index, name in enumerate(SERIES):
        values = rng.normal(0.001, 0.00002, N_TICKS)
        if index == REGRESS_INDEX:
            values[CHANGE_TICK:] += 0.0003
        table[name] = values
    samples = []
    for name in SERIES:
        samples.extend(
            Sample(name, tick * INTERVAL, float(table[name][tick]),
                   {"metric": "gcpu"})
            for tick in range(N_TICKS)
        )
    samples.sort(key=lambda s: s.timestamp)
    return samples


def data_plan(seed):
    """One data-fault chaos schedule.

    The small budgets go first: :meth:`FaultInjector.data_directive` is
    winner-takes-all per sample, so the large reorder budget must not
    shadow the corrupt/gap draws.
    """
    return FaultPlan(seed=seed, specs=(
        FaultSpec(FaultKind.DATA_CORRUPT, times=CORRUPT_BUDGET,
                  after=40, probability=0.5),
        FaultSpec(FaultKind.DATA_GAP, times=GAP_BUDGET,
                  after=90, probability=0.4),
        FaultSpec(FaultKind.DATA_REORDER, times=REORDER_BUDGET,
                  after=20, probability=0.5),
    ))


def make_service(sink, injector=None):
    service = StreamingDetectionService(
        n_shards=N_SHARDS,
        workers=4,
        sinks=[sink],
        queue_capacity=2**14,
        backpressure=BackpressurePolicy.BLOCK,
        batch_size=128,
        fault_injector=injector,
    )
    service.register_monitor(
        "gcpu", small_config(), series_filter={"metric": "gcpu"}
    )
    return service


def drive(service, samples, ckpt_dir):
    """Ingest/advance in fixed rounds with one mid-stream checkpoint.

    Returns the quality snapshot captured at the checkpoint instant —
    the ground truth the SIGKILL-restore test compares against.  No
    background flusher runs and every round is synchronous, so nothing
    mutates admission state between the checkpoint and the snapshot.
    """
    at_checkpoint = None
    chunk = ADVANCE_EVERY * len(SERIES)
    rounds = [samples[begin: begin + chunk]
              for begin in range(0, len(samples), chunk)]
    for index, batch in enumerate(rounds):
        service.ingest_many(batch)
        service.advance_to(batch[-1].timestamp + INTERVAL)
        if index == CHECKPOINT_ROUND:
            service.checkpoint(ckpt_dir)
            at_checkpoint = service.quality_snapshot()
    service.flush()
    return at_checkpoint


def total_tsdb_points(service):
    return sum(
        len(series)
        for shard_id in range(N_SHARDS)
        for series in service.shard_database(shard_id)
    )


@pytest.fixture(scope="module")
def clean_alerts(tmp_path_factory):
    """The fault-free drill outcome: exactly the planted regression."""
    sink = CollectingSink()
    service = make_service(sink)
    try:
        drive(service, make_stream(),
              str(tmp_path_factory.mktemp("clean") / "ckpt"))
    finally:
        service.close()
    alerted = {report.metric_id for report in sink.reports}
    assert alerted == {SERIES[REGRESS_INDEX]}
    return alerted


@pytest.fixture(scope="module")
def dirty_run(tmp_path_factory):
    """One drill through the data-fault schedule, shared by the tests."""
    samples = make_stream()
    injector = FaultInjector(data_plan(_seed()))
    sink = CollectingSink()
    service = make_service(sink, injector=injector)
    ckpt_dir = str(tmp_path_factory.mktemp("data-faults") / "ckpt")
    try:
        at_checkpoint = drive(service, samples, ckpt_dir)
        return {
            "n_samples": len(samples),
            "alerted": {report.metric_id for report in sink.reports},
            "counts": injector.counts(),
            "exhausted": injector.exhausted(),
            "quality": service.quality_snapshot(),
            "at_checkpoint": at_checkpoint,
            "ckpt_dir": ckpt_dir,
            "total_points": total_tsdb_points(service),
        }
    finally:
        service.close()


class TestDataFaultDrill:
    def test_schedule_fired_and_exhausted(self, dirty_run):
        counts = dirty_run["counts"]
        assert dirty_run["exhausted"]
        assert counts["data_corrupt"] == CORRUPT_BUDGET
        assert counts["data_gap"] == GAP_BUDGET
        assert counts["data_reorder"] == REORDER_BUDGET

    def test_zero_false_alerts_vs_clean(self, dirty_run, clean_alerts):
        # Set equality, both directions: no alert the clean run did not
        # raise (false alert) and no clean alert missing (missed
        # regression).  Bytes can differ — gaps genuinely drop points.
        assert dirty_run["alerted"] == clean_alerts

    def test_every_damaged_sample_is_accounted_for(self, dirty_run):
        counts = dirty_run["counts"]
        quality = dirty_run["quality"]
        # Corrupted samples were quarantined, not written.
        assert quality["counters"]["quarantined"] == counts["data_corrupt"]
        assert quality["quarantined_points"] == counts["data_corrupt"]
        # Reordered deliveries were re-sequenced through the buffer.
        assert quality["counters"]["reordered"] > 0
        assert quality["counters"]["duplicates"] == 0
        # TSDB conservation: every sample landed exactly once, minus the
        # gap-dropped and the quarantined.
        expected = (dirty_run["n_samples"]
                    - counts["data_gap"] - counts["data_corrupt"])
        assert dirty_run["total_points"] == expected


class TestQuarantineSurvivesKill:
    def test_restore_matches_checkpoint_snapshot(self, dirty_run):
        """SIGKILL pattern: the checkpointed process is abandoned (the
        fixture closed it) and a fresh service restores from disk."""
        before = dirty_run["at_checkpoint"]
        assert before is not None and before["enabled"]
        assert before["quarantined_points"] > 0  # damage predates the kill
        restored = StreamingDetectionService.restore(
            dirty_run["ckpt_dir"], sinks=[CollectingSink()], workers=4
        )
        try:
            after = restored.quality_snapshot()
            assert after["counters"] == before["counters"]
            assert after["quarantined_points"] == before["quarantined_points"]
            by_shard = {
                shard["shard"]: shard["quarantine"]["series"]
                for shard in before["shards"]
            }
            for shard in after["shards"]:
                assert shard["quarantine"]["series"] == by_shard[shard["shard"]]
            # The restored admission layer is live, not a fossil.
            restored.ingest(SERIES[0], (N_TICKS + 10) * INTERVAL, math.nan,
                            {"metric": "gcpu"})
            assert (
                restored.quality_snapshot()["quarantined_points"]
                == before["quarantined_points"] + 1
            )
        finally:
            restored.close()
