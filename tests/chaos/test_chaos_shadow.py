"""Chaos drill for shadow-mode challengers.

The detector-registry contract under fire: a service carrying a shadow
challenger through a full :meth:`~repro.faults.FaultPlan.chaos` schedule
(worker kills, advance hangs, checkpoint corruption, flusher deaths,
clock skew) still delivers **byte-identical** incident reports to a
fault-free run *without* any challenger — shadow scoring is alert-inert
even while shards crash and restore — and the funnel tallies ride the
checkpoint into a restored service where they keep accruing.

``REPRO_CHAOS_SEED`` narrows the drill to one seed, as in the service
chaos drills.
"""

import json
import os
import time

import numpy as np
import pytest

from repro.config import DetectionConfig
from repro.faults import FaultInjector, FaultPlan
from repro.runtime import CollectingSink
from repro.service import BackpressurePolicy, Sample, StreamingDetectionService
from repro.tsdb import WindowSpec

N_TICKS = 1_100
INTERVAL = 60.0
CHANGE_TICK = 700
SERIES = [f"svc.sub{i}.gcpu" for i in range(8)]
N_SHARDS = 4
ADVANCE_EVERY = 200
CHECKPOINT_ROUNDS = (1, 3)
SETTLE_LIMIT = 40

SHADOW = ("mad",)
SHADOW_IDS = ["mad-v1-6a16dc1f"]


def _seeds():
    override = os.environ.get("REPRO_CHAOS_SEED")
    if override is not None:
        return [int(override)]
    return [0]


def small_config():
    return DetectionConfig(
        name="chaos-shadow",
        threshold=0.00005,
        rerun_interval=6_000.0,
        windows=WindowSpec(historic=36_000.0, analysis=12_000.0, extended=6_000.0),
        long_term=False,
    )


def make_stream(seed, n_ticks=N_TICKS, first_tick=0, regress_index=3):
    rng = np.random.default_rng(seed)
    table = {}
    for index, name in enumerate(SERIES):
        values = rng.normal(0.001, 0.00002, n_ticks)
        if index == regress_index and first_tick < CHANGE_TICK:
            values[CHANGE_TICK - first_tick :] += 0.0003
        table[name] = values
    samples = [
        Sample(
            name,
            (first_tick + step) * INTERVAL,
            float(table[name][step]),
            {"metric": "gcpu"},
        )
        for step in range(n_ticks)
        for name in SERIES
    ]
    samples.sort(key=lambda s: s.timestamp)
    return samples


def make_service(sink, injector=None, shadow=None):
    service = StreamingDetectionService(
        n_shards=N_SHARDS,
        workers=4,
        sinks=[sink],
        queue_capacity=2**14,
        backpressure=BackpressurePolicy.BLOCK,
        batch_size=128,
        fault_injector=injector,
    )
    service.register_monitor(
        "gcpu", small_config(), series_filter={"metric": "gcpu"}, shadow=shadow
    )
    return service


def drive(service, samples, ckpt_dir):
    service.start(flush_interval=0.005)
    chunk = ADVANCE_EVERY * len(SERIES)
    rounds = [
        samples[begin : begin + chunk] for begin in range(0, len(samples), chunk)
    ]
    for round_index, batch in enumerate(rounds):
        service.ingest_many(batch)
        service.advance_to(batch[-1].timestamp + INTERVAL)
        if round_index in CHECKPOINT_ROUNDS:
            service.checkpoint(ckpt_dir)
    return samples[-1].timestamp + INTERVAL


def settle(service, injector, stream_end):
    for step in range(1, SETTLE_LIMIT + 1):
        service.advance_to(stream_end + step * 0.001 * INTERVAL)
        if injector.exhausted() and not service.degraded_reasons():
            break
        time.sleep(0.02)
    service.stop()


def report_bytes(reports):
    return json.dumps([r.to_dict() for r in reports], sort_keys=True)


@pytest.fixture(scope="module")
def reference_run(tmp_path_factory):
    """Fault-free, challenger-free run: the alert-inert reference."""
    samples = make_stream(seed=7)
    sink = CollectingSink()
    service = make_service(sink)
    try:
        stream_end = drive(
            service, samples, str(tmp_path_factory.mktemp("clean") / "ckpt")
        )
        service.advance_to(stream_end + 0.001 * INTERVAL)
        service.stop()
        assert service.detectors_snapshot() == {"enabled": False, "detectors": []}
    finally:
        service.close()
    return samples, report_bytes(sink.reports)


class TestChaosShadowDrill:
    @pytest.mark.parametrize("seed", _seeds())
    def test_shadow_survives_chaos_and_restore(
        self, seed, reference_run, tmp_path
    ):
        samples, reference = reference_run
        injector = FaultInjector(FaultPlan.chaos(seed, n_shards=N_SHARDS))
        sink = CollectingSink()
        service = make_service(sink, injector=injector, shadow=SHADOW)
        final_ckpt = str(tmp_path / "final-ckpt")
        try:
            stream_end = drive(service, samples, str(tmp_path / "ckpt"))
            settle(service, injector, stream_end)

            assert injector.snapshot()["injected_total"] >= 1
            assert injector.exhausted()

            # Alert-inert under chaos: the challenger scored scans on
            # shards that crashed, restored, and hung mid-advance, and
            # the incident reports still match the challenger-free run.
            assert report_bytes(sink.reports) == reference

            before = service.detectors_snapshot()
            assert before["enabled"]
            assert [row["id"] for row in before["detectors"]] == SHADOW_IDS
            assert all(row["tally"]["scans"] > 0 for row in before["detectors"])

            # Tallies carried through the in-drill checkpoint/restore
            # cycles; now carry them through an explicit final one.
            service.checkpoint(final_ckpt)
        finally:
            service.close()

        restored = StreamingDetectionService.restore(
            final_ckpt, sinks=[CollectingSink()], workers=4
        )
        try:
            assert restored.detectors_snapshot() == before
            # The restored scorer is live: extend the stream across the
            # next rerun boundary and the same detector rows keep
            # accruing scans.
            tail = make_stream(seed=101, n_ticks=200, first_tick=N_TICKS)
            restored.ingest_many(
                [s for s in tail if s.timestamp >= restored.clock]
            )
            restored.advance_to(tail[-1].timestamp + INTERVAL)
            final = restored.detectors_snapshot()
            assert [row["id"] for row in final["detectors"]] == SHADOW_IDS
            assert all(
                final_row["tally"]["scans"] > before_row["tally"]["scans"]
                for final_row, before_row in zip(
                    final["detectors"], before["detectors"]
                )
            )
        finally:
            restored.close()
