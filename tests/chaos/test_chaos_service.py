"""Chaos drills: randomized-but-reproducible fault schedules vs clean runs.

The contract: a service driven through an exhausting
:meth:`~repro.faults.FaultPlan.chaos` schedule — worker crashes, advance
hangs, latent checkpoint corruption, flusher deaths, clock skew —
delivers **byte-identical** incident reports to a fault-free run over
the same stream, loses zero accepted samples, and converges back to
``healthz() == "ok"`` with every ``degraded`` event paired with a later
``recovered`` event.

Environment knobs (both optional, for CI and local triage):

- ``REPRO_CHAOS_SEED``: run a single seed instead of the default matrix.
- ``REPRO_CHAOS_ARTIFACTS``: directory that receives the failing run's
  checkpoint directory, event log, metrics, and injector snapshot.
"""

import json
import os
import shutil
import time

import numpy as np
import pytest

from repro.config import DetectionConfig
from repro.faults import FaultInjector, FaultKind, FaultPlan, FaultSpec
from repro.runtime import CollectingSink
from repro.service import BackpressurePolicy, Sample, StreamingDetectionService
from repro.tsdb import WindowSpec

N_TICKS = 1_100
INTERVAL = 60.0
CHANGE_TICK = 700
SERIES = [f"svc.sub{i}.gcpu" for i in range(8)]
N_SHARDS = 4
ADVANCE_EVERY = 200  # ticks per ingest/advance round
CHECKPOINT_ROUNDS = (1, 3)  # rounds after which a checkpoint is written
SETTLE_LIMIT = 40  # max post-stream settle advances (stays < rerun_interval)


def _seeds():
    override = os.environ.get("REPRO_CHAOS_SEED")
    if override is not None:
        return [int(override)]
    return [0, 1, 2]


def small_config():
    return DetectionConfig(
        name="chaos",
        threshold=0.00005,
        rerun_interval=6_000.0,
        windows=WindowSpec(historic=36_000.0, analysis=12_000.0, extended=6_000.0),
        long_term=False,
    )


def make_stream(seed, regress_index=3):
    rng = np.random.default_rng(seed)
    table = {}
    for index, name in enumerate(SERIES):
        values = rng.normal(0.001, 0.00002, N_TICKS)
        if index == regress_index:
            values[CHANGE_TICK:] += 0.0003
        table[name] = values
    samples = []
    for name in SERIES:
        samples.extend(
            Sample(name, tick * INTERVAL, float(table[name][tick]),
                   {"metric": "gcpu"})
            for tick in range(N_TICKS)
        )
    samples.sort(key=lambda s: s.timestamp)
    return samples


def make_service(sink, injector=None):
    service = StreamingDetectionService(
        n_shards=N_SHARDS,
        workers=4,
        sinks=[sink],
        queue_capacity=2**14,
        backpressure=BackpressurePolicy.BLOCK,
        batch_size=128,
        fault_injector=injector,
    )
    service.register_monitor(
        "gcpu", small_config(), series_filter={"metric": "gcpu"}
    )
    return service


def drive(service, samples, ckpt_dir):
    """The drill schedule, identical for clean and chaotic runs.

    Ingest/advance in fixed rounds with background flushers running, and
    checkpoint at fixed rounds so checkpoint-corruption specs get blob
    invocations to fire on.  Detection is clock-driven, so two services
    driven through this schedule scan at identical instants.
    """
    service.start(flush_interval=0.005)
    chunk = ADVANCE_EVERY * len(SERIES)
    rounds = [samples[begin: begin + chunk] for begin in range(0, len(samples), chunk)]
    for round_index, batch in enumerate(rounds):
        service.ingest_many(batch)
        service.advance_to(batch[-1].timestamp + INTERVAL)
        if round_index in CHECKPOINT_ROUNDS:
            service.checkpoint(ckpt_dir)
    return samples[-1].timestamp + INTERVAL


def settle(service, injector, stream_end):
    """Post-stream convergence: drain remaining fault budgets, recover.

    Small advances past the stream end keep feeding ``worker.advance``
    invocations (and flusher ticks keep running) until every finite spec
    has spent its budget, then one more clean pass clears the degraded
    flags.  The advances stay far below the next rerun boundary, so they
    can never produce a report and never diverge from the clean run.
    """
    for step in range(1, SETTLE_LIMIT + 1):
        service.advance_to(stream_end + step * 0.001 * INTERVAL)
        if injector.exhausted() and not service.degraded_reasons():
            break
        time.sleep(0.02)
    service.stop()


def report_bytes(reports):
    return json.dumps([r.to_dict() for r in reports], sort_keys=True)


def dump_artifacts(seed, service, injector, ckpt_dir):
    root = os.environ.get("REPRO_CHAOS_ARTIFACTS")
    if not root:
        return
    target = os.path.join(root, f"seed-{seed}")
    os.makedirs(target, exist_ok=True)
    if os.path.isdir(ckpt_dir):
        shutil.copytree(
            ckpt_dir, os.path.join(target, "checkpoint"), dirs_exist_ok=True
        )
    state = {
        "seed": seed,
        "plan": injector.plan.to_dict(),
        "injector": injector.snapshot(),
        "metrics": service.metrics.snapshot(),
        "degraded": service.degraded_reasons(),
        "healthz": service.healthz(),
        "events": [event.to_dict() for event in service.events.events()],
    }
    with open(os.path.join(target, "chaos-state.json"), "w", encoding="utf-8") as fh:
        json.dump(state, fh, indent=2, sort_keys=True, default=str)


@pytest.fixture(scope="module")
def reference_run(tmp_path_factory):
    """One fault-free run of the drill schedule, shared across seeds."""
    samples = make_stream(seed=7)
    sink = CollectingSink()
    service = make_service(sink)
    try:
        stream_end = drive(
            service, samples, str(tmp_path_factory.mktemp("clean") / "ckpt")
        )
        service.advance_to(stream_end + 0.001 * INTERVAL)
        service.stop()
        stats = service.stats()
        assert stats.offered == stats.flushed == len(samples)
    finally:
        service.close()
    return samples, report_bytes(sink.reports)


class TestChaosDrill:
    @pytest.mark.parametrize("seed", _seeds())
    def test_chaos_run_converges_to_clean_outcome(
        self, seed, reference_run, tmp_path
    ):
        samples, reference = reference_run
        plan = FaultPlan.chaos(seed, n_shards=N_SHARDS)
        injector = FaultInjector(plan)
        sink = CollectingSink()
        service = make_service(sink, injector=injector)
        ckpt_dir = str(tmp_path / "ckpt")
        try:
            stream_end = drive(service, samples, ckpt_dir)
            settle(service, injector, stream_end)

            # The schedule actually injected chaos, and all of it spent.
            assert injector.snapshot()["injected_total"] >= 1
            assert injector.exhausted()

            # Byte-identical incident reports despite the chaos.
            assert report_bytes(sink.reports) == reference

            # Zero sample loss: everything offered under BLOCK was
            # accepted, flushed, and landed in exactly one shard TSDB.
            stats = service.stats()
            assert stats.offered == len(samples)
            assert stats.accepted == len(samples)
            assert stats.dropped == 0 and stats.rejected == 0
            assert stats.flushed == len(samples)
            total_points = sum(
                len(series)
                for shard_id in range(N_SHARDS)
                for series in service.shard_database(shard_id)
            )
            assert total_points == len(samples)

            # Degraded -> ok: every degradation recovered, and the final
            # health answer is a clean 200.
            health = service.healthz()
            assert health["status"] == "ok"
            assert health["degraded_shards"] == 0
            degraded = [
                (e.fields["shard"], e.fields["category"])
                for e in service.events.events(kind="degraded")
            ]
            recover_times = {}
            for event in service.events.events(kind="recovered"):
                key = (event.fields["shard"], event.fields["category"])
                recover_times.setdefault(key, []).append(event.wall)
            for key in degraded:
                assert key in recover_times, f"no recovery for {key}"
        except AssertionError:
            dump_artifacts(seed, service, injector, ckpt_dir)
            raise
        finally:
            service.close()

    @pytest.mark.parametrize("seed", _seeds())
    def test_chaos_checkpoints_restore_or_fall_back(
        self, seed, reference_run, tmp_path
    ):
        """Checkpoints written *during* chaos stay usable: restore either
        loads the newest generation or falls back to an intact older one,
        and the restored service replays to the clean outcome."""
        samples, reference = reference_run
        injector = FaultInjector(FaultPlan.chaos(seed, n_shards=N_SHARDS))
        sink = CollectingSink()
        service = make_service(sink, injector=injector)
        ckpt_dir = str(tmp_path / "ckpt")
        try:
            stream_end = drive(service, samples, ckpt_dir)
            settle(service, injector, stream_end)
        except Exception:
            dump_artifacts(seed, service, injector, ckpt_dir)
            raise
        finally:
            service.close()

        resume_sink = CollectingSink()
        restored = StreamingDetectionService.restore(
            ckpt_dir, sinks=[resume_sink], workers=4
        )
        try:
            resume_from = restored.clock
            assert resume_from > 0.0
            restored.ingest_many(
                [s for s in samples if s.timestamp >= resume_from]
            )
            restored.advance_to(stream_end)
            restored.flush()
            seen = {
                (r.metric_id, r.change_time) for r in sink.reports
            } | {
                (r.metric_id, r.change_time) for r in resume_sink.reports
            }
            expected = {
                (r["metric_id"], r["change_time"])
                for r in json.loads(reference)
            }
            assert seen == expected
        except AssertionError:
            dump_artifacts(seed, restored, injector, ckpt_dir)
            raise
        finally:
            restored.close()


class TestTargetedRecoveries:
    """Deterministic single-fault drills with explicit plans."""

    def test_flusher_death_recovers_without_loss(self):
        plan = FaultPlan(specs=(
            FaultSpec(FaultKind.FLUSHER_DEATH, times=2),
        ))
        injector = FaultInjector(plan)
        sink = CollectingSink()
        service = make_service(sink, injector=injector)
        try:
            service.start(flush_interval=0.005)
            samples = make_stream(seed=7)[: 4 * len(SERIES) * 50]
            service.ingest_many(samples)
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                if (
                    injector.exhausted()
                    and not service.degraded_reasons()
                    and service.stats().flushed == len(samples)
                ):
                    break
                time.sleep(0.01)
            service.stop()
            assert injector.counts() == {"flusher_death": 2}
            stats = service.stats()
            assert stats.flushed == len(samples)
            assert stats.dropped == 0 and stats.rejected == 0
            assert service.healthz()["status"] == "ok"
            counters = service.metrics.snapshot()["counters"]
            assert counters["service.flush_failures"] == 2.0
            assert service.events.events(kind="recovered")
        finally:
            service.close()

    def test_clock_skew_never_corrupts_checkpoint_age(self, tmp_path):
        plan = FaultPlan(specs=(
            FaultSpec(FaultKind.CLOCK_SKEW, skew_seconds=-7200.0),
        ))
        service = make_service(CollectingSink(), injector=FaultInjector(plan))
        try:
            service.checkpoint(str(tmp_path / "ckpt"))
            health = service.healthz()
            age = health["checkpoint"]["age_seconds"]
            assert age is not None and 0.0 <= age < 60.0
            assert health["checkpoint"]["last_at"] < time.time() - 3600.0
        finally:
            service.close()
