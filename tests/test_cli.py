"""Tests for repro.cli."""

import csv

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_args(self):
        args = build_parser().parse_args(
            ["simulate", "--preset", "invoicer_short", "--out", "/tmp/x.csv"]
        )
        assert args.command == "simulate"
        assert args.preset == "invoicer_short"

    def test_unknown_preset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--preset", "nope", "--out", "x"])


class TestPresetsCommand:
    def test_lists_presets(self, capsys):
        assert main(["presets"]) == 0
        out = capsys.readouterr().out
        assert "invoicer_short" in out
        assert "frontfaas_small" in out


class TestSimulateCommand:
    def test_writes_csv(self, tmp_path, capsys):
        out = tmp_path / "series.csv"
        code = main(
            [
                "simulate",
                "--preset", "invoicer_short",
                "--ticks", "120",
                "--out", str(out),
            ]
        )
        assert code == 0
        rows = list(csv.reader(out.open()))
        assert rows[0] == ["timestamp", "value"]
        assert len(rows) == 121

    def test_unknown_metric_errors(self, tmp_path, capsys):
        out = tmp_path / "series.csv"
        code = main(
            [
                "simulate",
                "--preset", "invoicer_short",
                "--ticks", "50",
                "--metric", "does.not.exist",
                "--out", str(out),
            ]
        )
        assert code == 2


class TestDetectCommand:
    def _write_csv(self, path, values, interval=60.0):
        with path.open("w", newline="") as sink:
            writer = csv.writer(sink)
            writer.writerow(["timestamp", "value"])
            for i, value in enumerate(values):
                writer.writerow([i * interval, value])

    def test_detects_regression(self, tmp_path, capsys):
        rng = np.random.default_rng(0)
        values = rng.normal(0.001, 0.00002, 900)
        values[700:] += 0.0002
        path = tmp_path / "series.csv"
        self._write_csv(path, values)
        code = main(["detect", str(path), "--config", "frontfaas_small"])
        assert code == 0
        out = capsys.readouterr().out
        assert "regressions reported:   1" in out

    def test_clean_series_exit_code_one(self, tmp_path, capsys):
        rng = np.random.default_rng(1)
        path = tmp_path / "series.csv"
        self._write_csv(path, rng.normal(0.001, 0.00002, 900))
        assert main(["detect", str(path)]) == 1

    def test_too_short_errors(self, tmp_path, capsys):
        path = tmp_path / "series.csv"
        self._write_csv(path, [0.001] * 5)
        assert main(["detect", str(path)]) == 2

    def test_threshold_override(self, tmp_path, capsys):
        rng = np.random.default_rng(0)
        values = rng.normal(0.001, 0.00002, 900)
        values[700:] += 0.0002
        path = tmp_path / "series.csv"
        self._write_csv(path, values)
        # An absurdly high threshold suppresses the report.
        assert main(["detect", str(path), "--threshold", "0.5"]) == 1

    def test_headerless_csv(self, tmp_path, capsys):
        rng = np.random.default_rng(0)
        values = rng.normal(0.001, 0.00002, 900)
        values[700:] += 0.0002
        path = tmp_path / "series.csv"
        with path.open("w", newline="") as sink:
            writer = csv.writer(sink)
            for i, value in enumerate(values):
                writer.writerow([i * 60.0, value])
        assert main(["detect", str(path), "--config", "frontfaas_small"]) == 0


class TestServeDemoCommand:
    def test_streams_and_prints_stats(self, capsys):
        code = main(
            [
                "serve-demo",
                "--preset", "invoicer_short",
                "--ticks", "120",
                "--shards", "2",
                "--regress", "0",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "through 2 shard(s)" in out
        assert "ServiceStats" in out
        assert "incident reports delivered:" in out

    def test_checkpoint_dir_written(self, tmp_path, capsys):
        directory = tmp_path / "ckpt"
        code = main(
            [
                "serve-demo",
                "--preset", "invoicer_short",
                "--ticks", "60",
                "--shards", "1",
                "--regress", "0",
                "--checkpoint-dir", str(directory),
            ]
        )
        assert code == 0
        assert (directory / "manifest.json").is_file()
        assert "checkpoint written to" in capsys.readouterr().out

    def test_policy_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve-demo", "--policy", "explode"])

    def test_parallel_workers(self, capsys):
        code = main(
            [
                "serve-demo",
                "--preset", "invoicer_short",
                "--ticks", "120",
                "--shards", "2",
                "--workers", "2",
                "--regress", "0",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "through 2 shard(s), 2 worker(s)" in out
        assert "incremental scan cache:" in out
        assert "per-shard advance latency:" in out

    def test_workers_must_be_positive(self, capsys):
        code = main(
            [
                "serve-demo",
                "--preset", "invoicer_short",
                "--ticks", "10",
                "--workers", "0",
            ]
        )
        assert code == 2
        assert "--workers" in capsys.readouterr().err
