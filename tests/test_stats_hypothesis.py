"""Tests for repro.stats.hypothesis."""

import numpy as np
import pytest

from repro.stats.hypothesis import likelihood_ratio_test


class TestLikelihoodRatioTest:
    def test_real_shift_is_significant(self, step_series):
        result = likelihood_ratio_test(step_series, 100)
        assert result.significant
        assert result.p_value < 0.01

    def test_pure_noise_not_significant(self, flat_series):
        # Test the true (uninformed) split at the midpoint of pure noise.
        result = likelihood_ratio_test(flat_series, 100)
        assert not result.significant

    def test_statistic_nonnegative(self, flat_series):
        assert likelihood_ratio_test(flat_series, 57).statistic >= 0.0

    def test_invalid_changepoint_raises(self, flat_series):
        with pytest.raises(ValueError):
            likelihood_ratio_test(flat_series, 0)
        with pytest.raises(ValueError):
            likelihood_ratio_test(flat_series, len(flat_series))

    def test_significance_level_respected(self, rng):
        # A borderline shift: significant at 0.2 but not at 1e-12.
        x = np.concatenate([rng.normal(0, 1, 40), rng.normal(0.5, 1, 40)])
        loose = likelihood_ratio_test(x, 40, significance_level=0.2)
        strict = likelihood_ratio_test(x, 40, significance_level=1e-12)
        assert loose.significance_level == 0.2
        assert loose.p_value == strict.p_value
        assert loose.significant or not strict.significant

    def test_larger_shift_larger_statistic(self, rng):
        noise = rng.normal(0, 1, 200)
        small = noise.copy()
        small[100:] += 0.5
        big = noise.copy()
        big[100:] += 3.0
        assert (
            likelihood_ratio_test(big, 100).statistic
            > likelihood_ratio_test(small, 100).statistic
        )

    def test_constant_series(self):
        result = likelihood_ratio_test(np.full(50, 2.0), 25)
        assert not result.significant
