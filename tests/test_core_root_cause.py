"""Tests for repro.core.root_cause."""

import numpy as np
import pytest

from repro.core.root_cause import RootCauseAnalyzer, gcpu_attribution
from repro.core.types import MetricContext, Regression, RegressionKind
from repro.fleet.changes import ChangeEffect, ChangeLog, CodeChange
from repro.profiling.stacktrace import StackTrace
from repro.tsdb import TimeSeries, WindowSpec


def table2_samples():
    """The exact Table 2 worked example.

    gCPU values are per-sample weights out of a fixed total of 1.0; the
    'Does not exist' row appears only in the after set.
    """
    before = [
        StackTrace.from_names(["A", "B", "C"], weight=0.01),
        StackTrace.from_names(["B", "E", "F"], weight=0.02),
        StackTrace.from_names(["D", "B", "C"], weight=0.02),
        StackTrace.from_names(["B", "E", "D"], weight=0.04),
        StackTrace.from_names(["other"], weight=0.91),
    ]
    after = [
        StackTrace.from_names(["A", "B", "C"], weight=0.02),
        StackTrace.from_names(["B", "E", "F"], weight=0.03),
        StackTrace.from_names(["D", "B", "C"], weight=0.02),
        StackTrace.from_names(["B", "E", "D"], weight=0.06),
        StackTrace.from_names(["G", "B", "D"], weight=0.01),
        StackTrace.from_names(["other"], weight=0.86),
    ]
    return before, after


class TestGcpuAttribution:
    def test_table2_worked_example(self):
        # B's gCPU: 0.09 before, 0.14 after -> R = 0.05.  The change
        # modifies A and E; samples involving them move 0.07 -> 0.11 ->
        # L = 0.04.  Attribution = L/R = 80%.
        before, after = table2_samples()
        fraction = gcpu_attribution(before, after, regressed="B", modified=["A", "E"])
        assert fraction == pytest.approx(0.80, abs=1e-9)

    def test_unrelated_change_zero(self):
        before, after = table2_samples()
        assert gcpu_attribution(before, after, "B", ["zzz"]) == 0.0

    def test_no_regression_zero(self):
        before, _ = table2_samples()
        assert gcpu_attribution(before, before, "B", ["A"]) == 0.0

    def test_empty_samples_zero(self):
        assert gcpu_attribution([], [], "B", ["A"]) == 0.0

    def test_clipped_to_unit_interval(self):
        before = [StackTrace.from_names(["other"], weight=1.0)]
        after = [
            StackTrace.from_names(["A", "B"], weight=0.5),
            StackTrace.from_names(["other"], weight=0.5),
        ]
        fraction = gcpu_attribution(before, after, "B", ["A"])
        assert 0.0 <= fraction <= 1.0


def make_regression(subroutine="svc::K::B", change_time=12_000.0):
    series = TimeSeries("m")
    rng = np.random.default_rng(0)
    for i in range(300):
        series.append(i * 60.0, 0.001 + rng.normal(0, 1e-5))
    view = WindowSpec(10_000.0, 5_000.0, 3_000.0).view(series, now=18_000.0)
    return Regression(
        context=MetricContext(
            metric_id=f"svc.{subroutine}.gcpu",
            service="svc",
            metric_name="gcpu",
            subroutine=subroutine,
        ),
        kind=RegressionKind.SHORT_TERM,
        change_index=33,
        change_time=change_time,
        mean_before=0.001,
        mean_after=0.0012,
        window=view,
    )


class TestRootCauseAnalyzer:
    def _log(self):
        return ChangeLog(
            [
                CodeChange(
                    "guilty",
                    deploy_time=11_800.0,
                    title="optimize svc::K::B serialization",
                    summary="rewrites the inner loop of svc::K::B",
                    effects=(ChangeEffect("svc::K::B", 1.2),),
                ),
                CodeChange(
                    "innocent",
                    deploy_time=11_900.0,
                    title="update dashboard colors",
                    summary="css tweaks only",
                    effects=(ChangeEffect("web::ui::render", 1.0),),
                ),
                CodeChange(
                    "too-old",
                    deploy_time=100.0,
                    title="touch svc::K::B long ago",
                    effects=(ChangeEffect("svc::K::B", 1.0),),
                ),
            ]
        )

    def test_ranks_guilty_change_first(self):
        # Lookback of 2000s covers the two recent changes only.
        analyzer = RootCauseAnalyzer(self._log(), lookback=2_000.0)
        candidates = analyzer.analyze(make_regression())
        assert candidates
        assert candidates[0].change.change_id == "guilty"

    def test_candidates_limited_to_lookback(self):
        analyzer = RootCauseAnalyzer(self._log(), lookback=2_000.0)
        ids = [c.change.change_id for c in analyzer.analyze(make_regression())]
        assert "too-old" not in ids

    def test_no_candidates_when_log_empty(self):
        analyzer = RootCauseAnalyzer(ChangeLog())
        assert analyzer.analyze(make_regression()) == []

    def test_low_confidence_suggests_nothing(self):
        log = ChangeLog([CodeChange("vague", deploy_time=11_900.0, title="misc")])
        analyzer = RootCauseAnalyzer(log, confidence_threshold=0.9)
        assert analyzer.analyze(make_regression()) == []

    def test_attribution_factor_uses_samples(self):
        before, after = table2_samples()
        log = ChangeLog(
            [
                CodeChange(
                    "c-attr",
                    deploy_time=11_900.0,
                    effects=(ChangeEffect("A", 1.3), ChangeEffect("E", 1.3)),
                )
            ]
        )
        analyzer = RootCauseAnalyzer(
            log, samples_before=before, samples_after=after
        )
        candidates = analyzer.analyze(make_regression(subroutine="B"))
        assert candidates
        assert candidates[0].factors["gcpu_attribution"] == pytest.approx(0.8)

    def test_setup_series_correlation(self):
        regression = make_regression()
        setup = {  # tracks the regression's post-change series shape
            "flagged": dict(regression.series_mapping()),
        }
        log = ChangeLog([CodeChange("flagged", deploy_time=11_900.0, title="algo switch")])
        analyzer = RootCauseAnalyzer(log, setup_series=setup, confidence_threshold=0.1)
        candidates = analyzer.analyze(regression)
        assert candidates
        assert candidates[0].factors["time_correlation"] == pytest.approx(1.0)

    def test_results_stored_on_regression(self):
        regression = make_regression()
        RootCauseAnalyzer(self._log(), lookback=2_000.0).analyze(regression)
        assert regression.root_cause_candidates
        assert regression.root_cause_candidates[0].change_id == "guilty"

    def test_top_k_limit(self):
        changes = [
            CodeChange(
                f"c{i}",
                deploy_time=11_000.0 + i,
                title=f"touch svc::K::B variant {i}",
                effects=(ChangeEffect("svc::K::B", 1.1),),
            )
            for i in range(6)
        ]
        analyzer = RootCauseAnalyzer(ChangeLog(changes), top_k=3)
        assert len(analyzer.analyze(make_regression())) == 3

    def test_unexported_changes_invisible(self):
        log = ChangeLog(
            [
                CodeChange(
                    "secret",
                    deploy_time=11_900.0,
                    title="touch svc::K::B",
                    effects=(ChangeEffect("svc::K::B", 1.5),),
                    exported=False,
                )
            ]
        )
        assert RootCauseAnalyzer(log).analyze(make_regression()) == []
