"""Tests for repro.quality (admission validators, quarantine, scores)."""

import math
import pickle

import pytest

from repro.quality import (
    ADMIT,
    DROP,
    HELD,
    AdmissionController,
    QualityConfig,
    QuarantineStore,
    REASONS,
)
from repro.service import Sample


def make(name="s.gcpu", ts=0.0, value=1.0, tags=None):
    return Sample(name, ts, value, tags if tags is not None else {"metric": "gcpu"})


def controller(**kwargs):
    return AdmissionController(QualityConfig(**kwargs), shard_id=0)


class TestValidators:
    def test_clean_in_order_samples_admit_unchanged(self):
        ctl = controller()
        for tick in range(5):
            verdict, sample = ctl.admit(make(ts=float(tick), value=0.5))
            assert verdict == ADMIT
            assert sample.value == 0.5
        assert ctl.counters() == {
            "admitted": 5, "quarantined": 0, "repaired": 0,
            "counter_resets": 0, "duplicates": 0, "reordered": 0,
            "buffered": 0,
        }

    @pytest.mark.parametrize("bad", [math.nan, math.inf, -math.inf])
    def test_non_finite_is_quarantined(self, bad):
        ctl = controller()
        verdict, sample = ctl.admit(make(ts=1.0, value=bad))
        assert verdict == DROP and sample is None
        assert ctl.quarantined == 1
        assert ctl.quarantine.reasons("s.gcpu")["not_finite"] == 1

    def test_negative_gcpu_repaired_to_zero(self):
        ctl = controller()
        verdict, sample = ctl.admit(make(ts=1.0, value=-0.25))
        assert verdict == ADMIT
        assert sample.value == 0.0
        assert ctl.repaired == 1 and ctl.quarantined == 0

    def test_negative_without_repair_is_quarantined(self):
        ctl = controller(repair_negative=False)
        verdict, _ = ctl.admit(make(ts=1.0, value=-0.25))
        assert verdict == DROP
        assert ctl.quarantine.reasons("s.gcpu")["negative_value"] == 1

    def test_negative_on_unknown_metric_passes_through(self):
        ctl = controller()
        verdict, sample = ctl.admit(
            make(ts=1.0, value=-3.0, tags={"metric": "temperature_delta"})
        )
        assert verdict == ADMIT
        assert sample.value == -3.0
        assert ctl.repaired == 0

    def test_counter_reset_rebases_cumulative(self):
        ctl = controller()
        tags = {"metric": "gcpu", "type": "counter"}
        values = [10.0, 20.0, 30.0, 5.0, 9.0]  # restart after 30
        for tick, value in enumerate(values):
            verdict, none = ctl.admit(
                make("c.count", ts=float(tick), value=value, tags=tags)
            )
            # Counters always ride the buffer: rebased on release.
            assert verdict == HELD and none is None
        released = ctl.drain_pending()
        assert [s.value for s in released] == [10.0, 20.0, 30.0, 35.0, 39.0]
        assert ctl.counter_resets == 1

    def test_double_reset_accumulates_offset(self):
        ctl = controller()
        tags = {"type": "counter"}
        for index, value in enumerate([5.0, 2.0, 4.0, 1.0]):
            assert ctl.admit(make("c", ts=float(index), value=value,
                                  tags=tags))[0] == HELD
        # offsets: +5 at the first drop, +4 (raw) more at the second.
        assert [s.value for s in ctl.drain_pending()] == [5.0, 7.0, 9.0, 10.0]
        assert ctl.counter_resets == 2

    def test_out_of_order_counter_does_not_fake_resets(self):
        """A locally shuffled monotone counter must come out exactly as
        delivered in order — no spurious rollover rebasing."""
        ctl = controller(reorder_window=8)
        tags = {"type": "counter"}
        order = [2, 0, 1, 4, 3, 5, 7, 6]
        for tick in order:
            assert ctl.admit(
                make("c", ts=float(tick), value=float(10 * tick), tags=tags)
            )[0] == HELD
        released = ctl.drain_pending()
        assert [(s.timestamp, s.value) for s in released] == [
            (float(t), float(10 * t)) for t in range(8)
        ]
        assert ctl.counter_resets == 0

    def test_counter_rollover_under_reordering_reconstructs_exactly(self):
        ctl = controller(reorder_window=8)
        tags = {"type": "counter"}
        clean = [float(7 * (t + 1)) for t in range(10)]
        raw = clean[:5] + [v - clean[4] for v in clean[5:]]  # restart at 5
        order = [0, 2, 1, 3, 4, 6, 5, 7, 9, 8]  # local shuffle
        out = []
        for tick in order:
            verdict, sample = ctl.admit(
                make("c", ts=float(tick), value=raw[tick], tags=tags)
            )
            if verdict == ADMIT:  # released past its batch: direct admit
                out.append(sample)
            out.extend(ctl.take_ready())
        out.extend(ctl.drain_pending())
        out.sort(key=lambda s: s.timestamp)
        assert [s.value for s in out] == clean
        assert ctl.counter_resets == 1

    def test_counter_buffer_overflow_releases_rebased_batch(self):
        ctl = controller(reorder_window=3)
        tags = {"type": "counter"}
        for tick in range(4):  # fourth point overflows the window
            ctl.admit(make("c", ts=float(tick), value=float(tick), tags=tags))
        batch = ctl.take_ready()
        assert [s.value for s in batch] == [0.0, 1.0, 2.0, 3.0]
        assert ctl.buffered == 0

    def test_counter_straggler_past_release_admits_with_offset(self):
        ctl = controller(reorder_window=2)
        tags = {"type": "counter"}
        for tick, value in [(0, 10.0), (1, 20.0), (2, 2.0)]:
            ctl.admit(make("c", ts=float(tick), value=value, tags=tags))
        ctl.take_ready()  # released: watermark now 2.0, offset 20.0
        verdict, sample = ctl.admit(
            make("c", ts=1.5, value=21.0, tags=tags)
        )
        # Too late for the ordered pass: current offset, straight admit.
        assert verdict == ADMIT
        assert sample.value == 41.0


class TestOrdering:
    def test_duplicate_timestamp_lww_admits(self):
        ctl = controller()
        assert ctl.admit(make(ts=1.0, value=1.0))[0] == ADMIT
        verdict, sample = ctl.admit(make(ts=1.0, value=2.0))
        assert verdict == ADMIT and sample.value == 2.0
        assert ctl.duplicates == 1

    def test_duplicate_timestamp_reject_quarantines(self):
        ctl = controller(duplicate_policy="reject")
        assert ctl.admit(make(ts=1.0, value=1.0))[0] == ADMIT
        assert ctl.admit(make(ts=1.0, value=2.0))[0] == DROP
        assert ctl.quarantine.reasons("s.gcpu")["duplicate_reject"] == 1

    def test_stragglers_buffer_and_release_on_overflow(self):
        ctl = controller(reorder_window=3)
        assert ctl.admit(make(ts=10.0))[0] == ADMIT
        for ts in (3.0, 1.0, 2.0):
            verdict, none = ctl.admit(make(ts=ts))
            assert verdict == HELD and none is None
            assert not ctl.ready
        assert ctl.buffered == 3
        # Fourth straggler overflows the window: whole batch released.
        assert ctl.admit(make(ts=4.0))[0] == HELD
        batch = ctl.take_ready()
        assert [s.timestamp for s in batch] == [1.0, 2.0, 3.0, 4.0]
        assert ctl.buffered == 0 and ctl.reordered == 4

    def test_drain_pending_merges_across_series(self):
        ctl = controller()
        ctl.admit(make("a", ts=10.0))
        ctl.admit(make("b", ts=10.0))
        ctl.admit(make("a", ts=2.0))
        ctl.admit(make("b", ts=1.0))
        ctl.admit(make("a", ts=3.0))
        drained = ctl.drain_pending()
        assert [(s.name, s.timestamp) for s in drained] == [
            ("b", 1.0), ("a", 2.0), ("a", 3.0),
        ]
        assert ctl.buffered == 0
        assert ctl.drain_pending() == []

    def test_duplicate_inside_buffer_last_write_wins(self):
        ctl = controller()
        ctl.admit(make(ts=10.0))
        ctl.admit(make(ts=2.0, value=1.0))
        verdict, _ = ctl.admit(make(ts=2.0, value=9.0))
        assert verdict == HELD
        drained = ctl.drain_pending()
        assert [(s.timestamp, s.value) for s in drained] == [(2.0, 9.0)]
        assert ctl.duplicates == 1


class TestOperatorSurface:
    def test_quality_score_tracks_quarantines(self):
        ctl = controller()
        assert ctl.quality_score("s.gcpu") is None
        ctl.admit(make(ts=1.0, value=0.5))
        ctl.admit(make(ts=2.0, value=math.nan))
        ctl.admit(make(ts=3.0, value=0.5))
        assert ctl.quality_score("s.gcpu") == pytest.approx(2 / 3)

    def test_release_series_clears_quarantine(self):
        ctl = controller()
        ctl.admit(make(ts=1.0, value=math.nan))
        ctl.admit(make(ts=2.0, value=math.nan))
        assert ctl.release_series("s.gcpu") == 2
        assert ctl.quarantine.count("s.gcpu") == 0
        assert ctl.quality_score("s.gcpu") == 1.0
        assert ctl.release_series("s.gcpu") == 0

    def test_snapshot_shape(self):
        ctl = controller()
        ctl.admit(make(ts=1.0, value=math.nan))
        snapshot = ctl.snapshot()
        assert snapshot["shard"] == 0
        assert snapshot["counters"]["quarantined"] == 1
        assert snapshot["quarantine"]["total"] == 1
        assert "s.gcpu" in snapshot["scores"]

    def test_metrics_events_only(self):
        class Registry:
            def __init__(self):
                self.counts = {}

            def inc(self, name, n=1):
                self.counts[name] = self.counts.get(name, 0) + n

        registry = Registry()
        ctl = AdmissionController(QualityConfig(), shard_id=0, metrics=registry)
        ctl.admit(make(ts=1.0, value=0.5))   # clean: no registry traffic
        assert registry.counts == {}
        ctl.admit(make(ts=2.0, value=math.nan))
        assert registry.counts == {
            "quality.quarantined": 1,
            "quality.quarantined.not_finite": 1,
        }


class TestPickling:
    def test_round_trip_preserves_state_and_drops_metrics(self):
        class Registry:
            def inc(self, name, n=1):
                pass

        ctl = AdmissionController(QualityConfig(), shard_id=3, metrics=Registry())
        ctl.admit(make(ts=5.0))
        ctl.admit(make(ts=1.0))           # held straggler
        ctl.admit(make(ts=6.0, value=math.nan))
        clone = pickle.loads(pickle.dumps(ctl))
        assert clone.metrics is None
        assert clone.counters() == ctl.counters()
        assert clone.quarantine.total == 1
        assert [s.timestamp for s in clone.drain_pending()] == [1.0]
        # Watermark survives: the old straggler is still a straggler.
        assert clone.admit(make(ts=2.0))[0] == HELD


class TestQuarantineStore:
    def test_capacity_evicts_records_not_counts(self):
        store = QuarantineStore(capacity=2)
        for index in range(5):
            store.add("s", float(index), math.nan, "not_finite")
        assert store.total == 5
        assert store.evicted == 3
        assert store.count("s") == 5
        assert len(store.snapshot()["recent"]) == 2

    def test_unknown_reason_rejected(self):
        store = QuarantineStore()
        with pytest.raises(ValueError):
            store.add("s", 0.0, 1.0, "because")

    def test_reasons_is_closed_vocabulary(self):
        assert REASONS == ("not_finite", "negative_value", "duplicate_reject")


class TestQualityConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            QualityConfig(reorder_window=0)
        with pytest.raises(ValueError):
            QualityConfig(duplicate_policy="first_write_wins")
