"""Tests for the simulator's per-RPC-endpoint metric emission (§2)."""

import numpy as np
import pytest

from repro.fleet import FleetSimulator, ServiceSpec, TransientEvent, TransientEventKind
from repro.fleet.subroutine import CallGraph, SubroutineSpec


def endpoint_graph():
    graph = CallGraph(root="_start")
    graph.add(SubroutineSpec("svc::A::feed", self_cost=6.0, parent="_start", endpoint="/feed"))
    graph.add(SubroutineSpec("svc::B::profile", self_cost=3.0, parent="_start", endpoint="/profile"))
    graph.add(SubroutineSpec("svc::C::helper", self_cost=1.0, parent="svc::A::feed"))
    return graph


def spec(**overrides):
    defaults = dict(
        name="svc",
        call_graph=endpoint_graph(),
        n_servers=10,
        effective_samples=200_000,
        samples_per_interval=0,
    )
    defaults.update(overrides)
    return ServiceSpec(**defaults)


class TestEndpointMetrics:
    def test_all_three_metric_kinds_emitted(self):
        result = FleetSimulator(spec(), interval=60.0, seed=0).run(10)
        db = result.database
        assert db.get("svc.endpoint.feed.gcpu") is not None
        assert db.get("svc.endpoint.feed.latency_ms") is not None
        assert db.get("svc.endpoint.feed.error_rate") is not None
        assert db.get("svc.endpoint.profile.latency_ms") is not None

    def test_tags_route_by_metric(self):
        result = FleetSimulator(spec(), interval=60.0, seed=0).run(5)
        latency = result.database.query(metric="endpoint_latency")
        assert {s.tags["endpoint"] for s in latency} == {"/feed", "/profile"}

    def test_heavier_endpoint_slower(self):
        result = FleetSimulator(spec(), interval=60.0, seed=1).run(40)
        feed = result.database.get("svc.endpoint.feed.latency_ms").values.mean()
        profile = result.database.get("svc.endpoint.profile.latency_ms").values.mean()
        assert feed > profile  # /feed carries 70% of the cost

    def test_event_raises_endpoint_latency(self):
        events = [TransientEvent(TransientEventKind.LOAD_SPIKE, start=600.0, duration=600.0)]
        result = FleetSimulator(spec(), events=events, interval=60.0, seed=2).run(40)
        latency = result.database.get("svc.endpoint.feed.latency_ms").values
        during = latency[11:18].mean()
        outside = np.concatenate([latency[:9], latency[25:]]).mean()
        assert during > 1.2 * outside

    def test_endpoint_gcpu_sums_to_one(self):
        result = FleetSimulator(spec(), interval=60.0, seed=3).run(30)
        feed = result.database.get("svc.endpoint.feed.gcpu").values.mean()
        profile = result.database.get("svc.endpoint.profile.gcpu").values.mean()
        # /feed subtree = (6+1)/10, /profile = 3/10.
        assert feed == pytest.approx(0.7, abs=0.01)
        assert profile == pytest.approx(0.3, abs=0.01)
