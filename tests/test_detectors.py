"""The detector registry: IDs, specs, library behavior, shadow scoring."""

import os
import pickle
import subprocess
import sys

import numpy as np
import pytest

from repro.detectors import (
    DEFAULT_REGISTRY,
    Detector,
    DetectorDecision,
    DetectorRegistry,
    DetectorWindow,
    EDivisiveDetector,
    IncumbentDetector,
    MADDetector,
    ShadowScorer,
    ThresholdDetector,
    build_detector,
    default_suite,
    make_detector_id,
    merge_snapshot_rows,
    param_hash,
)

HISTORIC, ANALYSIS, EXTENDED = 400, 150, 50
CHANGE_OFFSET = 60  # into the analysis window
BASE, SHIFT = 0.001, 0.0005


def make_window(shift=0.0, seed=4):
    rng = np.random.default_rng(seed)
    values = rng.normal(BASE, BASE * 0.02, HISTORIC + ANALYSIS + EXTENDED)
    if shift:
        values[HISTORIC + CHANGE_OFFSET :] += shift
    return DetectorWindow(
        historic=values[:HISTORIC],
        analysis=values[HISTORIC : HISTORIC + ANALYSIS],
        extended=values[HISTORIC + ANALYSIS :],
    )


class TestIdentity:
    def test_param_hash_key_order_insensitive(self):
        assert param_hash({"b": 2, "a": 1}) == param_hash({"a": 1, "b": 2})

    def test_param_hash_distinguishes_values(self):
        assert param_hash({"a": 1}) != param_hash({"a": 2})

    def test_id_format(self):
        det_id = make_detector_id("mad", 1, {"coefficient": 3.0, "min_run": 5})
        assert det_id.startswith("mad-v1-")
        assert len(det_id.split("-")[-1]) == 8

    def test_version_changes_id(self):
        params = {"coefficient": 3.0}
        assert make_detector_id("mad", 1, params) != make_detector_id(
            "mad", 2, params
        )

    def test_pinned_default_ids(self):
        # Literal pins: shadow tallies merge across shards, checkpoints,
        # and restarts on these strings — changing a default parameter or
        # the hashing scheme must be a conscious, version-bumped act.
        assert IncumbentDetector().detector_id == "incumbent-v1-24aeac9b"
        assert IncumbentDetector(threshold=0.000004).detector_id == (
            "incumbent-v1-b9523665"  # the default_suite / fig8 tuning
        )
        assert EDivisiveDetector().detector_id == "e_divisive-v1-6040f0e3"
        assert MADDetector().detector_id == "mad-v1-6a16dc1f"
        # The default_suite preset level (note: 0.001 * 1.05 != 0.00105
        # in binary floating point — the hash sees the repr default_suite
        # actually produces).
        assert ThresholdDetector(level=0.001 * 1.05).detector_id == (
            "threshold-v1-41d530c8"
        )

    def test_ids_stable_across_hash_seeds(self):
        # PYTHONHASHSEED randomizes str hashing per process; detector IDs
        # (like correlation IDs) must not move.
        script = (
            "from repro.detectors import default_suite;"
            "print(','.join(d.detector_id for d in default_suite()))"
        )
        outputs = set()
        for hash_seed in ("0", "12345"):
            env = dict(os.environ, PYTHONHASHSEED=hash_seed)
            env["PYTHONPATH"] = os.pathsep.join(
                filter(None, ["src", env.get("PYTHONPATH")])
            )
            result = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True, text=True, env=env, check=True,
            )
            outputs.add(result.stdout.strip())
        assert len(outputs) == 1
        assert "mad-v1-6a16dc1f" in outputs.pop()


class TestRegistry:
    def test_default_registry_types(self):
        for type_name in ("incumbent", "e_divisive", "dp_change", "mad",
                          "threshold"):
            assert type_name in DEFAULT_REGISTRY

    def test_unknown_type_raises_with_known_list(self):
        with pytest.raises(KeyError, match="mad"):
            DEFAULT_REGISTRY.create("nope")

    def test_custom_registry_isolated(self):
        registry = DetectorRegistry()
        registry.register("mad", MADDetector)
        assert "mad" in registry
        assert "incumbent" not in registry
        with pytest.raises(ValueError, match="already registered"):
            registry.register("mad", MADDetector)

    def test_build_detector_forms(self):
        instance = MADDetector(coefficient=2.5)
        assert build_detector(instance) is instance
        assert build_detector("mad").detector_id == MADDetector().detector_id
        by_tuple = build_detector(("mad", {"coefficient": 2.5}))
        assert by_tuple.detector_id == instance.detector_id
        by_mapping = build_detector({"type": "mad", "params": {"coefficient": 2.5}})
        assert by_mapping.detector_id == instance.detector_id

    def test_default_suite_covers_registry(self):
        suite = default_suite()
        assert len(suite) == 5
        assert len({d.detector_id for d in suite}) == 5
        assert {d.type_name for d in suite} == set(DEFAULT_REGISTRY.types())

    def test_default_suite_overrides(self):
        plain = {d.type_name: d for d in default_suite()}
        tuned = {
            d.type_name: d
            for d in default_suite(
                overrides={"e_divisive": {"n_permutations": 29}}
            )
        }
        assert tuned["e_divisive"].detector_id != plain["e_divisive"].detector_id
        assert tuned["mad"].detector_id == plain["mad"].detector_id

    def test_default_suite_unknown_override_raises(self):
        with pytest.raises(KeyError):
            default_suite(overrides={"nope": {}})


class TestLibrary:
    @pytest.mark.parametrize("detector", default_suite(), ids=lambda d: d.type_name)
    def test_fires_on_step(self, detector):
        decision = detector.scan(make_window(shift=SHIFT))
        assert decision.fired
        assert decision.magnitude > 0
        # Global-index contract: the claimed change point lands at (or
        # near) the injected one, far past the historic window.
        assert abs(decision.index - (HISTORIC + CHANGE_OFFSET)) <= 10

    @pytest.mark.parametrize("detector", default_suite(), ids=lambda d: d.type_name)
    def test_quiet_on_noise(self, detector):
        decision = detector.scan(make_window())
        assert not decision.fired
        assert decision.index is None
        assert decision.detail

    def test_mad_zero_dispersion_is_quiet(self):
        flat = DetectorWindow(
            historic=np.full(100, BASE),
            analysis=np.full(40, BASE + SHIFT),
            extended=np.full(10, BASE + SHIFT),
        )
        decision = MADDetector().scan(flat)
        assert not decision.fired
        assert "dispersion" in decision.detail

    def test_decision_quiet_constructor(self):
        decision = DetectorDecision.quiet("why")
        assert not decision.fired
        assert decision.index is None
        assert decision.detail == "why"

    def test_window_from_labeled(self):
        from repro.workloads import WindowKind, generate_labeled_window

        labeled = generate_labeled_window(
            WindowKind.REGRESSION, np.random.default_rng(0)
        )
        window = DetectorWindow.from_labeled(labeled)
        assert window.analysis_start == labeled.historic_points
        assert window.full.size == labeled.values.size
        assert labeled.change_index >= window.analysis_start


class _Exploding(Detector):
    type_name = "exploding"
    version = 1

    def params(self):
        return {}

    def scan(self, window):
        raise RuntimeError("boom")


class TestShadowScorer:
    def test_tally_partition(self):
        scorer = ShadowScorer([MADDetector()])
        hot, quiet = make_window(shift=SHIFT), make_window()
        scorer.score(hot.historic, hot.analysis, hot.extended,
                     primary_fired=True)
        scorer.score(quiet.historic, quiet.analysis, quiet.extended,
                     primary_fired=False)
        scorer.score(quiet.historic, quiet.analysis, quiet.extended,
                     primary_fired=True)
        tally = scorer.tallies[MADDetector().detector_id]
        assert tally.scans == 3
        assert tally.fired == 1
        assert tally.agree_fired == 1
        assert tally.both_quiet == 1
        assert tally.primary_only == 1
        assert tally.errors == 0

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            ShadowScorer([MADDetector(), MADDetector()])

    def test_errors_contained_and_tallied(self):
        scorer = ShadowScorer([_Exploding(), MADDetector()])
        window = make_window(shift=SHIFT)
        scorer.score(window.historic, window.analysis, window.extended,
                     primary_fired=True)
        assert scorer.tallies[_Exploding().detector_id].errors == 1
        assert scorer.tallies[MADDetector().detector_id].fired == 1

    def test_metrics_counters(self):
        class FakeMetrics:
            def __init__(self):
                self.counts = {}

            def inc(self, name, n=1):
                self.counts[name] = self.counts.get(name, 0) + n

        metrics = FakeMetrics()
        scorer = ShadowScorer([MADDetector()])
        window = make_window(shift=SHIFT)
        scorer.score(window.historic, window.analysis, window.extended,
                     primary_fired=True, metrics=metrics)
        det_id = MADDetector().detector_id
        assert metrics.counts[f"detector.{det_id}.scans"] == 1
        assert metrics.counts[f"detector.{det_id}.fired"] == 1

    def test_pickle_round_trip_preserves_tallies(self):
        scorer = ShadowScorer([MADDetector(), ThresholdDetector(level=0.00105)])
        window = make_window(shift=SHIFT)
        scorer.score(window.historic, window.analysis, window.extended,
                     primary_fired=True)
        restored = pickle.loads(pickle.dumps(scorer))
        assert restored.snapshot_rows() == scorer.snapshot_rows()
        # The restored scorer keeps accruing on the same keys.
        restored.score(window.historic, window.analysis, window.extended,
                       primary_fired=True)
        det_id = MADDetector().detector_id
        assert restored.tallies[det_id].scans == scorer.tallies[det_id].scans + 1

    def test_merge_snapshot_rows_sums_tallies(self):
        scorer_a = ShadowScorer([MADDetector()])
        scorer_b = ShadowScorer([MADDetector()])
        window = make_window(shift=SHIFT)
        scorer_a.score(window.historic, window.analysis, window.extended,
                       primary_fired=True)
        scorer_b.score(window.historic, window.analysis, window.extended,
                       primary_fired=False)
        merged = {}
        merge_snapshot_rows(merged, scorer_a.snapshot_rows())
        merge_snapshot_rows(merged, scorer_b.snapshot_rows())
        (row,) = merged.values()
        assert row["tally"]["scans"] == 2
        assert row["tally"]["fired"] == 2
        assert row["tally"]["agree_fired"] == 1
        assert row["tally"]["shadow_only"] == 1
