"""Tests for repro.stats.correlation and repro.stats.descriptive."""

import numpy as np
import pytest

from repro.stats.correlation import aligned_pearson, pearson
from repro.stats.descriptive import percentile, summarize


class TestPearson:
    def test_perfect_positive(self):
        x = np.arange(10.0)
        assert pearson(x, 2 * x + 3) == pytest.approx(1.0)

    def test_perfect_negative(self):
        x = np.arange(10.0)
        assert pearson(x, -x) == pytest.approx(-1.0)

    def test_independent_near_zero(self, rng):
        assert abs(pearson(rng.normal(0, 1, 5000), rng.normal(0, 1, 5000))) < 0.1

    def test_constant_returns_zero(self):
        assert pearson(np.full(10, 3.0), np.arange(10.0)) == 0.0

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            pearson([1.0, 2.0], [1.0])

    def test_too_short_raises(self):
        with pytest.raises(ValueError):
            pearson([1.0], [2.0])


class TestAlignedPearson:
    def test_alignment_on_shared_timestamps(self):
        a = {0.0: 1.0, 1.0: 2.0, 2.0: 3.0, 99.0: -50.0}
        b = {0.0: 2.0, 1.0: 4.0, 2.0: 6.0, 42.0: 1000.0}
        assert aligned_pearson(a, b) == pytest.approx(1.0)

    def test_insufficient_overlap(self):
        assert aligned_pearson({0.0: 1.0}, {0.0: 2.0}) == 0.0

    def test_disjoint(self):
        assert aligned_pearson({0.0: 1.0, 1.0: 2.0}, {5.0: 1.0, 6.0: 2.0}) == 0.0


class TestPercentile:
    def test_median(self):
        assert percentile([1, 2, 3, 4, 5], 50) == 3.0

    def test_extremes(self):
        assert percentile([1, 2, 3], 0) == 1.0
        assert percentile([1, 2, 3], 100) == 3.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)


class TestSummarize:
    def test_quantile_ordering(self, rng):
        summary = summarize(rng.normal(0, 1, 1000))
        assert (
            summary.minimum
            <= summary.p10
            <= summary.p50
            <= summary.p90
            <= summary.p99
            <= summary.maximum
        )

    def test_count_and_mean(self):
        summary = summarize([1.0, 2.0, 3.0])
        assert summary.count == 3
        assert summary.mean == pytest.approx(2.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            summarize([])
