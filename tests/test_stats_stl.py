"""Tests for repro.stats.stl."""

import numpy as np
import pytest

from repro.stats.stl import loess_smooth, stl_decompose


class TestLoessSmooth:
    def test_recovers_line(self):
        y = 2.0 * np.arange(50) + 1.0
        smoothed = loess_smooth(y, span=0.3, degree=1)
        assert np.allclose(smoothed, y, atol=1e-6)

    def test_reduces_noise_variance(self, rng):
        y = np.sin(np.arange(200) / 30) + rng.normal(0, 0.5, 200)
        smoothed = loess_smooth(y, span=0.2)
        assert smoothed.std() < y.std()

    def test_degree_zero_weighted_mean(self):
        y = np.array([0.0, 10.0, 0.0, 10.0, 0.0, 10.0])
        smoothed = loess_smooth(y, span=1.0, degree=0)
        assert np.all((smoothed > 0) & (smoothed < 10))

    def test_empty(self):
        assert loess_smooth([]).size == 0

    def test_invalid_span_raises(self):
        with pytest.raises(ValueError):
            loess_smooth([1.0, 2.0], span=0.0)
        with pytest.raises(ValueError):
            loess_smooth([1.0, 2.0], span=1.5)

    def test_invalid_degree_raises(self):
        with pytest.raises(ValueError):
            loess_smooth([1.0, 2.0], degree=2)

    def test_length_preserved(self, rng):
        y = rng.normal(0, 1, 37)
        assert loess_smooth(y).size == 37


class TestStlDecompose:
    def _seasonal_series(self, rng, n=240, period=24, trend_slope=0.01, noise=0.1):
        t = np.arange(n)
        return (
            5.0
            + trend_slope * t
            + np.sin(2 * np.pi * t / period)
            + rng.normal(0, noise, n)
        ), t

    def test_components_sum_to_observed(self, rng):
        y, _ = self._seasonal_series(rng)
        result = stl_decompose(y, period=24)
        assert np.allclose(result.seasonal + result.trend + result.residual, y)

    def test_seasonal_component_periodic(self, rng):
        y, _ = self._seasonal_series(rng, noise=0.05)
        result = stl_decompose(y, period=24)
        # Interior cycles (away from moving-average edge effects) repeat.
        first = result.seasonal[24:48]
        second = result.seasonal[48:72]
        assert np.allclose(first, second, atol=1e-6)

    def test_seasonal_captures_amplitude(self, rng):
        y, _ = self._seasonal_series(rng, noise=0.05)
        result = stl_decompose(y, period=24)
        assert result.seasonal.max() == pytest.approx(1.0, abs=0.3)

    def test_trend_captures_slope(self, rng):
        y, t = self._seasonal_series(rng, trend_slope=0.05, noise=0.05)
        result = stl_decompose(y, period=24)
        fitted_slope = np.polyfit(t, result.trend, 1)[0]
        assert fitted_slope == pytest.approx(0.05, rel=0.3)

    def test_deseasonalized_removes_season(self, rng):
        y, _ = self._seasonal_series(rng, trend_slope=0.0, noise=0.05)
        result = stl_decompose(y, period=24)
        assert result.deseasonalized.std() < y.std() * 0.5

    def test_seasonal_zero_mean(self, rng):
        y, _ = self._seasonal_series(rng)
        result = stl_decompose(y, period=24)
        assert result.seasonal.mean() == pytest.approx(0.0, abs=1e-9)

    def test_period_too_small_raises(self):
        with pytest.raises(ValueError):
            stl_decompose(np.zeros(50), period=1)

    def test_series_too_short_raises(self):
        with pytest.raises(ValueError):
            stl_decompose(np.zeros(10), period=8)

    def test_step_survives_into_trend(self, rng):
        # A persistent step should show in trend+residual, not seasonal.
        n, period = 240, 24
        t = np.arange(n)
        y = np.sin(2 * np.pi * t / period) + rng.normal(0, 0.05, n)
        y[n // 2 :] += 2.0
        result = stl_decompose(y, period=period)
        clean = result.deseasonalized
        shift = clean[n // 2 :].mean() - clean[: n // 2].mean()
        assert shift == pytest.approx(2.0, abs=0.4)
