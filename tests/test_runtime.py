"""Tests for repro.runtime (scheduler and sinks)."""

import logging

import numpy as np
import pytest

from repro.config import DetectionConfig
from repro.runtime import CollectingSink, DetectionScheduler, LoggingSink
from repro.tsdb import TimeSeriesDatabase, WindowSpec

from conftest import fill_series


def small_config(**overrides):
    defaults = dict(
        name="test",
        threshold=0.00005,
        rerun_interval=6_000.0,
        windows=WindowSpec(historic=36_000.0, analysis=12_000.0, extended=6_000.0),
        long_term=False,
    )
    defaults.update(overrides)
    return DetectionConfig(**defaults)


def regression_db(rng, service="svc", shift=0.0002):
    db = TimeSeriesDatabase()
    values = rng.normal(0.001, 0.00002, 1100)
    values[700:] += shift
    fill_series(
        db,
        f"{service}.sub.gcpu",
        values,
        tags={"service": service, "subroutine": "sub", "metric": "gcpu"},
    )
    return db


class TestDetectionScheduler:
    def test_register_and_monitors(self, rng):
        scheduler = DetectionScheduler(TimeSeriesDatabase())
        scheduler.register("a", small_config())
        scheduler.register("b", small_config())
        assert scheduler.monitors() == ["a", "b"]

    def test_duplicate_name_raises(self):
        scheduler = DetectionScheduler(TimeSeriesDatabase())
        scheduler.register("a", small_config())
        with pytest.raises(ValueError, match="already registered"):
            scheduler.register("a", small_config())

    def test_unregister(self):
        scheduler = DetectionScheduler(TimeSeriesDatabase())
        scheduler.register("a", small_config())
        assert scheduler.unregister("a")
        assert not scheduler.unregister("a")

    def test_advance_runs_due_scans(self, rng):
        db = regression_db(rng)
        sink = CollectingSink()
        scheduler = DetectionScheduler(db, sinks=[sink])
        scheduler.register("svc", small_config(), series_filter={"service": "svc"})
        outcomes = scheduler.advance_to(66_000.0)
        # First run at windows.total = 54000, then 60000, 66000.
        assert [o.now for o in outcomes] == [54_000.0, 60_000.0, 66_000.0]
        assert len(sink.reports) == 1  # SameRegressionMerger dedups re-runs
        assert sink.reports[0].metric_id == "svc.sub.gcpu"

    def test_rerun_interval_respected(self, rng):
        db = regression_db(rng)
        scheduler = DetectionScheduler(db)
        scheduler.register(
            "slow", small_config(rerun_interval=20_000.0), first_run=54_000.0
        )
        outcomes = scheduler.advance_to(80_000.0)
        assert [o.now for o in outcomes] == [54_000.0, 74_000.0]

    def test_multiple_monitors_parallel(self, rng):
        db = regression_db(rng, service="a")
        values = rng.normal(0.002, 0.00002, 1100)
        fill_series(db, "b.sub.gcpu", values, tags={"service": "b", "metric": "gcpu"})
        sink = CollectingSink()
        scheduler = DetectionScheduler(db, sinks=[sink], max_workers=2)
        scheduler.register("mon-a", small_config(), series_filter={"service": "a"},
                           first_run=54_000.0)
        scheduler.register("mon-b", small_config(), series_filter={"service": "b"},
                           first_run=54_000.0)
        outcomes = scheduler.advance_to(54_000.0)
        assert {o.monitor for o in outcomes} == {"mon-a", "mon-b"}
        assert len(sink.reports) == 1  # only service a regressed

    def test_backwards_time_raises(self):
        scheduler = DetectionScheduler(TimeSeriesDatabase())
        scheduler.advance_to(100.0)
        with pytest.raises(ValueError, match="backwards"):
            scheduler.advance_to(50.0)

    def test_retention_applied(self, rng):
        db = regression_db(rng)
        scheduler = DetectionScheduler(db, retention=30_000.0)
        scheduler.register("svc", small_config(), first_run=54_000.0)
        scheduler.advance_to(54_000.0)
        series = db.get("svc.sub.gcpu")
        assert series.start >= 24_000.0

    def test_invalid_params_raise(self):
        with pytest.raises(ValueError):
            DetectionScheduler(TimeSeriesDatabase(), max_workers=0)
        with pytest.raises(ValueError):
            DetectionScheduler(TimeSeriesDatabase(), retention=-1.0)

    def test_no_monitors_noop(self):
        scheduler = DetectionScheduler(TimeSeriesDatabase())
        assert scheduler.advance_to(1_000_000.0) == []
        assert scheduler.now == 1_000_000.0


class TestSinks:
    def test_collecting_sink_len(self, rng):
        db = regression_db(rng)
        sink = CollectingSink()
        scheduler = DetectionScheduler(db, sinks=[sink])
        scheduler.register("svc", small_config(), first_run=54_000.0)
        scheduler.advance_to(54_000.0)
        assert len(sink) == 1

    def test_logging_sink(self, rng, caplog):
        db = regression_db(rng)
        logger = logging.getLogger("repro.runtime.test")
        scheduler = DetectionScheduler(db, sinks=[LoggingSink(logger)])
        scheduler.register("svc", small_config(), first_run=54_000.0)
        with caplog.at_level(logging.WARNING, logger="repro.runtime.test"):
            scheduler.advance_to(54_000.0)
        assert any("Performance regression" in r.message for r in caplog.records)


class TestScanFailureIsolation:
    """One monitor's scan blowing up must not abort the whole batch."""

    def test_failing_monitor_does_not_starve_others(self, rng):
        class _Registry:
            def __init__(self):
                self.counters = {}

            def inc(self, name, amount=1.0):
                self.counters[name] = self.counters.get(name, 0.0) + amount

            def observe(self, name, value):
                pass

        registry = _Registry()
        db = regression_db(rng)
        scheduler = DetectionScheduler(db, metrics=registry)
        scheduler.register("healthy", small_config(), first_run=54_000.0)
        broken = scheduler.register("broken", small_config(), first_run=54_000.0)

        def explode(database, now):
            raise RuntimeError("scan bug")

        broken.detector.run = explode
        outcomes = scheduler.advance_to(54_000.0)
        assert [o.monitor for o in outcomes] == ["healthy"]
        assert registry.counters["scheduler.scan_failures"] == 1.0
        assert registry.counters["scheduler.scans"] == 1.0
        # The failed monitor is rescheduled, not stuck at its old due time.
        assert broken.next_run > 54_000.0
