"""Tests for SOMDedup, PairwiseDedup, SameRegressionMerger, importance."""

import numpy as np
import pytest

from repro.core.dedup_pairwise import MergeRule, PairwiseDedup
from repro.core.dedup_som import SOMDedup
from repro.core.importance import ImportanceWeights, importance_score, popularity_score
from repro.core.same_regression import SameRegressionMerger
from repro.core.types import FilterReason, MetricContext, Regression, RegressionKind
from repro.fleet.changes import ChangeEffect, ChangeLog, CodeChange
from repro.profiling.stacktrace import StackTrace
from repro.tsdb import TimeSeries, WindowSpec


def make_regression(
    metric_id,
    values,
    change_index=100,
    subroutine=None,
    metric_name="gcpu",
    change_time=None,
    magnitude=0.0002,
):
    series = TimeSeries(metric_id)
    for i, value in enumerate(values):
        series.append(float(i), float(value))
    view = WindowSpec(600, 200, 100).view(series, now=float(len(values)))
    return Regression(
        context=MetricContext(
            metric_id=metric_id,
            service="svc",
            metric_name=metric_name,
            subroutine=subroutine,
        ),
        kind=RegressionKind.SHORT_TERM,
        change_index=change_index,
        change_time=change_time if change_time is not None else 600.0 + change_index,
        mean_before=0.001,
        mean_after=0.001 + magnitude,
        window=view,
    )


def correlated_family(rng, n, shift_at=700, base=0.001):
    """n regressions whose series share the same shape (same root cause)."""
    shared_noise = rng.normal(0, 0.00002, 900)
    out = []
    for i in range(n):
        values = base + shared_noise + rng.normal(0, 0.000002, 900)
        values[shift_at:] += 0.0002
        out.append(
            make_regression(
                f"svc.ns::K::callers_{i}.gcpu", values, subroutine=f"ns::K::callers_{i}"
            )
        )
    return out


class TestPopularityScore:
    def test_fraction_of_samples(self):
        samples = [
            StackTrace.from_names(["a", "b"], weight=3.0),
            StackTrace.from_names(["a"], weight=1.0),
        ]
        assert popularity_score("b", samples) == pytest.approx(0.75)

    def test_none_subroutine(self):
        assert popularity_score(None, []) == 0.0


class TestImportanceScore:
    def test_bigger_magnitude_scores_higher(self, rng):
        values = rng.normal(0.001, 0.00002, 900)
        small = make_regression("m1", values, magnitude=0.00005)
        big = make_regression("m2", values, magnitude=0.005)
        assert importance_score(big) > importance_score(small)

    def test_root_cause_bonus(self, rng):
        values = rng.normal(0.001, 0.00002, 900)
        plain = make_regression("m1", values)
        with_cause = make_regression("m2", values)
        from repro.core.types import RootCauseScore

        with_cause.root_cause_candidates = [RootCauseScore("c1", 0.9)]
        assert importance_score(with_cause) > importance_score(plain)

    def test_popular_subroutine_penalized(self, rng):
        values = rng.normal(0.001, 0.00002, 900)
        popular = make_regression("m1", values, subroutine="hot")
        obscure = make_regression("m2", values, subroutine="cold")
        samples = [StackTrace.from_names(["hot"], weight=99.0),
                   StackTrace.from_names(["cold"], weight=1.0)]
        assert importance_score(obscure, samples) > importance_score(popular, samples)

    def test_paper_default_weights(self):
        weights = ImportanceWeights()
        assert (weights.relative_cost, weights.absolute_cost,
                weights.unpopularity, weights.root_cause_found) == (0.2, 0.6, 0.1, 0.1)


class TestSOMDedup:
    def test_correlated_family_merged(self, rng):
        family = correlated_family(rng, 8)
        groups = SOMDedup().deduplicate(family)
        assert len(groups) < len(family)
        representatives = [g.representative for g in groups]
        assert all(r is not None for r in representatives)
        # Every regression assigned to exactly one group.
        members = [m for g in groups for m in g.members]
        assert len(members) == len(family)

    def test_duplicates_get_verdict(self, rng):
        family = correlated_family(rng, 8)
        groups = SOMDedup().deduplicate(family)
        for group in groups:
            for member in group.members:
                if member is group.representative:
                    assert member.verdicts[-1].passed
                else:
                    assert member.verdicts[-1].reason is FilterReason.SOM_DUPLICATE

    def test_different_metric_types_not_merged(self, rng):
        values = rng.normal(0.001, 0.00002, 900)
        values[700:] += 0.0002
        r1 = make_regression("m.gcpu", values, metric_name="gcpu")
        r2 = make_regression("m.throughput", values, metric_name="throughput")
        groups = SOMDedup().deduplicate([r1, r2])
        assert len(groups) == 2

    def test_empty_input(self):
        assert SOMDedup().deduplicate([]) == []

    def test_single_regression(self, rng):
        values = rng.normal(0.001, 0.00002, 900)
        groups = SOMDedup().deduplicate([make_regression("m", values)])
        assert len(groups) == 1
        assert groups[0].representative.representative

    def test_root_cause_bitmap_feature(self, rng):
        log = ChangeLog(
            [CodeChange("c1", deploy_time=690.0, effects=(ChangeEffect("sub", 1.5),))]
        )
        dedup = SOMDedup(change_log=log)
        values = rng.normal(0.001, 0.00002, 900)
        regression = make_regression("m", values, subroutine="sub", change_time=700.0)
        bitmap = dedup._root_cause_bitmap(regression)
        assert sum(bitmap) == 1.0


class TestPairwiseDedup:
    def test_correlated_cross_metric_merge(self, rng):
        shared = rng.normal(0, 0.00002, 900)
        v1 = 0.001 + shared
        v1[700:] += 0.0002
        v2 = 0.002 + shared * 1.01
        v2[700:] += 0.0002
        r1 = make_regression("svc.sub.gcpu", v1, metric_name="gcpu")
        r2 = make_regression("svc.sub.throughput", v2, metric_name="throughput")
        dedup = PairwiseDedup()
        dedup.process([r1])
        groups = dedup.process([r2])
        assert len(dedup.groups) == 1
        assert r2.verdicts[-1].reason is FilterReason.PAIRWISE_DUPLICATE

    def test_unrelated_opens_new_group(self, rng):
        r1 = make_regression("aaa.gcpu", rng.normal(0.001, 0.0001, 900))
        r2 = make_regression("zzz.qps", rng.normal(5.0, 0.5, 900), metric_name="qps")
        dedup = PairwiseDedup()
        dedup.process([r1, r2])
        assert len(dedup.groups) == 2
        assert r1.verdicts[-1].passed and r2.verdicts[-1].passed

    def test_stack_overlap_merges(self, rng):
        samples = [
            StackTrace.from_names(["_start", "caller", "callee"], weight=10.0),
        ]
        r1 = make_regression(
            "svc.caller.gcpu", rng.normal(0.001, 0.0001, 900), subroutine="caller"
        )
        r2 = make_regression(
            "x.callee.gcpu", 5.0 + rng.normal(0, 0.5, 900), subroutine="callee",
            metric_name="other",
        )
        dedup = PairwiseDedup(samples=samples)
        dedup.process([r1])
        dedup.process([r2])
        assert len(dedup.groups) == 1

    def test_merge_rule_semantics(self):
        any_rule = MergeRule({"a": 0.5, "b": 0.5}, require_all=False)
        all_rule = MergeRule({"a": 0.5, "b": 0.5}, require_all=True)
        scores = {"a": 0.9, "b": 0.1}
        assert any_rule.matches(scores)
        assert not all_rule.matches(scores)
        assert not MergeRule({}).matches(scores)

    def test_text_similarity_merges_same_subroutine_names(self, rng):
        r1 = make_regression("svc.feed::Ranker::score.gcpu", rng.normal(0.001, 0.0001, 900))
        r2 = make_regression(
            "svc.feed::Ranker::score.latency", 20 + rng.normal(0, 1, 900),
            metric_name="latency",
        )
        dedup = PairwiseDedup()
        dedup.process([r1])
        dedup.process([r2])
        assert len(dedup.groups) == 1


class TestSameRegressionMerger:
    def _regression(self, rng, change_time, magnitude=0.0002, metric="svc.sub.gcpu"):
        values = rng.normal(0.001, 0.00002, 900)
        return make_regression(
            metric, values, change_time=change_time, magnitude=magnitude
        )

    def test_duplicate_across_runs_dropped(self, rng):
        merger = SameRegressionMerger(time_tolerance=3600.0)
        first = self._regression(rng, change_time=1000.0)
        again = self._regression(rng, change_time=1500.0)
        assert merger.check(first).passed
        verdict = merger.check(again)
        assert not verdict.passed
        assert verdict.reason is FilterReason.SAME_REGRESSION

    def test_different_time_not_merged(self, rng):
        merger = SameRegressionMerger(time_tolerance=600.0)
        assert merger.check(self._regression(rng, change_time=1000.0)).passed
        assert merger.check(self._regression(rng, change_time=50_000.0)).passed

    def test_different_magnitude_not_merged(self, rng):
        merger = SameRegressionMerger()
        assert merger.check(self._regression(rng, 1000.0, magnitude=0.0002)).passed
        assert merger.check(self._regression(rng, 1200.0, magnitude=0.002)).passed

    def test_different_metric_not_merged(self, rng):
        merger = SameRegressionMerger()
        assert merger.check(self._regression(rng, 1000.0, metric="a.gcpu")).passed
        assert merger.check(self._regression(rng, 1000.0, metric="b.gcpu")).passed

    def test_reset(self, rng):
        merger = SameRegressionMerger()
        assert merger.check(self._regression(rng, 1000.0)).passed
        merger.reset()
        assert merger.check(self._regression(rng, 1000.0)).passed
