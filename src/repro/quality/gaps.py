"""Gap-aware detection support: window coverage and staleness.

Quarantined points never reach the TSDB, and crashed hosts simply stop
reporting — both manifest to detection as *gaps*.  A change-point scan
over a window that is mostly gap compares a handful of surviving points
against history and fires false positives, so the pipeline consults a
:class:`QualityGate` before scanning:

- **Coverage**: the fraction of expected points actually present in the
  window, where "expected" comes from the series' own cadence (median
  inter-arrival spacing over the historic window — no configuration to
  drift out of sync with the fleet).  Windows below ``min_coverage``
  are suppressed and tallied, not scanned.
- **Staleness**: a series whose newest point is more than
  ``stale_after_analysis_windows`` analysis-spans behind ``now`` has
  stopped reporting; it is evicted from scanning entirely until new
  data resumes, so dead hosts cost nothing per tick.

The gate is stateless and picklable — everything it needs arrives per
call, so it is shared safely across monitors and shard processes.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import median
from typing import Optional, Sequence, Tuple

__all__ = ["QualityGate", "window_coverage"]


def window_coverage(
    present: int,
    start: float,
    end: float,
    cadence: float,
) -> float:
    """Fraction of expected points present in ``[start, end)``.

    Args:
        present: How many points actually arrived in the window.
        start: Window start (inclusive).
        end: Window end (exclusive).
        cadence: Expected inter-arrival spacing, seconds.

    Returns:
        ``present / ((end - start) / cadence)`` clamped to ``[0, 1]``;
        ``1.0`` when the window or cadence is degenerate (nothing
        meaningful to expect).
    """
    if cadence <= 0.0 or end <= start:
        return 1.0
    expected = (end - start) / cadence
    if expected < 1.0:
        return 1.0
    return min(1.0, present / expected)


@dataclass(frozen=True)
class QualityGate:
    """Suppression thresholds for gap-aware scanning.

    Attributes:
        min_coverage: Scan windows with coverage below this are
            suppressed (counted, not alerted).
        stale_after_analysis_windows: A series whose newest point lags
            ``now`` by more than this many analysis-window spans is
            evicted from scanning until it resumes.
        min_cadence_points: Minimum historic points needed to estimate
            cadence; below it the gate abstains (scan proceeds) rather
            than judge coverage from noise.
    """

    min_coverage: float = 0.5
    stale_after_analysis_windows: float = 3.0
    min_cadence_points: int = 8

    def __post_init__(self) -> None:
        if not 0.0 < self.min_coverage <= 1.0:
            raise ValueError("min_coverage must be in (0, 1]")
        if self.stale_after_analysis_windows <= 0.0:
            raise ValueError("stale_after_analysis_windows must be positive")
        if self.min_cadence_points < 2:
            raise ValueError("min_cadence_points must be >= 2")

    def cadence(self, timestamps: Sequence[float]) -> Optional[float]:
        """Median inter-arrival spacing, or None when too few points."""
        if len(timestamps) < self.min_cadence_points:
            return None
        deltas = [
            later - earlier
            for earlier, later in zip(timestamps, timestamps[1:])
            if later > earlier
        ]
        if not deltas:
            return None
        return median(deltas)

    def is_stale(self, last_timestamp: float, now: float, analysis_span: float) -> bool:
        """True when the series stopped reporting and should be evicted."""
        if analysis_span <= 0.0:
            return False
        return (now - last_timestamp) > self.stale_after_analysis_windows * analysis_span

    def window_ok(
        self,
        historic_timestamps: Sequence[float],
        present: int,
        start: float,
        end: float,
    ) -> Tuple[bool, float]:
        """Judge one scan window.

        Cadence comes from ``historic_timestamps`` (the stable past);
        coverage is ``present`` points measured against expectation
        over ``[start, end)``.

        Returns:
            ``(ok, coverage)`` — ``ok`` is False when the window should
            be suppressed.  Abstains (``(True, 1.0)``) when history is
            too short to estimate cadence.
        """
        spacing = self.cadence(historic_timestamps)
        if spacing is None:
            return True, 1.0
        coverage = window_coverage(present, start, end, spacing)
        return coverage >= self.min_coverage, coverage
