"""Data-quality admission, repair, and gap-aware detection support.

Production telemetry is dirty: hosts restart and drop samples, skewed
clocks deliver batches out of order, collectors emit NaN bursts, and
cumulative counters wrap.  FBDetect's premise (§2) is surviving exactly
this noise, so this package puts an admission-and-repair layer between
ingest and the TSDB/pipeline — the same discipline hyperscale TSDBs
apply before data reaches analysis:

- :class:`~repro.quality.admission.AdmissionController` runs per-series
  validators on every write: NaN/Inf points are quarantined, negative
  values on non-negative metrics are clamped (or quarantined), counter
  resets are detected and rebased so rollovers look continuous,
  repeated timestamps resolve by the TSDB's duplicate policy, and
  out-of-order arrivals are absorbed in a bounded per-series reordering
  buffer so stragglers reach the TSDB as one batched backfill merge
  instead of interleaving O(n) single-point inserts with the hot
  append path.
- :class:`~repro.quality.quarantine.QuarantineStore` keeps the
  irreparable points (capped, with reason codes and per-series quality
  scores) for operator triage on the ``/quality`` endpoint.
- :class:`~repro.quality.gaps.QualityGate` makes detection *gap-aware*:
  change-point scans over windows with excessive missing or quarantined
  data are suppressed instead of firing false positives, and stale
  series are evicted from scanning until they resume.
"""

from repro.quality.admission import (
    ADMIT,
    DROP,
    HELD,
    AdmissionController,
    QualityConfig,
)
from repro.quality.gaps import QualityGate, window_coverage
from repro.quality.quarantine import QuarantineStore, REASONS

__all__ = [
    "ADMIT",
    "DROP",
    "HELD",
    "AdmissionController",
    "QualityConfig",
    "QualityGate",
    "QuarantineStore",
    "REASONS",
    "window_coverage",
]
