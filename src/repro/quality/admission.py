"""Per-series admission and repair: validators on every write.

The :class:`AdmissionController` sits inside each shard's ingest worker
(under the worker's queue lock, so it needs no locking of its own) and
sees every sample before it is queued for the TSDB:

- **Not finite** (NaN/Inf) → quarantined, reason ``not_finite``.
- **Negative value** on a non-negative metric (gCPU cannot go below
  zero) → clamped to 0.0 when ``repair_negative`` is on, else
  quarantined with reason ``negative_value``.
- **Counter reset** on a counter-typed series (``tags["type"] ==
  "counter"``): a raw value below the previous raw value means the
  counter wrapped or the process restarted; the running offset is
  rebased so the emitted cumulative series stays continuous — the same
  repair ``rate()`` applies in Prometheus.  Reset detection is only
  meaningful on timestamp-ordered deltas, so counter series always
  ride the reordering buffer and are rebased when a sorted batch is
  released, never at arrival.
- **Repeated timestamp**: counted; resolved last-write-wins by the
  TSDB's duplicate policy (or dropped here under the ``reject`` policy).
- **Out of order**: held in a bounded per-series reordering buffer.
  In-order samples take a two-comparison fast path straight to the
  queue; stragglers accumulate sorted and are released as one batch —
  either when the buffer reaches its bound or at the next flush/advance
  boundary — so backfill reaches the TSDB as a single merged pass
  instead of interleaving O(n) single-point inserts with the hot
  append path.

Admission verdicts are tri-state (:data:`ADMIT` / :data:`HELD` /
:data:`DROP`); the worker translates them into queue operations and
return values.  All controller state is plain picklable data and rides
the shard blob through checkpoints, restores, and parallel advances.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, replace
from typing import Any, Dict, FrozenSet, List, Optional, Tuple

from repro.quality.quarantine import QuarantineStore

__all__ = ["ADMIT", "DROP", "HELD", "QualityConfig", "AdmissionController"]

#: Verdict codes returned by :meth:`AdmissionController.admit`.
ADMIT = 0  # enqueue the returned (possibly repaired) sample now
HELD = 1   # accepted but buffered for reordering; nothing to enqueue yet
DROP = 2   # quarantined; the sample must not reach the TSDB

_INF = float("inf")

#: Metrics that can never be negative; a negative sample is collector
#: damage, not data.
DEFAULT_NON_NEGATIVE: FrozenSet[str] = frozenset(
    {"gcpu", "cpu", "throughput", "latency_ms", "error_rate", "coredumps"}
)


@dataclass(frozen=True)
class QualityConfig:
    """Tuning knobs for the admission layer.

    Attributes:
        reorder_window: Per-series straggler-buffer bound; when more
            than this many out-of-order points are pending they are
            released as one backfill batch.
        quarantine_capacity: Retained quarantined-point records (per
            shard; see :class:`~repro.quality.quarantine.QuarantineStore`).
        repair_negative: Clamp negative values on non-negative metrics
            to 0.0 instead of quarantining them.
        non_negative_metrics: ``tags["metric"]`` values that may never
            be negative.
        duplicate_policy: ``"last_write_wins"`` (repeated timestamps
            overwrite, matching the TSDB's policy) or ``"reject"``
            (repeated timestamps are quarantined at admission).
    """

    reorder_window: int = 16
    quarantine_capacity: int = 1024
    repair_negative: bool = True
    non_negative_metrics: FrozenSet[str] = DEFAULT_NON_NEGATIVE
    duplicate_policy: str = "last_write_wins"

    def __post_init__(self) -> None:
        if self.reorder_window < 1:
            raise ValueError("reorder_window must be >= 1")
        if self.duplicate_policy not in ("last_write_wins", "reject"):
            raise ValueError(
                f"unknown duplicate_policy {self.duplicate_policy!r}"
            )


class _SeriesState:
    """Per-series validator state (picklable; slots keep it small)."""

    __slots__ = (
        "watermark", "pending_ts", "pending", "non_negative", "is_counter",
        "counter_offset", "last_raw", "admitted", "quarantined",
    )

    def __init__(self, non_negative: bool, is_counter: bool) -> None:
        self.watermark = -_INF      # highest timestamp passed to the queue
        self.pending_ts: List[float] = []   # sorted straggler timestamps
        self.pending: List[Any] = []        # parallel straggler samples
        self.non_negative = non_negative
        self.is_counter = is_counter
        self.counter_offset = 0.0
        self.last_raw: Optional[float] = None
        self.admitted = 0
        self.quarantined = 0

    def __getstate__(self) -> tuple:
        return tuple(getattr(self, slot) for slot in self.__slots__)

    def __setstate__(self, state: tuple) -> None:
        for slot, value in zip(self.__slots__, state):
            setattr(self, slot, value)


class AdmissionController:
    """Validators + reordering buffer + quarantine for one shard.

    Args:
        config: Admission tuning (see :class:`QualityConfig`).
        shard_id: Owning shard, for snapshot labelling only.
        metrics: Optional registry-like object (``inc(name, n)``).
            Process-local: dropped on pickle, re-wired by the service.
            Only *events* (quarantines, repairs, reorders) touch it, so
            the clean-sample hot path stays registry-free.

    Not thread-safe on its own: every call happens under the owning
    ingest worker's queue lock.
    """

    def __init__(
        self,
        config: Optional[QualityConfig] = None,
        shard_id: Optional[int] = None,
        metrics: Optional[Any] = None,
    ) -> None:
        self.config = config if config is not None else QualityConfig()
        self.shard_id = shard_id
        self.metrics = metrics
        self.quarantine = QuarantineStore(capacity=self.config.quarantine_capacity)
        self._series: Dict[str, _SeriesState] = {}
        # Stragglers whose buffer overflowed, awaiting pickup by the
        # worker (checked as a cheap truthiness test per offer).
        self.ready: List[Any] = []
        # Aggregate counters: plain ints, checkpointed with the shard.
        # (``admitted`` is derived from per-series counts — see the
        # property — so the hot path pays one increment, not two.)
        self.quarantined = 0
        self.repaired = 0
        self.counter_resets = 0
        self.duplicates = 0
        self.reordered = 0
        self.buffered = 0  # currently held stragglers across all series

    # -- the admission decision -----------------------------------------

    def admit(self, sample: Any) -> Tuple[int, Optional[Any]]:
        """Validate one sample.

        Returns:
            ``(ADMIT, sample)`` — enqueue the returned sample (it may be
            a repaired copy); ``(HELD, None)`` — accepted but buffered
            for reordering (check :attr:`ready` for a released batch);
            ``(DROP, None)`` — quarantined.
        """
        try:
            state = self._series[sample.name]
        except KeyError:
            state = self._create_state(sample)
        value = sample.value
        # Fast path: finite (the chained comparison is also False for
        # NaN), sign-valid, non-counter, in-order — the overwhelming
        # common case costs a handful of comparisons and one increment.
        if -_INF < value < _INF and not state.is_counter:
            if value >= 0.0 or not state.non_negative:
                timestamp = sample.timestamp
                if timestamp > state.watermark:
                    state.watermark = timestamp
                    state.admitted += 1
                    return ADMIT, sample
        return self._admit_slow(state, sample)

    def _admit_slow(
        self, state: _SeriesState, sample: Any
    ) -> Tuple[int, Optional[Any]]:
        """Everything that fell off the fast path: validation failures,
        counters, duplicates, and stragglers."""
        value = sample.value
        timestamp = sample.timestamp

        # Validators.  NaN is the only float that is != itself.
        if value != value or value == _INF or value == -_INF:
            self._quarantine(state, sample, "not_finite")
            return DROP, None
        if value < 0.0 and state.non_negative:
            if not self.config.repair_negative:
                self._quarantine(state, sample, "negative_value")
                return DROP, None
            sample = replace(sample, value=0.0)
            self.repaired += 1
            self._inc("quality.repaired")
        if state.is_counter:
            return self._admit_counter(state, sample, timestamp)

        if timestamp > state.watermark:
            # In order after all (a repaired negative got here).
            state.watermark = timestamp
            state.admitted += 1
            return ADMIT, sample
        if timestamp == state.watermark:
            self.duplicates += 1
            self._inc("quality.duplicates")
            if self.config.duplicate_policy == "reject":
                self._quarantine(state, sample, "duplicate_reject")
                return DROP, None
            state.admitted += 1
            return ADMIT, sample  # TSDB resolves last-write-wins in place

        # Straggler: buffer it sorted; release the whole batch when the
        # buffer overflows (or at the next flush/advance boundary).
        pos = bisect.bisect_right(state.pending_ts, timestamp)
        if pos and state.pending_ts[pos - 1] == timestamp:
            self.duplicates += 1
            self._inc("quality.duplicates")
            if self.config.duplicate_policy == "reject":
                self._quarantine(state, sample, "duplicate_reject")
                return DROP, None
            state.pending[pos - 1] = sample  # last write wins in the buffer
            state.admitted += 1
            return HELD, None
        state.pending_ts.insert(pos, timestamp)
        state.pending.insert(pos, sample)
        state.admitted += 1
        self.reordered += 1
        self.buffered += 1
        self._inc("quality.reordered")
        if len(state.pending) > self.config.reorder_window:
            self.ready.extend(state.pending)
            self.buffered -= len(state.pending)
            state.pending = []
            state.pending_ts = []
        return HELD, None

    def _admit_counter(
        self, state: _SeriesState, sample: Any, timestamp: float
    ) -> Tuple[int, Optional[Any]]:
        """Counter-series path: every point rides the reordering buffer.

        Reset detection compares consecutive raw values, which is only
        meaningful on timestamp-ordered deltas — an out-of-order
        delivery would masquerade as a rollover and corrupt the rebase.
        So counters are always held sorted and rebased when a batch is
        *released* (:meth:`_release_counter_batch`), never at arrival.
        """
        pos = bisect.bisect_right(state.pending_ts, timestamp)
        if pos and state.pending_ts[pos - 1] == timestamp:
            self.duplicates += 1
            self._inc("quality.duplicates")
            if self.config.duplicate_policy == "reject":
                self._quarantine(state, sample, "duplicate_reject")
                return DROP, None
            state.pending[pos - 1] = sample  # last write wins in the buffer
            state.admitted += 1
            return HELD, None
        if timestamp <= state.watermark:
            # Arrived after its ordered slot was already released: the
            # sequential rebase pass moved on, so apply the offset in
            # effect without reset detection and let the TSDB backfill.
            if timestamp == state.watermark:
                self.duplicates += 1
                self._inc("quality.duplicates")
                if self.config.duplicate_policy == "reject":
                    self._quarantine(state, sample, "duplicate_reject")
                    return DROP, None
            else:
                self.reordered += 1
                self._inc("quality.reordered")
            if state.counter_offset:
                sample = replace(sample, value=sample.value + state.counter_offset)
            state.admitted += 1
            return ADMIT, sample
        if state.pending_ts and timestamp < state.pending_ts[-1]:
            self.reordered += 1
            self._inc("quality.reordered")
        state.pending_ts.insert(pos, timestamp)
        state.pending.insert(pos, sample)
        state.admitted += 1
        self.buffered += 1
        if len(state.pending) > self.config.reorder_window:
            self.ready.extend(self._release_counter_batch(state))
        return HELD, None

    def _release_counter_batch(self, state: _SeriesState) -> List[Any]:
        """Rebase and release one counter series' sorted pending batch."""
        batch, state.pending = state.pending, []
        if not batch:
            state.pending_ts = []
            return batch
        state.watermark = max(state.watermark, state.pending_ts[-1])
        state.pending_ts = []
        self.buffered -= len(batch)
        released: List[Any] = []
        for sample in batch:
            raw = sample.value
            if state.last_raw is not None and raw < state.last_raw:
                # Reset/rollover: rebase so the cumulative stays continuous.
                state.counter_offset += state.last_raw
                self.counter_resets += 1
                self._inc("quality.counter_resets")
            state.last_raw = raw
            if state.counter_offset:
                sample = replace(sample, value=raw + state.counter_offset)
            released.append(sample)
        return released

    def take_ready(self) -> List[Any]:
        """Remove and return overflowed stragglers awaiting backfill."""
        ready, self.ready = self.ready, []
        return ready

    def drain_pending(self) -> List[Any]:
        """Release *every* held straggler, sorted by timestamp.

        Called at flush/advance boundaries (detection is about to look
        at the TSDB) and before shard snapshots (held points must travel
        with the queue they are destined for).
        """
        drained: List[Any] = list(self.ready)
        self.ready = []
        for state in self._series.values():
            if state.pending:
                if state.is_counter:
                    drained.extend(self._release_counter_batch(state))
                else:
                    drained.extend(state.pending)
                    state.pending = []
                    state.pending_ts = []
        self.buffered = 0
        drained.sort(key=lambda s: s.timestamp)
        return drained

    # -- operator surface -------------------------------------------------

    def release_series(self, name: str) -> int:
        """Un-quarantine one series: clear its records and reset its score."""
        released = self.quarantine.release(name)
        state = self._series.get(name)
        if state is not None:
            state.quarantined = 0
        return released

    def quality_score(self, name: str) -> Optional[float]:
        """Fraction of the series' offered points that were admitted."""
        state = self._series.get(name)
        if state is None:
            return None
        seen = state.admitted + state.quarantined
        return state.admitted / seen if seen else 1.0

    @property
    def admitted(self) -> int:
        """Total admitted samples, derived from the per-series counts
        (the hot path pays one per-series increment, nothing aggregate)."""
        return sum(state.admitted for state in self._series.values())

    def counters(self) -> Dict[str, int]:
        """Aggregate admission counters as a plain dict."""
        return {
            "admitted": self.admitted,
            "quarantined": self.quarantined,
            "repaired": self.repaired,
            "counter_resets": self.counter_resets,
            "duplicates": self.duplicates,
            "reordered": self.reordered,
            "buffered": self.buffered,
        }

    def snapshot(self) -> dict:
        """JSON view for ``/quality`` (one shard's slice)."""
        scores = {
            name: round(self.quality_score(name) or 1.0, 6)
            for name in self.quarantine.series_names()
        }
        return {
            "shard": self.shard_id,
            "counters": self.counters(),
            "quarantine": self.quarantine.snapshot(),
            "scores": scores,
        }

    # -- internals --------------------------------------------------------

    def _create_state(self, sample: Any) -> _SeriesState:
        tags = sample.tags
        state = _SeriesState(
            non_negative=tags.get("metric") in self.config.non_negative_metrics,
            is_counter=tags.get("type") == "counter",
        )
        self._series[sample.name] = state
        return state

    def _quarantine(self, state: _SeriesState, sample: Any, reason: str) -> None:
        self.quarantine.add(sample.name, sample.timestamp, sample.value, reason)
        state.quarantined += 1
        self.quarantined += 1
        self._inc("quality.quarantined")
        self._inc(f"quality.quarantined.{reason}")

    def _inc(self, name: str) -> None:
        if self.metrics is not None:
            self.metrics.inc(name)

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state["metrics"] = None  # process-local; re-wired by the service
        return state
