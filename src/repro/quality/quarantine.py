"""The quarantine store: where irreparable points go to be triaged.

Quarantined points never reach the TSDB — from detection's point of
view they are gaps, which the gap-aware
:class:`~repro.quality.gaps.QualityGate` accounts for.  The store keeps
the offending points themselves (capped, oldest evicted first) plus
per-series reason-code counts and quality scores that are *not* capped,
so ``/quality`` can always answer "which series is rotting and why"
even after the raw evidence has been evicted.

Reason codes are a closed vocabulary (:data:`REASONS`) so runbooks and
dashboards can key on them.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

__all__ = ["QuarantineStore", "REASONS"]

#: Closed vocabulary of quarantine reason codes (see docs/RUNBOOK.md).
REASONS: Tuple[str, ...] = (
    "not_finite",       # NaN or +/-Inf value
    "negative_value",   # negative value on a non-negative metric, repair off
    "duplicate_reject", # repeated timestamp under the reject policy
)


class QuarantineStore:
    """Capped store of rejected points with per-series accounting.

    Args:
        capacity: Maximum retained point records; beyond it the oldest
            records are evicted (their per-series counts remain).

    Picklable: rides inside the ingest worker's shard state, so
    quarantine survives checkpoints, restores, and parallel shard
    advances.
    """

    def __init__(self, capacity: int = 1024) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        # (series, timestamp, repr(value), reason) — value kept as repr
        # so NaN/Inf stay JSON-safe on /quality.
        self._records: Deque[Tuple[str, float, str, str]] = deque(maxlen=capacity)
        self._by_series: Dict[str, Dict[str, int]] = {}
        self.total = 0
        self.evicted = 0

    def add(self, series: str, timestamp: float, value: float, reason: str) -> None:
        """Quarantine one point under ``reason`` (a :data:`REASONS` code).

        Raises:
            ValueError: On a reason outside the closed vocabulary — a
                new failure mode needs a runbook entry, not a free-form
                string.
        """
        if reason not in REASONS:
            raise ValueError(f"unknown quarantine reason {reason!r}")
        if len(self._records) == self.capacity:
            self.evicted += 1
        self._records.append((series, float(timestamp), repr(value), reason))
        counts = self._by_series.setdefault(series, {})
        counts[reason] = counts.get(reason, 0) + 1
        self.total += 1

    def count(self, series: Optional[str] = None) -> int:
        """Quarantined-point count, overall or for one series."""
        if series is None:
            return self.total
        return sum(self._by_series.get(series, {}).values())

    def reasons(self, series: str) -> Dict[str, int]:
        """Per-reason counts for one series (empty when clean)."""
        return dict(self._by_series.get(series, {}))

    def series_names(self) -> List[str]:
        """Every series with at least one quarantined point, sorted."""
        return sorted(self._by_series)

    def release(self, series: str) -> int:
        """Un-quarantine a series: drop its records and counts.

        The points themselves are irreparable (that is why they are
        here); releasing acknowledges the upstream fix and resets the
        series' quality accounting so its score recovers.

        Returns:
            How many quarantined points were attributed to the series.
        """
        counts = self._by_series.pop(series, None)
        if counts is None:
            return 0
        released = sum(counts.values())
        self._records = deque(
            (r for r in self._records if r[0] != series), maxlen=self.capacity
        )
        self.total -= released
        return released

    def snapshot(self, limit: int = 50) -> dict:
        """JSON view for ``/quality``: totals plus the worst offenders."""
        offenders = sorted(
            self._by_series.items(),
            key=lambda item: (-sum(item[1].values()), item[0]),
        )
        return {
            "total": self.total,
            "retained": len(self._records),
            "capacity": self.capacity,
            "evicted": self.evicted,
            "series": {
                name: {"count": sum(counts.values()), "reasons": dict(counts)}
                for name, counts in offenders[:limit]
            },
            "recent": [
                {"series": s, "timestamp": ts, "value": value, "reason": reason}
                for s, ts, value, reason in list(self._records)[-10:]
            ],
        }
