"""Real-data connectors: importers, push receivers, and alert sinks.

The boundary layer between external telemetry systems and the
detection service.  Everything here adapts *into* the service's normal
front door (``ingest_sample`` → admission → detection) or *out of* its
normal delivery path (:class:`~repro.runtime.sinks.IncidentSink`) —
connectors never bypass routing, backpressure, data-quality admission,
or per-sink fault isolation.

Inbound:

- :class:`SeriesMapper` / :class:`MappedSeries` — external→internal
  identity mapping (name mangling, unit/type tags, counter detection).
- :class:`CsvImporter` / :class:`JsonLinesImporter` — file ingest.
- :class:`RemoteWriteReceiver` / :func:`parse_remote_write` — a
  Prometheus remote-write-shaped HTTP push endpoint (JSON body).
- :mod:`repro.connectors.mozilla` — the labelled Mozilla/Perfherder
  corpus (arXiv 2503.16332) behind the FP/FN benchmark.

Outbound:

- :class:`WebhookSink` — buffered, retried, deduplicated webhook
  delivery (Slack-shaped payloads via :func:`slack_payload`, keyed on
  the deterministic :func:`alert_id`).
"""

from repro.connectors.importers import CsvImporter, ImportStats, JsonLinesImporter
from repro.connectors.mapping import MappedSeries, SeriesMapper
from repro.connectors.mozilla import (
    MozillaAlert,
    MozillaCorpus,
    MozillaSeries,
    import_corpus,
    load_corpus,
)
from repro.connectors.remote_write import RemoteWriteReceiver, parse_remote_write
from repro.connectors.webhook import WebhookSink, alert_id, slack_payload

__all__ = [
    "CsvImporter",
    "ImportStats",
    "JsonLinesImporter",
    "MappedSeries",
    "SeriesMapper",
    "MozillaAlert",
    "MozillaCorpus",
    "MozillaSeries",
    "import_corpus",
    "load_corpus",
    "RemoteWriteReceiver",
    "parse_remote_write",
    "WebhookSink",
    "alert_id",
    "slack_payload",
]
