"""A reliable webhook alert sink (Slack-shaped JSON payloads).

The alerting edge of :mod:`repro.connectors`: deliver incident reports
to an HTTP endpoint — a Slack incoming webhook, PagerDuty shim, or any
ticketing bridge — without ever letting that endpoint's health leak
back into detection.  The contract the chaos drills assert:

- **Never block an advance.**  :meth:`WebhookSink.deliver` only
  enqueues: it computes the alert's correlation id, dedups, appends to
  a *bounded* in-memory queue, and returns.  All network I/O happens on
  one background daemon thread.
- **Never fail an advance.**  A slow, flaky, or dead endpoint shows up
  as retries and (eventually) ``failed`` counts on this sink — never as
  an exception in the scan loop.  (The service additionally isolates
  every sink call; see
  :meth:`~repro.service.service.StreamingDetectionService._deliver_to_sinks`.)
- **Retry with exponential backoff.**  Each queued alert is attempted
  up to ``1 + max_retries`` times, sleeping ``backoff * 2**attempt``
  (capped) between attempts, so a webhook endpoint restarting mid-run
  receives the alert when it comes back.
- **Dedup on the blake2b alert id.**  The same (metric, change time)
  incident enqueues at most once per sink lifetime — the deterministic
  :func:`~repro.obs.logging.correlation_id` every other layer already
  joins on — so monitor overlap or replay can't double-page.
- **Bounded everything.**  The queue holds ``capacity`` alerts; beyond
  that the *oldest* undelivered alert is evicted (freshest-page-wins,
  counted under ``evicted``).  The dedup set is capacity-bounded the
  same way.

The payload is Slack's incoming-webhook shape (``text`` plus one
``attachments`` entry with short fields) built by :func:`slack_payload`;
pass ``payload_builder`` for a different receiver.  Posting uses stdlib
``urllib`` — ``poster`` is injectable for tests and transports.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request
from typing import Any, Callable, Deque, Dict, Optional, Tuple
from collections import deque

from repro.obs.logging import correlation_id, get_logger
from repro.reporting.report import IncidentReport
from repro.runtime.sinks import IncidentSink

__all__ = ["WebhookSink", "slack_payload", "alert_id"]

_log = get_logger("repro.connectors.webhook")


def alert_id(report: IncidentReport) -> str:
    """The deterministic correlation id for one incident.

    Identical to the id the service logs and ledgers under — blake2b
    over (metric, change time) — so a webhook message, its log lines,
    and the re-alert ledger entry all carry the same key.
    """
    return correlation_id(report.metric_id, report.change_time, prefix="alert")


def slack_payload(report: IncidentReport) -> Dict[str, Any]:
    """Render one report as a Slack incoming-webhook message."""
    top_cause = (
        report.root_causes[0].change_id if report.root_causes else "none ranked"
    )
    return {
        "text": (
            f"Performance regression in {report.metric_id}: "
            f"{report.relative_magnitude:+.2%} vs baseline"
        ),
        "attachments": [
            {
                "color": "#c0392b",
                "title": f"Performance regression in {report.metric_id}",
                "fields": [
                    {"title": "Service", "value": report.service or "(unknown)",
                     "short": True},
                    {"title": "Path", "value": report.kind, "short": True},
                    {"title": "Magnitude",
                     "value": (f"{report.magnitude:+.6g} "
                               f"({report.relative_magnitude:+.2%} of baseline "
                               f"{report.baseline:.6g})"),
                     "short": False},
                    {"title": "Change began", "value": f"t={report.change_time:.0f}s",
                     "short": True},
                    {"title": "Detection latency",
                     "value": f"{report.detection_latency:.0f}s", "short": True},
                    {"title": "Top root-cause candidate", "value": top_cause,
                     "short": False},
                ],
                "footer": alert_id(report),
                "ts": int(report.detected_at),
            }
        ],
    }


def _http_post(url: str, body: bytes, timeout: float) -> None:
    """POST ``body`` as JSON; raises on network errors and non-2xx."""
    request = urllib.request.Request(
        url, data=body, headers={"Content-Type": "application/json"}
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        status = getattr(response, "status", 200)
        if not 200 <= status < 300:
            raise urllib.error.HTTPError(
                url, status, f"webhook answered {status}", response.headers, None
            )


class WebhookSink(IncidentSink):
    """Buffered, retried, deduplicated webhook delivery (see module doc).

    Args:
        url: Endpoint to POST payloads to.
        timeout: Per-request socket timeout (seconds).
        capacity: Bounded delivery-queue depth; overflow evicts the
            oldest undelivered alert.
        max_retries: Re-attempts after the first failed post.
        backoff: Base seconds of the exponential inter-attempt backoff.
        backoff_cap: Upper bound on one backoff sleep.
        dedup_capacity: Remembered alert ids (oldest forgotten first).
        payload_builder: ``report -> dict`` (default :func:`slack_payload`).
        poster: ``(url, body_bytes, timeout) -> None`` transport
            override; raises to signal failure.
        metrics: Optional registry-like object (``inc(name, n)``);
            mirrors the sink counters under ``sink.webhook.*``.
    """

    def __init__(
        self,
        url: str,
        timeout: float = 2.0,
        capacity: int = 256,
        max_retries: int = 4,
        backoff: float = 0.05,
        backoff_cap: float = 2.0,
        dedup_capacity: int = 4096,
        payload_builder: Optional[Callable[[IncidentReport], dict]] = None,
        poster: Optional[Callable[[str, bytes, float], None]] = None,
        metrics: Optional[Any] = None,
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        self.url = url
        self.timeout = timeout
        self.capacity = capacity
        self.max_retries = max_retries
        self.backoff = backoff
        self.backoff_cap = backoff_cap
        self.dedup_capacity = dedup_capacity
        self.payload_builder = payload_builder or slack_payload
        self.poster = poster or _http_post
        self.metrics = metrics
        self._queue: Deque[Tuple[str, bytes]] = deque()
        self._lock = threading.Lock()
        self._wakeup = threading.Event()
        self._stop = threading.Event()
        self._idle = threading.Condition(self._lock)
        self._seen: Deque[str] = deque()
        self._seen_set: set = set()
        self._thread: Optional[threading.Thread] = None
        self._in_flight = False
        self.counters: Dict[str, int] = {
            "enqueued": 0,
            "delivered": 0,
            "retries": 0,
            "failed": 0,
            "deduped": 0,
            "evicted": 0,
        }

    # -- producer side (the scan loop) -----------------------------------

    def deliver(self, report: IncidentReport) -> None:
        """Enqueue one report for background delivery (non-blocking)."""
        key = alert_id(report)
        body = json.dumps(
            self.payload_builder(report), sort_keys=True
        ).encode("utf-8")
        with self._lock:
            if key in self._seen_set:
                self._count("deduped")
                return
            self._seen_set.add(key)
            self._seen.append(key)
            while len(self._seen) > self.dedup_capacity:
                self._seen_set.discard(self._seen.popleft())
            if len(self._queue) >= self.capacity:
                evicted_key, _ = self._queue.popleft()
                self._count("evicted")
                _log.warning(
                    "webhook queue full; evicting oldest undelivered alert",
                    url=self.url, evicted=evicted_key,
                )
            self._queue.append((key, body))
            self._count("enqueued")
            self._ensure_thread()
        self._wakeup.set()

    def _count(self, name: str, amount: int = 1) -> None:
        self.counters[name] += amount
        if self.metrics is not None:
            self.metrics.inc(f"sink.webhook.{name}", amount)

    def _ensure_thread(self) -> None:
        """Start the delivery thread lazily (lock held)."""
        if self._thread is None or not self._thread.is_alive():
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._drain, name="repro-webhook-sink", daemon=True
            )
            self._thread.start()

    @property
    def pending(self) -> int:
        """Alerts buffered (or in flight) but not yet resolved."""
        with self._lock:
            return len(self._queue) + bool(self._in_flight)

    # -- consumer side (the delivery thread) -----------------------------

    def _drain(self) -> None:
        while not self._stop.is_set():
            with self._lock:
                if not self._queue:
                    self._idle.notify_all()
                    self._wakeup.clear()
            if not self._queue:
                # Park until a new alert arrives or close() stops us.
                self._wakeup.wait(timeout=0.5)
                continue
            with self._lock:
                if not self._queue:
                    continue
                key, body = self._queue.popleft()
                self._in_flight = True
            try:
                self._attempt(key, body)
            finally:
                with self._lock:
                    self._in_flight = False
                    self._idle.notify_all()

    def _attempt(self, key: str, body: bytes) -> None:
        """Post one alert with exponential-backoff retries."""
        for attempt in range(self.max_retries + 1):
            if self._stop.is_set() and attempt > 0:
                break  # closing: don't sit out the remaining backoff
            try:
                self.poster(self.url, body, self.timeout)
            except Exception as error:
                if attempt >= self.max_retries:
                    self._count("failed")
                    _log.warning(
                        "webhook delivery failed permanently",
                        url=self.url, alert=key, attempts=attempt + 1,
                        error=str(error),
                    )
                    return
                self._count("retries")
                delay = min(self.backoff * (2.0 ** attempt), self.backoff_cap)
                # Interruptible sleep: close() must not wait out a
                # backoff ladder on a dead endpoint.
                if self._stop.wait(timeout=delay):
                    break
            else:
                self._count("delivered")
                return
        self._count("failed")

    # -- lifecycle --------------------------------------------------------

    def flush(self, timeout: float = 5.0) -> bool:
        """Wait until the queue drains (or ``timeout``); True on empty."""
        with self._idle:
            remaining = timeout
            while (self._queue or self._in_flight) and remaining > 0:
                started = time.monotonic()
                self._idle.wait(timeout=min(remaining, 0.1))
                remaining -= time.monotonic() - started
            return not self._queue and not self._in_flight

    def close(self, timeout: float = 5.0) -> None:
        """Drain (best effort, bounded by ``timeout``) and stop."""
        self.flush(timeout=timeout)
        self._stop.set()
        self._wakeup.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=2.0)
        self._thread = None
