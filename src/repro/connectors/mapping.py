"""Mapping external telemetry identity into the internal series space.

Every importer and receiver in :mod:`repro.connectors` funnels through
one :class:`SeriesMapper`, so a Prometheus metric, a graphite dotted
path, and a CSV column that all describe the same measurement land on
the same internal series name and tag set — which is what the admission
layer (:mod:`repro.quality`), monitor ``series_filter`` matching, and
the blake2b alert correlation ids all key on.

The mapper does three jobs:

- **Name mangling.**  External names carry characters the internal
  series space never uses (``{}``, ``=``, spaces, ``/``); they are
  folded to ``_`` and the name is normalized to the internal dotted
  form.  Prometheus label sets are appended deterministically
  (sorted by label key) so the same labelled series always maps to the
  same internal name.
- **Unit and type tagging.**  Prometheus naming conventions encode the
  unit and accumulation semantics in the metric name
  (``*_seconds_total``, ``*_bytes``); the mapper lifts them into tags
  (``unit``, ``type``) so downstream consumers get structured metadata
  instead of string-sniffing.
- **Counter detection.**  Cumulative series (``*_total``, ``*_count``,
  ``*_sum``, or an explicit ``counter`` type from the source) are
  tagged ``type=counter`` — the tag the
  :class:`~repro.quality.admission.AdmissionController` keys its
  reset/rollover rebasing on, so an imported Prometheus counter gets
  the same repair a native one does.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

__all__ = ["MappedSeries", "SeriesMapper"]

#: Characters allowed in internal series names; runs of anything else
#: collapse to one ``_``.
_INVALID = re.compile(r"[^A-Za-z0-9_.:\-]+")
#: Unit suffixes lifted into ``tags["unit"]`` (Prometheus conventions).
_UNIT_SUFFIXES: Tuple[Tuple[str, str], ...] = (
    ("_seconds", "seconds"),
    ("_milliseconds", "milliseconds"),
    ("_ms", "milliseconds"),
    ("_microseconds", "microseconds"),
    ("_bytes", "bytes"),
    ("_ratio", "ratio"),
    ("_percent", "percent"),
    ("_celsius", "celsius"),
    ("_info", "info"),
)
#: Name suffixes that mark a cumulative (counter) series.
_COUNTER_SUFFIXES = ("_total", "_count", "_sum")
#: Source label keys that are identity, not tags (consumed by mapping).
_RESERVED_LABELS = frozenset({"__name__"})


@dataclass(frozen=True)
class MappedSeries:
    """One external series resolved to internal identity.

    Attributes:
        name: Internal series name (stable and deterministic in the
            external name + label set).
        tags: Internal tag set — external labels plus derived
            ``metric``/``unit``/``type``/``source`` metadata.
    """

    name: str
    tags: Dict[str, str] = field(default_factory=dict)


class SeriesMapper:
    """Maps external metric identity to internal series identity.

    Args:
        source: Connector name recorded under ``tags["source"]``
            (``csv``, ``jsonl``, ``remote_write``, ``mozilla`` ...).
        prefix: Optional namespace prepended to every mapped name
            (``prefix.name``) so imported series can't collide with
            native ones.
        default_tags: Tags merged under every mapped series (sample
            tags win on key collisions).

    Mapping is pure and deterministic, so the same external series
    always lands on the same internal identity — across importers,
    processes, and restarts.  Results are memoized per (name, labels)
    because receivers map the same hot series on every scrape.
    """

    def __init__(
        self,
        source: str,
        prefix: str = "",
        default_tags: Optional[Mapping[str, str]] = None,
    ) -> None:
        self.source = source
        self.prefix = prefix.rstrip(".")
        self.default_tags = dict(default_tags or {})
        self._cache: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], MappedSeries] = {}

    def map(
        self, name: str, labels: Optional[Mapping[str, str]] = None
    ) -> MappedSeries:
        """Resolve one external (name, labels) pair.

        Raises:
            ValueError: When the external name is empty (or mangles to
                nothing) — an unidentifiable series must be rejected at
                the edge, not admitted under a garbage name.
        """
        label_items: Tuple[Tuple[str, str], ...] = tuple(
            sorted((str(k), str(v)) for k, v in (labels or {}).items())
        )
        key = (name, label_items)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        mapped = self._map_uncached(name, label_items)
        # Bound the memo: receivers see a finite series space, but a
        # misbehaving client spraying unique names must not grow this
        # dict without limit.
        if len(self._cache) < 65536:
            self._cache[key] = mapped
        return mapped

    def _map_uncached(
        self, name: str, label_items: Tuple[Tuple[str, str], ...]
    ) -> MappedSeries:
        clean = _INVALID.sub("_", str(name).strip()).strip("_.")
        if not clean:
            raise ValueError(f"unmappable external series name: {name!r}")

        base = clean
        tags: Dict[str, str] = dict(self.default_tags)
        is_counter = False
        # Counter suffixes come off before unit suffixes so
        # ``*_seconds_total`` yields unit=seconds AND type=counter.
        for suffix in _COUNTER_SUFFIXES:
            if base.endswith(suffix) and len(base) > len(suffix):
                is_counter = True
                base = base[: -len(suffix)]
                break
        for suffix, unit in _UNIT_SUFFIXES:
            if base.endswith(suffix) and len(base) > len(suffix):
                tags.setdefault("unit", unit)
                base = base[: -len(suffix)]
                break

        for label, value in label_items:
            if label not in _RESERVED_LABELS:
                tags[str(label)] = str(value)
        if tags.get("type") == "counter":
            is_counter = True

        # The short metric tag is the last dotted component of the
        # stripped base name — what monitor series_filters match on
        # (``svc.render.gcpu`` -> ``gcpu``, ``http_requests_total``
        # -> ``http_requests``).
        tags.setdefault("metric", base.rsplit(".", 1)[-1])
        if is_counter:
            tags["type"] = "counter"
        tags.setdefault("source", self.source)

        internal = f"{self.prefix}.{clean}" if self.prefix else clean
        if label_items:
            # Labelled series fan out into distinct internal series;
            # the sorted key=value suffix keeps the expansion
            # deterministic and collision-free per label set.
            label_part = ".".join(
                _INVALID.sub("_", f"{k}={v}")
                for k, v in label_items
                if k not in _RESERVED_LABELS
            )
            if label_part:
                internal = f"{internal}.{label_part}"
        return MappedSeries(name=internal, tags=tags)
