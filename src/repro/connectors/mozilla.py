"""Importer for the Mozilla performance-measurements dataset.

The data artifact *"A Dataset of Performance Measurements and Alerts
from Mozilla"* (arXiv 2503.16332) publishes Perfherder's production
telemetry: per-signature measurement time series (a signature is one
(framework, suite, test, platform, repository) combination) plus the
alerts Mozilla's detection filed on them, each triaged by a perf
sheriff (acknowledged / invalid / ...).  That makes it a *labelled*
real-world corpus: the acknowledged regression alerts are ground truth,
and any detector can be scored FP/FN against them.

This module reads a JSON slice of that artifact — the committed
``benchmarks/data/mozilla_slice.json`` carries the schema below; a full
download converts into the same shape — and feeds it through the
service's front door so imported measurements get admission, detection,
and sink delivery exactly like native telemetry::

    {"dataset": "...", "interval_seconds": 3600,
     "series": [{"signature_id": 101, "framework": "talos",
                 "suite": "tp5o", "test": "responsiveness",
                 "platform": "windows10-64", "repository": "autoland",
                 "unit": "ms", "lower_is_better": true,
                 "measurements": [[push_timestamp, value], ...]}, ...],
     "alerts": [{"signature_id": 101, "push_timestamp": 1700003600,
                 "is_regression": true, "status": "acknowledged"}, ...]}

Ground truth (:meth:`MozillaCorpus.labeled_regressions`) is the set of
``is_regression`` alerts whose sheriff status is *not* in
:data:`INVALID_STATUSES` — an alert the sheriffs rejected is a
documented false positive of *Mozilla's* detector, and treating it as
truth would penalize a detector for being right.

The FP/FN benchmark over this corpus lives in
``benchmarks/bench_mozilla_corpus.py`` and is gated in CI.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, IO, Iterator, List, Tuple, Union

from repro.connectors.importers import ImportStats
from repro.connectors.mapping import SeriesMapper
from repro.obs.logging import get_logger
from repro.service.ingest import Sample

__all__ = [
    "INVALID_STATUSES",
    "MozillaAlert",
    "MozillaCorpus",
    "MozillaSeries",
    "load_corpus",
    "corpus_samples",
    "import_corpus",
]

_log = get_logger("repro.connectors.mozilla")

#: Sheriff statuses that void an alert as ground truth.
INVALID_STATUSES = frozenset({"invalid", "wontfix", "downstream"})


@dataclass(frozen=True)
class MozillaSeries:
    """One Perfherder signature's measurement series."""

    signature_id: int
    framework: str
    suite: str
    test: str
    platform: str
    repository: str
    unit: str
    lower_is_better: bool
    measurements: Tuple[Tuple[float, float], ...]

    @property
    def external_name(self) -> str:
        """The dotted external identity a signature maps under.

        The test name goes last so the mapper's short ``metric`` tag —
        the last dotted component, what monitor ``series_filter``
        matching keys on — is the test, not the repository.
        """
        return (
            f"mozilla.{self.framework}.{self.suite}.{self.platform}."
            f"{self.repository}.{self.test}"
        )


@dataclass(frozen=True)
class MozillaAlert:
    """One Perfherder alert with its sheriff triage verdict."""

    signature_id: int
    push_timestamp: float
    is_regression: bool
    status: str

    @property
    def valid_regression(self) -> bool:
        """Whether this alert counts as ground truth."""
        return self.is_regression and self.status not in INVALID_STATUSES


@dataclass
class MozillaCorpus:
    """A loaded slice: series, alerts, and the collection cadence."""

    dataset: str
    interval_seconds: float
    series: List[MozillaSeries] = field(default_factory=list)
    alerts: List[MozillaAlert] = field(default_factory=list)

    def labeled_regressions(
        self, mapper: SeriesMapper
    ) -> Dict[str, List[float]]:
        """Ground-truth regression times keyed by *internal* series name.

        Uses the same mapper the importer does, so benchmark labels and
        delivered reports meet in one namespace.
        """
        by_signature = {entry.signature_id: entry for entry in self.series}
        labels: Dict[str, List[float]] = {}
        for alert in self.alerts:
            if not alert.valid_regression:
                continue
            entry = by_signature.get(alert.signature_id)
            if entry is None:
                continue
            mapped = mapper.map(entry.external_name)
            labels.setdefault(mapped.name, []).append(float(alert.push_timestamp))
        for times in labels.values():
            times.sort()
        return labels

    @property
    def span(self) -> Tuple[float, float]:
        """(earliest, latest) measurement timestamp across every series."""
        first = min(entry.measurements[0][0] for entry in self.series)
        last = max(entry.measurements[-1][0] for entry in self.series)
        return first, last


def _series_labels(entry: MozillaSeries) -> Dict[str, str]:
    return {
        "framework": entry.framework,
        "suite": entry.suite,
        "test": entry.test,
        "platform": entry.platform,
        "repository": entry.repository,
        "unit": entry.unit,
        "signature": str(entry.signature_id),
    }


def load_corpus(source: Union[str, IO[str]]) -> MozillaCorpus:
    """Load a corpus slice from a path or open stream.

    Raises:
        ValueError: On a structurally invalid slice (missing keys,
            unsorted or empty measurement lists) — a silently
            half-loaded corpus would quietly skew every score computed
            over it.
    """
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    else:
        payload = json.load(source)
    try:
        corpus = MozillaCorpus(
            dataset=str(payload["dataset"]),
            interval_seconds=float(payload["interval_seconds"]),
        )
        for raw in payload["series"]:
            measurements = tuple(
                (float(ts), float(value)) for ts, value in raw["measurements"]
            )
            if not measurements:
                raise ValueError(
                    f"signature {raw.get('signature_id')} has no measurements"
                )
            if any(
                later[0] <= earlier[0]
                for earlier, later in zip(measurements, measurements[1:])
            ):
                raise ValueError(
                    f"signature {raw.get('signature_id')} measurements "
                    "must be strictly time-ordered"
                )
            corpus.series.append(
                MozillaSeries(
                    signature_id=int(raw["signature_id"]),
                    framework=str(raw["framework"]),
                    suite=str(raw["suite"]),
                    test=str(raw["test"]),
                    platform=str(raw["platform"]),
                    repository=str(raw.get("repository", "autoland")),
                    unit=str(raw.get("unit", "")),
                    lower_is_better=bool(raw.get("lower_is_better", True)),
                    measurements=measurements,
                )
            )
        for raw in payload.get("alerts", []):
            corpus.alerts.append(
                MozillaAlert(
                    signature_id=int(raw["signature_id"]),
                    push_timestamp=float(raw["push_timestamp"]),
                    is_regression=bool(raw["is_regression"]),
                    status=str(raw.get("status", "untriaged")),
                )
            )
    except (KeyError, TypeError) as error:
        raise ValueError(f"malformed Mozilla corpus slice: {error!r}") from None
    if not corpus.series:
        raise ValueError("corpus slice has no series")
    return corpus


def corpus_samples(
    corpus: MozillaCorpus, mapper: SeriesMapper
) -> Iterator[Sample]:
    """Yield every measurement as a mapped Sample, in push-time order.

    Interleaving across signatures (ordered by timestamp, then
    signature id) replays the corpus the way a live feed would deliver
    it, which is what exercises the service's reordering/admission
    machinery rather than one bulk backfill per series.

    Signature identity lives in the mapped *name*; the Perfherder
    dimensions (framework, suite, platform, ...) ride along as tags so
    monitors can filter on them without the name carrying a label
    suffix.
    """
    heads = []
    for entry in corpus.series:
        mapped = mapper.map(entry.external_name)
        tags = dict(mapped.tags)
        tags.update(_series_labels(entry))
        heads.append((entry, mapped.name, tags))
    points = [
        (ts, entry.signature_id, value, name, tags)
        for entry, name, tags in heads
        for ts, value in entry.measurements
    ]
    points.sort(key=lambda item: (item[0], item[1]))
    for ts, _, value, name, tags in points:
        yield Sample(name, ts, value, tags)


def import_corpus(
    service, corpus: MozillaCorpus, mapper: SeriesMapper = None
) -> ImportStats:
    """Offer the whole corpus to ``service``; returns import stats."""
    mapper = mapper or SeriesMapper(source="mozilla")
    stats = ImportStats()
    for sample in corpus_samples(corpus, mapper):
        stats._observe(sample, bool(service.ingest_sample(sample)))
    _log.info(
        "mozilla corpus imported",
        dataset=corpus.dataset,
        series=stats.series,
        offered=stats.offered,
        accepted=stats.accepted,
    )
    return stats
