"""A Prometheus remote-write-shaped HTTP ingest receiver.

The push edge of :mod:`repro.connectors`: a stdlib HTTP server (same
idiom as :class:`repro.obs.http.ObservabilityServer`) accepting the
remote-write *data shape* — a list of labelled time series, each with
``(value, timestamp-in-milliseconds)`` samples — as JSON on ``POST
/api/v1/write``::

    {"timeseries": [
        {"labels": [{"name": "__name__", "value": "http_latency_seconds"},
                    {"name": "job", "value": "api"}],
         "samples": [{"value": 0.12, "timestamp": 1700000000000}]}
    ]}

This mirrors ``prompb.WriteRequest`` field-for-field with JSON in place
of snappy-compressed protobuf (the real wire encoding needs ``snappy``
and ``protobuf``, which this repo deliberately does not depend on; the
JSON form is what ``prom2json``-style shims and test harnesses emit).
A flat convenience form is accepted too — ``{"series": [{"name": ...,
"labels": {...}, "samples": [[timestamp_ms, value], ...]}]}`` — since
that is what most homegrown forwarders actually send.

Every sample is mapped through the shared
:class:`~repro.connectors.mapping.SeriesMapper` (name mangling, unit
tags, counter detection — an imported ``*_total`` series gets admission
counter-rebasing automatically) and offered to the service's normal
ingest path from the handler thread; the service's queue locks make
that safe, and its backpressure policy applies to pushed data exactly
as it does to native ingest.

Responses: ``200`` with a JSON body ``{"offered": n, "accepted": m}``;
``400`` on malformed payloads (with the parse error); ``404`` off-path;
``405`` for non-POST.  Counters land in the service metrics registry
under ``connectors.remote_write.*`` and surface on ``/metrics``.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Iterator, Optional, Tuple

from repro.connectors.mapping import SeriesMapper
from repro.obs.logging import get_logger
from repro.service.ingest import Sample

__all__ = ["RemoteWriteReceiver", "parse_remote_write"]

_log = get_logger("repro.connectors.remote_write")

#: Reject request bodies above this size (a runaway client must not
#: buffer the receiver into the ground).
MAX_BODY_BYTES = 32 * 1024 * 1024


def parse_remote_write(
    payload: dict, mapper: SeriesMapper
) -> Iterator[Sample]:
    """Yield mapped samples from a remote-write-shaped JSON payload.

    Accepts both the prompb-mirrored ``timeseries`` form and the flat
    ``series`` form (see module doc).  Timestamps are Prometheus
    milliseconds and converted to internal seconds.

    Raises:
        ValueError: On a structurally malformed payload.  Individual
            bad samples inside a well-formed payload raise too: a push
            protocol is all-or-nothing per request so the client's
            retry logic sees one consistent verdict.
    """
    if not isinstance(payload, dict):
        raise ValueError("payload must be a JSON object")
    entries = payload.get("timeseries", payload.get("series"))
    if not isinstance(entries, list):
        raise ValueError("payload needs a 'timeseries' (or 'series') list")
    for entry in entries:
        if not isinstance(entry, dict):
            raise ValueError("each timeseries entry must be an object")
        labels = entry.get("labels", {})
        if isinstance(labels, list):  # prompb shape: [{name, value}, ...]
            labels = {
                str(pair.get("name")): str(pair.get("value"))
                for pair in labels
                if isinstance(pair, dict)
            }
        elif not isinstance(labels, dict):
            raise ValueError("labels must be a list of {name, value} or a map")
        name = entry.get("name") or labels.get("__name__")
        if not name:
            raise ValueError("timeseries entry has no metric name")
        mapped = mapper.map(name, labels)
        samples = entry.get("samples", [])
        if not isinstance(samples, list):
            raise ValueError("samples must be a list")
        for sample in samples:
            if isinstance(sample, dict):
                timestamp_ms = sample.get("timestamp")
                value = sample.get("value")
            elif isinstance(sample, (list, tuple)) and len(sample) == 2:
                timestamp_ms, value = sample
            else:
                raise ValueError(f"unparseable sample: {sample!r}")
            try:
                timestamp = float(timestamp_ms) / 1000.0
                value = float(value)
            except (TypeError, ValueError):
                raise ValueError(f"non-numeric sample: {sample!r}") from None
            yield Sample(mapped.name, timestamp, value, mapped.tags)


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-remote-write/1.0"
    protocol_version = "HTTP/1.1"

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        path = self.path.split("?", 1)[0].rstrip("/")
        if path not in ("/api/v1/write", "/write"):
            self._send_json(404, {"error": f"no such endpoint: {path}"})
            return
        receiver: "RemoteWriteReceiver" = self.server.receiver
        try:
            length = int(self.headers.get("Content-Length", 0))
            if length <= 0 or length > MAX_BODY_BYTES:
                raise ValueError(f"bad Content-Length: {length}")
            payload = json.loads(self.rfile.read(length).decode("utf-8"))
            samples = list(parse_remote_write(payload, receiver.mapper))
        except (ValueError, UnicodeDecodeError, json.JSONDecodeError) as error:
            receiver._count("rejected_requests")
            self._send_json(400, {"error": str(error)})
            return
        accepted = sum(
            1 for sample in samples if receiver.service.ingest_sample(sample)
        )
        receiver._count("requests")
        receiver._count("samples", len(samples))
        receiver._count("accepted", accepted)
        self._send_json(200, {"offered": len(samples), "accepted": accepted})

    def do_GET(self) -> None:  # noqa: N802 — health probe convenience
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        if path == "/":
            self._send_json(
                200, {"service": "repro-remote-write", "endpoints": ["/api/v1/write"]}
            )
        else:
            self._send_json(404, {"error": f"no such endpoint: {path}"})

    def _send_json(self, status: int, payload: dict) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args: object) -> None:
        _log.debug("http request", detail=format % args,
                   client=self.client_address[0])


class _Server(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: Tuple[str, int], receiver: "RemoteWriteReceiver") -> None:
        super().__init__(address, _Handler)
        self.receiver = receiver


class RemoteWriteReceiver:
    """Serves the remote-write ingest endpoint for one service.

    Args:
        service: The ingest target — anything with ``ingest_sample``
            (normally a
            :class:`~repro.service.service.StreamingDetectionService`);
            its ``metrics`` registry, when present, receives the
            ``connectors.remote_write.*`` counters.
        mapper: Series mapper override (default: a ``remote_write``
            sourced :class:`~repro.connectors.mapping.SeriesMapper`).
        host / port: Bind address; ``port=0`` picks an ephemeral port.

    Lifecycle mirrors :class:`~repro.obs.http.ObservabilityServer`:
    ``start()`` binds and serves on a daemon thread, ``stop()`` shuts
    down and releases the port, and both are idempotent.
    """

    def __init__(
        self,
        service: object,
        mapper: Optional[SeriesMapper] = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.service = service
        self.mapper = mapper or SeriesMapper(source="remote_write")
        self.host = host
        self._requested_port = port
        self._server: Optional[_Server] = None
        self._thread: Optional[threading.Thread] = None

    def _count(self, name: str, amount: int = 1) -> None:
        metrics = getattr(self.service, "metrics", None)
        if metrics is not None:
            metrics.inc(f"connectors.remote_write.{name}", amount)

    @property
    def port(self) -> int:
        if self._server is not None:
            return self._server.server_address[1]
        return self._requested_port

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}/api/v1/write"

    def start(self) -> "RemoteWriteReceiver":
        if self._server is not None:
            return self
        self._server = _Server((self.host, self._requested_port), self)
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name=f"repro-remote-write-{self.port}",
            daemon=True,
        )
        self._thread.start()
        _log.info("remote-write receiver started", url=self.url)
        return self

    def stop(self) -> None:
        if self._server is None:
            return
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        _log.info("remote-write receiver stopped", url=self.url)
        self._server = None
        self._thread = None

    def __enter__(self) -> "RemoteWriteReceiver":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
