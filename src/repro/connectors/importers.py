"""File-based telemetry importers: CSV and JSON-lines.

The batch edge of :mod:`repro.connectors`: adapt externally exported
series files into :class:`~repro.service.ingest.Sample` streams and
offer them to a running
:class:`~repro.service.service.StreamingDetectionService` — *through*
its normal ingest path, so imported points get the same routing,
backpressure, and data-quality admission (NaN quarantine, counter
rebasing, reordering) native ones do.  Nothing here writes to a TSDB
directly.

Two formats, mirroring what real exporters produce:

- **CSV** (:class:`CsvImporter`).  Either the long form
  ``name,timestamp,value[,extra...]`` (one row per point of many
  series; extra header columns become per-point tags) or the narrow
  ``timestamp,value`` form (one unnamed series; the importer's
  ``series_name`` names it).  This is the shape ``repro-fbdetect
  simulate --out`` writes and the shape most ad-hoc exports take.
- **JSON lines** (:class:`JsonLinesImporter`).  One object per line:
  ``{"name": ..., "timestamp": ..., "value": ..., "tags": {...}}``
  (``labels`` is accepted as an alias for ``tags``).

Malformed rows never abort an import — real exports have ragged tails
and clock-skewed garbage — they are counted (:attr:`ImportStats.bad_rows`)
and skipped, and the first few are logged.  Values that parse but are
*dirty* (NaN, negative gauges, duplicates, stragglers) are deliberately
passed through: judging them is the admission layer's job, and its
quarantine attribution is the operator's audit trail.
"""

from __future__ import annotations

import csv
import json
from dataclasses import dataclass, field
from typing import Dict, IO, Iterator, Optional, Union

from repro.connectors.mapping import SeriesMapper
from repro.obs.logging import get_logger
from repro.service.ingest import Sample

__all__ = ["ImportStats", "CsvImporter", "JsonLinesImporter"]

_log = get_logger("repro.connectors")

#: Log at most this many malformed-row diagnostics per import.
_MAX_LOGGED_BAD_ROWS = 5


@dataclass
class ImportStats:
    """Outcome of one import run.

    Attributes:
        offered: Samples offered to the service.
        accepted: Samples the service accepted (admission may have
            repaired or held some; backpressure may have refused some).
        bad_rows: Source rows that failed to parse and were skipped.
        series: Distinct internal series names seen.
        first_timestamp / last_timestamp: Observed time range
            (``None`` when nothing parsed).
    """

    offered: int = 0
    accepted: int = 0
    bad_rows: int = 0
    series: int = 0
    first_timestamp: Optional[float] = None
    last_timestamp: Optional[float] = None
    _names: set = field(default_factory=set, repr=False)

    def _observe(self, sample: Sample, accepted: bool) -> None:
        self.offered += 1
        self.accepted += accepted
        self._names.add(sample.name)
        self.series = len(self._names)
        if self.first_timestamp is None or sample.timestamp < self.first_timestamp:
            self.first_timestamp = sample.timestamp
        if self.last_timestamp is None or sample.timestamp > self.last_timestamp:
            self.last_timestamp = sample.timestamp


class _FileImporter:
    """Shared machinery: source handling, mapping, the ingest loop."""

    #: ``tags["source"]`` value and default mapper source.
    source_name = "file"

    def __init__(
        self,
        mapper: Optional[SeriesMapper] = None,
        series_name: str = "imported.series",
    ) -> None:
        self.mapper = mapper or SeriesMapper(source=self.source_name)
        self.series_name = series_name

    # -- parsing (format-specific) --------------------------------------

    def iter_samples(
        self, source: Union[str, IO[str]], stats: Optional[ImportStats] = None
    ) -> Iterator[Sample]:
        """Yield mapped samples from a path or open text stream.

        Malformed rows are skipped (counted on ``stats`` when given).
        """
        if isinstance(source, str):
            with open(source, "r", encoding="utf-8", newline="") as handle:
                yield from self._iter_stream(handle, stats)
        else:
            yield from self._iter_stream(source, stats)

    def _iter_stream(
        self, stream: IO[str], stats: Optional[ImportStats]
    ) -> Iterator[Sample]:
        raise NotImplementedError

    def _bad_row(
        self, stats: Optional[ImportStats], row: object, error: Exception
    ) -> None:
        if stats is not None:
            stats.bad_rows += 1
            if stats.bad_rows <= _MAX_LOGGED_BAD_ROWS:
                _log.warning(
                    "skipping malformed row",
                    source=self.source_name,
                    row=str(row)[:200],
                    error=str(error),
                )

    # -- the ingest loop -------------------------------------------------

    def import_into(
        self, service, source: Union[str, IO[str]]
    ) -> ImportStats:
        """Offer every parsed sample to ``service`` (or any object with
        ``ingest_sample``); returns the run's :class:`ImportStats`."""
        stats = ImportStats()
        for sample in self.iter_samples(source, stats):
            stats._observe(sample, bool(service.ingest_sample(sample)))
        _log.info(
            "import finished",
            source=self.source_name,
            offered=stats.offered,
            accepted=stats.accepted,
            series=stats.series,
            bad_rows=stats.bad_rows,
        )
        return stats


class CsvImporter(_FileImporter):
    """CSV telemetry importer (long and narrow forms; see module doc)."""

    source_name = "csv"

    def _iter_stream(
        self, stream: IO[str], stats: Optional[ImportStats]
    ) -> Iterator[Sample]:
        reader = csv.reader(stream)
        header = next(reader, None)
        if header is None:
            return
        header = [column.strip().lower() for column in header]
        if "timestamp" not in header or "value" not in header:
            # Headerless narrow file: the first row is data.
            header_row = header
            header = ["timestamp", "value"]
            yield from self._rows(iter([header_row]), header, stats)
        yield from self._rows(reader, header, stats)

    def _rows(self, rows, header, stats) -> Iterator[Sample]:
        ts_col = header.index("timestamp")
        value_col = header.index("value")
        name_col = header.index("name") if "name" in header else None
        tag_cols = [
            (index, column)
            for index, column in enumerate(header)
            if index not in (ts_col, value_col, name_col) and column
        ]
        for row in rows:
            if not row or all(not cell.strip() for cell in row):
                continue
            try:
                timestamp = float(row[ts_col])
                value = float(row[value_col])
                raw_name = (
                    row[name_col].strip() if name_col is not None else self.series_name
                )
                labels: Dict[str, str] = {
                    column: row[index].strip()
                    for index, column in tag_cols
                    if index < len(row) and row[index].strip()
                }
                mapped = self.mapper.map(raw_name, labels)
            except (ValueError, IndexError) as error:
                self._bad_row(stats, row, error)
                continue
            yield Sample(mapped.name, timestamp, value, mapped.tags)


class JsonLinesImporter(_FileImporter):
    """JSON-lines telemetry importer (one point object per line)."""

    source_name = "jsonl"

    def _iter_stream(
        self, stream: IO[str], stats: Optional[ImportStats]
    ) -> Iterator[Sample]:
        for line in stream:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                labels = record.get("tags") or record.get("labels") or {}
                mapped = self.mapper.map(
                    record.get("name", self.series_name), labels
                )
                timestamp = float(record["timestamp"])
                value = float(record["value"])
            except (ValueError, KeyError, TypeError) as error:
                self._bad_row(stats, line, error)
                continue
            yield Sample(mapped.name, timestamp, value, mapped.tags)
