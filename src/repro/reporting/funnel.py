"""Funnel summaries reproducing Table 3's presentation.

Table 3 reports, per workload, the number of change points detected and
the "1/N" reduction ratio remaining after each technique runs in
sequence.  These helpers render :class:`~repro.core.pipeline.FunnelCounters`
the same way.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Tuple

from repro.core.pipeline import STAGES, FunnelCounters

__all__ = ["funnel_rows", "format_funnel_table"]

#: Stage key -> Table 3 row label.
_ROW_LABELS = {
    "change_points": "# Change points detected",
    "went_away": "After went-away detection",
    "seasonality": "After seasonality detection",
    "threshold": "After threshold filtering",
    "same_regression": "After SameRegressionMerger",
    "som_dedup": "After SOMDedup",
    "cost_shift": "After cost-shift analysis",
    "pairwise_dedup": "After PairwiseDedup",
}


def funnel_rows(funnel: FunnelCounters) -> List[Tuple[str, str]]:
    """Table 3 rows: (label, value) with "1/N" ratios after the first row."""
    detected = funnel.counts["change_points"]
    rows: List[Tuple[str, str]] = [(_ROW_LABELS["change_points"], f"{detected}")]
    for stage in STAGES[1:]:
        alive = funnel.counts[stage]
        if detected == 0:
            value = "--"
        elif alive == 0:
            value = "1/inf (0 remaining)"
        else:
            value = f"1/{detected / alive:.0f} ({alive} remaining)"
        rows.append((_ROW_LABELS[stage], value))
    return rows


def format_funnel_table(
    funnels: Mapping[str, FunnelCounters],
) -> str:
    """Render one Table 3-style text table for several workload columns."""
    columns = sorted(funnels)
    label_width = max(len(label) for label in _ROW_LABELS.values()) + 2
    col_width = max(22, max(len(c) for c in columns) + 2)

    header = " " * label_width + "".join(c.ljust(col_width) for c in columns)
    lines = [header, "-" * len(header)]
    per_column_rows = {c: dict(funnel_rows(funnels[c])) for c in columns}
    for stage in STAGES:
        label = _ROW_LABELS[stage]
        row = label.ljust(label_width)
        for column in columns:
            row += per_column_rows[column][label].ljust(col_width)
        lines.append(row)
    return "\n".join(lines)
