"""Reporting: developer-facing incident reports and funnel summaries."""

from repro.reporting.funnel import format_funnel_table, funnel_rows
from repro.reporting.investigation import (
    StackInvestigation,
    format_investigation,
    investigate_regression,
)
from repro.reporting.report import IncidentReport, build_report, format_report

__all__ = [
    "IncidentReport",
    "StackInvestigation",
    "build_report",
    "format_funnel_table",
    "format_investigation",
    "format_report",
    "funnel_rows",
    "investigate_regression",
]
