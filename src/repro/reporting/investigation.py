"""Investigation aids attached to incident reports.

Given a reported regression and the raw stack-sample history, builds the
before/after differential stack view a developer would pull up first:
which call paths gained relative CPU across the change point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.core.types import Regression
from repro.profiling.aggregate import FrameDiff, StackTrie, diff_tries
from repro.profiling.stacktrace import StackTrace

__all__ = ["StackInvestigation", "investigate_regression", "format_investigation"]


@dataclass(frozen=True)
class StackInvestigation:
    """The differential stack view around a regression.

    Attributes:
        top_gainers: Paths that gained the most relative weight.
        top_losers: Paths that lost the most (cost-shift sources show
            up here).
        regressed_path_delta: Relative-weight change of paths containing
            the regressed subroutine, when known.
    """

    top_gainers: Tuple[FrameDiff, ...]
    top_losers: Tuple[FrameDiff, ...]
    regressed_path_delta: float


def investigate_regression(
    regression: Regression,
    samples_before: Sequence[StackTrace],
    samples_after: Sequence[StackTrace],
    k: int = 5,
) -> StackInvestigation:
    """Build the before/after stack differential for a regression.

    Args:
        regression: The reported regression.
        samples_before: Stack samples from before its change point.
        samples_after: Stack samples from after it.
        k: Paths to keep per direction.
    """
    before = StackTrie().add_all(samples_before)
    after = StackTrie().add_all(samples_after)
    diffs = diff_tries(before, after)

    gainers = tuple(d for d in diffs if d.delta > 0)[:k]
    losers = tuple(d for d in diffs if d.delta < 0)[:k]

    target = regression.context.subroutine
    regressed_delta = 0.0
    if target is not None:
        candidates = [d for d in diffs if d.path and d.path[-1] == target]
        if candidates:
            regressed_delta = max(candidates, key=lambda d: abs(d.delta)).delta
    return StackInvestigation(
        top_gainers=gainers,
        top_losers=losers,
        regressed_path_delta=regressed_delta,
    )


def format_investigation(investigation: StackInvestigation) -> str:
    """Render the differential view for the ticket body."""
    lines = ["differential stack view (relative weight, after - before):"]
    if investigation.top_gainers:
        lines.append("  gained:")
        for diff in investigation.top_gainers:
            lines.append(f"    {'->'.join(diff.path):60s} {diff.delta:+.4f}")
    if investigation.top_losers:
        lines.append("  lost:")
        for diff in investigation.top_losers:
            lines.append(f"    {'->'.join(diff.path):60s} {diff.delta:+.4f}")
    if not investigation.top_gainers and not investigation.top_losers:
        lines.append("  (no significant movement)")
    return "\n".join(lines)
