"""Developer-facing incident reports.

FBDetect files a ticket per reported regression; the ticket carries the
regressed metric, magnitude, timing, the filter audit trail, and ranked
root-cause candidates so the assigned developer can investigate quickly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.types import Regression, RootCauseScore

__all__ = ["IncidentReport", "build_report", "format_report"]


@dataclass(frozen=True)
class IncidentReport:
    """One ticket's worth of regression context.

    Attributes:
        metric_id: Regressed metric.
        service: Owning service.
        kind: Detection path (short/long term).
        change_time: When the regression began.
        detected_at: When FBDetect reported it.
        magnitude: Absolute mean shift.
        relative_magnitude: Shift relative to baseline.
        baseline: Pre-change mean.
        root_causes: Ranked candidate changes.
        audit_trail: Human-readable filter-stage outcomes.
        group_id: Deduplication group.
    """

    metric_id: str
    service: str
    kind: str
    change_time: float
    detected_at: float
    magnitude: float
    relative_magnitude: float
    baseline: float
    root_causes: List[RootCauseScore] = field(default_factory=list)
    audit_trail: List[str] = field(default_factory=list)
    group_id: Optional[int] = None

    @property
    def detection_latency(self) -> float:
        """Seconds between the regression starting and being reported."""
        return max(0.0, self.detected_at - self.change_time)

    def to_dict(self) -> dict:
        """JSON-serializable representation (for sinks and APIs)."""
        return {
            "metric_id": self.metric_id,
            "service": self.service,
            "kind": self.kind,
            "change_time": self.change_time,
            "detected_at": self.detected_at,
            "detection_latency": self.detection_latency,
            "magnitude": self.magnitude,
            "relative_magnitude": self.relative_magnitude,
            "baseline": self.baseline,
            "group_id": self.group_id,
            "root_causes": [
                {
                    "change_id": candidate.change_id,
                    "score": candidate.score,
                    "factors": dict(candidate.factors),
                }
                for candidate in self.root_causes
            ],
            "audit_trail": list(self.audit_trail),
        }


def build_report(regression: Regression) -> IncidentReport:
    """Materialize an :class:`IncidentReport` from a regression."""
    audit = []
    for verdict in regression.verdicts:
        status = "pass" if verdict.passed else f"drop({verdict.reason.value})"
        audit.append(f"{status}: {verdict.detail}" if verdict.detail else status)
    relative = regression.relative_magnitude
    return IncidentReport(
        metric_id=regression.context.metric_id,
        service=regression.context.service,
        kind=regression.kind.value,
        change_time=regression.change_time,
        detected_at=regression.detected_at,
        magnitude=regression.magnitude,
        relative_magnitude=relative if relative != float("inf") else 0.0,
        baseline=regression.mean_before,
        root_causes=list(regression.root_cause_candidates),
        audit_trail=audit,
        group_id=regression.group_id,
    )


def format_report(report: IncidentReport) -> str:
    """Render a report as the plain-text ticket body."""
    lines = [
        f"Performance regression in {report.metric_id}",
        f"  service:   {report.service or '(unknown)'}",
        f"  path:      {report.kind}",
        f"  magnitude: {report.magnitude:+.6g} "
        f"({report.relative_magnitude * 100:.3g}% of baseline {report.baseline:.6g})",
        f"  began at:  t={report.change_time:.0f}s, reported at t={report.detected_at:.0f}s "
        f"(latency {report.detection_latency:.0f}s)",
    ]
    if report.root_causes:
        lines.append("  root-cause candidates:")
        for rank, candidate in enumerate(report.root_causes, start=1):
            factors = ", ".join(f"{k}={v:.2f}" for k, v in sorted(candidate.factors.items()))
            lines.append(f"    {rank}. {candidate.change_id} (score {candidate.score:.2f}; {factors})")
    else:
        lines.append("  root-cause candidates: none with sufficient confidence")
    if report.audit_trail:
        lines.append("  filter audit trail:")
        lines.extend(f"    - {entry}" for entry in report.audit_trail)
    return "\n".join(lines)
