"""Autocorrelation-based seasonality presence detection.

The seasonality detector first asks whether seasonality is present at all:
"FBDetect applies an autocorrelation function and checks if the correlation
is significant" (§5.2.3).  Only when it is does the (more expensive) STL
decomposition run.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

__all__ = ["acf", "detect_season_length", "has_significant_seasonality"]


def acf(values: Sequence[float], max_lag: Optional[int] = None) -> np.ndarray:
    """Sample autocorrelation function.

    Args:
        values: The time series.
        max_lag: Largest lag to compute; defaults to ``n // 2``.

    Returns:
        Array of autocorrelations for lags ``0..max_lag`` (``acf[0] == 1``
        for any non-constant series).
    """
    x = np.asarray(values, dtype=float)
    n = x.size
    if n == 0:
        return np.empty(0)
    if max_lag is None:
        max_lag = n // 2
    max_lag = min(max_lag, n - 1)

    x = x - x.mean()
    denom = float((x * x).sum())
    if denom <= 0:
        out = np.zeros(max_lag + 1)
        out[0] = 1.0
        return out

    result = np.empty(max_lag + 1)
    for lag in range(max_lag + 1):
        result[lag] = float((x[: n - lag] * x[lag:]).sum()) / denom
    return result


def detect_season_length(
    values: Sequence[float],
    min_period: int = 2,
    max_period: Optional[int] = None,
    significance: Optional[float] = None,
) -> Optional[int]:
    """Find the dominant season length via the first significant ACF peak.

    A lag is a seasonality candidate when it is a local maximum of the ACF
    and its correlation exceeds the large-sample significance bound
    ``z / sqrt(n)`` (z=1.96 for 5%), or the caller-provided threshold.

    Args:
        values: The time series.
        min_period: Smallest admissible period.
        max_period: Largest admissible period; defaults to ``n // 2``.
        significance: Absolute correlation threshold; defaults to the
            large-sample 5% bound.

    Returns:
        The detected period, or ``None`` when no significant peak exists.
    """
    x = np.asarray(values, dtype=float)
    n = x.size
    if n < 2 * min_period:
        return None
    if max_period is None:
        max_period = n // 2
    threshold = significance if significance is not None else 1.96 / np.sqrt(n)

    correlations = acf(x, max_lag=max_period)
    best_lag, best_corr = None, threshold
    for lag in range(min_period, min(max_period, correlations.size - 1)):
        c = correlations[lag]
        if c <= best_corr:
            continue
        left = correlations[lag - 1]
        right = correlations[lag + 1] if lag + 1 < correlations.size else -np.inf
        if c >= left and c >= right:
            best_lag, best_corr = lag, c
    return best_lag


def has_significant_seasonality(
    values: Sequence[float],
    min_period: int = 2,
    max_period: Optional[int] = None,
) -> bool:
    """Whether the series shows a statistically significant periodic ACF peak."""
    return detect_season_length(values, min_period=min_period, max_period=max_period) is not None
