"""Loess smoothing and Seasonal-Trend decomposition using Loess (STL).

The seasonality detector (§5.2.3) and the long-term detection path (§5.3)
decompose a time series into seasonality + trend + residual with STL
[Cleveland et al. 1990].  This is a self-contained implementation:

- :func:`loess_smooth` — locally weighted linear regression with the
  classic tricube kernel.
- :func:`stl_decompose` — the inner STL loop: cycle-subseries smoothing
  for the seasonal component, low-pass filtering to de-trend it, and
  loess smoothing of the deseasonalized series for the trend.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["STLResult", "loess_smooth", "stl_decompose"]


@dataclass(frozen=True)
class STLResult:
    """An additive decomposition ``observed = seasonal + trend + residual``.

    Attributes:
        seasonal: Periodic component.
        trend: Slowly varying component.
        residual: Remainder.
        period: Season length used for the decomposition.
    """

    seasonal: np.ndarray
    trend: np.ndarray
    residual: np.ndarray
    period: int

    @property
    def deseasonalized(self) -> np.ndarray:
        """Trend + residual — the series with seasonality removed."""
        return self.trend + self.residual


def loess_smooth(
    values: Sequence[float],
    span: float = 0.3,
    degree: int = 1,
) -> np.ndarray:
    """Loess-smooth a series with the tricube kernel.

    Args:
        values: The series to smooth.
        span: Fraction of points in each local window (0 < span <= 1).
        degree: Local polynomial degree, 0 (weighted mean) or 1 (weighted
            linear fit).

    Returns:
        The smoothed series, same length as the input.

    Raises:
        ValueError: On an invalid span or degree.
    """
    if not 0 < span <= 1:
        raise ValueError("span must be in (0, 1]")
    if degree not in (0, 1):
        raise ValueError("degree must be 0 or 1")

    y = np.asarray(values, dtype=float)
    n = y.size
    if n == 0:
        return np.empty(0)
    window = max(2 if degree == 1 else 1, int(np.ceil(span * n)))
    if window >= n:
        window = n

    x = np.arange(n, dtype=float)
    smoothed = np.empty(n)
    half = window // 2
    for i in range(n):
        lo = int(np.clip(i - half, 0, n - window))
        hi = lo + window
        xs, ys = x[lo:hi], y[lo:hi]
        dist = np.abs(xs - i)
        max_dist = dist.max()
        if max_dist == 0:
            smoothed[i] = ys.mean()
            continue
        w = (1 - (dist / max_dist) ** 3) ** 3
        w = np.maximum(w, 1e-6)
        if degree == 0:
            smoothed[i] = float(np.average(ys, weights=w))
        else:
            # Weighted least squares for a local line, evaluated at i.
            sw = w.sum()
            xm = float((w * xs).sum() / sw)
            ym = float((w * ys).sum() / sw)
            sxx = float((w * (xs - xm) ** 2).sum())
            if sxx < 1e-12:
                smoothed[i] = ym
            else:
                slope = float((w * (xs - xm) * (ys - ym)).sum() / sxx)
                smoothed[i] = ym + slope * (i - xm)
    return smoothed


def _cycle_subseries_means(y: np.ndarray, period: int) -> np.ndarray:
    """Smooth each cycle-subseries by its mean, tiled back to full length.

    A simplified cycle-subseries smoother: the classic STL loess over each
    subseries degenerates to the subseries mean when the seasonal window
    is large ("periodic" mode), which is what regression detection wants —
    a stable seasonal profile rather than one that tracks anomalies.
    """
    n = y.size
    seasonal = np.empty(n)
    for phase in range(period):
        idx = np.arange(phase, n, period)
        seasonal[idx] = y[idx].mean()
    return seasonal


def _moving_average(y: np.ndarray, window: int) -> np.ndarray:
    """Centered moving average with edge padding."""
    if window <= 1:
        return y.copy()
    pad = window // 2
    padded = np.concatenate([np.full(pad, y[0]), y, np.full(window - 1 - pad, y[-1])])
    kernel = np.full(window, 1.0 / window)
    return np.convolve(padded, kernel, mode="valid")


def stl_decompose(
    values: Sequence[float],
    period: int,
    iterations: int = 2,
    trend_span: float = 0.4,
) -> STLResult:
    """Decompose ``values`` into seasonal, trend, and residual components.

    Implements the inner STL loop with a periodic seasonal smoother:

    1. Detrend: ``d = y - trend``.
    2. Seasonal: cycle-subseries means of ``d``, then remove any residual
       trend in the seasonal component with a ``period``-wide low-pass
       (moving-average) filter and center it.
    3. Trend: loess-smooth the deseasonalized series.

    Args:
        values: The series to decompose; must contain at least two full
            periods.
        period: Season length in samples.
        iterations: Number of inner-loop passes (2 is the STL default).
        trend_span: Loess span for the trend smoother.

    Returns:
        An :class:`STLResult`.

    Raises:
        ValueError: If ``period < 2`` or the series is shorter than two
            periods.
    """
    y = np.asarray(values, dtype=float)
    n = y.size
    if period < 2:
        raise ValueError("period must be >= 2")
    if n < 2 * period:
        raise ValueError(f"need >= 2 periods ({2 * period} points), got {n}")

    trend = np.zeros(n)
    seasonal = np.zeros(n)
    for _ in range(max(1, iterations)):
        detrended = y - trend
        raw_seasonal = _cycle_subseries_means(detrended, period)
        # Low-pass the seasonal estimate so leftover trend moves to the
        # trend component, then center the season at zero mean.
        low_pass = _moving_average(raw_seasonal, period)
        seasonal = raw_seasonal - low_pass
        seasonal -= seasonal.mean()
        deseasonalized = y - seasonal
        trend = loess_smooth(deseasonalized, span=trend_span, degree=1)

    residual = y - seasonal - trend
    return STLResult(seasonal=seasonal, trend=trend, residual=residual, period=period)
