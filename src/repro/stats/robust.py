"""Robust dispersion estimators.

The went-away detector's regression threshold is derived from the Median
Absolute Deviation (MAD) with the Gaussian-consistency constant 1.4826 and
a tunable regression coefficient (default 1.5), i.e.
``threshold = coefficient * median(|x - median(x)|) * 1.4826`` (§5.2.2).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = [
    "mad",
    "mad_batch",
    "mad_threshold",
    "mad_threshold_batch",
    "NORMALITY_CONSTANT",
]

#: Scale factor making MAD a consistent estimator of the standard
#: deviation under normality (the paper's "normality constant").
NORMALITY_CONSTANT = 1.4826


def mad(values: Sequence[float]) -> float:
    """Median absolute deviation of ``values`` (unscaled).

    Returns 0.0 for empty input.
    """
    x = np.asarray(values, dtype=float)
    if x.size == 0:
        return 0.0
    return float(np.median(np.abs(x - np.median(x))))


def mad_threshold(
    values: Sequence[float],
    coefficient: float = 1.5,
) -> float:
    """Regression threshold used by the went-away detector.

    ``coefficient * MAD * 1.4826`` — the paper's final regression
    threshold with the default sensitivity coefficient of 1.5.

    Args:
        values: Baseline series from which to derive the threshold.
        coefficient: Sensitivity multiplier (paper default 1.5).

    Returns:
        The threshold; 0.0 when the series is constant or empty.
    """
    return coefficient * mad(values) * NORMALITY_CONSTANT


def mad_batch(values: np.ndarray) -> np.ndarray:
    """Row-wise :func:`mad` over a ``(k, n)`` matrix, as one array op.

    Each entry is bit-identical to :func:`mad` of that row.  Returns an
    empty array for a zero-row matrix; a zero-width matrix yields 0.0
    per row (matching :func:`mad` on empty input).
    """
    x = np.asarray(values, dtype=float)
    if x.ndim != 2:
        raise ValueError(f"values must be (k, n), got shape {x.shape}")
    if x.size == 0:
        return np.zeros(x.shape[0])
    medians = np.median(x, axis=1, keepdims=True)
    return np.median(np.abs(x - medians), axis=1)


def mad_threshold_batch(
    values: np.ndarray,
    coefficient: float = 1.5,
) -> np.ndarray:
    """Row-wise :func:`mad_threshold` over a ``(k, n)`` matrix."""
    return coefficient * mad_batch(values) * NORMALITY_CONSTANT
