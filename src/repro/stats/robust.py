"""Robust dispersion estimators.

The went-away detector's regression threshold is derived from the Median
Absolute Deviation (MAD) with the Gaussian-consistency constant 1.4826 and
a tunable regression coefficient (default 1.5), i.e.
``threshold = coefficient * median(|x - median(x)|) * 1.4826`` (§5.2.2).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["mad", "mad_threshold", "NORMALITY_CONSTANT"]

#: Scale factor making MAD a consistent estimator of the standard
#: deviation under normality (the paper's "normality constant").
NORMALITY_CONSTANT = 1.4826


def mad(values: Sequence[float]) -> float:
    """Median absolute deviation of ``values`` (unscaled).

    Returns 0.0 for empty input.
    """
    x = np.asarray(values, dtype=float)
    if x.size == 0:
        return 0.0
    return float(np.median(np.abs(x - np.median(x))))


def mad_threshold(
    values: Sequence[float],
    coefficient: float = 1.5,
) -> float:
    """Regression threshold used by the went-away detector.

    ``coefficient * MAD * 1.4826`` — the paper's final regression
    threshold with the default sensitivity coefficient of 1.5.

    Args:
        values: Baseline series from which to derive the threshold.
        coefficient: Sensitivity multiplier (paper default 1.5).

    Returns:
        The threshold; 0.0 when the series is constant or empty.
    """
    return coefficient * mad(values) * NORMALITY_CONSTANT
