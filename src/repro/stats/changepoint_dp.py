"""Normal-loss change-point search via dynamic programming.

The long-term detection path (§5.3) locates change points with "the normal
loss and dynamic programming search ... It aims to identify the partition
point that minimizes the variance on both sides, with the partition point
being the change point" [Truong et al. 2020].

For a single split this reduces to minimizing the summed within-segment
residual sum of squares; prefix sums make the scan O(n).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "SplitResult",
    "best_split_normal_loss",
    "multi_split_normal_loss",
    "normal_segment_loss",
]


def normal_segment_loss(prefix: np.ndarray, prefix_sq: np.ndarray, lo: int, hi: int) -> float:
    """RSS of segment ``x[lo:hi]`` around its own mean, via prefix sums."""
    n = hi - lo
    if n <= 0:
        return 0.0
    s = prefix[hi] - prefix[lo]
    q = prefix_sq[hi] - prefix_sq[lo]
    return float(q - s * s / n)


def _prefix_sums(values: Sequence[float]) -> Tuple[np.ndarray, np.ndarray]:
    x = np.asarray(values, dtype=float)
    return (
        np.concatenate([[0.0], np.cumsum(x)]),
        np.concatenate([[0.0], np.cumsum(x * x)]),
    )


@dataclass(frozen=True)
class SplitResult:
    """Outcome of a normal-loss split search.

    Attributes:
        index: First index of the second segment.
        loss: Total within-segment RSS of the split.
        gain: Loss reduction relative to no split (>= 0).
    """

    index: int
    loss: float
    gain: float


def best_split_normal_loss(
    values: Sequence[float],
    min_segment: int = 2,
) -> Optional[SplitResult]:
    """Find the split minimizing total within-segment variance.

    Args:
        values: The time series.
        min_segment: Minimum points per segment.

    Returns:
        The optimal :class:`SplitResult`, or ``None`` when the series is
        too short.
    """
    x = np.asarray(values, dtype=float)
    n = x.size
    if n < 2 * min_segment:
        return None
    prefix, prefix_sq = _prefix_sums(x)
    no_split = normal_segment_loss(prefix, prefix_sq, 0, n)

    best_idx, best_loss = None, np.inf
    for t in range(min_segment, n - min_segment + 1):
        loss = normal_segment_loss(prefix, prefix_sq, 0, t) + normal_segment_loss(
            prefix, prefix_sq, t, n
        )
        if loss < best_loss:
            best_idx, best_loss = t, loss
    assert best_idx is not None
    return SplitResult(index=best_idx, loss=float(best_loss), gain=float(no_split - best_loss))


def multi_split_normal_loss(
    values: Sequence[float],
    n_changepoints: int,
    min_segment: int = 2,
) -> List[int]:
    """Exact dynamic program for up to ``n_changepoints`` change points.

    Solves the optimal-partition problem with normal loss: choose segment
    boundaries minimizing the total within-segment RSS.  O(K n^2) time.

    Args:
        values: The time series.
        n_changepoints: Number of change points to place (K).
        min_segment: Minimum points per segment.

    Returns:
        Sorted change-point indices (each is the first index of its
        segment); fewer than K when the series cannot fit them.
    """
    x = np.asarray(values, dtype=float)
    n = x.size
    if n_changepoints <= 0 or n < (n_changepoints + 1) * min_segment:
        return []
    prefix, prefix_sq = _prefix_sums(x)

    # cost[k][t] = min loss of x[:t] split into k+1 segments.
    inf = np.inf
    cost = np.full((n_changepoints + 1, n + 1), inf)
    back: List[List[int]] = [[-1] * (n + 1) for _ in range(n_changepoints + 1)]
    for t in range(min_segment, n + 1):
        cost[0][t] = normal_segment_loss(prefix, prefix_sq, 0, t)
    for k in range(1, n_changepoints + 1):
        for t in range((k + 1) * min_segment, n + 1):
            for s in range(k * min_segment, t - min_segment + 1):
                candidate = cost[k - 1][s] + normal_segment_loss(prefix, prefix_sq, s, t)
                if candidate < cost[k][t]:
                    cost[k][t] = candidate
                    back[k][t] = s

    # Reconstruct boundaries for the full series with K change points.
    boundaries: List[int] = []
    k, t = n_changepoints, n
    while k > 0:
        s = back[k][t]
        if s < 0:
            return []
        boundaries.append(s)
        k, t = k - 1, s
    return sorted(boundaries)
