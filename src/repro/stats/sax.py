"""Symbolic Aggregate approXimation (SAX) discretization.

The went-away detector discretizes time series into strings so it can ask
whether two windows are "very different" (§5.2.2).  SAX divides the value
range into ``N`` equal-width buckets and replaces each value with its
bucket's letter.  A bucket (letter) is *valid* only when it holds at least
``X%`` of the data points; the paper settled on ``N=20`` and ``X=3%`` as
robust to outliers without missing obvious regressions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Sequence, Tuple

import numpy as np

__all__ = ["SaxEncoding", "sax_encode", "DEFAULT_BUCKETS", "DEFAULT_VALID_FRACTION"]

#: Paper defaults (§5.2.2): N=20 buckets, a bucket is valid at >= 3% mass.
DEFAULT_BUCKETS = 20
DEFAULT_VALID_FRACTION = 0.03

_ALPHABET = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"


@dataclass(frozen=True)
class SaxEncoding:
    """A SAX string representation of a time series.

    Attributes:
        string: One letter per data point ('a' = lowest bucket).
        letters: Per-point bucket indices (0-based).
        valid_letters: Bucket indices holding at least the validity
            fraction of points.
        bucket_edges: ``n_buckets + 1`` bucket boundary values.
        n_buckets: Number of buckets used.
    """

    string: str
    letters: Tuple[int, ...]
    valid_letters: FrozenSet[int]
    bucket_edges: Tuple[float, ...]
    n_buckets: int

    def letter_counts(self) -> Dict[int, int]:
        """Map bucket index to number of points in that bucket."""
        counts: Dict[int, int] = {}
        for letter in self.letters:
            counts[letter] = counts.get(letter, 0) + 1
        return counts

    def max_letter(self) -> int:
        """Highest bucket index that appears at all (-1 if empty)."""
        return max(self.letters) if self.letters else -1

    def max_valid_letter(self) -> int:
        """Highest *valid* bucket index (-1 if no bucket is valid)."""
        return max(self.valid_letters) if self.valid_letters else -1

    def invalid_fraction(self) -> float:
        """Fraction of points that fall into invalid buckets."""
        if not self.letters:
            return 0.0
        invalid = sum(1 for letter in self.letters if letter not in self.valid_letters)
        return invalid / len(self.letters)

    def bucket_lower_bound(self, letter: int) -> float:
        """Lower boundary value of bucket ``letter``."""
        return self.bucket_edges[letter]


def sax_encode(
    values: Sequence[float],
    n_buckets: int = DEFAULT_BUCKETS,
    valid_fraction: float = DEFAULT_VALID_FRACTION,
    value_range: Tuple[float, float] | None = None,
) -> SaxEncoding:
    """Discretize ``values`` into a SAX string.

    Args:
        values: The time series to discretize.
        n_buckets: Number of equal-width buckets ``N`` (paper default 20).
        valid_fraction: Minimum fraction of points ``X`` for a bucket to
            count as valid (paper default 3%).
        value_range: Optional ``(lo, hi)`` range for the buckets.  Supply
            the *historical* range when encoding an analysis window so the
            two encodings share a bucket grid — this is how the detector
            recognises "new pattern" windows whose values fall outside
            historically valid buckets.

    Returns:
        A :class:`SaxEncoding`.

    Raises:
        ValueError: If ``n_buckets`` is not positive or more letters are
            requested than the alphabet supports.
    """
    if n_buckets <= 0:
        raise ValueError("n_buckets must be positive")
    if n_buckets > len(_ALPHABET):
        raise ValueError(f"n_buckets must be <= {len(_ALPHABET)}")

    x = np.asarray(values, dtype=float)
    if x.size == 0:
        edges = tuple(np.linspace(0.0, 1.0, n_buckets + 1))
        return SaxEncoding("", (), frozenset(), edges, n_buckets)

    if value_range is None:
        lo, hi = float(x.min()), float(x.max())
    else:
        lo, hi = value_range
    if hi <= lo:
        hi = lo + 1.0  # Degenerate (constant) series: one-bucket grid.

    edges = np.linspace(lo, hi, n_buckets + 1)
    # Values outside the supplied range clip into the edge buckets so the
    # encoding remains total.
    letters = np.clip(np.digitize(x, edges[1:-1]), 0, n_buckets - 1)

    counts = np.bincount(letters, minlength=n_buckets)
    threshold = max(1, int(np.ceil(valid_fraction * x.size)))
    valid = frozenset(int(i) for i in np.nonzero(counts >= threshold)[0])

    return SaxEncoding(
        string="".join(_ALPHABET[i] for i in letters),
        letters=tuple(int(i) for i in letters),
        valid_letters=valid,
        bucket_edges=tuple(float(e) for e in edges),
        n_buckets=n_buckets,
    )
