"""Theil-Sen robust slope estimation.

When the went-away detector finds a monotonic trend via Mann-Kendall, it
uses Theil-Sen's slope estimator to measure the trend's magnitude and
intercept (§5.2.2).  The estimator is the median of all pairwise slopes,
making it robust to up to ~29% outliers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

__all__ = ["TheilSenFit", "theil_sen"]

# Above this length we subsample pairs to bound the O(n^2) pair count;
# the paper's windows are small enough that this rarely triggers.
_EXACT_PAIR_LIMIT = 1000


@dataclass(frozen=True)
class TheilSenFit:
    """A robust linear fit ``y ~ slope * x + intercept``.

    Attributes:
        slope: Median of pairwise slopes.
        intercept: Median of ``y_i - slope * x_i``.
    """

    slope: float
    intercept: float

    def predict(self, x: Sequence[float]) -> np.ndarray:
        """Evaluate the fitted line at ``x``."""
        return self.slope * np.asarray(x, dtype=float) + self.intercept


def theil_sen(
    values: Sequence[float],
    x: Optional[Sequence[float]] = None,
    rng: Optional[np.random.Generator] = None,
) -> TheilSenFit:
    """Fit a Theil-Sen line to ``values``.

    Args:
        values: Dependent variable.
        x: Independent variable; defaults to ``0..n-1``.
        rng: Random generator for pair subsampling on very long series.
            A fixed default seed keeps results deterministic.

    Returns:
        The fitted :class:`TheilSenFit`.

    Raises:
        ValueError: If fewer than 2 points are supplied.
    """
    y = np.asarray(values, dtype=float)
    n = y.size
    if n < 2:
        raise ValueError("theil_sen requires at least 2 points")
    xs = np.arange(n, dtype=float) if x is None else np.asarray(x, dtype=float)
    if xs.size != n:
        raise ValueError("x and values must have the same length")

    if n <= _EXACT_PAIR_LIMIT:
        i, j = np.triu_indices(n, k=1)
    else:
        rng = rng or np.random.default_rng(0)
        count = _EXACT_PAIR_LIMIT * (_EXACT_PAIR_LIMIT - 1) // 2
        i = rng.integers(0, n, size=count)
        j = rng.integers(0, n, size=count)

    dx = xs[j] - xs[i]
    valid = dx != 0
    if not valid.any():
        return TheilSenFit(slope=0.0, intercept=float(np.median(y)))
    slopes = (y[j][valid] - y[i][valid]) / dx[valid]
    slope = float(np.median(slopes))
    intercept = float(np.median(y - slope * xs))
    return TheilSenFit(slope=slope, intercept=intercept)
