"""Expectation-Maximization refinement of a mean-split change point.

The paper's change-point detector (§5.2.1) iterates CUSUM and EM "until it
converges at the change point with the maximum likelihood of having
different means before and after the change point, or until it uses up the
computation time."

We model the series as a two-segment Gaussian mixture ordered in time:
points before the change point are drawn from ``N(mu0, sigma^2)`` and
points after from ``N(mu1, sigma^2)``.  Given a candidate split the M-step
re-estimates the two means; the E-step then moves the split to the index
that maximizes the joint log-likelihood of the ordered assignment.  The
procedure is a coordinate ascent on the split location and is guaranteed
to terminate because the likelihood is non-decreasing and the split space
is finite.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

__all__ = ["em_mean_split"]


def _split_loglik(prefix: np.ndarray, prefix_sq: np.ndarray, t: int, n: int) -> float:
    """Gaussian log-likelihood of splitting at ``t`` (pooled variance).

    Uses precomputed prefix sums so each evaluation is O(1).  Constant
    terms shared by all splits are dropped.
    """
    s1, s2 = prefix[t], prefix[n] - prefix[t]
    q1, q2 = prefix_sq[t], prefix_sq[n] - prefix_sq[t]
    n1, n2 = t, n - t
    # Residual sum of squares around each segment mean.
    rss = (q1 - s1 * s1 / n1) + (q2 - s2 * s2 / n2)
    pooled_var = max(rss / n, 1e-30)
    return -0.5 * n * np.log(pooled_var)


def em_mean_split(
    values: Sequence[float],
    initial_index: Optional[int] = None,
    min_segment: int = 2,
    max_iterations: int = 50,
) -> Optional[Tuple[int, float]]:
    """Refine a change-point index by EM-style coordinate ascent.

    Args:
        values: The time series.
        initial_index: Starting split (first index of the post-change
            segment).  Defaults to the midpoint.
        min_segment: Minimum points on each side of the split.
        max_iterations: Iteration cap — the paper's "until it uses up the
            computation time" budget.

    Returns:
        ``(index, log_likelihood)`` of the converged split, or ``None``
        when the series is too short.
    """
    x = np.asarray(values, dtype=float)
    n = x.size
    if n < 2 * min_segment:
        return None

    prefix = np.concatenate([[0.0], np.cumsum(x)])
    prefix_sq = np.concatenate([[0.0], np.cumsum(x * x)])

    lo, hi = min_segment, n - min_segment
    t = initial_index if initial_index is not None else n // 2
    t = int(np.clip(t, lo, hi))

    current = _split_loglik(prefix, prefix_sq, t, n)
    for _ in range(max_iterations):
        # E-step over the split location: evaluate the likelihood of every
        # admissible split under the current segment-mean model, then move
        # to the argmax.  Because the M-step (segment means) is implicit in
        # _split_loglik, one sweep is an exact coordinate-ascent step.
        candidates = np.array(
            [_split_loglik(prefix, prefix_sq, s, n) for s in range(lo, hi + 1)]
        )
        best = lo + int(np.argmax(candidates))
        best_ll = float(candidates[best - lo])
        if best == t or best_ll <= current + 1e-12:
            break
        t, current = best, best_ll

    return t, float(current)
