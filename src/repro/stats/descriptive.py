"""Descriptive statistics helpers shared across the pipeline."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

__all__ = ["percentile", "summarize", "summarize_batch", "SeriesSummary"]


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile of ``values`` (linear interpolation).

    Args:
        values: Non-empty sequence.
        q: Percentile in [0, 100].

    Raises:
        ValueError: On empty input or out-of-range ``q``.
    """
    x = np.asarray(values, dtype=float)
    if x.size == 0:
        raise ValueError("percentile of empty sequence")
    if not 0 <= q <= 100:
        raise ValueError(f"q must be in [0, 100], got {q}")
    return float(np.percentile(x, q))


@dataclass(frozen=True)
class SeriesSummary:
    """Summary statistics of a series."""

    count: int
    mean: float
    std: float
    minimum: float
    p10: float
    p50: float
    p90: float
    p99: float
    maximum: float


def summarize(values: Sequence[float]) -> SeriesSummary:
    """Compute a :class:`SeriesSummary` (the paper's Table 4 quantiles).

    Raises:
        ValueError: On empty input.
    """
    x = np.asarray(values, dtype=float)
    if x.size == 0:
        raise ValueError("summarize of empty sequence")
    return SeriesSummary(
        count=int(x.size),
        mean=float(x.mean()),
        std=float(x.std()),
        minimum=float(x.min()),
        p10=float(np.percentile(x, 10)),
        p50=float(np.percentile(x, 50)),
        p90=float(np.percentile(x, 90)),
        p99=float(np.percentile(x, 99)),
        maximum=float(x.max()),
    )


def summarize_batch(values: np.ndarray) -> List[SeriesSummary]:
    """Row-wise :func:`summarize` over a ``(k, n)`` matrix.

    All moments and quantiles are computed as whole-matrix reductions
    (one pass each instead of one per series); each row's summary is
    bit-identical to :func:`summarize` of that row.

    Raises:
        ValueError: On a zero-width matrix.
    """
    x = np.asarray(values, dtype=float)
    if x.ndim != 2:
        raise ValueError(f"values must be (k, n), got shape {x.shape}")
    k, n = x.shape
    if n == 0:
        raise ValueError("summarize of empty sequence")
    means = x.mean(axis=1)
    stds = x.std(axis=1)
    minima = x.min(axis=1)
    maxima = x.max(axis=1)
    quantiles = np.percentile(x, [10, 50, 90, 99], axis=1)
    return [
        SeriesSummary(
            count=n,
            mean=float(means[i]),
            std=float(stds[i]),
            minimum=float(minima[i]),
            p10=float(quantiles[0, i]),
            p50=float(quantiles[1, i]),
            p90=float(quantiles[2, i]),
            p99=float(quantiles[3, i]),
            maximum=float(maxima[i]),
        )
        for i in range(k)
    ]
