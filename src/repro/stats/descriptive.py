"""Descriptive statistics helpers shared across the pipeline."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["percentile", "summarize", "SeriesSummary"]


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile of ``values`` (linear interpolation).

    Args:
        values: Non-empty sequence.
        q: Percentile in [0, 100].

    Raises:
        ValueError: On empty input or out-of-range ``q``.
    """
    x = np.asarray(values, dtype=float)
    if x.size == 0:
        raise ValueError("percentile of empty sequence")
    if not 0 <= q <= 100:
        raise ValueError(f"q must be in [0, 100], got {q}")
    return float(np.percentile(x, q))


@dataclass(frozen=True)
class SeriesSummary:
    """Summary statistics of a series."""

    count: int
    mean: float
    std: float
    minimum: float
    p10: float
    p50: float
    p90: float
    p99: float
    maximum: float


def summarize(values: Sequence[float]) -> SeriesSummary:
    """Compute a :class:`SeriesSummary` (the paper's Table 4 quantiles).

    Raises:
        ValueError: On empty input.
    """
    x = np.asarray(values, dtype=float)
    if x.size == 0:
        raise ValueError("summarize of empty sequence")
    return SeriesSummary(
        count=int(x.size),
        mean=float(x.mean()),
        std=float(x.std()),
        minimum=float(x.min()),
        p10=float(np.percentile(x, 10)),
        p50=float(np.percentile(x, 50)),
        p90=float(np.percentile(x, 90)),
        p99=float(np.percentile(x, 99)),
        maximum=float(x.max()),
    )
