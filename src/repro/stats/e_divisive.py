"""E-divisive change-point test: energy-statistic split + permutation test.

Hunter (arXiv 2301.03034) builds its detector on the E-divisive mean
procedure [Matteson & James 2014]: the best split of a series is the one
maximizing the *energy divergence* between the two sides, and its
significance is judged by a permutation test — shuffle the series, redo
the split search, and ask how often chance alone matches the observed
divergence.  This module implements that tester from scratch so the
detector registry can run a Hunter-style challenger beside the paper's
CUSUM+EM incumbent.

For a split of ``x`` into ``A = x[:t]`` (m points) and ``B = x[t:]``
(k points), the sample energy divergence is

    E(A, B) = 2 * mean|a - b| - mean|a - a'| - mean|b - b'|

(within-segment means over unordered pairs), and the scan statistic is

    Q(t) = (m * k / (m + k)) * E(A, B)

All splits are scored at once from the pairwise distance matrix via 2-D
prefix sums, so one sweep costs O(n^2) and each permutation reuses the
same matrix under a fancy-index shuffle.  Determinism: the permutation
stream comes from a fresh seeded :class:`numpy.random.Generator`, so the
same series and parameters always yield the same p-value — a property
the shadow-mode byte-identity contract relies on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

__all__ = ["EDivisiveResult", "best_e_divisive_split", "e_divisive_test"]


@dataclass(frozen=True)
class EDivisiveResult:
    """Outcome of an E-divisive scan.

    Attributes:
        index: First index of the second segment (best split).
        statistic: Observed scan statistic ``Q(index)``.
        p_value: Permutation p-value (1.0 when no permutations ran).
        significant: ``p_value <= alpha`` for the alpha given to the test.
        mean_before: Mean of the pre-split segment.
        mean_after: Mean of the post-split segment.
    """

    index: int
    statistic: float
    p_value: float
    significant: bool
    mean_before: float
    mean_after: float

    @property
    def magnitude(self) -> float:
        """Estimated level shift (positive = increase)."""
        return self.mean_after - self.mean_before


def _distance_matrix(x: np.ndarray) -> np.ndarray:
    return np.abs(x[:, None] - x[None, :])


def _split_statistics(
    dist: np.ndarray, min_segment: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Q(t) for every admissible split t, from one prefix-sum pass.

    Returns ``(t_values, q)`` where ``q[i]`` is the scan statistic for
    splitting before index ``t_values[i]``.
    """
    n = dist.shape[0]
    # prefix[i, j] = sum of dist[:i+1, :j+1]; two cumsums build it.
    prefix = dist.cumsum(axis=0).cumsum(axis=1)
    total = prefix[n - 1, n - 1]
    t_values = np.arange(min_segment, n - min_segment + 1)
    diag = prefix[t_values - 1, t_values - 1]  # sum over A x A
    row = prefix[t_values - 1, n - 1]  # sum over A x (A u B)
    cross = row - diag  # sum over A x B
    within_a = diag / 2.0  # unordered pairs (diagonal is zero)
    within_b = (total - 2.0 * row + diag) / 2.0
    m = t_values.astype(float)
    k = float(n) - m
    pairs_a = m * (m - 1.0) / 2.0
    pairs_b = k * (k - 1.0) / 2.0
    term_cross = 2.0 * cross / (m * k)
    term_a = np.divide(
        within_a, pairs_a, out=np.zeros_like(within_a), where=pairs_a > 0
    )
    term_b = np.divide(
        within_b, pairs_b, out=np.zeros_like(within_b), where=pairs_b > 0
    )
    energy = term_cross - term_a - term_b
    q = (m * k / (m + k)) * energy
    return t_values, q


def best_e_divisive_split(
    values: Sequence[float],
    min_segment: int = 2,
) -> Optional[Tuple[int, float]]:
    """Best single split by energy divergence.

    Args:
        values: The time series.
        min_segment: Minimum points per segment.

    Returns:
        ``(index, statistic)`` where ``index`` is the first index of the
        second segment, or ``None`` when the series is too short.
    """
    x = np.asarray(values, dtype=float)
    if x.size < 2 * min_segment:
        return None
    t_values, q = _split_statistics(_distance_matrix(x), min_segment)
    best = int(np.argmax(q))
    return int(t_values[best]), float(q[best])


def e_divisive_test(
    values: Sequence[float],
    min_segment: int = 2,
    n_permutations: int = 99,
    alpha: float = 0.05,
    seed: int = 0,
) -> Optional[EDivisiveResult]:
    """E-divisive significance test for a single change point.

    Finds the split maximizing ``Q(t)``, then runs a permutation test:
    each permutation shuffles the series (equivalently, conjugates the
    distance matrix by a random permutation) and records its own maximal
    ``Q``.  The p-value uses the standard add-one estimator

        p = (1 + #{permutation max-Q >= observed}) / (n_permutations + 1)

    so it can never be exactly zero.

    Args:
        values: The time series.
        min_segment: Minimum points per segment.
        n_permutations: Permutation count (0 disables the test; the
            result then reports ``p_value=1.0`` and is never significant).
        alpha: Significance level compared against the p-value.
        seed: Seed for the permutation stream (fresh generator per call,
            so results are deterministic and process-independent).

    Returns:
        An :class:`EDivisiveResult`, or ``None`` when the series is too
        short for any admissible split.
    """
    x = np.asarray(values, dtype=float)
    n = x.size
    if n < 2 * min_segment:
        return None
    dist = _distance_matrix(x)
    t_values, q = _split_statistics(dist, min_segment)
    best = int(np.argmax(q))
    index = int(t_values[best])
    observed = float(q[best])

    exceeded = 0
    if n_permutations > 0:
        rng = np.random.default_rng(seed)
        for _ in range(n_permutations):
            order = rng.permutation(n)
            _, perm_q = _split_statistics(dist[np.ix_(order, order)], min_segment)
            if float(np.max(perm_q)) >= observed:
                exceeded += 1
        p_value = (1.0 + exceeded) / (n_permutations + 1.0)
        significant = p_value <= alpha
    else:
        p_value = 1.0
        significant = False

    return EDivisiveResult(
        index=index,
        statistic=observed,
        p_value=p_value,
        significant=significant,
        mean_before=float(np.mean(x[:index])),
        mean_after=float(np.mean(x[index:])),
    )
