"""Statistical building blocks for FBDetect-style regression detection.

This subpackage implements, from scratch, every statistical primitive the
paper's pipeline relies on:

- :mod:`repro.stats.cusum` — Cumulative Sum change-point scoring (§5.2.1).
- :mod:`repro.stats.em` — Expectation-Maximization mean-split refinement
  used together with CUSUM to converge on the maximum-likelihood change
  point (§5.2.1).
- :mod:`repro.stats.hypothesis` — the likelihood-ratio chi-squared test
  that validates candidate change points (§5.2.1).
- :mod:`repro.stats.mann_kendall` — the Mann-Kendall trend test used by
  the went-away detector (§5.2.2).
- :mod:`repro.stats.theil_sen` — Theil-Sen slope estimation (§5.2.2).
- :mod:`repro.stats.robust` — Median Absolute Deviation and derived
  robust thresholds (§5.2.2).
- :mod:`repro.stats.sax` — Symbolic Aggregate approXimation
  discretization (§5.2.2).
- :mod:`repro.stats.stl` — Loess smoothing and Seasonal-Trend
  decomposition using Loess (§5.2.3, §5.3).
- :mod:`repro.stats.autocorrelation` — autocorrelation-based seasonality
  presence test (§5.2.3).
- :mod:`repro.stats.changepoint_dp` — normal-loss dynamic-programming
  change-point search used by long-term detection (§5.3).
- :mod:`repro.stats.e_divisive` — energy-statistic change-point test
  with permutation significance (Hunter-style challenger detector).
- :mod:`repro.stats.correlation` — Pearson correlation with alignment
  helpers (§5.5.2, §5.6).
- :mod:`repro.stats.descriptive` — percentiles and summary statistics.
- :mod:`repro.stats.incremental` — O(1)-per-point streaming primitives
  (Welford moments, Page's CUSUM) backing the pipeline's incremental
  scan cache.
"""

from repro.stats.autocorrelation import acf, detect_season_length, has_significant_seasonality
from repro.stats.changepoint_dp import (
    SplitResult,
    best_split_normal_loss,
    multi_split_normal_loss,
    normal_segment_loss,
)
from repro.stats.correlation import aligned_pearson, pearson
from repro.stats.cusum import (
    CusumResult,
    cusum_changepoint,
    cusum_changepoint_batch,
    cusum_statistic,
)
from repro.stats.descriptive import percentile, summarize, summarize_batch
from repro.stats.e_divisive import EDivisiveResult, best_e_divisive_split, e_divisive_test
from repro.stats.em import em_mean_split
from repro.stats.hypothesis import LikelihoodRatioResult, likelihood_ratio_test
from repro.stats.incremental import (
    RunningMoments,
    StreamingCusum,
    cusum_screen_batch,
)
from repro.stats.mann_kendall import MannKendallResult, mann_kendall_test
from repro.stats.robust import mad, mad_batch, mad_threshold, mad_threshold_batch
from repro.stats.sax import SaxEncoding, sax_encode
from repro.stats.stl import STLResult, loess_smooth, stl_decompose
from repro.stats.theil_sen import TheilSenFit, theil_sen

__all__ = [
    "CusumResult",
    "EDivisiveResult",
    "LikelihoodRatioResult",
    "MannKendallResult",
    "RunningMoments",
    "STLResult",
    "SplitResult",
    "StreamingCusum",
    "SaxEncoding",
    "TheilSenFit",
    "acf",
    "aligned_pearson",
    "best_e_divisive_split",
    "best_split_normal_loss",
    "cusum_changepoint",
    "cusum_changepoint_batch",
    "cusum_screen_batch",
    "cusum_statistic",
    "detect_season_length",
    "e_divisive_test",
    "em_mean_split",
    "has_significant_seasonality",
    "likelihood_ratio_test",
    "loess_smooth",
    "mad",
    "mad_batch",
    "mad_threshold",
    "mad_threshold_batch",
    "mann_kendall_test",
    "multi_split_normal_loss",
    "normal_segment_loss",
    "pearson",
    "percentile",
    "sax_encode",
    "stl_decompose",
    "summarize",
    "summarize_batch",
    "theil_sen",
]
