"""Likelihood-ratio validation of a candidate change point.

Once the CUSUM/EM iteration converges on a split, the paper validates it
with a likelihood-ratio chi-squared test at significance level 0.01
(§5.2.1):

- H0: no change point — one mean ``mu`` for the entire series.
- H1: one change point ``t`` — mean ``mu0`` before and ``mu1`` after.

Under H0 the statistic ``2 (logL1 - logL0)`` is asymptotically chi-squared
with one degree of freedom (the extra mean parameter).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy import stats as sp_stats

__all__ = ["LikelihoodRatioResult", "likelihood_ratio_test"]


@dataclass(frozen=True)
class LikelihoodRatioResult:
    """Outcome of the likelihood-ratio chi-squared test.

    Attributes:
        statistic: ``2 (logL1 - logL0)``; larger means stronger evidence
            for a change point.
        p_value: Chi-squared (df=1) tail probability of the statistic.
        significant: Whether H0 was rejected at the configured level.
        significance_level: The level used (paper default 0.01).
    """

    statistic: float
    p_value: float
    significant: bool
    significance_level: float


def _gaussian_loglik(x: np.ndarray) -> float:
    """Max Gaussian log-likelihood of ``x`` with fitted mean and variance."""
    n = x.size
    var = max(float(x.var()), 1e-30)
    return -0.5 * n * (np.log(2 * np.pi * var) + 1.0)


def likelihood_ratio_test(
    values: Sequence[float],
    changepoint: int,
    significance_level: float = 0.01,
) -> LikelihoodRatioResult:
    """Test H1 (one change point at ``changepoint``) against H0 (no change).

    Args:
        values: The time series.
        changepoint: First index of the post-change segment; must leave at
            least one point on each side.
        significance_level: Rejection level for H0 (paper uses 0.01).

    Returns:
        A :class:`LikelihoodRatioResult`; ``significant`` is ``True`` when
        the series genuinely has different means around ``changepoint``.

    Raises:
        ValueError: If ``changepoint`` does not split the series into two
            non-empty segments.
    """
    x = np.asarray(values, dtype=float)
    n = x.size
    if not 0 < changepoint < n:
        raise ValueError(
            f"changepoint {changepoint} must split series of length {n} "
            "into two non-empty segments"
        )

    ll0 = _gaussian_loglik(x)
    # H1 uses a pooled variance so the test isolates the mean shift.
    before, after = x[:changepoint], x[changepoint:]
    rss = float(((before - before.mean()) ** 2).sum() + ((after - after.mean()) ** 2).sum())
    pooled_var = max(rss / n, 1e-30)
    ll1 = -0.5 * n * (np.log(2 * np.pi * pooled_var) + 1.0)

    statistic = max(0.0, 2.0 * (ll1 - ll0))
    p_value = float(sp_stats.chi2.sf(statistic, df=1))
    return LikelihoodRatioResult(
        statistic=float(statistic),
        p_value=p_value,
        significant=p_value < significance_level,
        significance_level=significance_level,
    )
