"""Cumulative Sum (CUSUM) change-point scoring.

The paper's change-point detector (§5.2.1) applies CUSUM and EM iteratively
to converge on the change point with the maximum likelihood of having
different means before and after it.  This module provides the CUSUM half:
a scan statistic over the cumulative deviations from the series mean whose
extremum marks the most likely single shift in the mean.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

__all__ = [
    "CusumResult",
    "cusum_statistic",
    "cusum_changepoint",
    "cusum_changepoint_batch",
]


@dataclass(frozen=True)
class CusumResult:
    """Outcome of a CUSUM scan over a series.

    Attributes:
        index: Index ``t`` of the most likely change point.  The mean is
            estimated over ``x[:t]`` before and ``x[t:]`` after, so ``t`` is
            the first index of the post-change segment.
        statistic: Magnitude of the CUSUM extremum, normalized by the
            series standard deviation (0 when the series is constant).
        mean_before: Sample mean of ``x[:t]``.
        mean_after: Sample mean of ``x[t:]``.
        curve: The raw cumulative-deviation curve (useful for plotting
            and diagnostics).
    """

    index: int
    statistic: float
    mean_before: float
    mean_after: float
    curve: np.ndarray

    @property
    def shift(self) -> float:
        """Signed magnitude of the detected mean shift."""
        return self.mean_after - self.mean_before


def cusum_statistic(values: Sequence[float]) -> np.ndarray:
    """Return the cumulative sum of deviations from the series mean.

    ``S_t = sum_{i<=t} (x_i - mean(x))``.  A single mean shift produces a
    V- or Λ-shaped curve whose extremum locates the shift.
    """
    x = np.asarray(values, dtype=float)
    if x.size == 0:
        return np.empty(0)
    return np.cumsum(x - x.mean())


def cusum_changepoint(
    values: Sequence[float],
    min_segment: int = 2,
) -> Optional[CusumResult]:
    """Locate the most likely single mean-shift change point via CUSUM.

    Args:
        values: The time series to scan.
        min_segment: Minimum number of points required on each side of the
            change point.  Candidates closer to either edge are ignored.

    Returns:
        A :class:`CusumResult`, or ``None`` when the series is too short to
        contain a change point with the requested segment sizes.
    """
    x = np.asarray(values, dtype=float)
    n = x.size
    if n < 2 * min_segment:
        return None

    curve = cusum_statistic(x)
    # Restrict the extremum search so both segments have >= min_segment
    # points.  curve index t corresponds to a split between t and t+1, so
    # the post-change segment starts at t+1.
    lo = min_segment - 1
    hi = n - min_segment
    window = np.abs(curve[lo:hi])
    if window.size == 0:
        return None
    split = lo + int(np.argmax(window))
    index = split + 1

    std = float(x.std())
    stat = float(abs(curve[split]) / (std * np.sqrt(n))) if std > 0 else 0.0
    return CusumResult(
        index=index,
        statistic=stat,
        mean_before=float(x[:index].mean()),
        mean_after=float(x[index:].mean()),
        curve=curve,
    )


def cusum_changepoint_batch(
    values: np.ndarray,
    min_segment: int = 2,
) -> List[Optional[CusumResult]]:
    """Row-wise :func:`cusum_changepoint` over a ``(k, n)`` matrix.

    The curve computation and extremum search — the O(k * n) bulk of the
    scan — run as whole-matrix array ops; only the per-row segment means
    (O(n) each, over the already-located split) remain per row.  Each
    row's result is bit-identical to calling :func:`cusum_changepoint`
    on that row alone.

    Returns:
        One optional :class:`CusumResult` per row (``None`` for rows too
        short to contain a change point, i.e. when ``n < 2 *
        min_segment`` — a property of the matrix width, so then every
        entry is ``None``).
    """
    x = np.asarray(values, dtype=float)
    if x.ndim != 2:
        raise ValueError(f"values must be (k, n), got shape {x.shape}")
    k, n = x.shape
    if n < 2 * min_segment or n - 2 * min_segment + 1 <= 0:
        return [None] * k

    curves = np.cumsum(x - x.mean(axis=1, keepdims=True), axis=1)
    lo = min_segment - 1
    hi = n - min_segment
    rows = np.arange(k)
    splits = lo + np.argmax(np.abs(curves[:, lo:hi]), axis=1)
    indices = splits + 1
    stds = x.std(axis=1)
    extrema = np.abs(curves[rows, splits])
    with np.errstate(divide="ignore", invalid="ignore"):
        stats = np.where(stds > 0, extrema / (stds * np.sqrt(n)), 0.0)

    results: List[Optional[CusumResult]] = []
    for i in range(k):
        index = int(indices[i])
        results.append(
            CusumResult(
                index=index,
                statistic=float(stats[i]),
                mean_before=float(x[i, :index].mean()),
                mean_after=float(x[i, index:].mean()),
                curve=curves[i],
            )
        )
    return results
