"""Incremental (streaming) change-detection primitives.

The offline detector (:mod:`repro.stats.cusum` + :mod:`repro.stats.em`)
re-processes a whole analysis window on every scan — O(W) per scan even
when only a handful of points arrived since the last one.  This module
provides the primitives that let the pipeline's incremental scan cache
(:mod:`repro.core.incremental`) amortize that cost to O(n) for n new
points:

- :class:`RunningMoments` — Welford's online mean/variance, numerically
  stable, O(1) per update, with a Chan-merge batch fold.
- :class:`StreamingCusum` — Page's two-sided CUSUM test anchored on a
  reference mean/std.  It accumulates evidence of a mean shift; once the
  statistic crosses the threshold it stays *fired* until re-anchored,
  signalling that a full offline scan is warranted.
- :func:`cusum_screen_batch` — the vectorized core: one (k, n) array op
  advances k anchored screens by n points each, which is how a shard
  screens thousands of series per advance without a per-series Python
  loop.

Page's recursion ``S_t = max(0, S_{t-1} + a_t)`` vectorizes exactly via
the running-minimum identity: with ``P_t = S_0 + (a_1 + ... + a_t)``,

    ``S_t = P_t - min(0, min_{j<=t} P_j)``

so one ``cumsum`` plus one ``minimum.accumulate`` replaces the per-point
loop.  :meth:`StreamingCusum.update_many` routes through the same
batched kernel as :func:`cusum_screen_batch`, so folding a series alone
or inside a (k, n) matrix produces bit-identical state.

All classes are plain-attribute objects, so they pickle cleanly inside
shard checkpoints and across process-pool boundaries.
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple

import numpy as np

__all__ = ["RunningMoments", "StreamingCusum", "cusum_screen_batch"]


class RunningMoments:
    """Welford online mean/variance accumulator.

    Example::

        moments = RunningMoments()
        for value in stream:
            moments.update(value)
        print(moments.mean, moments.std)
    """

    def __init__(self) -> None:
        self.n = 0
        self.mean = 0.0
        self._m2 = 0.0

    def update(self, value: float) -> None:
        """Fold one observation in (O(1))."""
        self.n += 1
        delta = value - self.mean
        self.mean += delta / self.n
        self._m2 += delta * (value - self.mean)

    def update_many(self, values: Sequence[float]) -> None:
        """Fold a batch in with Chan's parallel merge (one pass, no loop)."""
        x = np.asarray(values, dtype=float).ravel()
        m = int(x.size)
        if m == 0:
            return
        batch_mean = float(x.mean())
        batch_m2 = float(((x - batch_mean) ** 2).sum())
        total = self.n + m
        delta = batch_mean - self.mean
        self.mean += delta * (m / total)
        self._m2 += batch_m2 + delta * delta * (self.n * m / total)
        self.n = total

    @property
    def variance(self) -> float:
        """Population variance (0 with fewer than 2 observations)."""
        return self._m2 / self.n if self.n >= 2 else 0.0

    @property
    def std(self) -> float:
        return math.sqrt(self.variance)


def cusum_screen_batch(
    values: np.ndarray,
    means: np.ndarray,
    stds: np.ndarray,
    pos: np.ndarray,
    neg: np.ndarray,
    drift: float,
    threshold: float,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Advance ``k`` anchored two-sided CUSUM screens by ``n`` points each.

    Args:
        values: ``(k, n)`` matrix — row ``i`` holds the new points for
            screen ``i`` in arrival order.
        means: ``(k,)`` reference means (anchors).
        stds: ``(k,)`` reference standard deviations; a row with
            ``std <= 0`` is degenerate — it fires on any value different
            from its mean and its evidence sums stay untouched.
        pos: ``(k,)`` current positive evidence (``S+``).
        neg: ``(k,)`` current negative evidence (``S-``).
        drift: Allowance ``k`` in reference standard deviations.
        threshold: Decision interval ``h`` in reference standard
            deviations.

    Returns:
        ``(pos_out, neg_out, fired_at)`` — the evidence sums after the
        fold and, per row, the index of the first point at which the
        screen crossed ``threshold`` (``-1`` when it never did).  On a
        firing row the sums freeze at the crossing point, matching the
        scalar fold's early exit.
    """
    x = np.asarray(values, dtype=float)
    if x.ndim != 2:
        raise ValueError(f"values must be (k, n), got shape {x.shape}")
    k, n = x.shape
    means = np.asarray(means, dtype=float)
    stds = np.asarray(stds, dtype=float)
    pos = np.asarray(pos, dtype=float)
    neg = np.asarray(neg, dtype=float)

    degenerate = stds <= 0.0
    safe_stds = np.where(degenerate, 1.0, stds)
    # The fold below is the same math as the readable form
    #
    #     z = (x - means) / stds
    #     up = pos + cumsum(z - drift);   pos_path = up - min(0, runmin(up))
    #     down = neg + cumsum(-z - drift); neg_path = down - min(0, runmin(down))
    #
    # but reuses two (k, n) scratch buffers per side instead of
    # allocating ~10 of them: on the hot batch-screen path the matrices
    # are tens of MB and first-touch page faults would otherwise rival
    # the arithmetic itself.  Every operation (and its order) is
    # unchanged, so results stay bit-identical.
    z = x - means[:, None]
    z /= safe_stds[:, None]
    mz = -z
    mz -= drift
    z -= drift

    np.cumsum(z, axis=1, out=z)
    z += pos[:, None]
    run = np.minimum.accumulate(z, axis=1)
    np.minimum(run, 0.0, out=run)
    np.subtract(z, run, out=run)
    pos_path = run

    np.cumsum(mz, axis=1, out=mz)
    mz += neg[:, None]
    run = np.minimum.accumulate(mz, axis=1)
    np.minimum(run, 0.0, out=run)
    np.subtract(mz, run, out=run)
    neg_path = run

    crossed = pos_path >= threshold
    crossed |= neg_path >= threshold
    if degenerate.any():
        crossed[degenerate] = x[degenerate] != means[degenerate][:, None]

    fired_rows = crossed.any(axis=1)
    fired_at = np.where(fired_rows, np.argmax(crossed, axis=1), -1)
    stop = np.where(fired_at >= 0, fired_at, n - 1)
    rows = np.arange(k)
    pos_out = np.where(degenerate, pos, pos_path[rows, stop])
    neg_out = np.where(degenerate, neg, neg_path[rows, stop])
    return pos_out, neg_out, fired_at


class StreamingCusum:
    """Page's two-sided CUSUM test with an anchored reference.

    Tracks the classic recursions over standardized deviations
    ``z = (x - mean) / std``::

        S+ = max(0, S+ + (z - drift))
        S- = max(0, S- + (-z - drift))

    and fires when either side reaches ``threshold``.  ``drift`` (the
    allowance ``k``) absorbs noise around the reference mean; the
    defaults (``drift=0.75``, ``threshold=6.0``, both in standard
    deviations) keep the in-control false-fire rate under ~2% across a
    full analysis window of quiet points while still firing on any
    sustained shift of ~2 sigma — far smaller than anything the
    pipeline's offline detector reports — so a skip decision based on an
    unfired screen is conservative.

    A zero/degenerate reference std means the anchored window was
    constant: any deviation from the reference mean fires immediately.

    Args:
        mean: Reference mean (anchor).
        std: Reference standard deviation (anchor); may be 0.
        drift: Allowance ``k`` in reference standard deviations.
        threshold: Decision interval ``h`` in reference standard
            deviations.
    """

    def __init__(
        self,
        mean: float,
        std: float,
        drift: float = 0.75,
        threshold: float = 6.0,
    ) -> None:
        if drift < 0:
            raise ValueError("drift must be >= 0")
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        self.mean = float(mean)
        self.std = float(std)
        self.drift = float(drift)
        self.threshold = float(threshold)
        self.pos = 0.0
        self.neg = 0.0
        self.fired = False
        self.n = 0

    @classmethod
    def from_reference(
        cls,
        values: Sequence[float],
        drift: float = 0.75,
        threshold: float = 6.0,
    ) -> "StreamingCusum":
        """Anchor a screen on the mean/std of a reference window."""
        x = np.asarray(values, dtype=float)
        mean = float(x.mean()) if x.size else 0.0
        std = float(x.std()) if x.size else 0.0
        return cls(mean, std, drift=drift, threshold=threshold)

    @property
    def statistic(self) -> float:
        """Current evidence: the larger of the two one-sided sums."""
        return max(self.pos, self.neg)

    def update(self, value: float) -> bool:
        """Fold one observation in (O(1)); returns :attr:`fired`."""
        self.n += 1
        if self.fired:
            return True
        if self.std <= 0.0:
            if value != self.mean:
                self.fired = True
            return self.fired
        z = (value - self.mean) / self.std
        # Same association as the vectorized kernel (z - drift first),
        # so scalar and batched folds stay bit-identical.
        self.pos = max(0.0, self.pos + (z - self.drift))
        self.neg = max(0.0, self.neg + (-z - self.drift))
        if self.pos >= self.threshold or self.neg >= self.threshold:
            self.fired = True
        return self.fired

    def update_many(self, values: Sequence[float]) -> bool:
        """Fold a batch in (vectorized, O(n) work); returns :attr:`fired`.

        Stops consuming at the first firing point, like the scalar fold:
        :attr:`n` counts points up to and including the one that fired,
        and the evidence sums freeze at their firing values.  A screen
        that is already fired consumes a single point (the scalar fold's
        early exit) and stays latched.
        """
        x = np.asarray(values, dtype=float).ravel()
        if x.size == 0:
            return self.fired
        if self.fired:
            self.n += 1
            return True
        self.apply_batch_result(
            *(arr[0] for arr in cusum_screen_batch(
                x[None, :],
                np.array([self.mean]),
                np.array([self.std]),
                np.array([self.pos]),
                np.array([self.neg]),
                self.drift,
                self.threshold,
            )),
            batch_size=int(x.size),
        )
        return self.fired

    def apply_batch_result(
        self, pos: float, neg: float, fired_at: int, batch_size: int
    ) -> None:
        """Adopt one row of a :func:`cusum_screen_batch` fold.

        The batch-screen path computes evidence for many screens at
        once and writes each row's outcome back through here, keeping
        the state transition identical to :meth:`update_many`.
        """
        self.pos = float(pos)
        self.neg = float(neg)
        if fired_at >= 0:
            self.fired = True
            self.n += int(fired_at) + 1
        else:
            self.n += batch_size

    def reanchor(self, mean: float, std: float) -> None:
        """Reset the accumulated evidence around a new reference."""
        self.mean = float(mean)
        self.std = float(std)
        self.pos = 0.0
        self.neg = 0.0
        self.fired = False
        self.n = 0
