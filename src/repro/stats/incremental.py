"""Incremental (streaming) change-detection primitives.

The offline detector (:mod:`repro.stats.cusum` + :mod:`repro.stats.em`)
re-processes a whole analysis window on every scan — O(W) per scan even
when only a handful of points arrived since the last one.  This module
provides the O(1)-per-point primitives that let the pipeline's
incremental scan cache (:mod:`repro.core.incremental`) amortize that
cost to O(n) for n new points:

- :class:`RunningMoments` — Welford's online mean/variance, numerically
  stable, O(1) per update.
- :class:`StreamingCusum` — Page's two-sided CUSUM test anchored on a
  reference mean/std.  It accumulates evidence of a mean shift one point
  at a time; once the statistic crosses the threshold it stays *fired*
  until re-anchored, signalling that a full offline scan is warranted.

Both classes are plain-attribute objects, so they pickle cleanly inside
shard checkpoints and across process-pool boundaries.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

__all__ = ["RunningMoments", "StreamingCusum"]


class RunningMoments:
    """Welford online mean/variance accumulator.

    Example::

        moments = RunningMoments()
        for value in stream:
            moments.update(value)
        print(moments.mean, moments.std)
    """

    def __init__(self) -> None:
        self.n = 0
        self.mean = 0.0
        self._m2 = 0.0

    def update(self, value: float) -> None:
        """Fold one observation in (O(1))."""
        self.n += 1
        delta = value - self.mean
        self.mean += delta / self.n
        self._m2 += delta * (value - self.mean)

    def update_many(self, values: Sequence[float]) -> None:
        for value in np.asarray(values, dtype=float):
            self.update(float(value))

    @property
    def variance(self) -> float:
        """Population variance (0 with fewer than 2 observations)."""
        return self._m2 / self.n if self.n >= 2 else 0.0

    @property
    def std(self) -> float:
        return math.sqrt(self.variance)


class StreamingCusum:
    """Page's two-sided CUSUM test with an anchored reference.

    Tracks the classic recursions over standardized deviations
    ``z = (x - mean) / std``::

        S+ = max(0, S+ + z - drift)
        S- = max(0, S- - z - drift)

    and fires when either side reaches ``threshold``.  ``drift`` (the
    allowance ``k``) absorbs noise around the reference mean; the
    defaults (``drift=0.75``, ``threshold=6.0``, both in standard
    deviations) keep the in-control false-fire rate under ~2% across a
    full analysis window of quiet points while still firing on any
    sustained shift of ~2 sigma — far smaller than anything the
    pipeline's offline detector reports — so a skip decision based on an
    unfired screen is conservative.

    A zero/degenerate reference std means the anchored window was
    constant: any deviation from the reference mean fires immediately.

    Args:
        mean: Reference mean (anchor).
        std: Reference standard deviation (anchor); may be 0.
        drift: Allowance ``k`` in reference standard deviations.
        threshold: Decision interval ``h`` in reference standard
            deviations.
    """

    def __init__(
        self,
        mean: float,
        std: float,
        drift: float = 0.75,
        threshold: float = 6.0,
    ) -> None:
        if drift < 0:
            raise ValueError("drift must be >= 0")
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        self.mean = float(mean)
        self.std = float(std)
        self.drift = float(drift)
        self.threshold = float(threshold)
        self.pos = 0.0
        self.neg = 0.0
        self.fired = False
        self.n = 0

    @classmethod
    def from_reference(
        cls,
        values: Sequence[float],
        drift: float = 0.75,
        threshold: float = 6.0,
    ) -> "StreamingCusum":
        """Anchor a screen on the mean/std of a reference window."""
        x = np.asarray(values, dtype=float)
        mean = float(x.mean()) if x.size else 0.0
        std = float(x.std()) if x.size else 0.0
        return cls(mean, std, drift=drift, threshold=threshold)

    @property
    def statistic(self) -> float:
        """Current evidence: the larger of the two one-sided sums."""
        return max(self.pos, self.neg)

    def update(self, value: float) -> bool:
        """Fold one observation in (O(1)); returns :attr:`fired`."""
        self.n += 1
        if self.fired:
            return True
        if self.std <= 0.0:
            if value != self.mean:
                self.fired = True
            return self.fired
        z = (value - self.mean) / self.std
        self.pos = max(0.0, self.pos + z - self.drift)
        self.neg = max(0.0, self.neg - z - self.drift)
        if self.pos >= self.threshold or self.neg >= self.threshold:
            self.fired = True
        return self.fired

    def update_many(self, values: Sequence[float]) -> bool:
        """Fold a batch in (O(n)); returns :attr:`fired`."""
        for value in np.asarray(values, dtype=float):
            if self.update(float(value)):
                break
        return self.fired

    def reanchor(self, mean: float, std: float) -> None:
        """Reset the accumulated evidence around a new reference."""
        self.mean = float(mean)
        self.std = float(std)
        self.pos = 0.0
        self.neg = 0.0
        self.fired = False
        self.n = 0
