"""Mann-Kendall non-parametric trend test.

The went-away detector (§5.2.2) uses Mann-Kendall to check whether the tail
of a regression shows a decreasing trend (possible recovery) and whether
the post-regression window shows a lasting monotonic upward trend.

The test statistic is ``S = sum_{i<j} sign(x_j - x_i)``; under H0 (no
trend), S is approximately normal with mean 0 and a variance that accounts
for tied values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy import stats as sp_stats

__all__ = ["MannKendallResult", "mann_kendall_test"]


@dataclass(frozen=True)
class MannKendallResult:
    """Outcome of a Mann-Kendall trend test.

    Attributes:
        s: Raw Mann-Kendall S statistic.
        z: Normal-approximation z score (continuity corrected).
        p_value: Two-sided p-value.
        trend: ``"increasing"``, ``"decreasing"``, or ``"no trend"`` at the
            requested significance level.
    """

    s: int
    z: float
    p_value: float
    trend: str

    @property
    def is_increasing(self) -> bool:
        return self.trend == "increasing"

    @property
    def is_decreasing(self) -> bool:
        return self.trend == "decreasing"


def mann_kendall_test(
    values: Sequence[float],
    significance_level: float = 0.05,
) -> MannKendallResult:
    """Run the Mann-Kendall trend test.

    Args:
        values: The series to test (at least 3 points for a meaningful
            result; shorter series report "no trend").
        significance_level: Two-sided rejection level.

    Returns:
        A :class:`MannKendallResult` with the detected trend direction.
    """
    x = np.asarray(values, dtype=float)
    n = x.size
    if n < 3:
        return MannKendallResult(s=0, z=0.0, p_value=1.0, trend="no trend")

    # S = number of concordant minus discordant pairs.
    diffs = np.sign(x[None, :] - x[:, None])
    s = int(np.triu(diffs, k=1).sum())

    # Variance with tie correction.
    _, counts = np.unique(x, return_counts=True)
    tie_term = float((counts * (counts - 1) * (2 * counts + 5)).sum())
    var_s = (n * (n - 1) * (2 * n + 5) - tie_term) / 18.0
    if var_s <= 0:
        return MannKendallResult(s=s, z=0.0, p_value=1.0, trend="no trend")

    if s > 0:
        z = (s - 1) / np.sqrt(var_s)
    elif s < 0:
        z = (s + 1) / np.sqrt(var_s)
    else:
        z = 0.0

    p_value = float(2.0 * sp_stats.norm.sf(abs(z)))
    if p_value < significance_level:
        trend = "increasing" if z > 0 else "decreasing"
    else:
        trend = "no trend"
    return MannKendallResult(s=s, z=float(z), p_value=p_value, trend=trend)
