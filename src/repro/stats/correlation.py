"""Pearson correlation with time-alignment helpers.

Used by PairwiseDedup (§5.5.2) to score time-series similarity between
regressions, and by root-cause analysis (§5.6) to correlate setup metrics
with a regression's timing.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

__all__ = ["pearson", "aligned_pearson"]


def pearson(a: Sequence[float], b: Sequence[float]) -> float:
    """Pearson correlation coefficient between two equal-length series.

    Returns 0.0 when either series is constant (correlation undefined).

    Raises:
        ValueError: On length mismatch or fewer than 2 points.
    """
    x = np.asarray(a, dtype=float)
    y = np.asarray(b, dtype=float)
    if x.size != y.size:
        raise ValueError(f"length mismatch: {x.size} vs {y.size}")
    if x.size < 2:
        raise ValueError("pearson requires at least 2 points")
    sx, sy = x.std(), y.std()
    if sx == 0 or sy == 0:
        return 0.0
    return float(((x - x.mean()) * (y - y.mean())).mean() / (sx * sy))


def aligned_pearson(
    a: Mapping[float, float],
    b: Mapping[float, float],
    min_overlap: int = 3,
) -> float:
    """Pearson correlation over the timestamps two series share.

    Production series rarely sample at identical instants; this aligns two
    ``{timestamp: value}`` mappings on their common timestamps first.

    Args:
        a: First series as a timestamp-to-value mapping.
        b: Second series.
        min_overlap: Minimum shared timestamps for a meaningful score.

    Returns:
        The correlation, or 0.0 when overlap is insufficient.
    """
    shared = sorted(set(a) & set(b))
    if len(shared) < min_overlap:
        return 0.0
    return pearson([a[t] for t in shared], [b[t] for t in shared])
