"""Detection windows (Figure 4).

FBDetect divides a series, relative to a detection run's reference time,
into three parts:

- the *historic window* — baseline for comparison;
- the *analysis window* — where regressions are reported;
- the *extended window* — used to evaluate whether an observed regression
  persists or disappears.

Time layout (most recent on the right)::

    | ... historic ... | ... analysis ... | ... extended ... |now
                                          ^
                                          analysis_end

The extended window, when present, covers the most recent data; the
analysis window precedes it; the historic window precedes the analysis
window.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.tsdb.series import TimeSeries

__all__ = ["WindowSpec", "WindowedView"]


@dataclass(frozen=True)
class WindowSpec:
    """Durations (seconds) of the three detection windows.

    Attributes:
        historic: Baseline duration (Table 1: 7-16 days).
        analysis: Reporting duration (Table 1: 3 hours - 9 days).
        extended: Persistence-check duration; 0 when the configuration
            has no extended window ("N/A" rows of Table 1).
    """

    historic: float
    analysis: float
    extended: float = 0.0

    def __post_init__(self) -> None:
        if self.historic <= 0 or self.analysis <= 0 or self.extended < 0:
            raise ValueError("windows must be positive (extended may be 0)")

    @property
    def total(self) -> float:
        return self.historic + self.analysis + self.extended

    def view(self, series: TimeSeries, now: float) -> "WindowedView":
        """Slice ``series`` into the three windows ending at ``now``.

        The returned arrays are *snapshots* (bulk copies of the columnar
        buffers), not live views: a ``WindowedView`` outlives the scan
        that made it — it rides ``Regression.window`` through dedup,
        checkpoints and worker round trips — so it must never alias a
        buffer that a later last-write-wins overwrite could mutate.
        """
        extended_start = now - self.extended
        analysis_start = extended_start - self.analysis
        historic_start = analysis_start - self.historic
        return WindowedView(
            spec=self,
            now=now,
            historic=np.array(series.values_between(historic_start, analysis_start)),
            analysis=np.array(series.values_between(analysis_start, extended_start)),
            extended=np.array(series.values_between(extended_start, now)),
            historic_start=historic_start,
            analysis_start=analysis_start,
            extended_start=extended_start,
        )


@dataclass(frozen=True)
class WindowedView:
    """A series sliced into historic / analysis / extended windows."""

    spec: WindowSpec
    now: float
    historic: np.ndarray
    analysis: np.ndarray
    extended: np.ndarray
    historic_start: float
    analysis_start: float
    extended_start: float

    @property
    def analysis_and_extended(self) -> np.ndarray:
        """Analysis + extended values, in time order."""
        return np.concatenate([self.analysis, self.extended])

    @property
    def full(self) -> np.ndarray:
        """All three windows concatenated in time order."""
        return np.concatenate([self.historic, self.analysis, self.extended])

    def has_minimum_data(self, min_historic: int = 10, min_analysis: int = 5) -> bool:
        """Whether both baseline and analysis windows hold enough points."""
        return self.historic.size >= min_historic and self.analysis.size >= min_analysis
