"""In-memory time-series database substrate.

Stands in for Meta's production TSDB: stores the ~800k metric time series
FBDetect scans, and answers the windowed queries of Figure 4 (historic /
analysis / extended windows relative to a detection run's "now").
"""

from repro.tsdb.columnar import FloatColumn
from repro.tsdb.database import TimeSeriesDatabase
from repro.tsdb.series import TimeSeries
from repro.tsdb.windows import WindowSpec, WindowedView

__all__ = [
    "FloatColumn",
    "TimeSeries",
    "TimeSeriesDatabase",
    "WindowSpec",
    "WindowedView",
]
