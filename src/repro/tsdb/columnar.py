"""Growable contiguous float64 columns backing the TSDB hot path.

A :class:`FloatColumn` is the storage primitive behind
:class:`~repro.tsdb.series.TimeSeries`: one contiguous numpy ``float64``
buffer with amortized-doubling capacity, so appends are O(1) amortized
and every read the scan path cares about — tail values since the last
scan, window slices, coverage timestamps — is a zero-copy view into the
live buffer instead of a per-point list-to-array conversion.

Invariants the rest of the stack relies on:

- **Views are read-only.**  Every array returned by :meth:`view` has
  ``writeable=False``; consumers that need to mutate (orientation flips,
  windowed snapshots) copy explicitly.
- **Growth reallocates, compaction reallocates.**  Doubling and
  :meth:`replace` both swap in a *fresh* buffer, so a view handed out
  earlier keeps seeing the exact bytes it was created over — it can go
  stale (miss newer appends) but never see shifted or reused memory.
- **In-place overwrite is the only mutation views can observe.**
  Last-write-wins duplicate resolution rewrites one cell of the live
  buffer; callers that must not observe it (stored window snapshots)
  take copies at the boundary (``WindowSpec.view``).
- **Pickles are compact.**  Only the live prefix round-trips through
  ``__getstate__`` — slack capacity never rides shard checkpoints or
  worker round trips.
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

__all__ = ["FloatColumn"]

#: Smallest non-zero capacity; doubling starts here.
_MIN_CAPACITY = 8


class FloatColumn:
    """A growable contiguous ``float64`` column (amortized O(1) append)."""

    __slots__ = ("_buffer", "_length")

    def __init__(self, values: Optional[Iterable[float]] = None) -> None:
        if values is None:
            self._buffer = np.empty(0, dtype=np.float64)
            self._length = 0
        else:
            self._buffer = np.array(values, dtype=np.float64).ravel()
            self._length = int(self._buffer.size)

    # -- size ----------------------------------------------------------

    def __len__(self) -> int:
        return self._length

    @property
    def capacity(self) -> int:
        """Allocated slots (always >= ``len(self)``)."""
        return int(self._buffer.size)

    def _grow_to(self, needed: int) -> None:
        """Reallocate to a doubled capacity holding at least ``needed``."""
        cap = max(self._buffer.size, _MIN_CAPACITY)
        while cap < needed:
            cap *= 2
        fresh = np.empty(cap, dtype=np.float64)
        fresh[: self._length] = self._buffer[: self._length]
        self._buffer = fresh

    # -- writes --------------------------------------------------------

    def append(self, value: float) -> None:
        """Append one value (amortized O(1))."""
        if self._length == self._buffer.size:
            self._grow_to(self._length + 1)
        self._buffer[self._length] = value
        self._length += 1

    def extend(self, values: np.ndarray) -> None:
        """Bulk-append ``values`` with one memcpy (amortized O(m))."""
        m = int(values.size)
        if m == 0:
            return
        if self._length + m > self._buffer.size:
            self._grow_to(self._length + m)
        self._buffer[self._length : self._length + m] = values
        self._length += m

    def set(self, index: int, value: float) -> None:
        """Overwrite one cell (negative indices supported)."""
        if index < 0:
            index += self._length
        if not 0 <= index < self._length:
            raise IndexError(f"column index {index} out of range")
        self._buffer[index] = value

    def insert(self, index: int, value: float) -> None:
        """Insert at ``index``, shifting the tail right (O(n - index))."""
        if self._length == self._buffer.size:
            self._grow_to(self._length + 1)
        self._buffer[index + 1 : self._length + 1] = self._buffer[
            index : self._length
        ]
        self._buffer[index] = value
        self._length += 1

    def replace(self, values: np.ndarray) -> None:
        """Adopt ``values`` as the new content, in a fresh buffer.

        Used by backfill merges and retention compaction: outstanding
        views keep pointing at the old buffer (stale but intact) rather
        than observing shifted data.
        """
        self._buffer = np.array(values, dtype=np.float64).ravel()
        self._length = int(self._buffer.size)

    # -- reads ---------------------------------------------------------

    def get(self, index: int) -> float:
        """One value as a Python float (negative indices supported)."""
        if index < 0:
            index += self._length
        if not 0 <= index < self._length:
            raise IndexError(f"column index {index} out of range")
        return float(self._buffer[index])

    def view(self, start: int = 0, stop: Optional[int] = None) -> np.ndarray:
        """Zero-copy read-only view of ``[start, stop)``."""
        if stop is None or stop > self._length:
            stop = self._length
        out = self._buffer[start:stop]
        out.flags.writeable = False
        return out

    def array(self) -> np.ndarray:
        """Writable copy of the live prefix."""
        return np.array(self._buffer[: self._length])

    def tolist(self) -> list:
        """The live prefix as a list of Python floats."""
        return self._buffer[: self._length].tolist()

    def searchsorted(self, value: float, side: str = "left") -> int:
        """Bisect over the live prefix (timestamps are kept sorted)."""
        return int(np.searchsorted(self.view(), value, side=side))

    # -- equality / pickling ------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FloatColumn):
            return NotImplemented
        return bool(np.array_equal(self.view(), other.view()))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FloatColumn(len={self._length}, capacity={self.capacity})"

    def __getstate__(self) -> np.ndarray:
        # Compact: only the live prefix rides checkpoints and pools.
        return self.array()

    def __setstate__(self, state) -> None:
        self._buffer = np.asarray(state, dtype=np.float64).ravel()
        self._length = int(self._buffer.size)
