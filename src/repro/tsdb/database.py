"""A keyed collection of time series with tag queries and retention."""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Tuple

from repro.tsdb.series import TimeSeries

__all__ = ["TimeSeriesDatabase"]


class TimeSeriesDatabase:
    """In-memory store for named time series.

    Series are identified by name; tags enable the pipeline's routing
    queries ("all gCPU series of service X").  Writes auto-create series.
    """

    def __init__(self) -> None:
        self._series: Dict[str, TimeSeries] = {}

    def __len__(self) -> int:
        return len(self._series)

    def __contains__(self, name: str) -> bool:
        return name in self._series

    def __iter__(self) -> Iterator[TimeSeries]:
        return iter(self._series.values())

    def create(self, name: str, tags: Optional[Mapping[str, str]] = None) -> TimeSeries:
        """Create (or return the existing) series ``name``.

        Tags supplied for an existing series are merged in.
        """
        series = self._series.get(name)
        if series is None:
            series = TimeSeries(name=name, tags=dict(tags or {}))
            self._series[name] = series
        elif tags:
            series.tags.update(tags)
        return series

    def get(self, name: str) -> Optional[TimeSeries]:
        """The series named ``name``, or ``None``."""
        return self._series.get(name)

    def write(
        self,
        name: str,
        timestamp: float,
        value: float,
        tags: Optional[Mapping[str, str]] = None,
    ) -> None:
        """Append one point, creating the series if needed."""
        self.create(name, tags).append(timestamp, value)

    def write_batch(
        self,
        points: Iterable[Tuple[str, float, float, Optional[Mapping[str, str]]]],
    ) -> int:
        """Write many ``(name, timestamp, value, tags)`` points at once.

        The streaming-service flush path: points are grouped by series
        so each series pays one lookup (and one tag merge) per batch
        rather than per point, then bulk-appended via
        :meth:`TimeSeries.ingest_many`.

        Returns:
            Number of points written.
        """
        grouped: Dict[str, List[Tuple[float, float]]] = {}
        tags_for: Dict[str, Optional[Mapping[str, str]]] = {}
        for name, timestamp, value, tags in points:
            bucket = grouped.get(name)
            if bucket is None:
                bucket = grouped[name] = []
                tags_for[name] = tags
            bucket.append((timestamp, value))
        written = 0
        for name, bucket in grouped.items():
            written += self.create(name, tags_for[name]).ingest_many(bucket)
        return written

    def query(self, **tag_filters: str) -> List[TimeSeries]:
        """Series whose tags match all ``tag_filters`` exactly.

        Example: ``db.query(service="frontfaas", metric="gcpu")``.
        """
        return [
            series
            for series in self._series.values()
            if all(series.tags.get(key) == value for key, value in tag_filters.items())
        ]

    def names(self) -> List[str]:
        """All series names, sorted."""
        return sorted(self._series)

    def apply_retention(self, cutoff: float) -> int:
        """Drop points older than ``cutoff`` fleet-wide; returns total dropped."""
        return sum(series.drop_before(cutoff) for series in self._series.values())
