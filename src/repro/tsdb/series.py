"""A single append-only time series."""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Tuple

import numpy as np

__all__ = ["TimeSeries"]


@dataclass
class TimeSeries:
    """An append-mostly series of ``(timestamp, value)`` points.

    Timestamps are floats (seconds); appends must be non-decreasing in
    time, matching how monitoring pipelines ingest data.  Out-of-order
    inserts go through :meth:`insert`, which keeps the arrays sorted.

    Attributes:
        name: Fully qualified metric name, e.g.
            ``"frontfaas.render_feed.gcpu"``.
        tags: Free-form key/value metadata (service, metric type,
            subroutine, endpoint ...), used by the pipeline to route
            series to detectors.
    """

    name: str
    tags: Dict[str, str] = field(default_factory=dict)
    _timestamps: List[float] = field(default_factory=list, repr=False)
    _values: List[float] = field(default_factory=list, repr=False)

    def __len__(self) -> int:
        return len(self._timestamps)

    def __iter__(self) -> Iterator[Tuple[float, float]]:
        return iter(zip(self._timestamps, self._values))

    def append(self, timestamp: float, value: float) -> None:
        """Append a point; ``timestamp`` must be >= the last timestamp.

        Raises:
            ValueError: On an out-of-order timestamp (use :meth:`insert`).
        """
        if self._timestamps and timestamp < self._timestamps[-1]:
            raise ValueError(
                f"out-of-order append at {timestamp} < {self._timestamps[-1]}; "
                "use insert() for backfill"
            )
        self._timestamps.append(float(timestamp))
        self._values.append(float(value))

    def extend(self, points: Iterable[Tuple[float, float]]) -> None:
        """Append many ``(timestamp, value)`` points in order."""
        for timestamp, value in points:
            self.append(timestamp, value)

    def insert(self, timestamp: float, value: float) -> None:
        """Insert a point keeping timestamp order (O(n) backfill path)."""
        pos = bisect.bisect_right(self._timestamps, timestamp)
        self._timestamps.insert(pos, float(timestamp))
        self._values.insert(pos, float(value))

    def ingest_many(self, points: Iterable[Tuple[float, float]]) -> int:
        """Bulk-append ``points``, tolerating stragglers.

        The streaming ingest path: in-order points take the append fast
        path; out-of-order ones (late arrivals from concurrent
        producers) fall back to a sorted insert instead of raising.

        Returns:
            Number of points written.
        """
        timestamps, values = self._timestamps, self._values
        last = timestamps[-1] if timestamps else float("-inf")
        written = 0
        for timestamp, value in points:
            timestamp = float(timestamp)
            if timestamp >= last:
                timestamps.append(timestamp)
                values.append(float(value))
                last = timestamp
            else:
                self.insert(timestamp, value)
            written += 1
        return written

    def latest(self) -> Optional[Tuple[float, float]]:
        """The most recent ``(timestamp, value)`` point, if any."""
        if not self._timestamps:
            return None
        return self._timestamps[-1], self._values[-1]

    def timestamp_at(self, index: int) -> float:
        """The timestamp at position ``index`` (supports negatives).

        Raises:
            IndexError: When the position does not exist.
        """
        return self._timestamps[index]

    def tail_values(self, start: int) -> np.ndarray:
        """Values from position ``start`` to the end, as a numpy array.

        The incremental-scan fast path: with ``start`` set to the length
        at the previous scan, this returns exactly the points appended
        since — O(n) in the number of *new* points, not series length.
        """
        return np.asarray(self._values[start:], dtype=float)

    @property
    def timestamps(self) -> np.ndarray:
        """Timestamps as a numpy array (copy)."""
        return np.asarray(self._timestamps, dtype=float)

    @property
    def values(self) -> np.ndarray:
        """Values as a numpy array (copy)."""
        return np.asarray(self._values, dtype=float)

    @property
    def start(self) -> Optional[float]:
        return self._timestamps[0] if self._timestamps else None

    @property
    def end(self) -> Optional[float]:
        return self._timestamps[-1] if self._timestamps else None

    def between(self, start: float, end: float) -> "TimeSeries":
        """Sub-series with timestamps in ``[start, end)``."""
        lo = bisect.bisect_left(self._timestamps, start)
        hi = bisect.bisect_left(self._timestamps, end)
        sub = TimeSeries(name=self.name, tags=dict(self.tags))
        sub._timestamps = self._timestamps[lo:hi]
        sub._values = self._values[lo:hi]
        return sub

    def values_between(self, start: float, end: float) -> np.ndarray:
        """Values whose timestamps fall in ``[start, end)``."""
        lo = bisect.bisect_left(self._timestamps, start)
        hi = bisect.bisect_left(self._timestamps, end)
        return np.asarray(self._values[lo:hi], dtype=float)

    def as_mapping(self) -> Mapping[float, float]:
        """The series as a ``{timestamp: value}`` dict (for alignment)."""
        return dict(zip(self._timestamps, self._values))

    def drop_before(self, cutoff: float) -> int:
        """Retention: drop points older than ``cutoff``; returns count dropped."""
        lo = bisect.bisect_left(self._timestamps, cutoff)
        dropped = lo
        if lo:
            del self._timestamps[:lo]
            del self._values[:lo]
        return dropped
