"""A single append-only time series."""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Tuple

import numpy as np

__all__ = ["TimeSeries"]


@dataclass
class TimeSeries:
    """An append-mostly series of ``(timestamp, value)`` points.

    Timestamps are floats (seconds); appends must be non-decreasing in
    time, matching how monitoring pipelines ingest data.  Out-of-order
    inserts go through :meth:`insert`, which keeps the arrays sorted.

    Repeated timestamps resolve by ``duplicate_policy``:
    ``"last_write_wins"`` (default) overwrites the existing value in
    place — a point is an observation, and the latest observation for
    an instant supersedes earlier ones; ``"reject"`` raises
    ``ValueError`` instead, for callers that treat a repeat as data
    corruption.  Either way the series never holds two points with the
    same timestamp, so window sizes equal covered time.

    Attributes:
        name: Fully qualified metric name, e.g.
            ``"frontfaas.render_feed.gcpu"``.
        tags: Free-form key/value metadata (service, metric type,
            subroutine, endpoint ...), used by the pipeline to route
            series to detectors.
        duplicate_policy: ``"last_write_wins"`` or ``"reject"``.
    """

    name: str
    tags: Dict[str, str] = field(default_factory=dict)
    duplicate_policy: str = "last_write_wins"
    _timestamps: List[float] = field(default_factory=list, repr=False)
    _values: List[float] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if self.duplicate_policy not in ("last_write_wins", "reject"):
            raise ValueError(f"unknown duplicate_policy {self.duplicate_policy!r}")

    def __len__(self) -> int:
        return len(self._timestamps)

    def __iter__(self) -> Iterator[Tuple[float, float]]:
        return iter(zip(self._timestamps, self._values))

    def append(self, timestamp: float, value: float) -> None:
        """Append a point; ``timestamp`` must be >= the last timestamp.

        A timestamp equal to the last resolves by ``duplicate_policy``.

        Raises:
            ValueError: On an out-of-order timestamp (use :meth:`insert`),
                or on a repeated one under the ``reject`` policy.
        """
        if self._timestamps:
            last = self._timestamps[-1]
            if timestamp < last:
                raise ValueError(
                    f"out-of-order append at {timestamp} < {last}; "
                    "use insert() for backfill"
                )
            if timestamp == last:
                self._resolve_duplicate(timestamp)
                self._values[-1] = float(value)
                return
        self._timestamps.append(float(timestamp))
        self._values.append(float(value))

    def extend(self, points: Iterable[Tuple[float, float]]) -> None:
        """Append many ``(timestamp, value)`` points in order."""
        for timestamp, value in points:
            self.append(timestamp, value)

    def insert(self, timestamp: float, value: float) -> None:
        """Insert one point keeping timestamp order.

        Bisect finds the position in O(log n); an existing point at the
        same timestamp resolves by ``duplicate_policy`` (last-write-wins
        overwrites in place, no shifting).  For *batches* of stragglers
        prefer :meth:`ingest_many`, which merges them in one O(n + m)
        pass instead of m O(n) list inserts.
        """
        pos = bisect.bisect_right(self._timestamps, timestamp)
        if pos and self._timestamps[pos - 1] == timestamp:
            self._resolve_duplicate(timestamp)
            self._values[pos - 1] = float(value)
            return
        self._timestamps.insert(pos, float(timestamp))
        self._values.insert(pos, float(value))

    def ingest_many(self, points: Iterable[Tuple[float, float]]) -> int:
        """Bulk-append ``points``, tolerating stragglers.

        The streaming ingest path: in-order points take the append fast
        path; out-of-order ones (late arrivals from concurrent producers
        or a reordering buffer) are collected and merged into place in a
        single sorted O(n + m) pass at the end, instead of paying an
        O(n) list insert per straggler.

        Returns:
            Number of points written (last-write-wins overwrites count —
            every accepted point is accounted for).
        """
        timestamps, values = self._timestamps, self._values
        last = timestamps[-1] if timestamps else float("-inf")
        written = 0
        stragglers: List[Tuple[float, float]] = []
        for timestamp, value in points:
            timestamp = float(timestamp)
            if timestamp > last:
                timestamps.append(timestamp)
                values.append(float(value))
                last = timestamp
            elif timestamp == last:
                self._resolve_duplicate(timestamp)
                values[-1] = float(value)
            else:
                stragglers.append((timestamp, float(value)))
            written += 1
        if stragglers:
            self._merge_backfill(stragglers)
        return written

    def _resolve_duplicate(self, timestamp: float) -> None:
        """Raise under the ``reject`` policy; no-op under last-write-wins."""
        if self.duplicate_policy == "reject":
            raise ValueError(
                f"duplicate timestamp {timestamp} on {self.name!r} "
                "(duplicate_policy='reject')"
            )

    def _merge_backfill(self, points: List[Tuple[float, float]]) -> None:
        """Merge out-of-order ``points`` into the series in O(n + m).

        ``points`` may be unsorted and may repeat timestamps present in
        the series or among themselves; repeats resolve by
        ``duplicate_policy`` (for last-write-wins, arrival order within
        ``points`` is preserved by the stable sort, so the latest
        arrival wins).
        """
        points.sort(key=lambda point: point[0])
        old_ts, old_vals = self._timestamps, self._values
        merged_ts: List[float] = []
        merged_vals: List[float] = []

        def emit(timestamp: float, value: float) -> None:
            if merged_ts and merged_ts[-1] == timestamp:
                self._resolve_duplicate(timestamp)
                merged_vals[-1] = value
                return
            merged_ts.append(timestamp)
            merged_vals.append(value)

        i = j = 0
        while i < len(old_ts) and j < len(points):
            if points[j][0] < old_ts[i]:
                emit(*points[j])
                j += 1
            else:
                emit(old_ts[i], old_vals[i])
                i += 1
        while i < len(old_ts):
            emit(old_ts[i], old_vals[i])
            i += 1
        while j < len(points):
            emit(*points[j])
            j += 1
        self._timestamps = merged_ts
        self._values = merged_vals

    def latest(self) -> Optional[Tuple[float, float]]:
        """The most recent ``(timestamp, value)`` point, if any."""
        if not self._timestamps:
            return None
        return self._timestamps[-1], self._values[-1]

    def timestamp_at(self, index: int) -> float:
        """The timestamp at position ``index`` (supports negatives).

        Raises:
            IndexError: When the position does not exist.
        """
        return self._timestamps[index]

    def tail_values(self, start: int) -> np.ndarray:
        """Values from position ``start`` to the end, as a numpy array.

        The incremental-scan fast path: with ``start`` set to the length
        at the previous scan, this returns exactly the points appended
        since — O(n) in the number of *new* points, not series length.
        """
        return np.asarray(self._values[start:], dtype=float)

    @property
    def timestamps(self) -> np.ndarray:
        """Timestamps as a numpy array (copy)."""
        return np.asarray(self._timestamps, dtype=float)

    @property
    def values(self) -> np.ndarray:
        """Values as a numpy array (copy)."""
        return np.asarray(self._values, dtype=float)

    @property
    def start(self) -> Optional[float]:
        return self._timestamps[0] if self._timestamps else None

    @property
    def end(self) -> Optional[float]:
        return self._timestamps[-1] if self._timestamps else None

    def between(self, start: float, end: float) -> "TimeSeries":
        """Sub-series with timestamps in ``[start, end)``."""
        lo = bisect.bisect_left(self._timestamps, start)
        hi = bisect.bisect_left(self._timestamps, end)
        sub = TimeSeries(
            name=self.name, tags=dict(self.tags), duplicate_policy=self.duplicate_policy
        )
        sub._timestamps = self._timestamps[lo:hi]
        sub._values = self._values[lo:hi]
        return sub

    def values_between(self, start: float, end: float) -> np.ndarray:
        """Values whose timestamps fall in ``[start, end)``."""
        lo = bisect.bisect_left(self._timestamps, start)
        hi = bisect.bisect_left(self._timestamps, end)
        return np.asarray(self._values[lo:hi], dtype=float)

    def timestamps_between(self, start: float, end: float) -> np.ndarray:
        """Timestamps falling in ``[start, end)`` (for coverage checks)."""
        lo = bisect.bisect_left(self._timestamps, start)
        hi = bisect.bisect_left(self._timestamps, end)
        return np.asarray(self._timestamps[lo:hi], dtype=float)

    def as_mapping(self) -> Mapping[float, float]:
        """The series as a ``{timestamp: value}`` dict (for alignment)."""
        return dict(zip(self._timestamps, self._values))

    def drop_before(self, cutoff: float) -> int:
        """Retention: drop points older than ``cutoff``; returns count dropped."""
        lo = bisect.bisect_left(self._timestamps, cutoff)
        dropped = lo
        if lo:
            del self._timestamps[:lo]
            del self._values[:lo]
        return dropped
