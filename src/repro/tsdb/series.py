"""A single append-only time series, stored columnar.

Points live in two parallel :class:`~repro.tsdb.columnar.FloatColumn`
buffers (contiguous ``float64`` with amortized-doubling capacity), so
the scan hot path — tail values since the last scan, window slices,
coverage timestamps — reads zero-copy array views instead of converting
Python lists point by point.  See :mod:`repro.tsdb.columnar` for the
view-invalidation rules the buffers guarantee.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Tuple

import numpy as np

from repro.tsdb.columnar import FloatColumn

__all__ = ["TimeSeries"]


@dataclass(eq=False)
class TimeSeries:
    """An append-mostly series of ``(timestamp, value)`` points.

    Timestamps are floats (seconds); appends must be non-decreasing in
    time, matching how monitoring pipelines ingest data.  Out-of-order
    inserts go through :meth:`insert`, which keeps the arrays sorted.

    Repeated timestamps resolve by ``duplicate_policy``:
    ``"last_write_wins"`` (default) overwrites the existing value in
    place — a point is an observation, and the latest observation for
    an instant supersedes earlier ones; ``"reject"`` raises
    ``ValueError`` instead, for callers that treat a repeat as data
    corruption.  Either way the series never holds two points with the
    same timestamp, so window sizes equal covered time.

    Attributes:
        name: Fully qualified metric name, e.g.
            ``"frontfaas.render_feed.gcpu"``.
        tags: Free-form key/value metadata (service, metric type,
            subroutine, endpoint ...), used by the pipeline to route
            series to detectors.
        duplicate_policy: ``"last_write_wins"`` or ``"reject"``.
    """

    name: str
    tags: Dict[str, str] = field(default_factory=dict)
    duplicate_policy: str = "last_write_wins"
    _timestamps: FloatColumn = field(default_factory=FloatColumn, repr=False)
    _values: FloatColumn = field(default_factory=FloatColumn, repr=False)

    def __post_init__(self) -> None:
        if self.duplicate_policy not in ("last_write_wins", "reject"):
            raise ValueError(f"unknown duplicate_policy {self.duplicate_policy!r}")
        # Tolerate list/array-valued fields (old pickles, direct tests).
        if not isinstance(self._timestamps, FloatColumn):
            self._timestamps = FloatColumn(self._timestamps)
        if not isinstance(self._values, FloatColumn):
            self._values = FloatColumn(self._values)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TimeSeries):
            return NotImplemented
        return (
            self.name == other.name
            and self.tags == other.tags
            and self.duplicate_policy == other.duplicate_policy
            and self._timestamps == other._timestamps
            and self._values == other._values
        )

    def __len__(self) -> int:
        return len(self._timestamps)

    def __iter__(self) -> Iterator[Tuple[float, float]]:
        return iter(zip(self._timestamps.tolist(), self._values.tolist()))

    def __setstate__(self, state: Dict[str, object]) -> None:
        # Checkpoints written by the list-backed storage carry plain
        # lists in _timestamps/_values; normalize them into columns.
        self.__dict__.update(state)
        if not isinstance(self._timestamps, FloatColumn):
            self._timestamps = FloatColumn(self._timestamps)
        if not isinstance(self._values, FloatColumn):
            self._values = FloatColumn(self._values)

    def append(self, timestamp: float, value: float) -> None:
        """Append a point; ``timestamp`` must be >= the last timestamp.

        A timestamp equal to the last resolves by ``duplicate_policy``.

        Raises:
            ValueError: On an out-of-order timestamp (use :meth:`insert`),
                or on a repeated one under the ``reject`` policy.
        """
        n = len(self._timestamps)
        if n:
            last = self._timestamps.get(-1)
            if timestamp < last:
                raise ValueError(
                    f"out-of-order append at {timestamp} < {last}; "
                    "use insert() for backfill"
                )
            if timestamp == last:
                self._resolve_duplicate(timestamp)
                self._values.set(-1, float(value))
                return
        self._timestamps.append(float(timestamp))
        self._values.append(float(value))

    def extend(self, points: Iterable[Tuple[float, float]]) -> None:
        """Append many ``(timestamp, value)`` points in order."""
        for timestamp, value in points:
            self.append(timestamp, value)

    def insert(self, timestamp: float, value: float) -> None:
        """Insert one point keeping timestamp order.

        Bisect finds the position in O(log n); an existing point at the
        same timestamp resolves by ``duplicate_policy`` (last-write-wins
        overwrites in place, no shifting).  For *batches* of stragglers
        prefer :meth:`ingest_many`, which merges them in one O(n + m)
        pass instead of m O(n) shifted inserts.
        """
        pos = self._timestamps.searchsorted(timestamp, side="right")
        if pos and self._timestamps.get(pos - 1) == timestamp:
            self._resolve_duplicate(timestamp)
            self._values.set(pos - 1, float(value))
            return
        self._timestamps.insert(pos, float(timestamp))
        self._values.insert(pos, float(value))

    def ingest_many(self, points: Iterable[Tuple[float, float]]) -> int:
        """Bulk-append ``points``, tolerating stragglers.

        The streaming ingest path.  A strictly-in-order batch — the
        overwhelmingly common case once the admission layer's reordering
        buffer has done its job — lands as one vectorized bulk append
        (two memcpys).  Anything else (duplicates, late arrivals from
        concurrent producers) falls back to the per-point path: in-order
        points append, out-of-order ones are collected and merged into
        place in a single sorted O(n + m) pass at the end.

        Returns:
            Number of points written (last-write-wins overwrites count —
            every accepted point is accounted for).
        """
        batch = points if isinstance(points, list) else list(points)
        m = len(batch)
        if m == 0:
            return 0
        arr = np.array(batch, dtype=np.float64)
        ts = np.ascontiguousarray(arr[:, 0])
        vals = np.ascontiguousarray(arr[:, 1])
        n = len(self._timestamps)
        last = self._timestamps.get(-1) if n else float("-inf")
        if ts[0] > last and (m == 1 or bool(np.all(ts[1:] > ts[:-1]))):
            self._timestamps.extend(ts)
            self._values.extend(vals)
            return m
        # Dirty batch: per-point semantics (duplicate resolution order,
        # partial state on reject) must match the scalar path exactly.
        written = 0
        stragglers: List[Tuple[float, float]] = []
        for k in range(m):
            timestamp = float(ts[k])
            if timestamp > last:
                self._timestamps.append(timestamp)
                self._values.append(float(vals[k]))
                last = timestamp
            elif timestamp == last:
                self._resolve_duplicate(timestamp)
                self._values.set(-1, float(vals[k]))
            else:
                stragglers.append((timestamp, float(vals[k])))
            written += 1
        if stragglers:
            self._merge_backfill(stragglers)
        return written

    def _resolve_duplicate(self, timestamp: float) -> None:
        """Raise under the ``reject`` policy; no-op under last-write-wins."""
        if self.duplicate_policy == "reject":
            raise ValueError(
                f"duplicate timestamp {timestamp} on {self.name!r} "
                "(duplicate_policy='reject')"
            )

    def _merge_backfill(self, points: List[Tuple[float, float]]) -> None:
        """Merge out-of-order ``points`` into the series in O(n + m).

        ``points`` may be unsorted and may repeat timestamps present in
        the series or among themselves; repeats resolve by
        ``duplicate_policy``.  The merge is a vectorized stable sort
        over (existing + incoming) with keep-last duplicate collapse:
        existing points sort before incoming ones at equal timestamps
        and incoming points keep arrival order, so under last-write-wins
        the latest arrival survives — exactly the scalar merge's
        resolution order.  Nothing is published until the merge
        completes, so a ``reject`` raise leaves the series untouched.
        """
        incoming = np.array(points, dtype=np.float64)
        in_ts = incoming[:, 0]
        in_vals = incoming[:, 1]
        arrival = np.argsort(in_ts, kind="stable")
        all_ts = np.concatenate([self._timestamps.view(), in_ts[arrival]])
        all_vals = np.concatenate([self._values.view(), in_vals[arrival]])
        order = np.argsort(all_ts, kind="stable")
        sorted_ts = all_ts[order]
        sorted_vals = all_vals[order]
        dup_next = sorted_ts[1:] == sorted_ts[:-1]
        if dup_next.any():
            if self.duplicate_policy == "reject":
                first = int(np.argmax(dup_next))
                self._resolve_duplicate(float(sorted_ts[first]))
            keep = np.concatenate([~dup_next, [True]])
            sorted_ts = sorted_ts[keep]
            sorted_vals = sorted_vals[keep]
        self._timestamps.replace(sorted_ts)
        self._values.replace(sorted_vals)

    def latest(self) -> Optional[Tuple[float, float]]:
        """The most recent ``(timestamp, value)`` point, if any."""
        if not len(self._timestamps):
            return None
        return self._timestamps.get(-1), self._values.get(-1)

    def timestamp_at(self, index: int) -> float:
        """The timestamp at position ``index`` (supports negatives).

        Raises:
            IndexError: When the position does not exist.
        """
        return self._timestamps.get(index)

    def tail_values(self, start: int) -> np.ndarray:
        """Values from position ``start`` to the end (zero-copy view).

        The incremental-scan fast path: with ``start`` set to the length
        at the previous scan, this returns exactly the points appended
        since — O(1), no per-point conversion.  The view is read-only
        and must be consumed before the series is mutated again.
        """
        return self._values.view(start)

    @property
    def timestamps(self) -> np.ndarray:
        """Timestamps as a numpy array (copy)."""
        return self._timestamps.array()

    @property
    def values(self) -> np.ndarray:
        """Values as a numpy array (copy)."""
        return self._values.array()

    @property
    def start(self) -> Optional[float]:
        return self._timestamps.get(0) if len(self._timestamps) else None

    @property
    def end(self) -> Optional[float]:
        return self._timestamps.get(-1) if len(self._timestamps) else None

    def between(self, start: float, end: float) -> "TimeSeries":
        """Sub-series with timestamps in ``[start, end)`` (own storage)."""
        lo = self._timestamps.searchsorted(start, side="left")
        hi = self._timestamps.searchsorted(end, side="left")
        sub = TimeSeries(
            name=self.name, tags=dict(self.tags), duplicate_policy=self.duplicate_policy
        )
        sub._timestamps = FloatColumn(self._timestamps.view(lo, hi))
        sub._values = FloatColumn(self._values.view(lo, hi))
        return sub

    def values_between(self, start: float, end: float) -> np.ndarray:
        """Values whose timestamps fall in ``[start, end)``.

        Zero-copy read-only view; consume immediately (see
        :mod:`repro.tsdb.columnar` for staleness rules) or copy.
        """
        lo = self._timestamps.searchsorted(start, side="left")
        hi = self._timestamps.searchsorted(end, side="left")
        return self._values.view(lo, hi)

    def timestamps_between(self, start: float, end: float) -> np.ndarray:
        """Timestamps falling in ``[start, end)`` (zero-copy view)."""
        lo = self._timestamps.searchsorted(start, side="left")
        hi = self._timestamps.searchsorted(end, side="left")
        return self._timestamps.view(lo, hi)

    def as_mapping(self) -> Mapping[float, float]:
        """The series as a ``{timestamp: value}`` dict (for alignment)."""
        return dict(zip(self._timestamps.tolist(), self._values.tolist()))

    def drop_before(self, cutoff: float) -> int:
        """Retention: drop points older than ``cutoff``; returns count dropped.

        Compaction allocates fresh buffers (see
        :class:`~repro.tsdb.columnar.FloatColumn.replace`), so views
        handed out before retention never observe shifted data.
        """
        lo = self._timestamps.searchsorted(cutoff, side="left")
        if lo:
            self._timestamps.replace(self._timestamps.view(lo))
            self._values.replace(self._values.view(lo))
        return lo
