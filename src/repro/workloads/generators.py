"""Labelled synthetic window corpora.

The paper's quantitative evaluation needs labelled data: series known to
contain a true regression, and series known to contain only noise,
transients, or seasonality.  These generators produce such corpora with
magnitudes matching Table 4's distribution (smallest 0.005%, P50 ~0.05%,
largest a few percent, log-uniform-ish spread).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "WindowKind",
    "LabeledWindow",
    "generate_labeled_window",
    "generate_corpus",
    "magnitude_distribution",
]


class WindowKind(str, enum.Enum):
    """What a labelled window actually contains."""

    CLEAN = "clean"                # noise only
    REGRESSION = "regression"      # a persistent step regression
    TRANSIENT = "transient"        # a dip/spike that recovers
    SEASONAL = "seasonal"          # periodic pattern, no regression
    GRADUAL = "gradual"            # slow persistent ramp (long-term)
    WOBBLE = "wobble"              # benign autocorrelated level noise
    DRIFT = "drift"                # benign slow drift that reverts


@dataclass(frozen=True)
class LabeledWindow:
    """One labelled detection window.

    Attributes:
        values: Full series (historic + analysis [+ extended]).
        historic_points: Points belonging to the historic window.
        analysis_points: Points belonging to the analysis window.
        extended_points: Points belonging to the extended window.
        kind: Ground-truth content.
        magnitude: Injected regression magnitude (0 for non-regressions).
        base: Baseline mean.
        change_index: Index into ``values`` where the injected change
            starts (the step offset for REGRESSION, the ramp start for
            GRADUAL); -1 when the window contains no true regression.
            Detection-latency scoring subtracts this from a detector's
            claimed change index.
    """

    values: np.ndarray
    historic_points: int
    analysis_points: int
    extended_points: int
    kind: WindowKind
    magnitude: float
    base: float
    change_index: int = -1

    @property
    def is_true_regression(self) -> bool:
        return self.kind in (WindowKind.REGRESSION, WindowKind.GRADUAL)

    @property
    def historic(self) -> np.ndarray:
        return self.values[: self.historic_points]

    @property
    def analysis(self) -> np.ndarray:
        return self.values[self.historic_points : self.historic_points + self.analysis_points]

    @property
    def extended(self) -> np.ndarray:
        return self.values[self.historic_points + self.analysis_points :]


def sample_regression_magnitude(rng: np.random.Generator, base: float) -> float:
    """A paper-like regression magnitude relative to ``base``.

    Log-uniform between 0.5% and 400% of the baseline — producing an
    absolute-magnitude distribution whose quantiles resemble Table 4 when
    bases are gCPU-scale.
    """
    relative = float(np.exp(rng.uniform(np.log(0.005), np.log(4.0))))
    return base * relative


def generate_labeled_window(
    kind: WindowKind,
    rng: np.random.Generator,
    historic_points: int = 400,
    analysis_points: int = 150,
    extended_points: int = 50,
    base: float = 0.001,
    noise_fraction: float = 0.02,
    magnitude: Optional[float] = None,
) -> LabeledWindow:
    """Generate one labelled window of the requested kind.

    Args:
        kind: Content to inject.
        rng: Random generator.
        historic_points: Baseline length.
        analysis_points: Analysis-window length.
        extended_points: Extended-window length.
        base: Baseline mean (gCPU-scale by default).
        noise_fraction: Noise std as a fraction of ``base``.
        magnitude: Regression magnitude override; sampled paper-like
            when omitted.

    Returns:
        A :class:`LabeledWindow`.
    """
    n = historic_points + analysis_points + extended_points
    noise = base * noise_fraction
    values = rng.normal(base, noise, n)

    injected = 0.0
    change_index = -1
    if kind is WindowKind.REGRESSION:
        injected = magnitude if magnitude is not None else sample_regression_magnitude(rng, base)
        # Change point lands inside the analysis window (its first 70%)
        # so the post-change segment persists through the extended window.
        offset = historic_points + int(rng.integers(5, max(6, int(0.7 * analysis_points))))
        values[offset:] += injected
        change_index = offset
    elif kind is WindowKind.TRANSIENT:
        # "From seconds to hours" (§1): lengths range from a blip to
        # three quarters of the analysis window, always recovering
        # within the extended window.
        depth = base * float(rng.uniform(0.3, 1.5))
        start = historic_points + int(rng.integers(5, max(6, int(0.4 * analysis_points))))
        max_length = historic_points + analysis_points + extended_points // 2 - start
        length = int(rng.integers(5, max(6, min(int(0.75 * analysis_points), max_length))))
        sign = 1.0 if rng.random() < 0.5 else -1.0
        values[start : start + length] += sign * depth
    elif kind is WindowKind.SEASONAL:
        period = int(rng.integers(20, 60))
        amplitude = base * float(rng.uniform(0.05, 0.3))
        t = np.arange(n)
        values += amplitude * np.sin(2 * np.pi * t / period + rng.uniform(0, 2 * np.pi))
    elif kind is WindowKind.GRADUAL:
        injected = magnitude if magnitude is not None else sample_regression_magnitude(rng, base)
        ramp_start = historic_points - int(0.2 * historic_points)
        ramp = np.zeros(n)
        ramp[ramp_start:] = np.linspace(0.0, injected, n - ramp_start)
        values += ramp
        change_index = ramp_start
    elif kind is WindowKind.WOBBLE:
        # AR(1) level noise: the window mean wanders by a few noise sigmas
        # without any code change behind it — common in production.
        phi = float(rng.uniform(0.97, 0.995))
        innovation = base * noise_fraction * float(rng.uniform(0.4, 1.0))
        level = 0.0
        wander = np.empty(n)
        for i in range(n):
            level = phi * level + rng.normal(0.0, innovation)
            wander[i] = level
        values += wander
    elif kind is WindowKind.DRIFT:
        # A slow benign excursion that returns to baseline by window end.
        amplitude = base * noise_fraction * float(rng.uniform(1.0, 3.0))
        values += amplitude * np.sin(np.pi * np.arange(n) / n) ** 2

    return LabeledWindow(
        values=np.maximum(values, 0.0),
        historic_points=historic_points,
        analysis_points=analysis_points,
        extended_points=extended_points,
        kind=kind,
        magnitude=injected,
        base=base,
        change_index=change_index,
    )


def generate_corpus(
    n_regressions: int,
    n_clean: int,
    n_transients: int,
    n_seasonal: int = 0,
    n_gradual: int = 0,
    n_wobble: int = 0,
    n_drift: int = 0,
    seed: int = 0,
    **window_kwargs,
) -> List[LabeledWindow]:
    """A shuffled corpus with the requested composition."""
    rng = np.random.default_rng(seed)
    corpus: List[LabeledWindow] = []
    composition = (
        (WindowKind.REGRESSION, n_regressions),
        (WindowKind.CLEAN, n_clean),
        (WindowKind.TRANSIENT, n_transients),
        (WindowKind.SEASONAL, n_seasonal),
        (WindowKind.GRADUAL, n_gradual),
        (WindowKind.WOBBLE, n_wobble),
        (WindowKind.DRIFT, n_drift),
    )
    for kind, count in composition:
        for _ in range(count):
            corpus.append(generate_labeled_window(kind, rng, **window_kwargs))
    rng.shuffle(corpus)
    return corpus


def magnitude_distribution(windows: Sequence[LabeledWindow]) -> np.ndarray:
    """Injected magnitudes of the true regressions in a corpus."""
    return np.array([w.magnitude for w in windows if w.is_true_regression])
