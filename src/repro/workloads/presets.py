"""Laptop-scale versions of the Table 1 production workloads.

Each preset builds a :class:`~repro.fleet.service.ServiceSpec` (call
graph, fleet size, sampling rates) plus its matching
:class:`~repro.config.DetectionConfig`, scaled so a simulation run
finishes in seconds while preserving the workload's character: FrontFaaS
is huge with thousands of subroutines and massive effective sample
counts; Invoicer is 16 servers with aggressive per-server sampling; CT
workloads are throughput-only with no stack traces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.config import DetectionConfig, table1_config
from repro.fleet.service import ServiceSpec
from repro.fleet.subroutine import CallGraph, build_random_call_graph

__all__ = ["WorkloadPreset", "build_preset", "preset_names"]


@dataclass
class WorkloadPreset:
    """A runnable workload: service spec + detection config.

    Attributes:
        key: Preset key (matches the Table 1 config key).
        service: Fleet-simulator service specification.
        config: Detection configuration.
        description: What this workload models.
    """

    key: str
    service: ServiceSpec
    config: DetectionConfig
    description: str


def _graph(n_subroutines: int, seed: int, **kwargs) -> CallGraph:
    return build_random_call_graph(n_subroutines, np.random.default_rng(seed), **kwargs)


def _presets() -> Dict[str, dict]:
    return {
        "frontfaas_small": dict(
            n_subroutines=400,
            n_servers=500,
            effective_samples=5_000_000,
            samples_per_interval=2_000,
            language="PHP",
            description=(
                "Meta's PHP serverless platform: >500k servers in the paper, "
                "tiny 0.005% detection threshold over long windows."
            ),
        ),
        "pythonfaas_small": dict(
            n_subroutines=250,
            n_servers=300,
            effective_samples=2_000_000,
            samples_per_interval=1_500,
            language="Python",
            description="Meta's Python serverless platform (PyPerf-sampled).",
        ),
        "tao_frontfaas": dict(
            n_subroutines=150,
            n_servers=200,
            effective_samples=1_000_000,
            samples_per_interval=1_000,
            language="C++",
            description="TAO graph database, FrontFaaS traffic slice.",
        ),
        "adserving_short": dict(
            n_subroutines=300,
            n_servers=400,
            effective_samples=2_000_000,
            samples_per_interval=1_500,
            language="C++",
            description="Ultra-large ads-serving services.",
        ),
        "invoicer_short": dict(
            n_subroutines=40,
            n_servers=16,
            effective_samples=80_000,
            samples_per_interval=800,
            language="C++",
            description=(
                "16-server billing service; eBPF samples ~1/server/second "
                "and long windows compensate for the tiny fleet."
            ),
        ),
        "ct_supply_short": dict(
            n_subroutines=30,
            n_servers=100,
            effective_samples=100_000,
            samples_per_interval=0,
            language="Diverse",
            description=(
                "Capacity Triage supply side: Kraken-measured per-server "
                "max throughput; no stack traces."
            ),
        ),
    }


def preset_names() -> List[str]:
    """Keys accepted by :func:`build_preset`."""
    return sorted(_presets())


def build_preset(key: str, seed: int = 0) -> WorkloadPreset:
    """Build a laptop-scale Table 1 workload.

    Args:
        key: One of :func:`preset_names`.
        seed: Call-graph generation seed.

    Raises:
        KeyError: Listing valid keys, when unknown.
    """
    presets = _presets()
    if key not in presets:
        raise KeyError(f"unknown preset {key!r}; valid: {sorted(presets)}")
    params = presets[key]
    graph = _graph(params["n_subroutines"], seed)
    service = ServiceSpec(
        name=key,
        call_graph=graph,
        n_servers=params["n_servers"],
        effective_samples=params["effective_samples"],
        samples_per_interval=params["samples_per_interval"],
        seasonality_amplitude=0.1,
    )
    return WorkloadPreset(
        key=key,
        service=service,
        config=table1_config(key),
        description=params["description"],
    )
