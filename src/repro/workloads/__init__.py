"""Synthetic workloads for evaluation.

- :mod:`repro.workloads.generators` — labelled window corpora (true
  regressions of paper-like magnitudes, transients, seasonal series,
  clean noise) used by the Figure 8 / §6.2 / Table 4 benchmarks.
- :mod:`repro.workloads.presets` — laptop-scale versions of the Table 1
  production workloads (FrontFaaS, PythonFaaS, TAO, AdServing, Invoicer,
  Capacity Triage) built on the fleet simulator.
"""

from repro.workloads.generators import (
    LabeledWindow,
    WindowKind,
    generate_corpus,
    generate_labeled_window,
    magnitude_distribution,
)
from repro.workloads.presets import WorkloadPreset, build_preset, preset_names

__all__ = [
    "LabeledWindow",
    "WindowKind",
    "WorkloadPreset",
    "build_preset",
    "generate_corpus",
    "generate_labeled_window",
    "magnitude_distribution",
    "preset_names",
]
