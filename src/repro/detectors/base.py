"""Detector units: named, versioned, with deterministic param-hash IDs.

A *detector* is the unit the registry trades in: a pure function from a
window of series values to a fired/quiet decision, carrying a stable
identity of the form ``{type}-v{version}-{hash8}`` where ``hash8`` is a
blake2b digest over the canonical (sorted-key JSON) parameter encoding —
the detectk-style scheme.  Two detectors with the same type, version,
and parameters therefore share an ID in every process regardless of
``PYTHONHASHSEED``, which is what lets shadow tallies merge across shard
workers, checkpoints, and restarts without a coordination step (the same
property :func:`repro.obs.logging.correlation_id` gives alert keys).

Detectors must be:

- **pure** — ``scan`` reads the window arrays and returns a decision; it
  never mutates them (the pipeline passes views of live buffers);
- **picklable** — shadow scorers ride shard state through worker
  round-trips and checkpoints;
- **deterministic** — same window, same decision, in any process (use
  seeded fresh RNGs, never global or wall-clock state).
"""

from __future__ import annotations

import abc
import hashlib
import json
from dataclasses import dataclass
from typing import Mapping, Optional

import numpy as np

__all__ = [
    "Detector",
    "DetectorDecision",
    "DetectorWindow",
    "make_detector_id",
    "param_hash",
]


def param_hash(params: Mapping[str, object], digest_size: int = 4) -> str:
    """Deterministic short hash of a parameter mapping.

    Canonical encoding: JSON with sorted keys and compact separators,
    hashed with blake2b.  Stable across processes and
    ``PYTHONHASHSEED`` values.

        >>> param_hash({"b": 2, "a": 1}) == param_hash({"a": 1, "b": 2})
        True
    """
    encoded = json.dumps(
        {key: params[key] for key in sorted(params)},
        sort_keys=True,
        separators=(",", ":"),
        default=str,
    )
    return hashlib.blake2b(encoded.encode("utf-8"), digest_size=digest_size).hexdigest()


def make_detector_id(type_name: str, version: int, params: Mapping[str, object]) -> str:
    """The canonical detector ID: ``{type}-v{version}-{hash8}``."""
    return f"{type_name}-v{version}-{param_hash(params)}"


@dataclass(frozen=True)
class DetectorWindow:
    """One scan's worth of series data, oriented so higher is worse.

    The pipeline hands every detector the same three segments it scans
    itself: the historic baseline, the analysis window, and the extended
    (persistence) window.  Arrays may be views of live buffers —
    detectors must treat them as read-only.
    """

    historic: np.ndarray
    analysis: np.ndarray
    extended: np.ndarray

    @property
    def full(self) -> np.ndarray:
        """Historic + analysis + extended, concatenated."""
        return np.concatenate([self.historic, self.analysis, self.extended])

    @property
    def analysis_start(self) -> int:
        """Global index of the first analysis point."""
        return int(self.historic.size)

    @classmethod
    def from_labeled(cls, window: "object") -> "DetectorWindow":
        """Adapt a :class:`repro.workloads.LabeledWindow` (bench corpora)."""
        return cls(
            historic=np.asarray(window.historic, dtype=float),
            analysis=np.asarray(window.analysis, dtype=float),
            extended=np.asarray(window.extended, dtype=float),
        )


@dataclass(frozen=True)
class DetectorDecision:
    """A detector's verdict on one window.

    Attributes:
        fired: Whether the detector claims a regression.
        index: Global index (into the concatenated window) of the
            claimed change point; ``None`` when quiet.  Global indexing
            makes detection-latency math uniform across detectors.
        magnitude: Estimated level shift (positive = worse).
        score: Detector-specific evidence strength (p-value, gain, ...).
        detail: Human-readable one-liner for funnels and scorecards.
    """

    fired: bool
    index: Optional[int] = None
    magnitude: float = 0.0
    score: float = 0.0
    detail: str = ""

    @classmethod
    def quiet(cls, detail: str = "") -> "DetectorDecision":
        return cls(fired=False, detail=detail)


class Detector(abc.ABC):
    """Base class for registrable detectors.

    Subclasses set ``type_name`` and ``version`` as class attributes and
    implement :meth:`params` (the identity-defining configuration) and
    :meth:`scan`.  Bump ``version`` whenever the algorithm changes in a
    way that makes old tallies incomparable — the ID changes with it.
    """

    type_name: str = "abstract"
    version: int = 1

    @abc.abstractmethod
    def params(self) -> Mapping[str, object]:
        """Identity-defining parameters (JSON-encodable values)."""

    @abc.abstractmethod
    def scan(self, window: DetectorWindow) -> DetectorDecision:
        """Score one window.  Must not mutate ``window`` arrays."""

    @property
    def detector_id(self) -> str:
        """Deterministic ``{type}-v{version}-{hash8}`` identity."""
        return make_detector_id(self.type_name, self.version, self.params())

    def describe(self) -> dict:
        """Registry/endpoint row: identity plus parameters."""
        return {
            "id": self.detector_id,
            "type": self.type_name,
            "version": self.version,
            "params": dict(self.params()),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug nicety
        return f"<{type(self).__name__} {self.detector_id}>"
