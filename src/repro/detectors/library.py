"""The built-in detector library.

Five registrable detectors spanning the approaches the literature
disagrees on (BIPeC's premise — arXiv 2408.12414 — is that no single
change-point analyzer wins everywhere):

- :class:`IncumbentDetector` — the paper's own stack (CUSUM+EM screen,
  went-away predicate, seasonality filter, threshold) wrapped as a
  registry unit, so challengers are always measured against it.
- :class:`EDivisiveDetector` — Hunter-style energy-statistic split with
  permutation significance (:mod:`repro.stats.e_divisive`).
- :class:`DPChangePointDetector` — normal-loss dynamic-programming split
  (:mod:`repro.stats.changepoint_dp`) validated by the likelihood-ratio
  test.
- :class:`MADDetector` — robust static preset: fire when a run of
  analysis points exceeds ``median + mad_threshold`` of the baseline
  (:mod:`repro.stats.robust`).
- :class:`ThresholdDetector` — the simplest possible preset: a fixed
  absolute level with a persistence run, the classic ops alarm.

All decisions use *global* indices into the concatenated
historic+analysis+extended window so detection-latency comparisons need
no per-detector offset bookkeeping.
"""

from __future__ import annotations

from typing import Mapping, Optional, Tuple

import numpy as np

from repro.core.change_point import ChangePointDetector
from repro.core.seasonality import SeasonalityDetector
from repro.core.went_away import WentAwayDetector
from repro.detectors.base import Detector, DetectorDecision, DetectorWindow
from repro.stats.changepoint_dp import best_split_normal_loss
from repro.stats.e_divisive import e_divisive_test
from repro.stats.hypothesis import likelihood_ratio_test
from repro.stats.robust import NORMALITY_CONSTANT
from repro.tsdb.windows import WindowSpec, WindowedView

__all__ = [
    "DPChangePointDetector",
    "EDivisiveDetector",
    "IncumbentDetector",
    "MADDetector",
    "ThresholdDetector",
]


def _first_run(exceeds: np.ndarray, min_run: int) -> Optional[int]:
    """Start index of the first ``min_run`` consecutive True values."""
    if exceeds.size < min_run:
        return None
    if min_run <= 1:
        hits = np.flatnonzero(exceeds)
        return int(hits[0]) if hits.size else None
    window = np.convolve(exceeds.astype(int), np.ones(min_run, dtype=int), "valid")
    hits = np.flatnonzero(window == min_run)
    return int(hits[0]) if hits.size else None


class IncumbentDetector(Detector):
    """The paper's short-term pipeline as a registry unit.

    Runs the same stage chain the production scan runs on a window —
    CUSUM+EM change-point screen, went-away predicate, seasonality
    filter, absolute-magnitude threshold — so scorecards and shadow
    funnels always include the stack challengers must beat.
    """

    type_name = "incumbent"
    version = 1

    def __init__(
        self,
        threshold: float = 0.00002,
        significance_level: float = 0.01,
        min_segment: int = 3,
        went_away: bool = True,
        seasonality: bool = True,
    ) -> None:
        self.threshold = threshold
        self.significance_level = significance_level
        self.min_segment = min_segment
        self.went_away = went_away
        self.seasonality = seasonality
        self._change_points = ChangePointDetector(
            significance_level=significance_level, min_segment=min_segment
        )
        self._went_away = WentAwayDetector()
        self._seasonality = SeasonalityDetector()

    def params(self) -> Mapping[str, object]:
        return {
            "threshold": self.threshold,
            "significance_level": self.significance_level,
            "min_segment": self.min_segment,
            "went_away": self.went_away,
            "seasonality": self.seasonality,
        }

    @staticmethod
    def _as_view(window: DetectorWindow) -> WindowedView:
        """A synthetic 1-second-per-point :class:`WindowedView`.

        The stage detectors only read the value arrays, but their API
        takes a view; the time geometry just has to be self-consistent.
        """
        h = float(max(window.historic.size, 1))
        a = float(max(window.analysis.size, 1))
        e = float(window.extended.size)
        now = h + a + e
        return WindowedView(
            spec=WindowSpec(historic=h, analysis=a, extended=e),
            now=now,
            historic=window.historic,
            analysis=window.analysis,
            extended=window.extended,
            historic_start=0.0,
            analysis_start=h,
            extended_start=h + a,
        )

    def scan(self, window: DetectorWindow) -> DetectorDecision:
        candidate = self._change_points.detect_increase(window.analysis)
        if candidate is None:
            return DetectorDecision.quiet("no significant change point")
        view = self._as_view(window)
        if self.went_away:
            verdict = self._went_away.check(view, candidate)
            if not verdict.passed:
                return DetectorDecision.quiet(verdict.detail)
        if self.seasonality:
            verdict = self._seasonality.check(view, candidate)
            if not verdict.passed:
                return DetectorDecision.quiet(verdict.detail)
        if candidate.magnitude < self.threshold:
            return DetectorDecision.quiet(
                f"magnitude {candidate.magnitude:.3g} below threshold"
            )
        return DetectorDecision(
            fired=True,
            index=window.analysis_start + candidate.index,
            magnitude=float(candidate.magnitude),
            score=float(candidate.p_value),
            detail="pipeline chain kept the candidate",
        )


class EDivisiveDetector(Detector):
    """Hunter-style E-divisive challenger.

    Scans a bounded context (a historic tail plus analysis+extended) so
    the O(n^2) energy statistic stays cheap, and fires only when the
    significant split lands inside the analysis/extended region with a
    positive shift.
    """

    type_name = "e_divisive"
    version = 1

    def __init__(
        self,
        min_segment: int = 8,
        n_permutations: int = 99,
        alpha: float = 0.05,
        context_points: int = 100,
        max_points: int = 256,
        seed: int = 1,
    ) -> None:
        self.min_segment = min_segment
        self.n_permutations = n_permutations
        self.alpha = alpha
        self.context_points = context_points
        self.max_points = max_points
        self.seed = seed

    def params(self) -> Mapping[str, object]:
        return {
            "min_segment": self.min_segment,
            "n_permutations": self.n_permutations,
            "alpha": self.alpha,
            "context_points": self.context_points,
            "max_points": self.max_points,
            "seed": self.seed,
        }

    def _clipped(self, window: DetectorWindow) -> Tuple[np.ndarray, int]:
        """(series to scan, global index of its first point)."""
        tail = window.historic[-self.context_points :] if self.context_points else (
            window.historic[:0]
        )
        x = np.concatenate([tail, window.analysis, window.extended])
        offset = window.historic.size - tail.size
        if x.size > self.max_points:
            clip = x.size - self.max_points
            x = x[clip:]
            offset += clip
        return x, offset

    def scan(self, window: DetectorWindow) -> DetectorDecision:
        x, offset = self._clipped(window)
        result = e_divisive_test(
            x,
            min_segment=self.min_segment,
            n_permutations=self.n_permutations,
            alpha=self.alpha,
            seed=self.seed,
        )
        if result is None:
            return DetectorDecision.quiet("window too short")
        if not result.significant:
            return DetectorDecision.quiet(
                f"permutation p={result.p_value:.3f} > alpha"
            )
        index = offset + result.index
        if index < window.analysis_start:
            return DetectorDecision.quiet("split predates the analysis window")
        if result.magnitude <= 0:
            return DetectorDecision.quiet("split is a decrease")
        return DetectorDecision(
            fired=True,
            index=index,
            magnitude=float(result.magnitude),
            score=float(result.statistic),
            detail=f"energy split p={result.p_value:.3f}",
        )


class DPChangePointDetector(Detector):
    """Normal-loss DP split validated by the likelihood-ratio test."""

    type_name = "dp_change"
    version = 1

    def __init__(
        self,
        min_segment: int = 5,
        significance_level: float = 0.01,
        context_points: int = 100,
    ) -> None:
        self.min_segment = min_segment
        self.significance_level = significance_level
        self.context_points = context_points

    def params(self) -> Mapping[str, object]:
        return {
            "min_segment": self.min_segment,
            "significance_level": self.significance_level,
            "context_points": self.context_points,
        }

    def scan(self, window: DetectorWindow) -> DetectorDecision:
        tail = window.historic[-self.context_points :] if self.context_points else (
            window.historic[:0]
        )
        x = np.concatenate([tail, window.analysis, window.extended])
        offset = window.historic.size - tail.size
        split = best_split_normal_loss(x, min_segment=self.min_segment)
        if split is None:
            return DetectorDecision.quiet("window too short")
        test = likelihood_ratio_test(
            x, split.index, significance_level=self.significance_level
        )
        if not test.significant:
            return DetectorDecision.quiet(
                f"LRT p={test.p_value:.3f} not significant"
            )
        magnitude = float(np.mean(x[split.index :]) - np.mean(x[: split.index]))
        index = offset + split.index
        if index < window.analysis_start:
            return DetectorDecision.quiet("split predates the analysis window")
        if magnitude <= 0:
            return DetectorDecision.quiet("split is a decrease")
        return DetectorDecision(
            fired=True,
            index=index,
            magnitude=magnitude,
            score=float(split.gain),
            detail=f"normal-loss split, LRT p={test.p_value:.3g}",
        )


class MADDetector(Detector):
    """Robust preset: a persistent run above ``median + k * MAD``.

    The fire level derives entirely from the historic baseline via the
    MAD threshold (:mod:`repro.stats.robust` semantics:
    ``coefficient * MAD * 1.4826``); a run of
    ``min_run`` consecutive exceedances in analysis+extended fires.  A
    zero-dispersion baseline is treated as unscannable rather than
    letting every noise point exceed the median.
    """

    type_name = "mad"
    version = 1

    def __init__(self, coefficient: float = 3.0, min_run: int = 5) -> None:
        self.coefficient = coefficient
        self.min_run = min_run

    def params(self) -> Mapping[str, object]:
        return {"coefficient": self.coefficient, "min_run": self.min_run}

    def scan(self, window: DetectorWindow) -> DetectorDecision:
        baseline = window.historic
        if baseline.size == 0:
            return DetectorDecision.quiet("no baseline")
        # One median pass feeds both the center and the MAD scale
        # (mad_threshold would recompute it; this runs on every shadow
        # score, so the duplicate O(n) pass matters).
        median = float(np.median(baseline))
        scale = (
            self.coefficient
            * float(np.median(np.abs(baseline - median)))
            * NORMALITY_CONSTANT
        )
        if scale <= 0.0:
            return DetectorDecision.quiet("baseline has zero dispersion")
        level = median + scale
        tail = np.concatenate([window.analysis, window.extended])
        start = _first_run(tail > level, self.min_run)
        if start is None:
            return DetectorDecision.quiet(
                f"no {self.min_run}-point run above {level:.3g}"
            )
        index = window.analysis_start + start
        magnitude = float(np.mean(tail[start:]) - median)
        return DetectorDecision(
            fired=True,
            index=index,
            magnitude=magnitude,
            score=magnitude / scale,
            detail=f"run above median + {self.coefficient} MAD",
        )


class ThresholdDetector(Detector):
    """Static absolute level with a persistence run — the ops alarm."""

    type_name = "threshold"
    version = 1

    def __init__(self, level: float, min_run: int = 5) -> None:
        self.level = level
        self.min_run = min_run

    def params(self) -> Mapping[str, object]:
        return {"level": self.level, "min_run": self.min_run}

    def scan(self, window: DetectorWindow) -> DetectorDecision:
        tail = np.concatenate([window.analysis, window.extended])
        start = _first_run(tail > self.level, self.min_run)
        if start is None:
            return DetectorDecision.quiet(
                f"no {self.min_run}-point run above {self.level:.3g}"
            )
        magnitude = float(np.mean(tail[start:]) - self.level)
        return DetectorDecision(
            fired=True,
            index=window.analysis_start + start,
            magnitude=magnitude,
            score=magnitude / self.level if self.level else magnitude,
            detail=f"run above static level {self.level:.3g}",
        )
