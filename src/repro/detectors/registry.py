"""Detector registry: named factories and the default suite.

The registry maps detector *type names* to factories; a monitor asks it
to build challenger instances from compact specs (a bare type name, a
``(type, params)`` pair, a ``{"type": ..., "params": ...}`` mapping, or
an already-built :class:`~repro.detectors.base.Detector`).  Built
instances carry their own deterministic param-hash IDs, so the registry
never needs to coordinate naming.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, Tuple, Union

from repro.detectors.base import Detector
from repro.detectors.library import (
    DPChangePointDetector,
    EDivisiveDetector,
    IncumbentDetector,
    MADDetector,
    ThresholdDetector,
)

__all__ = [
    "DEFAULT_REGISTRY",
    "DetectorRegistry",
    "DetectorSpec",
    "build_detector",
    "default_suite",
]

DetectorSpec = Union[
    Detector,
    str,
    Tuple[str, Mapping[str, object]],
    Mapping[str, object],
]


class DetectorRegistry:
    """A mapping of detector type names to factories."""

    def __init__(self) -> None:
        self._factories: Dict[str, Callable[..., Detector]] = {}

    def register(self, type_name: str, factory: Callable[..., Detector]) -> None:
        """Register a factory; re-registering a name is an error."""
        if type_name in self._factories:
            raise ValueError(f"detector type already registered: {type_name!r}")
        self._factories[type_name] = factory

    def create(self, type_name: str, **params: object) -> Detector:
        """Build a detector of ``type_name`` with ``params``."""
        try:
            factory = self._factories[type_name]
        except KeyError:
            known = ", ".join(sorted(self._factories)) or "<none>"
            raise KeyError(
                f"unknown detector type {type_name!r} (known: {known})"
            ) from None
        return factory(**params)

    def types(self) -> List[str]:
        """Sorted registered type names."""
        return sorted(self._factories)

    def __contains__(self, type_name: object) -> bool:
        return type_name in self._factories


def _built_in_registry() -> DetectorRegistry:
    registry = DetectorRegistry()
    registry.register("incumbent", IncumbentDetector)
    registry.register("e_divisive", EDivisiveDetector)
    registry.register("dp_change", DPChangePointDetector)
    registry.register("mad", MADDetector)
    registry.register("threshold", ThresholdDetector)
    return registry


#: The process-wide registry holding the built-in library.
DEFAULT_REGISTRY = _built_in_registry()


def build_detector(
    spec: DetectorSpec, registry: Optional[DetectorRegistry] = None
) -> Detector:
    """Build a detector from a compact spec.

    Accepted forms::

        build_detector("mad")
        build_detector(("mad", {"coefficient": 4.0}))
        build_detector({"type": "threshold", "params": {"level": 0.002}})
        build_detector(MADDetector())  # passthrough

    Raises:
        KeyError: Unknown type name.
        ValueError: Malformed spec.
    """
    registry = registry if registry is not None else DEFAULT_REGISTRY
    if isinstance(spec, Detector):
        return spec
    if isinstance(spec, str):
        return registry.create(spec)
    if isinstance(spec, tuple):
        if len(spec) != 2:
            raise ValueError(f"detector spec tuple must be (type, params): {spec!r}")
        type_name, params = spec
        return registry.create(type_name, **dict(params))
    if isinstance(spec, Mapping):
        if "type" not in spec:
            raise ValueError(f"detector spec mapping needs a 'type' key: {spec!r}")
        params = dict(spec.get("params") or {})
        return registry.create(str(spec["type"]), **params)
    raise ValueError(f"unsupported detector spec: {spec!r}")


def default_suite(
    threshold: float = 0.000004,
    base: float = 0.001,
    overrides: Optional[Mapping[str, Mapping[str, object]]] = None,
) -> List[Detector]:
    """One of each built-in detector, tuned for the bench corpora.

    Args:
        threshold: Incumbent magnitude threshold (the fig8 bench value).
        base: Baseline level the static presets key off.
        overrides: Per-type parameter overrides merged over the
            defaults, e.g. ``{"e_divisive": {"n_permutations": 29}}``.

    Returns:
        Five detectors — incumbent, e_divisive, dp_change, mad,
        threshold — each carrying its param-hash ID.
    """
    params: Dict[str, Dict[str, object]] = {
        "incumbent": {"threshold": threshold},
        "e_divisive": {},
        "dp_change": {},
        "mad": {},
        "threshold": {"level": base * 1.05},
    }
    for type_name, extra in (overrides or {}).items():
        if type_name not in params:
            raise KeyError(f"unknown detector type in overrides: {type_name!r}")
        params[type_name].update(extra)
    return [
        DEFAULT_REGISTRY.create(type_name, **type_params)
        for type_name, type_params in params.items()
    ]
