"""Shadow mode: challenger detectors that score but never alert.

A :class:`ShadowScorer` rides inside a pipeline and is invoked once per
full (cache-miss) short-term scan with the same oriented window segments
the incumbent just scanned.  Each registered challenger scores the
window; the verdicts land in per-detector :class:`ShadowTally` funnels
and ``detector.{id}.*`` metrics counters — and **nothing else**.  Shadow
scoring never touches delivery, the reported ledger, or the primary
funnel, which is what makes the primary report byte-identical with or
without challengers registered.

State contract: the scorer holds only detectors and integer tallies, so
it pickles with the scheduler it lives in — shadow tallies therefore
ride shard checkpoints and parallel-advance worker round-trips for free,
and accrue exactly once per scan on both the serial and parallel paths.
Metrics handles are *passed per call*, never stored, keeping the pickled
state free of registries.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.detectors.base import Detector, DetectorWindow

__all__ = ["ShadowScorer", "ShadowTally", "merge_snapshot_rows"]


@dataclass
class ShadowTally:
    """Per-detector funnel of shadow verdicts.

    ``agree_fired``/``shadow_only``/``primary_only``/``both_quiet``
    partition the scans by (challenger fired?, incumbent fired?) so an
    operator can read precision-against-incumbent straight off the
    ``/detectors`` endpoint.
    """

    scans: int = 0
    fired: int = 0
    errors: int = 0
    agree_fired: int = 0
    shadow_only: int = 0
    primary_only: int = 0
    both_quiet: int = 0

    def as_dict(self) -> Dict[str, int]:
        return asdict(self)

    def merge(self, other: "ShadowTally") -> None:
        for key, value in other.as_dict().items():
            setattr(self, key, getattr(self, key) + value)


class ShadowScorer:
    """Runs challenger detectors beside the incumbent, alert-inert.

    Args:
        detectors: Challenger instances; their param-hash IDs must be
            unique (two challengers with identical type+version+params
            would tally indistinguishably — reject early instead).
    """

    def __init__(self, detectors: Sequence[Detector]) -> None:
        self.detectors: List[Detector] = list(detectors)
        seen: Dict[str, Detector] = {}
        for detector in self.detectors:
            det_id = detector.detector_id
            if det_id in seen:
                raise ValueError(f"duplicate shadow detector id: {det_id}")
            seen[det_id] = detector
        self.tallies: Dict[str, ShadowTally] = {
            det_id: ShadowTally() for det_id in seen
        }

    @property
    def detector_ids(self) -> List[str]:
        return sorted(self.tallies)

    def score(
        self,
        historic: np.ndarray,
        analysis: np.ndarray,
        extended: np.ndarray,
        primary_fired: bool,
        metrics: Optional[object] = None,
    ) -> None:
        """Score one scan's window with every challenger.

        Called by the pipeline on the scan hot path — a challenger that
        raises is tallied as an error and skipped; shadow scoring can
        never take the primary scan down with it.
        """
        window = DetectorWindow(
            historic=historic, analysis=analysis, extended=extended
        )
        for detector in self.detectors:
            det_id = detector.detector_id
            tally = self.tallies[det_id]
            tally.scans += 1
            self._inc(metrics, det_id, "scans")
            try:
                decision = detector.scan(window)
            except Exception:
                tally.errors += 1
                self._inc(metrics, det_id, "errors")
                continue
            if decision.fired:
                tally.fired += 1
                self._inc(metrics, det_id, "fired")
            if decision.fired and primary_fired:
                tally.agree_fired += 1
            elif decision.fired:
                tally.shadow_only += 1
            elif primary_fired:
                tally.primary_only += 1
            else:
                tally.both_quiet += 1

    @staticmethod
    def _inc(metrics: Optional[object], det_id: str, field: str) -> None:
        if metrics is not None:
            metrics.inc(f"detector.{det_id}.{field}")

    def snapshot_rows(self) -> List[dict]:
        """Per-detector rows: identity + funnel tally, id-sorted."""
        rows = []
        for detector in sorted(self.detectors, key=lambda d: d.detector_id):
            row = detector.describe()
            row["tally"] = self.tallies[detector.detector_id].as_dict()
            rows.append(row)
        return rows


def merge_snapshot_rows(
    accumulator: Dict[str, dict], rows: Iterable[dict]
) -> None:
    """Merge shard-local snapshot rows into ``accumulator`` keyed by id.

    Identity fields come from the first row seen for an id; tally fields
    sum.  Used by the scheduler/service aggregation behind
    ``/detectors``.
    """
    for row in rows:
        existing = accumulator.get(row["id"])
        if existing is None:
            accumulator[row["id"]] = {
                **{key: row[key] for key in ("id", "type", "version", "params")},
                "tally": dict(row["tally"]),
            }
        else:
            for key, value in row["tally"].items():
                existing["tally"][key] = existing["tally"].get(key, 0) + value
