"""Multi-detector registry and shadow mode.

FBDetect commits to a single detection stack, but the literature
disagrees on the best change-point detector: Hunter's core is an
E-divisive significance tester (arXiv 2301.03034) and BIPeC argues a
combination of analyzers beats any single one (arXiv 2408.12414).  This
subsystem lets the service run *challenger* detectors beside the
incumbent pipeline without risking alert quality:

- :mod:`repro.detectors.base` — the :class:`Detector` unit: named,
  versioned, identified by a deterministic blake2b param-hash ID.
- :mod:`repro.detectors.library` — five built-ins: the wrapped
  incumbent pipeline, an E-divisive tester, a DP-changepoint detector,
  and MAD/threshold presets.
- :mod:`repro.detectors.registry` — type-name factories,
  :func:`build_detector` spec parsing, and the scorecard
  :func:`default_suite`.
- :mod:`repro.detectors.shadow` — the alert-inert
  :class:`ShadowScorer` whose tallies ride shard checkpoints and feed
  the ``/detectors`` endpoint and ``detector_*`` metrics.
"""

from repro.detectors.base import (
    Detector,
    DetectorDecision,
    DetectorWindow,
    make_detector_id,
    param_hash,
)
from repro.detectors.library import (
    DPChangePointDetector,
    EDivisiveDetector,
    IncumbentDetector,
    MADDetector,
    ThresholdDetector,
)
from repro.detectors.registry import (
    DEFAULT_REGISTRY,
    DetectorRegistry,
    DetectorSpec,
    build_detector,
    default_suite,
)
from repro.detectors.shadow import ShadowScorer, ShadowTally, merge_snapshot_rows

__all__ = [
    "DEFAULT_REGISTRY",
    "DPChangePointDetector",
    "Detector",
    "DetectorDecision",
    "DetectorRegistry",
    "DetectorSpec",
    "DetectorWindow",
    "EDivisiveDetector",
    "IncumbentDetector",
    "MADDetector",
    "ShadowScorer",
    "ShadowTally",
    "ThresholdDetector",
    "build_detector",
    "default_suite",
    "make_detector_id",
    "merge_snapshot_rows",
    "param_hash",
]
